"""Tests for the static rounding-error certifier and screening.

Covers the :mod:`repro.typeforge.errorbound` model on synthetic
sources, the calibration/certificate layer, the evaluator's screening
fast path, the golden pins for every benchmark
(``tests/data/certify_golden.json``), the screening and bit-width
seeding acceptance numbers, and the Hypothesis soundness property:
the certified error lower bound of a configuration never exceeds the
error the evaluator actually measures for it.
"""

from __future__ import annotations

import importlib.util
import json
import math
import sys
from pathlib import Path

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.benchmarks.base import KernelBenchmark, get_benchmark
from repro.core.evaluator import ConfigurationEvaluator
from repro.core.results import EvaluationStatus
from repro.core.telemetry import EvalStats
from repro.core.types import PrecisionConfig, get_format, unit_roundoff
from repro.search.registry import make_strategy
from repro.typeforge.astscan import scan_source
from repro.typeforge.errorbound import (
    BLOWUP_THRESHOLD,
    BOUND_RULES,
    CANCELLATION_FACTOR,
    DEFAULT_SAFETY,
    DEFAULT_TRIP_COUNT,
    U_REF,
    CertifiedBound,
    analyze_error_bounds,
    certify_benchmark,
)
from repro.verify.quality import QualitySpec

REDUCTION_SRC = """def kernel(ws, n):
    x = ws.array('x', 8)
    s = ws.scalar('s', 0.0)
    for i in range(n):
        s = s + x[i]
    return s
"""

CANCEL_SRC = """def kernel(ws, n):
    a = ws.array('a', 8)
    b = ws.array('b', 8)
    d = a - b
    return d
"""

BLOWUP_SRC = """def kernel(ws, n):
    a = ws.array('a', 8)
    b = ws.array('b', 8)
    s = ws.scalar('s', 0.0)
    for i in range(n):
        s = s + (a[i] - b[i])
    return s
"""


def _model(src, **kwargs):
    return analyze_error_bounds([scan_source(src, "mod")], entry="kernel", **kwargs)


class TestErrorBoundModel:
    def test_reduction_amplifies_by_trip_count(self):
        model = _model(REDUCTION_SRC)
        assert model.terms["kernel.x"] == DEFAULT_TRIP_COUNT
        assert model.terms["kernel.s"] == DEFAULT_TRIP_COUNT
        assert not model.trip_bounded

    def test_trip_count_bounds_and_silences_mpb302(self):
        symbolic = _model(REDUCTION_SRC)
        assert [s.rule for s in symbolic.sites] == ["MPB301", "MPB302"]
        bounded = _model(REDUCTION_SRC, trip_count=16)
        assert bounded.trip_bounded
        assert bounded.terms["kernel.x"] == 16.0
        assert [s.rule for s in bounded.sites] == ["MPB301"]

    def test_cancellation_amplifies_by_factor(self):
        model = _model(CANCEL_SRC)
        assert model.terms["kernel.a"] == CANCELLATION_FACTOR
        assert model.terms["kernel.b"] == CANCELLATION_FACTOR
        # a lone cancellation stays below the blow-up threshold
        assert CANCELLATION_FACTOR < BLOWUP_THRESHOLD
        assert [s.rule for s in model.sites] == ["MPB301"]

    def test_cancellation_inside_reduction_blows_up(self):
        model = _model(BLOWUP_SRC)
        expected = DEFAULT_TRIP_COUNT * CANCELLATION_FACTOR
        assert model.terms["kernel.s"] == expected
        assert sorted(s.rule for s in model.sites) == [
            "MPB301", "MPB302", "MPB303",
        ]
        blow = next(s for s in model.sites if s.rule == "MPB303")
        assert blow.factor == expected

    def test_dominating_site_emitted_once(self):
        for src in (REDUCTION_SRC, CANCEL_SRC, BLOWUP_SRC):
            model = _model(src)
            assert sum(1 for s in model.sites if s.rule == "MPB301") == 1
            uid, factor = model.dominating()
            assert model.terms[uid] == factor == max(model.terms.values())

    def test_all_double_prices_to_zero(self):
        model = _model(BLOWUP_SRC)
        assert model.bound(PrecisionConfig()) == 0.0

    def test_bound_monotone_in_width(self):
        model = _model(REDUCTION_SRC)
        uids = list(model.terms)
        bounds = [
            model.bound(PrecisionConfig(dict.fromkeys(uids, get_format(f"e8m{m}"))))
            for m in (23, 16, 10, 4)
        ]
        assert bounds == sorted(bounds)
        assert bounds[0] > 0.0

    def test_profile_bounds_trip_count(self):
        class FakeProfile:
            ops = {"add": 10, "mul": 6}

        model = _model(REDUCTION_SRC, profile=FakeProfile())
        assert model.trip_bounded
        assert model.trip_count == 16
        assert model.terms["kernel.x"] == 16.0

    def test_unusable_profile_falls_back_to_default(self):
        for profile in (object(), type("P", (), {"ops": {}})()):
            model = _model(REDUCTION_SRC, profile=profile)
            assert not model.trip_bounded
            assert model.terms["kernel.x"] == DEFAULT_TRIP_COUNT

    def test_rule_catalogue(self):
        assert sorted(BOUND_RULES) == ["MPB301", "MPB302", "MPB303"]

    def test_summary_and_json_roundtrip(self):
        model = _model(BLOWUP_SRC)
        summary = model.summary()
        assert summary["terms"] == len(model.terms)
        payload = model.to_json_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestCertifiedBound:
    def _bound(self, weights, anchor=1e-6, safety=DEFAULT_SAFETY):
        return CertifiedBound(
            program="toy", weights=dict(weights), anchor=anchor, safety=safety,
        )

    def test_inert_certificate_never_rejects(self):
        cert = self._bound({}, anchor=0.0)
        config = PrecisionConfig({"kernel.x": get_format("e8m2")})
        assert cert.predict(config) == 0.0
        assert not cert.rejects(config, 1e-12)

    def test_predict_scales_with_excess_roundoff(self):
        cert = self._bound({"kernel.x": 1e-6})
        fp32 = PrecisionConfig({"kernel.x": get_format("e8m23")})
        m10 = PrecisionConfig({"kernel.x": get_format("e8m10")})
        assert cert.predict(fp32) == pytest.approx(1e-6, rel=1e-9)
        ratio = unit_roundoff(get_format("e8m10")) / U_REF
        # u(double) is negligible against u(e8m10); the width scaling
        # dominates
        assert cert.predict(m10) == pytest.approx(1e-6 * ratio, rel=1e-3)

    def test_lower_divides_by_safety(self):
        cert = self._bound({"kernel.x": 1e-6}, safety=100.0)
        config = PrecisionConfig({"kernel.x": get_format("e8m23")})
        assert cert.lower(config) == pytest.approx(cert.predict(config) / 100.0)

    def test_rejects_requires_finite_positive_threshold(self):
        cert = self._bound({"kernel.x": 1.0})
        config = PrecisionConfig({"kernel.x": get_format("e8m2")})
        assert cert.rejects(config, 1e-12)
        assert not cert.rejects(config, math.inf)
        assert not cert.rejects(config, math.nan)
        assert not cert.rejects(config, -1.0)

    def test_all_double_is_never_rejected(self):
        cert = self._bound({"kernel.x": 1.0})
        assert not cert.rejects(PrecisionConfig(), 1e-300)

    def test_seed_weight_sums_members(self):
        cert = self._bound({"a.x": 1e-6, "a.y": 3e-6})
        assert cert.seed_weight(("a.x", "a.y")) == pytest.approx(4e-6)
        assert cert.seed_weight(("a.z",)) == 0.0

    def test_info_and_json(self):
        cert = self._bound({"a.x": 1e-6})
        info = cert.info()
        assert info["terms"] == 1
        assert info["safety"] == DEFAULT_SAFETY
        payload = cert.to_json_dict()
        assert json.loads(json.dumps(payload)) == payload


class _StubScreen:
    """Duck-typed certificate: rejects anything that lowers a location."""

    def rejects(self, config, threshold):
        return bool(config.lowered_locations())

    def predict(self, config):
        return 42.0

    def lower(self, config):
        return 42.0 / DEFAULT_SAFETY


class TestEvaluatorScreening:
    def test_screened_trial_is_free(self, toy_program):
        evaluator = ConfigurationEvaluator(
            toy_program, measurement_noise=0.0, screen=_StubScreen(),
        )
        clock_before = evaluator.analysis_seconds
        config = evaluator.space().uniform_config(get_format("e8m10"))
        record = evaluator.evaluate(config)
        assert record.status is EvaluationStatus.SCREENED
        assert record.error_value == 42.0
        assert not record.passed
        assert evaluator.evaluations == 0  # free: no EV increment...
        assert evaluator.analysis_seconds == clock_before  # ...no budget
        assert evaluator.stats.screened == 1
        assert evaluator.trials[-1] is record

    def test_screened_repeat_hits_memory_cache(self, toy_program):
        evaluator = ConfigurationEvaluator(
            toy_program, measurement_noise=0.0, screen=_StubScreen(),
        )
        config = evaluator.space().uniform_config(get_format("e8m10"))
        evaluator.evaluate(config)
        evaluator.evaluate(config)
        assert evaluator.stats.screened == 1
        assert evaluator.stats.memory_hits == 1

    def test_baseline_is_never_screened(self, toy_program):
        evaluator = ConfigurationEvaluator(
            toy_program, measurement_noise=0.0, screen=_StubScreen(),
        )
        record = evaluator.evaluate(PrecisionConfig())
        assert record.status is EvaluationStatus.PASSED
        assert evaluator.stats.screened == 0

    def test_eval_stats_screened_serialized_only_when_nonzero(self):
        stats = EvalStats()
        assert "screened" not in stats.as_dict()
        stats.screened = 3
        assert stats.as_dict()["screened"] == 3
        merged = EvalStats()
        merged.merge(stats)
        assert merged.screened == 3

    def test_outcome_metadata_without_screen_is_unchanged(self, toy_program):
        evaluator = ConfigurationEvaluator(toy_program, measurement_noise=0.0)
        outcome = make_strategy("DD").run(evaluator)
        assert "screen" not in outcome.metadata
        assert "screened" not in outcome.metadata["eval_stats"]


def _load_certify_golden():
    path = Path(__file__).parent / "data" / "certify_golden.json"
    return json.loads(path.read_text())


CERTIFY_GOLDEN = _load_certify_golden()


class TestCertifyGolden:
    """Pin the certificate of every benchmark.

    Any change to the bound model, the calibration, or a benchmark
    module shows up here as an explicit diff against
    ``tests/data/certify_golden.json``.
    """

    def test_every_benchmark_is_pinned(self):
        from repro.benchmarks.base import available_benchmarks

        assert sorted(CERTIFY_GOLDEN) == sorted(available_benchmarks())
        assert len(CERTIFY_GOLDEN) == 17

    @pytest.mark.parametrize("name", sorted(CERTIFY_GOLDEN))
    def test_certificate_matches_golden(self, name, data_env):
        expected = CERTIFY_GOLDEN[name]
        bench = get_benchmark(name)
        model, cert = certify_benchmark(bench)
        assert len(model.terms) == expected["terms"]
        assert model.trip_bounded == expected["trip_bounded"]
        dom = model.dominating()
        if expected["dominating"] is None:
            assert dom is None
        else:
            assert [dom[0], dom[1]] == expected["dominating"]
        for rule, count in expected["sites"].items():
            assert sum(1 for s in model.sites if s.rule == rule) == count
        anchor = cert.anchor
        if expected["anchor"] is None:
            assert anchor is None or not math.isfinite(anchor)
        else:
            assert float(f"{anchor:.6e}") == expected["anchor"]
        assert len(cert.weights) == expected["weights"]
        screened = sum(
            cert.rejects(
                PrecisionConfig(dict.fromkeys(cert.weights, get_format(f"e8m{m}"))),
                bench.default_threshold,
            )
            for m in (23, 16, 10, 6, 2)
        )
        assert screened == expected["screened_ladder"]


def _bw_pair(program, screened):
    bench = get_benchmark(program)
    screen = None
    screen_info = None
    if screened:
        _, screen = certify_benchmark(bench)
        screen_info = screen.info()
    evaluator = ConfigurationEvaluator(
        bench, screen=screen, screen_info=screen_info,
    )
    outcome = make_strategy("BW").run(evaluator)
    return outcome, evaluator


class TestScreeningAcceptance:
    """--screen reaches the same verified error while skipping work."""

    #: (program, EV plain, EV screened) — golden evaluation counts
    GOLDEN = (
        ("hpccg", 43, 22),
        ("kmeans", 66, 31),
        ("blackscholes", 85, 78),
        ("lavamd", 23, 20),
    )

    @pytest.mark.parametrize("program,ev_plain,ev_screen", GOLDEN)
    def test_bw_screen_equal_error_fewer_evaluations(
        self, program, ev_plain, ev_screen, data_env
    ):
        plain, _ = _bw_pair(program, screened=False)
        screened, evaluator = _bw_pair(program, screened=True)
        err, err_s = plain.error_value, screened.error_value
        assert err == err_s or (math.isnan(err) and math.isnan(err_s))
        assert plain.evaluations == ev_plain
        assert screened.evaluations == ev_screen
        assert screened.metadata["screen"]["screened"] == evaluator.stats.screened

    def test_at_least_three_benchmarks_skip_ten_percent(self):
        savers = [
            program for program, ev_plain, ev_screen in self.GOLDEN
            if (ev_plain - ev_screen) / ev_plain >= 0.10
        ]
        assert len(savers) >= 3

    @pytest.mark.parametrize("program,algorithm", [
        ("hpccg", "DD"), ("hpccg", "HR"), ("hpccg", "HRC"), ("hpccg", "GA"),
    ])
    def test_other_strategies_equal_verified_error(
        self, program, algorithm, data_env
    ):
        bench = get_benchmark(program)
        plain = make_strategy(algorithm).run(ConfigurationEvaluator(bench))
        _, cert = certify_benchmark(bench)
        screened = make_strategy(algorithm).run(ConfigurationEvaluator(
            bench, screen=cert, screen_info=cert.info(),
        ))
        err, err_s = plain.error_value, screened.error_value
        assert err == err_s or (math.isnan(err) and math.isnan(err_s))


class TestBitwidthShadowSeeding:
    """BW seeds its bisection ladder from shadow marginals (--order
    shadow) even without the certificate."""

    #: (program, EV plain, EV shadow-seeded) — golden counts
    GOLDEN = (("hpccg", 43, 24), ("kmeans", 66, 26))

    @pytest.mark.parametrize("program,ev_plain,ev_shadow", GOLDEN)
    def test_shadow_seeding_reduces_evaluations(
        self, program, ev_plain, ev_shadow, data_env
    ):
        from repro.shadow import shadow_guidance

        bench = get_benchmark(program)
        plain = make_strategy("BW").run(ConfigurationEvaluator(bench))
        order, info = shadow_guidance(bench)
        guided = make_strategy("BW").run(ConfigurationEvaluator(
            bench, location_order=order, shadow_info=info,
        ))
        err, err_s = plain.error_value, guided.error_value
        assert err == err_s or (math.isnan(err) and math.isnan(err_s))
        assert plain.evaluations == ev_plain
        assert guided.evaluations == ev_shadow
        assert guided.metadata["seeded_locations"] > 0
        assert "seeded_locations" not in plain.metadata


# --- Hypothesis soundness property -------------------------------------------

_FUZZ_DIR = None
_FUZZ_COUNT = 0


def _make_benchmark(body_lines, tmp_root):
    """Materialise a generated kernel as an importable module and wrap
    it in a throw-away KernelBenchmark subclass (unique name/module so
    the per-process input caches never collide)."""
    global _FUZZ_COUNT
    _FUZZ_COUNT += 1
    ident = _FUZZ_COUNT
    source = (
        "import numpy as np\n\n\ndef kernel(ws, n):\n"
        + "\n".join(body_lines) + "\n"
    )
    path = tmp_root / f"errorbound_fuzz_{ident}.py"
    path.write_text(source)
    module_name = f"errorbound_fuzz_{ident}"
    spec = importlib.util.spec_from_file_location(module_name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    spec.loader.exec_module(module)
    cls = type(
        f"ErrorBoundFuzz{ident}",
        (KernelBenchmark,),
        {
            "name": f"errorbound-fuzz-{ident}",
            "description": "generated soundness-property program",
            "module_name": module_name,
            "entry": "kernel",
            "nominal_seconds": 0.1,
            "setup": lambda self: {"n": 64},
        },
    )
    return cls()


@st.composite
def noncancelling_programs(draw):
    """A random non-cancelling MPB kernel: positive data, only ``+``
    and ``*`` chains (the regime the first-order model is calibrated
    for), optionally ending in an accumulation loop."""
    n_arrays = draw(st.integers(2, 4))
    lines = [
        f"    a{i} = ws.array('a{i}', init=ws.rng.random(n) + 0.5)"
        for i in range(n_arrays)
    ]
    for _ in range(draw(st.integers(1, 4))):
        dst = draw(st.integers(0, n_arrays - 1))
        src = draw(st.integers(0, n_arrays - 1))
        coef = draw(st.sampled_from(["0.5", "0.75", "1.25", "2.0"]))
        lines.append(f"    a{dst} = a{dst} * {coef} + a{src}")
    if draw(st.booleans()):
        lines.append("    s = ws.scalar('s', 0.0)")
        lines.append("    for i in range(8):")
        lines.append(f"        s = s + a{draw(st.integers(0, n_arrays - 1))}[i]")
        lines.append(f"    return np.asarray([s]) + a{draw(st.integers(0, n_arrays - 1))}")
    else:
        lines.append(f"    return a{draw(st.integers(0, n_arrays - 1))}")
    widths = draw(st.lists(st.integers(8, 23), min_size=1, max_size=3))
    return lines, widths


@given(noncancelling_programs())
@settings(max_examples=12, deadline=None)
def test_certified_lower_bound_never_undercuts_measured_error(
    tmp_path_factory, case
):
    """Soundness: for every generated program and every tried width,
    the certified lower bound does not exceed the measured error — so
    screening can never skip a configuration that would have passed."""
    body_lines, widths = case
    tmp_root = tmp_path_factory.mktemp("errorbound-fuzz")
    bench = _make_benchmark(body_lines, tmp_root)
    _, cert = certify_benchmark(bench)
    quality = QualitySpec(bench.metric, bench.default_threshold)
    baseline = bench.execute(PrecisionConfig())
    uids = [v.uid for v in bench.report().search_space().variables]
    for width in widths:
        config = PrecisionConfig(dict.fromkeys(uids, get_format(f"e8m{width}")))
        measured = quality.measure(baseline.output, bench.execute(config).output)
        if math.isnan(measured):
            continue
        assert cert.lower(config) <= measured or math.isclose(
            cert.lower(config), measured, rel_tol=1e-9
        ), (
            f"certified lower bound {cert.lower(config):.3e} exceeds "
            f"measured error {measured:.3e} at e8m{width}"
        )
        # rejects() must therefore never fire at any achievable threshold
        assert not cert.rejects(config, max(measured, 1e-300))
