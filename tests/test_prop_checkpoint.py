"""Property-based tests for the run journal (hypothesis).

Two invariants make checkpoint/resume trustworthy:

* **Truncation safety** — cutting a journal at *any* byte offset
  yields exactly the state of its complete-record prefix: no record is
  half-applied, no frankenstein record is ever parsed, and the torn
  flag fires iff the cut landed inside a record.
* **Resume equivalence** — any append / kill / resume interleaving
  (kill = truncate at an arbitrary point, possibly mid-record) ends in
  the same state as appending every record uninterrupted.
"""

import json

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core.checkpoint import RunJournal, load_run_state

keys = st.sampled_from(["0000:a", "0001:b", "0002:c"])
digests = st.sampled_from(["d1", "d2", "d3"])
contexts = st.sampled_from(["ctx1", "ctx2"])

trial_records = st.builds(
    lambda key, ctx, digest, index: {
        "kind": "trial", "job": key, "context": ctx, "config": digest,
        "record": {"index": index},
    },
    keys, contexts, digests, st.integers(0, 9),
)
job_done_records = st.builds(
    lambda key, value: {
        "kind": "job_done", "job": key, "result": {"error": None, "value": value},
    },
    keys, st.integers(0, 9),
)
record_lists = st.lists(st.one_of(trial_records, job_done_records), max_size=10)

# the journal writes the file; hypothesis only varies the content, so
# reusing the function-scoped tmp_path across examples is safe
relaxed = settings(
    max_examples=40,
    deadline=None,  # appends fsync; disk latency must not flake the test
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def _serialize(records):
    return [(json.dumps(r, sort_keys=True) + "\n").encode() for r in records]


def _state_key(state):
    """The replayable substance of a RunState (meta aside)."""
    return (state.finished, state.trials)


def _reference_state(tmp_path, records, name):
    path = tmp_path / name
    path.write_bytes(b"".join(_serialize(records)))
    return load_run_state(path)


def _clear(path):
    """Hypothesis reuses the function-scoped tmp_path across examples;
    a fresh journal open refuses leftovers, so drop them explicitly."""
    if path.exists():
        path.unlink()


@relaxed
@given(records=record_lists, cut=st.integers(0, 1 << 12))
def test_any_truncation_yields_the_complete_prefix(tmp_path, records, cut):
    lines = _serialize(records)
    data = b"".join(lines)
    cut = min(cut, len(data))
    path = tmp_path / "journal.jsonl"
    path.write_bytes(data[:cut])

    state = load_run_state(path)  # must never raise

    consumed = 0
    complete = 0
    for line in lines:
        if consumed + len(line) > cut:
            break
        consumed += len(line)
        complete += 1
    assert state.valid_bytes == consumed
    assert state.torn_tail == (cut > consumed)
    expected = _reference_state(tmp_path, records[:complete], "expected.jsonl")
    assert _state_key(state) == _state_key(expected)


@relaxed
@given(
    records=record_lists,
    kill_after=st.integers(0, 10),
    tear_fraction=st.floats(0.0, 1.0),
)
def test_kill_and_resume_equals_uninterrupted(
    tmp_path, records, kill_after, tear_fraction
):
    kill_after = min(kill_after, len(records))

    def _append_all(journal, batch):
        for record in batch:
            if record["kind"] == "trial":
                journal.append_trial(
                    record["job"], record["context"], record["config"],
                    record["record"],
                )
            else:
                journal.append_job_done(record["job"], record["result"])

    straight = tmp_path / "straight"
    _clear(straight / "r" / "journal.jsonl")
    with RunJournal(straight, "r", []) as journal:
        _append_all(journal, records)
    uninterrupted = load_run_state(straight / "r" / "journal.jsonl")

    crashed = tmp_path / "crashed"
    path = crashed / "r" / "journal.jsonl"
    _clear(path)
    with RunJournal(crashed, "r", []) as journal:
        _append_all(journal, records[:kill_after])
    if kill_after < len(records):
        # the crash interrupts the next append mid-write
        torn = _serialize(records[kill_after : kill_after + 1])[0]
        with path.open("ab") as handle:
            handle.write(torn[: int(len(torn) * tear_fraction)])
    with RunJournal(crashed, "r", [], resume=True) as journal:
        tail = records[kill_after:]
        # a torn record was dropped by the resume truncation, so the
        # resumed writer re-appends it along with everything after it
        _append_all(journal, tail)
    resumed = load_run_state(path)

    assert not resumed.torn_tail
    assert _state_key(resumed) == _state_key(uninterrupted)


@relaxed
@given(records=record_lists, cut=st.integers(0, 1 << 12))
def test_resume_truncation_leaves_a_clean_journal(tmp_path, records, cut):
    root = tmp_path / "runs"
    path = root / "r" / "journal.jsonl"
    _clear(path)
    with RunJournal(root, "r", []) as journal:
        for record in records:
            if record["kind"] == "trial":
                journal.append_trial(
                    record["job"], record["context"], record["config"],
                    record["record"],
                )
            else:
                journal.append_job_done(record["job"], record["result"])
    data = path.read_bytes()
    header_len = data.index(b"\n") + 1  # resume needs the run header
    cut = max(header_len, min(cut, len(data)))
    before = load_run_state(path)
    path.write_bytes(data[:cut])

    RunJournal(root, "r", [], resume=True).close()

    after = load_run_state(path)
    assert not after.torn_tail
    assert path.stat().st_size == after.valid_bytes
    # resuming never invents state the cut did not preserve
    assert set(after.finished) <= set(before.finished)
