"""Edge-case tests for the runtime substrate: exotic ufunc methods,
machine-model monotonicity, and package export surfaces."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.runtime import (
    DEFAULT_MACHINE, MPArray, OpClass, Profile, Workspace,
)
from repro.runtime.machine import CacheLevel, MachineModel


@pytest.fixture()
def profile():
    return Profile()


def tracked(data, profile):
    return MPArray(np.asarray(data, dtype=np.float64), profile)


class TestExoticUfuncMethods:
    def test_accumulate(self, profile):
        a = tracked(np.ones(16), profile)
        result = np.add.accumulate(a)
        np.testing.assert_array_equal(result.data, np.arange(1.0, 17.0))
        assert profile.ops[(OpClass.CHEAP, "float64")] == 16

    def test_outer(self, profile):
        a = tracked(np.ones(4), profile)
        b = tracked(np.ones(3), profile)
        result = np.multiply.outer(a, b)
        assert result.shape == (4, 3)
        assert profile.ops[(OpClass.CHEAP, "float64")] == 12

    def test_ufunc_at(self, profile):
        a = tracked(np.zeros(8), profile)
        np.add.at(a, np.array([1, 1, 3]), 1.0)
        assert a.data[1] == 2.0
        assert a.data[3] == 1.0
        assert (OpClass.CHEAP, "float64") in profile.ops

    def test_divmod_tuple_result(self, profile):
        a = tracked(np.asarray([7.0, 9.0]), profile)
        quotient, remainder = np.divmod(a, 4.0)
        assert isinstance(quotient, MPArray)
        assert isinstance(remainder, MPArray)
        np.testing.assert_array_equal(quotient.data, [1.0, 2.0])

    def test_sign_and_heaviside(self, profile):
        a = tracked(np.asarray([-2.0, 0.0, 3.0]), profile)
        np.testing.assert_array_equal(np.sign(a).data, [-1.0, 0.0, 1.0])
        np.testing.assert_array_equal(
            np.heaviside(a, 0.5).data, [0.0, 0.5, 1.0],
        )

    def test_clip_stays_cheap(self, profile):
        a = tracked(np.linspace(-2, 2, 9), profile)
        clipped = np.clip(a, -1.0, 1.0)
        assert float(np.max(clipped)) == 1.0
        cheap_ops = sum(
            n for (c, _d), n in profile.ops.items() if c is OpClass.CHEAP
        )
        assert cheap_ops >= 9


class TestMachineMonotonicity:
    @given(st.floats(min_value=1e3, max_value=1e12),
           st.floats(min_value=1.01, max_value=10.0))
    @settings(max_examples=50)
    def test_more_ops_never_faster(self, n, factor):
        small, big = Profile(), Profile()
        small.record_op(OpClass.CHEAP, "float64", n)
        big.record_op(OpClass.CHEAP, "float64", n * factor)
        assert DEFAULT_MACHINE.time(big) >= DEFAULT_MACHINE.time(small)

    @given(st.floats(min_value=1e3, max_value=1e12))
    @settings(max_examples=50)
    def test_narrower_dtype_never_slower_for_cheap_ops(self, n):
        wide, narrow = Profile(), Profile()
        wide.record_op(OpClass.CHEAP, "float64", n)
        narrow.record_op(OpClass.CHEAP, "float32", n)
        assert DEFAULT_MACHINE.time(narrow) <= DEFAULT_MACHINE.time(wide)

    @given(st.integers(min_value=1, max_value=2**31))
    @settings(max_examples=50)
    def test_bandwidth_non_increasing_in_footprint(self, footprint):
        assert DEFAULT_MACHINE.bandwidth(footprint) >= \
            DEFAULT_MACHINE.bandwidth(footprint * 2)

    def test_time_is_additive_across_merged_profiles(self):
        a, b = Profile(), Profile()
        a.record_op(OpClass.TRANS, "float64", 1e6)
        b.record_op(OpClass.MEDIUM, "float32", 1e6)
        t_separate = DEFAULT_MACHINE.time(a) + DEFAULT_MACHINE.time(b)
        a.merge(b)
        # merged time can differ via traffic apportioning but never by
        # more than the call-overhead granularity
        assert DEFAULT_MACHINE.time(a) == pytest.approx(t_separate, rel=0.05)


class TestCustomMachines:
    def test_zero_simd_benefit_machine(self):
        flat = MachineModel(
            name="flat",
            throughput={
                OpClass.CHEAP: {"float32": 1e9, "float64": 1e9},
                OpClass.MEDIUM: {"float32": 1e9, "float64": 1e9},
                OpClass.TRANS: {"float32": 1e8, "float64": 1e8},
                OpClass.MOVE: {},
                OpClass.INT: {},
            },
        )
        p32, p64 = Profile(), Profile()
        p32.record_op(OpClass.CHEAP, "float32", 1e6)
        p64.record_op(OpClass.CHEAP, "float64", 1e6)
        assert flat.time(p32) == pytest.approx(flat.time(p64))

    def test_benchmark_accepts_custom_machine(self, data_env):
        from repro.benchmarks.base import get_benchmark
        from repro.core.types import PrecisionConfig
        machine = MachineModel(
            name="tiny-cache",
            cache_levels=(CacheLevel(1024, 1e11),),
            dram_bandwidth=1e9,
        )
        bench = get_benchmark("tridiag", machine=machine)
        result = bench.execute(PrecisionConfig())
        assert result.modeled_seconds > 0
        assert bench.machine.name == "tiny-cache"


class TestPackageSurface:
    def test_runtime_exports(self):
        import repro.runtime as runtime
        for name in runtime.__all__:
            assert hasattr(runtime, name), name

    def test_top_level_exports(self):
        import repro
        for name in repro.__all__:
            assert hasattr(repro, name), name
        assert repro.__version__ == "1.0.0"

    def test_search_exports(self):
        import repro.search as search
        for name in search.__all__:
            assert hasattr(search, name), name

    def test_workspace_in_top_level(self):
        from repro import Workspace as TopLevel
        assert TopLevel is Workspace
