"""Smoke tests: every shipped example must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

EXPECTED_MARKERS = {
    "quickstart.py": ["Typeforge:", "Delta-debugging search", "speedup (SU)"],
    "compare_algorithms.py": ["combinational", "genetic", "EV"],
    "tune_lavamd.py": ["working set", "conversion speedup", "threshold"],
    "custom_benchmark.py": ["user-jacobi", "cluster", "SU="],
    "harness_yaml.py": ["kmeans: verify MCR", "interchange artifact"],
}


def _run(name: str, tmp_path) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=600,
        env={"PATH": "/usr/bin:/bin", "MIXPBENCH_DATA": str(tmp_path),
             "HOME": str(tmp_path),
             "PYTHONPATH": str(EXAMPLES_DIR.parent / "src")},
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.parametrize("name", sorted(EXPECTED_MARKERS))
def test_example_runs(name, tmp_path):
    stdout = _run(name, tmp_path)
    for marker in EXPECTED_MARKERS[name]:
        assert marker in stdout, f"{name}: missing {marker!r} in output"


def test_examples_directory_is_complete():
    shipped = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert shipped == set(EXPECTED_MARKERS)
