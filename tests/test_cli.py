"""Tests for the mixpbench command-line interface."""

import json

import pytest

from repro.harness.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_defaults(self):
        args = build_parser().parse_args(["search", "tridiag"])
        assert args.algorithm == "DD"
        assert args.threshold is None


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "banded-lin-eq" in out
        assert "lavamd" in out
        assert "application" in out

    def test_analyze(self, capsys):
        assert main(["analyze", "hydro-1d"]) == 0
        out = capsys.readouterr().out
        assert "TV=6 TC=2" in out
        assert "halo.u" in out

    def test_search(self, capsys, data_env):
        assert main(["search", "tridiag", "--algorithm", "CB"]) == 0
        out = capsys.readouterr().out
        assert "tridiag / combinational" in out
        assert "evaluated configurations" in out
        assert "lowered variables" in out

    def test_search_with_threshold(self, capsys, data_env):
        assert main([
            "search", "innerprod", "--algorithm", "GA", "--threshold", "1e-3",
        ]) == 0
        out = capsys.readouterr().out
        assert "@ 0.001" in out

    def test_run_config(self, tmp_path, capsys, data_env):
        config = tmp_path / "c.yaml"
        config.write_text(
            "tridiag:\n"
            "  threshold: 1.0e-8\n"
            "  analysis:\n"
            "    fs:\n"
            "      name: floatSmith\n"
            "      extra_args: {algorithm: DD}\n"
        )
        assert main(["run", str(config), "--output-dir", str(tmp_path / "out")]) == 0
        out = capsys.readouterr().out
        assert "delta-debugging" in out
        artifact = tmp_path / "out" / "tridiag" / "tridiag-delta-debugging.json"
        assert artifact.exists()
        assert json.loads(artifact.read_text())["program"] == "tridiag"


class TestProfileCommand:
    def test_profile_double(self, capsys, data_env):
        assert main(["profile", "hydro-1d"]) == 0
        out = capsys.readouterr().out
        assert "modeled runtime" in out
        assert "cheap/float64" in out
        assert "time breakdown" in out

    def test_profile_single_changes_buckets(self, capsys, data_env):
        assert main(["profile", "hydro-1d", "--precision", "single"]) == 0
        out = capsys.readouterr().out
        assert "float32" in out

    def test_profile_shows_io_for_file_driven_apps(self, capsys, data_env):
        assert main(["profile", "kmeans"]) == 0
        out = capsys.readouterr().out
        assert "file I/O" in out
