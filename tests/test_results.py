"""Unit tests for trial records, search outcomes and JSON interchange."""

import math

from repro.core.results import EvaluationStatus, SearchOutcome, TrialRecord
from repro.core.types import Precision, PrecisionConfig


def _trial(index=1, status=EvaluationStatus.PASSED, speedup=1.5, error=1e-9):
    return TrialRecord(
        index=index,
        config=PrecisionConfig({"f.x": Precision.SINGLE}),
        status=status,
        error_value=error,
        speedup=speedup,
        modeled_seconds=0.01,
        analysis_seconds=60.0,
    )


class TestTrialRecord:
    def test_passed_property(self):
        assert _trial().passed
        assert not _trial(status=EvaluationStatus.FAILED_QUALITY).passed
        assert not _trial(status=EvaluationStatus.COMPILE_ERROR).passed

    def test_json_roundtrip(self):
        trial = _trial()
        back = TrialRecord.from_json_dict(trial.to_json_dict())
        assert back == trial

    def test_json_roundtrip_with_nan(self):
        trial = _trial(status=EvaluationStatus.RUNTIME_ERROR,
                       speedup=float("nan"), error=float("nan"))
        payload = trial.to_json_dict()
        import json
        json.dumps(payload)  # NaN encoded as string, still valid JSON
        back = TrialRecord.from_json_dict(payload)
        assert math.isnan(back.speedup)
        assert math.isnan(back.error_value)

    def test_default_floats_are_nan(self):
        trial = TrialRecord(1, PrecisionConfig(), EvaluationStatus.COMPILE_ERROR)
        assert math.isnan(trial.speedup)
        assert math.isnan(trial.error_value)


class TestSearchOutcome:
    def _outcome(self, final=None, timed_out=False):
        return SearchOutcome(
            strategy="delta-debugging",
            program="toy",
            threshold=1e-6,
            final=final,
            evaluations=7,
            analysis_seconds=3600.0,
            timed_out=timed_out,
            trials=[_trial()],
        )

    def test_found_solution(self):
        assert self._outcome(final=_trial()).found_solution
        assert not self._outcome(final=None).found_solution
        failed = _trial(status=EvaluationStatus.FAILED_QUALITY)
        assert not self._outcome(final=failed).found_solution

    def test_speedup_and_error_accessors(self):
        outcome = self._outcome(final=_trial(speedup=2.0, error=5e-10))
        assert outcome.speedup == 2.0
        assert outcome.error_value == 5e-10
        empty = self._outcome()
        assert math.isnan(empty.speedup)
        assert math.isnan(empty.error_value)

    def test_json_roundtrip(self):
        outcome = self._outcome(final=_trial())
        back = SearchOutcome.from_json_dict(outcome.to_json_dict())
        assert back.strategy == outcome.strategy
        assert back.final == outcome.final
        assert back.trials == outcome.trials
        assert back.evaluations == 7

    def test_save_load(self, tmp_path):
        outcome = self._outcome(final=_trial(), timed_out=True)
        path = tmp_path / "sub" / "outcome.json"
        outcome.save(path)
        loaded = SearchOutcome.load(path)
        assert loaded.timed_out
        assert loaded.program == "toy"
        assert loaded.found_solution
