"""Unit tests for the Workspace (precision-agnostic allocation)."""

import numpy as np
import pytest

from repro.core.types import Precision, PrecisionConfig
from repro.errors import MixPBenchError, UnknownVariableError
from repro.runtime.memory import Workspace
from repro.runtime.mparray import MPArray


class TestNameResolution:
    def test_name_map_resolution(self):
        ws = Workspace(
            PrecisionConfig({"kernel.x": Precision.SINGLE}),
            name_map={"x": "kernel.x"},
        )
        assert ws.precision_of("x") is Precision.SINGLE
        assert ws.dtype_of("x") == np.dtype(np.float32)

    def test_bare_names_without_map(self):
        ws = Workspace(PrecisionConfig({"x": Precision.HALF}))
        assert ws.precision_of("x") is Precision.HALF

    def test_strict_mode_rejects_unknown(self):
        ws = Workspace(name_map={"x": "kernel.x"}, strict=True)
        with pytest.raises(UnknownVariableError):
            ws.precision_of("ghost")

    def test_default_config_is_all_double(self):
        ws = Workspace()
        assert ws.precision_of("anything") is Precision.DOUBLE


class TestArrayDeclaration:
    def test_shape_allocation_zeroed(self):
        ws = Workspace(PrecisionConfig({"x": Precision.SINGLE}))
        x = ws.array("x", 10)
        assert isinstance(x, MPArray)
        assert x.dtype == np.float32
        np.testing.assert_array_equal(x.data, np.zeros(10, dtype=np.float32))

    def test_fill_allocation(self):
        ws = Workspace()
        x = ws.array("x", (2, 2), fill=1.5)
        np.testing.assert_array_equal(x.data, np.full((2, 2), 1.5))

    def test_init_converts_to_configured_dtype(self):
        ws = Workspace(PrecisionConfig({"x": Precision.SINGLE}))
        x = ws.array("x", init=np.arange(4, dtype=np.float64))
        assert x.dtype == np.float32
        # initialisation conversion is not charged as a runtime cast
        assert ws.profile.cast_elements == 0

    def test_init_accepts_mparray(self):
        ws = Workspace()
        first = ws.array("a", init=np.ones(3))
        second = ws.array("b", init=first)
        assert second.dtype == np.float64
        np.testing.assert_array_equal(second.data, np.ones(3))

    def test_requires_exactly_one_of_shape_or_init(self):
        ws = Workspace()
        with pytest.raises(ValueError):
            ws.array("x")
        with pytest.raises(ValueError):
            ws.array("x", 10, init=np.ones(10))

    def test_footprint_tracking(self):
        ws = Workspace()
        ws.array("x", 100)           # 800 bytes
        ws.array("y", 100)           # 800 bytes
        assert ws.profile.peak_footprint == 1600
        ws.release("x")
        ws.array("z", 50)
        assert ws.profile.peak_footprint == 1600
        assert ws.live_bytes == 800 + 400

    def test_redeclaration_replaces(self):
        ws = Workspace()
        ws.array("x", 100)
        ws.array("x", 50)
        assert ws.live_bytes == 400
        assert ws.profile.peak_footprint == 800

    def test_get_and_release(self):
        ws = Workspace()
        x = ws.array("x", 4)
        assert ws.get("x") is x
        assert ws.declared_arrays() == ("x",)
        ws.release("x")
        with pytest.raises(UnknownVariableError):
            ws.get("x")
        ws.release("x")  # idempotent


class TestScalarsAndParams:
    def test_scalar_typed_by_config(self):
        ws = Workspace(PrecisionConfig({"q": Precision.SINGLE}))
        q = ws.scalar("q", 0.1)
        assert isinstance(q, np.float32)

    def test_scalar_promotion_behaves_like_c(self):
        ws = Workspace(PrecisionConfig({"q": Precision.DOUBLE}))
        q = ws.scalar("q", 2.0)
        arr32 = ws.array("a", init=np.ones(4, dtype=np.float32))
        # double scalar forces double math, like a C double variable
        assert (arr32 * q).dtype == np.float64

    def test_param_coerces_scalars(self):
        ws = Workspace(PrecisionConfig({"p": Precision.SINGLE}))
        p = ws.param("p", np.float64(3.0))
        assert isinstance(p, np.float32)

    def test_param_passes_matching_arrays_through(self):
        ws = Workspace(PrecisionConfig({"a": Precision.SINGLE, "p": Precision.SINGLE}))
        a = ws.array("a", 4)
        assert ws.param("p", a) is a

    def test_param_rejects_mismatched_arrays(self):
        ws = Workspace(PrecisionConfig({"p": Precision.SINGLE}))
        a = ws.array("a", 4)  # double
        with pytest.raises(MixPBenchError, match="non-compilable"):
            ws.param("p", a)


class TestDeterminism:
    def test_rng_is_seeded(self):
        a = Workspace(seed=7).rng.random(5)
        b = Workspace(seed=7).rng.random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = Workspace(seed=7).rng.random(5)
        b = Workspace(seed=8).rng.random(5)
        assert not np.array_equal(a, b)
