"""CLI coverage for the service verbs: serve / submit / status /
attach / cancel.

The daemon runs as a real subprocess (it is one in production); the
client side runs in-process through :func:`repro.harness.cli.main`,
which talks to the daemon only through the spool and the ledger —
exactly what a separate terminal would do.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.harness.cli import build_parser, main

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.state_dir == "service"
        assert args.service_workers == 2
        assert args.quota == 8
        assert args.idle_exit is None

    def test_submit_requires_grid_axes(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "--programs", "tridiag"])

    def test_submit_flags(self):
        args = build_parser().parse_args([
            "submit", "--programs", "tridiag", "--algorithms", "DD", "GA",
            "--thresholds", "1e-8", "--tenant", "alice", "--attach",
        ])
        assert args.tenant == "alice"
        assert args.attach
        assert args.algorithms == ["DD", "GA"]

    def test_status_job_is_optional(self):
        assert build_parser().parse_args(["status"]).job_id is None
        args = build_parser().parse_args(["status", "job-0001-aaaa"])
        assert args.job_id == "job-0001-aaaa"

    def test_attach_and_cancel_take_a_job(self):
        args = build_parser().parse_args(["attach", "j1", "--save", "out.json"])
        assert args.job_id == "j1"
        assert args.save == "out.json"
        assert build_parser().parse_args(["cancel", "j1"]).job_id == "j1"


def _spawn_daemon(state_dir: Path, tmp_path: Path) -> subprocess.Popen:
    env = dict(
        os.environ,
        PYTHONPATH=str(REPO_ROOT / "src"),
        MIXPBENCH_DATA=str(tmp_path / "data"),
    )
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.harness.cli", "serve",
            "--state-dir", str(state_dir),
            "--poll-seconds", "0.05", "--idle-exit", "30",
        ],
        env=env, cwd=REPO_ROOT,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    pid_file = state_dir / "serve.pid"
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if pid_file.exists():
            return process
        if process.poll() is not None:
            raise AssertionError(
                f"daemon died on startup:\n{process.stdout.read()}"
            )
        time.sleep(0.05)
    process.kill()
    raise AssertionError("daemon never wrote its pid file")


def _stripped(payload: list[dict]) -> list[dict]:
    out = json.loads(json.dumps(payload))
    for row in out:
        (row.get("outcome") or {}).get("metadata", {}).pop("eval_stats", None)
    return out


class TestEndToEnd:
    def test_submit_attach_dedupe_and_grid_equivalence(
        self, tmp_path, capsys, data_env
    ):
        state_dir = tmp_path / "svc"
        grid = [
            "--programs", "tridiag", "--algorithms", "DD", "GA",
            "--thresholds", "1e-8", "--max-evaluations", "8",
        ]
        daemon = _spawn_daemon(state_dir, data_env)
        try:
            # tenant alice submits and stays attached to completion
            assert main([
                "submit", "--state-dir", str(state_dir), "--tenant", "alice",
                "--attach", *grid,
            ]) == 0
            out = capsys.readouterr().out
            assert "submitted job-0001-" in out
            assert "state: done" in out

            # tenant bob submits the same grid, then attaches explicitly
            assert main([
                "submit", "--state-dir", str(state_dir), "--tenant", "bob",
                *grid,
            ]) == 0
            job_id = capsys.readouterr().out.split()[1].rstrip(":")
            saved = tmp_path / "bob-results.json"
            assert main([
                "attach", job_id, "--state-dir", str(state_dir),
                "--timeout", "120", "--save", str(saved),
            ]) == 0
            capsys.readouterr()

            # bob's overlapping grid deduped through the shared cache
            assert main([
                "status", job_id, "--state-dir", str(state_dir),
                "--format", "json",
            ]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["state"] == "done"
            assert payload["stats"]["persistent_hits"] > 0

            # … and is byte-identical to a direct `mixpbench grid`
            assert main([
                "grid", *grid, "--run-id", "direct",
                "--output-dir", str(tmp_path / "direct"), "--no-cache",
            ]) == 0
            capsys.readouterr()
            direct = json.loads(
                (tmp_path / "direct" / "runs" / "direct" / "results.json")
                .read_text()
            )
            assert _stripped(json.loads(saved.read_text())) == _stripped(direct)

            # the human-readable ledger lists both tenants
            assert main(["status", "--state-dir", str(state_dir)]) == 0
            ledger = capsys.readouterr().out
            assert "alice" in ledger and "bob" in ledger
        finally:
            daemon.terminate()
            daemon.wait(timeout=30)

    def test_daemon_sigkill_then_restart_finishes_the_job(
        self, tmp_path, capsys, data_env
    ):
        state_dir = tmp_path / "svc"
        grid = [
            "--programs", "tridiag", "--algorithms", "DD", "GA",
            "--thresholds", "1e-8", "1e-4", "--max-evaluations", "8",
        ]
        daemon = _spawn_daemon(state_dir, data_env)
        try:
            assert main([
                "submit", "--state-dir", str(state_dir), *grid,
            ]) == 0
            job_id = capsys.readouterr().out.split()[1].rstrip(":")
        finally:
            os.kill(daemon.pid, signal.SIGKILL)  # no drain, no goodbye
            daemon.wait(timeout=30)

        # the accepted job survived in the ledger; usually the kill
        # lands mid-run (queued/running) and the restart resumes it —
        # if the daemon won the race, the restart is a pure replay
        assert main([
            "status", job_id, "--state-dir", str(state_dir),
            "--format", "json",
        ]) == 0
        assert json.loads(capsys.readouterr().out)["state"] != "failed"

        # … and a restarted daemon resumes and finishes it
        daemon = _spawn_daemon(state_dir, data_env)
        try:
            assert main([
                "attach", job_id, "--state-dir", str(state_dir),
                "--timeout", "180",
            ]) == 0
            out = capsys.readouterr().out
            assert f"{job_id}: done" in out
        finally:
            daemon.terminate()
            daemon.wait(timeout=30)

    def test_cancel_via_spool(self, tmp_path, capsys, data_env):
        state_dir = tmp_path / "svc"
        daemon = _spawn_daemon(state_dir, data_env)
        try:
            # a long grid gives cancel something to interrupt; even if
            # it wins the race and finishes, the verb still round-trips
            assert main([
                "submit", "--state-dir", str(state_dir),
                "--programs", "tridiag", "--algorithms", "DD", "GA", "CB",
                "--thresholds", "1e-8", "1e-6", "--max-evaluations", "8",
            ]) == 0
            job_id = capsys.readouterr().out.split()[1].rstrip(":")
            assert main([
                "cancel", job_id, "--state-dir", str(state_dir),
            ]) == 0
            capsys.readouterr()
            exit_code = main([
                "attach", job_id, "--state-dir", str(state_dir),
                "--timeout", "180",
            ])
            capsys.readouterr()
            assert exit_code in (0, 3)  # done if cancel lost the race
        finally:
            daemon.terminate()
            daemon.wait(timeout=30)
