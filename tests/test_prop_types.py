"""Property-based tests for PrecisionConfig (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.types import Precision, PrecisionConfig

locations = st.text(
    alphabet="abcdefgh.", min_size=1, max_size=12,
).filter(lambda s: s.strip())
precisions = st.sampled_from(list(Precision))
assignments = st.dictionaries(locations, precisions, max_size=8)


@given(assignments)
def test_json_roundtrip_is_identity(mapping):
    config = PrecisionConfig(mapping)
    assert PrecisionConfig.from_json_dict(config.to_json_dict()) == config


@given(assignments)
def test_equal_configs_have_equal_hash_and_digest(mapping):
    a = PrecisionConfig(mapping)
    b = PrecisionConfig(dict(mapping))
    assert a == b
    assert hash(a) == hash(b)
    assert a.digest() == b.digest()


@given(assignments)
def test_double_assignments_are_invisible(mapping):
    config = PrecisionConfig(mapping)
    explicit = {loc for loc, prec in mapping.items() if prec is not Precision.DOUBLE}
    assert set(config) == explicit


@given(assignments, locations, precisions)
def test_assign_then_lookup(mapping, location, precision):
    config = PrecisionConfig(mapping).assign(location, precision)
    assert config.precision_of(location) is precision


@given(assignments, locations)
def test_without_reverts_to_default(mapping, location):
    config = PrecisionConfig(mapping).without(location)
    assert config.precision_of(location) is Precision.DOUBLE


@given(assignments, assignments)
def test_merge_respects_right_operand(left, right):
    # Assignments equal to the default are canonically dropped, so only
    # non-default entries are observable after a merge.
    merged = PrecisionConfig(left).merge(PrecisionConfig(right))
    effective_right = {
        loc: prec for loc, prec in right.items() if prec is not Precision.DOUBLE
    }
    for loc, prec in effective_right.items():
        assert merged.precision_of(loc) is prec
    for loc, prec in left.items():
        if loc not in effective_right:
            assert merged.precision_of(loc) is prec


@given(assignments)
@settings(max_examples=50)
def test_lowered_locations_are_below_double(mapping):
    config = PrecisionConfig(mapping)
    for loc in config.lowered_locations():
        assert config.precision_of(loc) < Precision.DOUBLE


@given(assignments)
def test_baseline_iff_no_non_default(mapping):
    config = PrecisionConfig(mapping)
    expected = all(p is Precision.DOUBLE for p in mapping.values())
    assert config.is_baseline() == expected
