"""Shared test helpers: a synthetic tunable program.

Search-algorithm tests should not pay for real benchmark executions,
so :class:`ToyProgram` implements the :class:`repro.core.program.Program`
protocol analytically: the caller declares which clusters are *toxic*
(lowering any of them exceeds the quality threshold) and how much
modeled time each lowered cluster saves.  Every search strategy can be
exercised against it in microseconds, with fully predictable optima.
"""

from __future__ import annotations

import numpy as np

from repro.core.program import ExecutionResult
from repro.core.types import Precision, PrecisionConfig
from repro.core.variables import Cluster, Granularity, SearchSpace, Variable, VariableKind
from repro.runtime.profiler import OpClass, Profile
from repro.verify.quality import QualitySpec

__all__ = ["ToyProgram", "make_space"]


def make_space(
    n_clusters: int = 4,
    members_per_cluster: int = 1,
    functions: tuple[str, ...] = ("main",),
) -> SearchSpace:
    """A synthetic search space of ``n_clusters`` equally sized clusters,
    spread round-robin over ``functions`` for hierarchy tests."""
    variables = []
    clusters = []
    for c in range(n_clusters):
        members = []
        for m in range(members_per_cluster):
            function = functions[c % len(functions)]
            var = Variable(f"v{c}_{m}", VariableKind.ARRAY, function, "toy")
            variables.append(var)
            members.append(var.uid)
        clusters.append(Cluster(min(members), frozenset(members)))
    return SearchSpace(variables, clusters)


class ToyProgram:
    """Analytic stand-in for a benchmark.

    Parameters
    ----------
    n_clusters / members_per_cluster / functions:
        Shape of the search space.
    toxic:
        Cluster indices whose lowering pushes the error above 1.0
        (tests use a :class:`QualitySpec` threshold below that).
    gain_per_cluster:
        Fractional modeled-time reduction per lowered non-toxic cluster.
    error_per_cluster:
        Error contributed by each lowered non-toxic cluster.
    """

    runs_per_config = 10
    compile_seconds = 10.0
    nominal_seconds = 5.0

    def __init__(
        self,
        n_clusters: int = 4,
        members_per_cluster: int = 1,
        functions: tuple[str, ...] = ("main",),
        toxic: tuple[int, ...] = (),
        gain_per_cluster: float = 0.1,
        error_per_cluster: float = 1e-10,
        metric: str = "MAE",
        threshold: float = 1e-6,
    ) -> None:
        self.name = "toy"
        self._space = make_space(n_clusters, members_per_cluster, functions)
        self._toxic = {self._space.clusters[i].cid for i in toxic}
        self.gain_per_cluster = gain_per_cluster
        self.error_per_cluster = error_per_cluster
        self.quality = QualitySpec(metric, threshold)
        self.executions = 0

    def search_space(self, granularity: Granularity = Granularity.CLUSTER) -> SearchSpace:
        return self._space.at(granularity)

    def lowered_clusters(self, config: PrecisionConfig) -> list:
        return [
            cluster for cluster in self._space.clusters
            if all(config.precision_of(uid) < Precision.DOUBLE for uid in cluster.members)
        ]

    def _half_clusters(self, config: PrecisionConfig) -> int:
        return sum(
            1 for cluster in self._space.clusters
            if all(config.precision_of(uid) is Precision.HALF for uid in cluster.members)
        )

    def execute(self, config: PrecisionConfig) -> ExecutionResult:
        self.executions += 1
        lowered = self.lowered_clusters(config)
        toxic_count = sum(1 for c in lowered if c.cid in self._toxic)
        clean_count = len(lowered) - toxic_count
        error = toxic_count * 10.0 + clean_count * self.error_per_cluster
        # half precision gains half as much again per clean cluster
        half_bonus = 0.5 * self.gain_per_cluster * self._half_clusters(config)
        modeled = 1.0 / (1.0 + self.gain_per_cluster * clean_count + half_bonus)
        output = np.zeros(8)
        output[0] = error
        profile = Profile()
        profile.record_op(OpClass.CHEAP, "float64", 100.0)
        return ExecutionResult(output=output, profile=profile, modeled_seconds=modeled)
