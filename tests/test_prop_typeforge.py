"""Property-based fuzzing of the Typeforge analysis.

Random MPB-style programs are generated (declarations, helper calls,
aliasing, swaps) and the analysis must uphold its structural
invariants on all of them: the clusters partition the variables, TV
and TC relate sanely, the name map is injective, the analysis is
deterministic, and `explain` agrees with the partition.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.types import Precision
from repro.typeforge import analyze_sources
from repro.typeforge.dataflow import analyze_dataflow
from repro.typeforge.prune import prune_space

names = st.sampled_from([f"v{i}" for i in range(8)])


@st.composite
def mpb_programs(draw) -> str:
    """A random single-module MPB program.

    Structure: up to three helpers, each taking one array parameter,
    and one entry ``kernel`` declaring arrays/scalars and then applying
    random statements (helper calls, swaps, slice aliases).
    """
    n_helpers = draw(st.integers(0, 3))
    helpers = []
    for h in range(n_helpers):
        helpers.append(
            f"def helper{h}(ws, p{h}):\n"
            f"    p{h}[0] = p{h}[0] * 0.5\n"
        )

    n_arrays = draw(st.integers(1, 5))
    n_scalars = draw(st.integers(0, 3))
    body = []
    array_names = [f"a{i}" for i in range(n_arrays)]
    for name in array_names:
        body.append(f"    {name} = ws.array('{name}', 8)")
    for i in range(n_scalars):
        body.append(f"    s{i} = ws.scalar('s{i}', 0.5)")

    n_statements = draw(st.integers(0, 6))
    for _ in range(n_statements):
        kind = draw(st.sampled_from(["call", "swap", "slice"]))
        if kind == "call" and n_helpers:
            helper = draw(st.integers(0, n_helpers - 1))
            target = draw(st.sampled_from(array_names))
            body.append(f"    helper{helper}(ws, {target})")
        elif kind == "swap" and n_arrays >= 2:
            first = draw(st.sampled_from(array_names))
            second = draw(st.sampled_from(array_names))
            if first != second:
                body.append(f"    {first}, {second} = {second}, {first}")
        elif kind == "slice":
            source = draw(st.sampled_from(array_names))
            body.append(f"    tmp = {source}[1:4]")

    body.append(f"    return {array_names[0]}")
    return "".join(helpers) + "def kernel(ws, n):\n" + "\n".join(body) + "\n"


@given(mpb_programs())
@settings(max_examples=120, deadline=None)
def test_clusters_partition_variables(src):
    report = analyze_sources({"fuzz": src}, entry="kernel")
    seen = []
    for cluster in report.clusters:
        seen.extend(cluster.members)
    assert len(seen) == len(set(seen))  # disjoint
    assert set(seen) == {v.uid for v in report.variables}  # covering


@given(mpb_programs())
@settings(max_examples=80, deadline=None)
def test_tv_tc_relation(src):
    report = analyze_sources({"fuzz": src}, entry="kernel")
    assert 1 <= report.total_clusters <= report.total_variables


@given(mpb_programs())
@settings(max_examples=80, deadline=None)
def test_name_map_is_injective_into_variables(src):
    report = analyze_sources({"fuzz": src}, entry="kernel")
    uids = {v.uid for v in report.variables}
    values = list(report.name_map.values())
    assert len(values) == len(set(values))
    assert set(values) <= uids


@given(mpb_programs())
@settings(max_examples=60, deadline=None)
def test_analysis_is_deterministic(src):
    first = analyze_sources({"fuzz": src}, entry="kernel")
    second = analyze_sources({"fuzz": src}, entry="kernel")
    assert first.variables == second.variables
    assert first.clusters == second.clusters
    assert first.name_map == second.name_map


@given(mpb_programs())
@settings(max_examples=40, deadline=None)
def test_explain_agrees_with_partition(src):
    report = analyze_sources({"fuzz": src}, entry="kernel")
    variables = [v.uid for v in report.variables][:5]
    for first in variables:
        for second in variables:
            chain = report.explain(first, second)
            same_cluster = any(
                first in c and second in c for c in report.clusters
            )
            assert (chain is not None) == same_cluster


@given(mpb_programs())
@settings(max_examples=40, deadline=None)
def test_search_space_is_constructible(src):
    """Every fuzzed analysis yields a valid, usable search space."""
    report = analyze_sources({"fuzz": src}, entry="kernel")
    space = report.search_space()
    assert space.size() >= 2
    locations = space.locations()
    config = space.lower(list(locations))
    assert space.is_compilable(config)


@given(mpb_programs(), st.data())
@settings(max_examples=60, deadline=None)
def test_pruning_is_sound(src, data):
    """Every pruned-space configuration maps verbatim to an unpruned
    configuration with the identical verified error.

    The mapping is the identity: pruning only freezes (variables absent
    from the config default to double) and merges (members lower
    together), so a pruned config is compilable in the original space
    and names the same per-variable precisions — the evaluator cannot
    tell which space produced it.
    """
    report = analyze_sources({"fuzz": src}, entry="kernel")
    original = report.search_space()
    dataflow = analyze_dataflow(
        report.scans, entry="kernel", dependence=report.dependence
    )
    pruned = prune_space(original, dataflow)

    # a restriction, never an extension
    assert pruned.space.total_variables <= original.total_variables
    assert pruned.space.total_clusters <= original.total_clusters
    assert {v.uid for v in pruned.space.variables} <= {
        v.uid for v in original.variables
    }

    locations = list(pruned.space.locations())
    subset = (
        data.draw(st.lists(st.sampled_from(locations), unique=True))
        if locations else []
    )
    config = pruned.space.lower(subset)
    assert original.is_compilable(config)
    for uid in pruned.frozen:
        assert config.precision_of(uid) is Precision.DOUBLE


@given(mpb_programs())
@settings(max_examples=40, deadline=None)
def test_frozen_variables_are_output_irrelevant(src):
    """Pruning only freezes variables the dataflow pass proved cannot
    influence the verified output."""
    report = analyze_sources({"fuzz": src}, entry="kernel")
    dataflow = analyze_dataflow(
        report.scans, entry="kernel", dependence=report.dependence
    )
    pruned = prune_space(report.search_space(), dataflow)
    assert pruned.frozen <= dataflow.output_irrelevant
