"""Tests for the experiment layer (tables/figures regeneration).

Search-driven experiments run against the kernel grid (fast) or a
narrowed context; the full Table V grid is exercised by the benches.
"""

import pytest

from repro.experiments import fig2, fig3, table1, table2, table3, table4
from repro.experiments.context import (
    APP_ALGORITHMS, APP_THRESHOLDS, KERNEL_ALGORITHMS, ExperimentContext,
)
from repro.experiments.runner import EXPERIMENTS, run_experiment


@pytest.fixture()
def ctx(tmp_path, data_env):
    return ExperimentContext(results_dir=tmp_path / "results")


class TestStaticTables:
    def test_table1_lists_all_kernels(self, tmp_path):
        text = table1.run(results_dir=str(tmp_path))
        assert "banded-lin-eq" in text
        assert "Tridiagonal" in text
        assert (tmp_path / "table1.csv").exists()

    def test_table2_rows_cover_suite(self, tmp_path):
        rows = table2.rows()
        assert len(rows) == 17
        by_name = {row[0]: (row[2], row[3]) for row in rows}
        # kernels match the paper exactly
        for name, expected in list(table2.PAPER_VALUES.items())[:10]:
            if name in by_name and by_name[name][0] <= 10:
                assert by_name[name] == expected

    def test_table2_render(self, tmp_path):
        text = table2.run(results_dir=str(tmp_path))
        assert "TV" in text and "TC" in text
        assert (tmp_path / "table2.csv").exists()

    def test_table4_has_paper_shape(self, tmp_path, data_env):
        rows = {row[0]: row for row in table4.rows()}
        assert len(rows) == 7
        # SRAD's quality is destroyed; LavaMD has the largest speedup
        assert rows["srad"][3] == "NaN"
        speedups = {name: float(row[1]) for name, row in rows.items()}
        assert max(speedups, key=speedups.get) == "lavamd"
        assert rows["kmeans"][2] == "MCR"
        assert rows["kmeans"][3] == "0"


class TestSearchDrivenExperiments:
    def test_kernel_grid_and_table3(self, ctx):
        text = table3.run(ctx, results_dir=str(ctx.results_dir))
        for algorithm in KERNEL_ALGORITHMS:
            assert f"SU({algorithm})" in text
        assert "banded-lin-eq" in text
        assert (ctx.results_dir / "table3.csv").exists()

    def test_context_caches_in_memory(self, ctx):
        first = ctx.outcome("tridiag", "DD", 1e-8)
        second = ctx.outcome("tridiag", "DD", 1e-8)
        assert first is second

    def test_context_caches_on_disk(self, tmp_path, data_env):
        ctx_a = ExperimentContext(results_dir=tmp_path)
        outcome = ctx_a.outcome("tridiag", "CB", 1e-8)
        cached = list((tmp_path / "searches").glob("tridiag-CB-1e-08-*.json"))
        assert len(cached) == 1  # filename carries the strategy fingerprint
        ctx_b = ExperimentContext(results_dir=tmp_path)
        reloaded = ctx_b.outcome("tridiag", "CB", 1e-8)
        assert reloaded.evaluations == outcome.evaluations
        assert reloaded.final == outcome.final

    def test_no_cache_mode(self, tmp_path, data_env):
        ctx = ExperimentContext(results_dir=tmp_path, use_disk_cache=False)
        ctx.outcome("tridiag", "CB", 1e-8)
        assert not (tmp_path / "searches").exists()

    def test_constants_match_paper(self):
        assert APP_THRESHOLDS == (1e-3, 1e-6, 1e-8)
        assert "CB" not in APP_ALGORITHMS
        assert len(KERNEL_ALGORITHMS) == 6

    def test_fig_headers(self):
        assert "clusters" in fig2.HEADERS
        assert "speedup" in fig3.HEADERS

    def test_runner_dispatch_rejects_unknown(self, ctx):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("table9", ctx, str(ctx.results_dir))

    def test_experiment_names(self):
        assert EXPERIMENTS == (
            "table1", "table2", "table3", "table4", "table5", "fig2", "fig3",
            "insights", "compare", "prune-stats", "shadow-stats",
            "screen-stats", "format-stats", "ext-half", "ext-hrc",
            "ext-machines", "ext-convergence",
        )


class TestInsights:
    def test_insight_dataclass(self):
        from repro.experiments.insights import Insight
        holds = Insight("claim", True, "evidence")
        assert holds.verdict == "HOLDS"
        assert Insight("claim", False, "e").verdict == "DIFFERS"

    def test_headers(self):
        from repro.experiments import insights
        assert insights.HEADERS == ("insight", "verdict", "evidence")

    def test_cache_fingerprint_changes_with_strategy_params(self):
        from repro.experiments.context import ExperimentContext
        fp_dd = ExperimentContext._strategy_fingerprint("DD")
        fp_ga = ExperimentContext._strategy_fingerprint("GA")
        assert fp_dd != fp_ga
        assert len(fp_dd) == 8

    def test_cache_path_carries_fingerprint(self, tmp_path):
        from repro.experiments.context import ExperimentContext
        ctx = ExperimentContext(results_dir=tmp_path)
        path = ctx._cache_path(("kmeans", "DD", 1e-6))
        assert path.name.startswith("kmeans-DD-1e-06-")
        assert path.suffix == ".json"


class TestCompare:
    def test_spearman_perfect_and_inverted(self):
        from repro.experiments.compare import spearman
        assert spearman([1, 2, 3], [10, 20, 30]) == 1.0
        assert spearman([1, 2, 3], [30, 20, 10]) == -1.0
        assert spearman([1.0], [2.0]) == 1.0

    def test_spearman_partial(self):
        from repro.experiments.compare import spearman
        rho = spearman([1, 2, 3, 4], [1, 3, 2, 4])
        assert 0.0 < rho < 1.0

    def test_paper_data_shapes(self):
        from repro.experiments import paper_data
        assert len(paper_data.TABLE2) == 17
        assert len(paper_data.TABLE3_SU) == 10
        assert len(paper_data.TABLE4) == 7
        for values in paper_data.TABLE3_EV.values():
            assert len(values) == 6

    def test_paper_table3_internal_consistency(self):
        from repro.experiments import paper_data
        # every transcribed EV is a positive count, and the famous
        # int-predict HR blow-up (110) is the table's maximum
        all_evs = [
            ev for evs in paper_data.TABLE3_EV.values() for ev in evs
        ]
        assert all(ev >= 1 for ev in all_evs)
        assert max(all_evs) == 110
        assert paper_data.TABLE3_EV["int-predict"][3] == 110

    def test_compare_headers(self):
        from repro.experiments import compare
        assert compare.HEADERS[-1] == "verdict"


class TestMachineSensitivity:
    def test_presets_exist(self):
        from repro.runtime.machine import MACHINE_PRESETS
        assert set(MACHINE_PRESETS) == {"xeon", "wide-vector", "hbm-accelerator"}
        names = {m.name for m in MACHINE_PRESETS.values()}
        assert len(names) == 3

    def test_lavamd_cache_win_is_machine_specific(self, data_env):
        """The paper's LavaMD insight is a cache effect: it must
        largely vanish on the high-bandwidth machine."""
        from repro.benchmarks.base import get_benchmark
        from repro.core.types import Precision, PrecisionConfig
        from repro.runtime.machine import DEFAULT_MACHINE, HBM_ACCELERATOR_MACHINE

        def speedup(machine):
            bench = get_benchmark("lavamd", machine=machine)
            base = bench.execute(PrecisionConfig())
            single = bench.execute_manual(Precision.SINGLE)
            return base.modeled_seconds / single.modeled_seconds

        assert speedup(DEFAULT_MACHINE) > 2.5
        assert speedup(HBM_ACCELERATOR_MACHINE) < 2.0

    def test_rows_cover_all_apps_and_machines(self, data_env):
        from repro.experiments import ext_machines
        rows = ext_machines.rows()
        assert len(rows) == 7
        assert all(len(row) == 4 for row in rows)


class TestConvergenceExperiment:
    def test_headers(self):
        from repro.experiments import ext_convergence
        assert "anytime(DD)" in ext_convergence.HEADERS
        assert ext_convergence.THRESHOLD == 1e-8

    def test_series_shapes(self, tmp_path, data_env):
        from repro.experiments import ext_convergence
        from repro.experiments.context import ExperimentContext
        ctx = ExperimentContext(results_dir=tmp_path, use_disk_cache=False)
        # narrow check on one cheap program to keep the unit test fast
        outcome = ctx.outcome("kmeans", "DD", 1e-8)
        assert outcome is not None
        from repro.analysis.convergence import convergence_curve
        curve = convergence_curve(outcome)
        assert len(curve) == outcome.evaluations
