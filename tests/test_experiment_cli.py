"""Tests for the mixpbench-experiments command-line runner."""

import pytest

from repro.experiments.runner import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_experiments(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.results_dir == "results"
        assert args.workers == 1
        assert args.max_evaluations is None
        assert not args.no_cache

    def test_multiple_experiments(self):
        args = build_parser().parse_args(["table1", "table2"])
        assert args.experiments == ["table1", "table2"]


class TestMain:
    def test_unknown_experiment_exits_2(self, capsys, tmp_path):
        code = main(["table9", "--results-dir", str(tmp_path)])
        assert code == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_static_tables_run(self, capsys, tmp_path, data_env):
        code = main(["table1", "table2", "--results-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table II" in out
        assert (tmp_path / "table1.csv").exists()
        assert (tmp_path / "table2.csv").exists()

    def test_no_cache_flag(self, capsys, tmp_path, data_env):
        code = main([
            "table4", "--results-dir", str(tmp_path), "--no-cache",
        ])
        assert code == 0
        assert not (tmp_path / "searches").exists()

    def test_all_expands(self):
        args = build_parser().parse_args(["all"])
        names = args.experiments
        assert names == ["all"]
        # expansion happens in main(); check the canonical tuple instead
        assert set(EXPERIMENTS) >= {"table1", "table5", "fig3", "insights"}

    def test_timing_line_printed(self, capsys, tmp_path, data_env):
        main(["table1", "--results-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert "[table1:" in out
