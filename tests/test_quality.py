"""Unit tests for QualitySpec / QualityResult."""

import numpy as np
import pytest

from repro.errors import VerificationError
from repro.verify.quality import QualitySpec


class TestQualitySpec:
    def test_error_metric_passes_below_threshold(self):
        spec = QualitySpec("MAE", 0.5)
        result = spec.check([1.0, 1.0], [1.1, 1.1])
        assert result.passed
        assert result.value == pytest.approx(0.1)
        assert result.metric == "MAE"

    def test_error_metric_fails_above_threshold(self):
        spec = QualitySpec("MAE", 0.05)
        assert not spec.check([1.0], [1.1]).passed

    def test_boundary_passes(self):
        spec = QualitySpec("MAE", 0.1)
        assert spec.check([0.0], [0.1]).passed

    def test_higher_is_better_direction(self):
        spec = QualitySpec("R2", 0.9)
        good = np.linspace(0, 1, 10)
        assert spec.check(good, good).passed
        noisy = good + np.linspace(-1, 1, 10)
        assert not spec.check(good, noisy).passed

    def test_nan_never_passes(self):
        spec = QualitySpec("MAE", 1e6)
        assert not spec.check([1.0], [float("nan")]).passed

    def test_invalid_metric_rejected_eagerly(self):
        with pytest.raises(VerificationError):
            QualitySpec("NOPE", 1e-3)

    def test_with_threshold(self):
        spec = QualitySpec("MAE", 1e-3)
        stricter = spec.with_threshold(1e-8)
        assert stricter.metric == "MAE"
        assert stricter.threshold == 1e-8
        assert spec.threshold == 1e-3  # original untouched

    def test_measure_returns_raw_value(self):
        assert QualitySpec("MAE", 1.0).measure([0.0], [2.0]) == 2.0

    def test_result_str(self):
        result = QualitySpec("MAE", 1e-3).check([0.0], [1.0])
        assert "FAIL" in str(result)
        assert "MAE" in str(result)

    def test_spec_is_hashable(self):
        assert len({QualitySpec("MAE", 1e-3), QualitySpec("MAE", 1e-3)}) == 1
