"""Tests for the analysis subpackage (convergence, comparison, export)."""

import csv
import math

import pytest

from helpers import ToyProgram

from repro.analysis import (
    area_under_curve,
    compare_outcomes,
    convergence_curve,
    effort_summary,
    load_outcomes,
    outcomes_to_csv,
    rank_outcomes,
    summarize_many,
    time_to_first_solution,
    trials_to_csv,
)
from repro.core.evaluator import ConfigurationEvaluator
from repro.search import make_strategy


def run(algorithm="DD", program=None):
    program = program if program is not None else ToyProgram(n_clusters=4, toxic=(0,))
    evaluator = ConfigurationEvaluator(program, measurement_noise=0.0)
    return make_strategy(algorithm).run(evaluator)


class TestConvergence:
    def test_curve_is_monotone_and_complete(self):
        outcome = run("CB")
        curve = convergence_curve(outcome)
        assert len(curve) == outcome.evaluations
        speedups = [p.best_speedup for p in curve]
        assert speedups == sorted(speedups)
        assert curve[-1].best_speedup == pytest.approx(outcome.speedup)

    def test_curve_analysis_seconds_monotone(self):
        outcome = run("CB")
        curve = convergence_curve(outcome)
        seconds = [p.analysis_seconds for p in curve]
        assert seconds == sorted(seconds)
        assert seconds[-1] > 0

    def test_unsolved_search_stays_at_one(self):
        outcome = run("DD", ToyProgram(n_clusters=3, toxic=(0, 1, 2)))
        curve = convergence_curve(outcome)
        assert all(p.best_speedup == 1.0 for p in curve)
        assert time_to_first_solution(outcome) is None

    def test_time_to_first_solution(self):
        outcome = run("CB")
        first = time_to_first_solution(outcome)
        assert first is not None
        evaluations, seconds = first
        assert 1 <= evaluations <= outcome.evaluations
        assert seconds > 0

    def test_area_under_curve_bounds(self):
        outcome = run("CB")
        auc = area_under_curve(outcome)
        assert 1.0 <= auc <= outcome.speedup + 1e-9

    def test_effort_summary_counts(self):
        outcome = run("HR", ToyProgram(
            n_clusters=2, members_per_cluster=2, toxic=(0,),
            functions=("f", "g"),
        ))
        summary = effort_summary(outcome)
        assert summary.evaluations == outcome.evaluations
        total = (summary.passed + summary.failed_quality
                 + summary.compile_errors + summary.runtime_errors)
        assert total == summary.evaluations
        assert summary.compile_errors > 0
        assert 0.0 < summary.wasted_fraction <= 1.0
        assert "compile errors" in str(summary)


class TestComparison:
    def test_compare_same_problem(self):
        dd = run("DD")
        cb = run("CB")
        delta = compare_outcomes(dd, cb)
        assert delta.strategy_a == "delta-debugging"
        assert delta.strategy_b == "combinational"
        assert delta.evaluations_delta == cb.evaluations - dd.evaluations
        assert delta.same_configuration  # both find the same optimum
        assert "combinational vs delta-debugging" in str(delta)

    def test_compare_rejects_different_problems(self):
        a = run("DD", ToyProgram(n_clusters=2))
        b = run("DD", ToyProgram(n_clusters=2, threshold=1e-3))
        with pytest.raises(ValueError, match="different problems"):
            compare_outcomes(a, b)

    def test_nan_delta_when_one_fails(self):
        good = run("DD")
        bad = run("DD", ToyProgram(n_clusters=4, toxic=(0, 1, 2, 3)))
        # same program name/threshold, so comparable
        delta = compare_outcomes(good, bad)
        assert math.isnan(delta.speedup_delta)
        assert not delta.same_configuration

    def test_rank_puts_solutions_first(self):
        solved = run("DD")
        unsolved = run("DD", ToyProgram(n_clusters=4, toxic=(0, 1, 2, 3)))
        ranked = rank_outcomes([unsolved, solved])
        assert ranked[0] is solved
        assert ranked[-1] is unsolved

    def test_rank_breaks_speedup_ties_by_anytime_performance(self):
        cb = run("CB")      # finds the optimum early in its sweep
        dd = run("DD")      # same optimum, but first trials fail
        ranked = rank_outcomes([cb, dd])
        # both reach the same speedup; CB banked it earlier (higher
        # area under the convergence curve), so it ranks first
        assert area_under_curve(cb) > area_under_curve(dd)
        assert ranked[0] is cb

    def test_summarize_many_lines(self):
        lines = summarize_many([run("DD"), run("GA")])
        assert len(lines) == 2
        assert any("delta-debugging" in line for line in lines)
        assert all("SU=" in line for line in lines)


class TestExport:
    def test_trials_to_csv(self, tmp_path):
        outcome = run("CB")
        path = trials_to_csv(outcome, tmp_path / "trials.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "index"
        assert len(rows) == outcome.evaluations + 1

    def test_outcomes_to_csv(self, tmp_path):
        outcomes = [run("DD"), run("GA")]
        path = outcomes_to_csv(outcomes, tmp_path / "outcomes.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 3
        assert rows[1][1] == "delta-debugging"

    def test_load_outcomes_roundtrip(self, tmp_path):
        first, second = run("DD"), run("CB")
        first.save(tmp_path / "a.json")
        second.save(tmp_path / "b.json")
        loaded = load_outcomes(tmp_path)
        assert len(loaded) == 2
        strategies = {o.strategy for o in loaded}
        assert strategies == {"delta-debugging", "combinational"}


class TestReportCli:
    def test_report_single(self, tmp_path, capsys):
        run("DD").save(tmp_path / "dd.json")
        from repro.harness.cli import main
        assert main(["report", str(tmp_path / "dd.json")]) == 0
        out = capsys.readouterr().out
        assert "evaluations" in out
        assert "simulated hours" in out

    def test_report_ranked_group(self, tmp_path, capsys):
        run("DD").save(tmp_path / "dd.json")
        run("GA").save(tmp_path / "ga.json")
        from repro.harness.cli import main
        assert main([
            "report", str(tmp_path / "dd.json"), str(tmp_path / "ga.json"),
        ]) == 0
        out = capsys.readouterr().out
        assert "ranked best-first" in out

    def test_report_convergence_flag(self, tmp_path, capsys):
        run("CB").save(tmp_path / "cb.json")
        from repro.harness.cli import main
        assert main([
            "report", str(tmp_path / "cb.json"), "--convergence",
        ]) == 0
        out = capsys.readouterr().out
        assert "convergence of" in out
