"""Run journals: durability, torn tails, resume, and grid collection.

The checkpoint layer (repro.core.checkpoint) must never lose a
completed trial, never replay a half-written one, and never resume
against the wrong grid; run_grid must restore finished jobs without
re-running them and must survive a worker exception without dropping
the rest of the grid.
"""

import copy
import json

import pytest

from repro.core.checkpoint import (
    JOURNAL_VERSION, JournalError, JournalTrialStore, RunJournal,
    grid_fingerprint, job_key, load_run_state,
)
from repro.harness import scheduler
from repro.harness.scheduler import JobResult, SearchJob, run_grid


def _jobs():
    return [
        SearchJob("tridiag", "DD", 1e-6, max_evaluations=4),
        SearchJob("tridiag", "GA", 1e-6, max_evaluations=4),
    ]


def _payloads(results):
    """JSON payloads with the telemetry block (which legitimately
    differs between a fresh and a replayed run) stripped."""
    payloads = []
    for result in results:
        payload = copy.deepcopy(result.to_json_dict())
        if payload["outcome"]:
            payload["outcome"]["metadata"].pop("eval_stats", None)
        payloads.append(payload)
    return payloads


class TestJournalBasics:
    def test_header_trials_and_job_done_round_trip(self, tmp_path):
        jobs = _jobs()
        with RunJournal(tmp_path, "r1", jobs) as journal:
            journal.append_trial("0000:a", "ctx", "d1", {"index": 1})
            journal.append_trial("0000:a", "ctx", "d2", {"index": 2})
            journal.append_trial("0001:b", "ctx", "d1", {"index": 1})
            journal.append_job_done("0000:a", {"outcome": None, "error": "x"})
        state = load_run_state(tmp_path / "r1" / "journal.jsonl")
        assert state.run_id == "r1"
        assert state.grid == grid_fingerprint(jobs)
        assert not state.torn_tail
        # job_done consumes the job's trial table; in-flight jobs keep theirs
        assert state.finished == {"0000:a": {"outcome": None, "error": "x"}}
        assert state.job_trials("0000:a") == {}
        assert state.job_trials("0001:b") == {
            "d1": {"context": "ctx", "record": {"index": 1}},
        }

    def test_missing_journal_loads_empty(self, tmp_path):
        state = load_run_state(tmp_path / "nope.jsonl")
        assert state.finished == {} and state.trials == {}
        assert not state.torn_tail

    def test_unknown_record_kinds_are_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(
            json.dumps({"kind": "run", "run_id": "r"}) + "\n"
            + json.dumps({"kind": "future-extension", "data": 1}) + "\n"
            + json.dumps({"kind": "job_done", "job": "k", "result": {}}) + "\n"
        )
        state = load_run_state(path)
        assert state.finished == {"k": {}}
        assert not state.torn_tail

    def test_job_key_survives_unknown_algorithm(self):
        key = job_key(3, SearchJob("tridiag", "ZZ", 1e-6))
        assert key == "0003:tridiag/ZZ@1e-06"

    @pytest.mark.parametrize("run_id", ["", "a/b", "a\\b"])
    def test_invalid_run_id_rejected(self, tmp_path, run_id):
        with pytest.raises(JournalError):
            RunJournal(tmp_path, run_id, [])


class TestTornTail:
    def test_torn_tail_detected_and_truncated_on_resume(self, tmp_path):
        with RunJournal(tmp_path, "r", []) as journal:
            journal.append_trial("k", "ctx", "d", {"index": 1})
        path = tmp_path / "r" / "journal.jsonl"
        intact = path.read_bytes()
        path.write_bytes(intact + b'{"kind": "trial", "job": "k"')

        state = load_run_state(path)
        assert state.torn_tail
        assert state.valid_bytes == len(intact)
        assert state.job_trials("k")["d"]["record"] == {"index": 1}

        RunJournal(tmp_path, "r", [], resume=True).close()
        assert path.read_bytes() == intact

    def test_mid_record_garbage_fences_everything_after(self, tmp_path):
        good = json.dumps({"kind": "run", "run_id": "r"}) + "\n"
        path = tmp_path / "journal.jsonl"
        after = json.dumps({"kind": "job_done", "job": "k", "result": {}})
        path.write_text(good + "not json\n" + after + "\n")
        state = load_run_state(path)
        assert state.torn_tail
        assert state.valid_bytes == len(good.encode())
        assert state.finished == {}  # the record *after* the tear is ignored

    def test_record_without_kind_is_a_tear(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(json.dumps({"job": "k"}) + "\n")
        state = load_run_state(path)
        assert state.torn_tail
        assert state.valid_bytes == 0


class TestJournalGuards:
    def test_fresh_open_refuses_existing_journal(self, tmp_path):
        RunJournal(tmp_path, "r", []).close()
        with pytest.raises(JournalError, match="already has a journal"):
            RunJournal(tmp_path, "r", [])

    def test_resume_requires_a_journal(self, tmp_path):
        with pytest.raises(JournalError, match="no journal"):
            RunJournal(tmp_path, "r", [], resume=True)

    def test_resume_refuses_a_different_grid(self, tmp_path):
        RunJournal(tmp_path, "r", _jobs()).close()
        other = [SearchJob("tridiag", "DD", 1e-8)]
        with pytest.raises(JournalError, match="different job grid"):
            RunJournal(tmp_path, "r", other, resume=True)

    def test_resume_refuses_a_different_version(self, tmp_path):
        RunJournal(tmp_path, "r", []).close()
        path = tmp_path / "r" / "journal.jsonl"
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["version"] = JOURNAL_VERSION + 1
        lines[0] = json.dumps(header)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="version"):
            RunJournal(tmp_path, "r", [], resume=True)

    def test_resume_requires_a_header(self, tmp_path):
        (tmp_path / "r").mkdir()
        (tmp_path / "r" / "journal.jsonl").write_text(
            json.dumps({"kind": "trial", "job": "k", "config": "d"}) + "\n"
        )
        with pytest.raises(JournalError, match="no run header"):
            RunJournal(tmp_path, "r", [], resume=True)


class _RecordingCache:
    """Minimal EvaluationCache double that remembers every put."""

    def __init__(self):
        self.data = {}
        self.puts = []

    def get(self, program, context, digest):
        return self.data.get((program, context, digest))

    def put(self, program, context, digest, record):
        self.puts.append((program, context, digest))
        self.data[(program, context, digest)] = dict(record)


class TestJournalTrialStore:
    def test_put_journals_and_forwards(self, tmp_path):
        inner = _RecordingCache()
        with RunJournal(tmp_path, "r", []) as journal:
            store = JournalTrialStore(journal, "0000:a", inner=inner)
            store.put("tridiag", "ctx", "d1", {"index": 1})
        state = load_run_state(tmp_path / "r" / "journal.jsonl")
        assert state.job_trials("0000:a")["d1"]["record"] == {"index": 1}
        assert inner.puts == [("tridiag", "ctx", "d1")]

    def test_get_replays_on_context_match_only(self, tmp_path):
        inner = _RecordingCache()
        inner.data[("tridiag", "other", "d1")] = {"index": 9}
        with RunJournal(tmp_path, "r", []) as journal:
            replay = {"d1": {"context": "ctx", "record": {"index": 1}}}
            store = JournalTrialStore(journal, "0000:a", replay, inner=inner)
            assert store.get("tridiag", "ctx", "d1") == {"index": 1}
            # stale context (changed threshold/metric/...) must not replay
            assert store.get("tridiag", "other", "d1") == {"index": 9}
            assert store.get("tridiag", "ctx", "d2") is None

    def test_get_without_inner_or_replay_is_none(self, tmp_path):
        with RunJournal(tmp_path, "r", []) as journal:
            store = JournalTrialStore(journal, "0000:a")
            assert store.get("tridiag", "ctx", "d1") is None


class TestRunGridJournaling:
    def test_resume_restores_finished_jobs_without_rerunning(
        self, data_env, tmp_path, monkeypatch
    ):
        jobs = _jobs()
        runs = tmp_path / "runs"
        first = run_grid(jobs, run_id="r1", runs_dir=runs)
        assert all(result.ok for result in first)
        assert not any(result.resumed for result in first)

        def boom(*args, **kwargs):
            raise AssertionError("a finished job was re-run on resume")

        monkeypatch.setattr(scheduler, "run_shard", boom)
        second = run_grid(jobs, resume="r1", runs_dir=runs)
        assert all(result.resumed for result in second)
        assert _payloads(second) == _payloads(first)

    def test_resume_continues_from_a_mid_job_cut(self, data_env, tmp_path):
        jobs = _jobs()
        runs = tmp_path / "runs"
        reference = run_grid(jobs, run_id="ref", runs_dir=runs)

        # crash simulation: keep the header, the first job's completion
        # and two trials of the second job, then tear the next record
        lines = (runs / "ref" / "journal.jsonl").read_bytes().splitlines(keepends=True)
        kept = [lines[0]]
        done = [line for line in lines if b'"kind": "job_done"' in line][:1]
        second_trials = [
            line for line in lines
            if b'"kind": "trial"' in line and b"0001:" in line
        ][:2]
        kept.extend(done)
        kept.extend(second_trials)
        cut_dir = runs / "cut"
        cut_dir.mkdir(parents=True)
        (cut_dir / "journal.jsonl").write_bytes(
            b"".join(kept) + lines[-1][: len(lines[-1]) // 2]
        )

        resumed = run_grid(jobs, resume="cut", runs_dir=runs)
        assert resumed[0].resumed and not resumed[1].resumed
        assert _payloads(resumed) == _payloads(reference)
        stats = resumed[1].outcome.metadata["eval_stats"]
        assert stats["persistent_hits"] >= 1  # the journaled trials replayed

    def test_run_id_resume_mismatch_raises(self, tmp_path):
        with pytest.raises(ValueError, match="different runs"):
            run_grid([], run_id="a", resume="b", runs_dir=tmp_path)

    def test_failed_job_is_journaled_and_restored(self, data_env, tmp_path):
        jobs = [SearchJob("tridiag", "ZZ", 1e-6)]
        runs = tmp_path / "runs"
        first = run_grid(jobs, run_id="r", runs_dir=runs)
        assert not first[0].ok
        assert first[0].error_kind == "MixPBenchError"
        second = run_grid(jobs, resume="r", runs_dir=runs)
        assert second[0].resumed
        assert second[0].error_kind == "MixPBenchError"
        assert "unknown search strategy" in second[0].error


class TestGridCollection:
    """A worker exception inside the pool must cost one job, not the grid."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_escaped_exception_maps_to_its_job_only(
        self, data_env, monkeypatch, workers
    ):
        jobs = [
            SearchJob("tridiag", "DD", 1e-6, max_evaluations=2),
            SearchJob("tridiag", "GA", 1e-6, max_evaluations=2),
            SearchJob("tridiag", "CB", 1e-6, max_evaluations=2),
        ]
        real = scheduler.run_shard

        def flaky(job, **kwargs):
            if job.algorithm == "GA":
                raise RuntimeError("worker exploded outside run_shard's guard")
            return real(job, **kwargs)

        monkeypatch.setattr(scheduler, "run_shard", flaky)
        results = run_grid(jobs, workers=workers)
        assert [result.job for result in results] == jobs  # submission order
        assert results[0].ok and results[2].ok
        assert not results[1].ok
        assert results[1].error_kind == "RuntimeError"
        assert "worker exploded" in results[1].error

    def test_error_results_serialize(self, data_env, monkeypatch):
        monkeypatch.setattr(
            scheduler, "run_shard",
            lambda job, **kwargs: (_ for _ in ()).throw(OSError("disk gone")),
        )
        job = SearchJob("tridiag", "DD", 1e-6)
        result = run_grid([job], workers=2)[0]
        payload = result.to_json_dict()
        assert payload["error_kind"] == "OSError"
        restored = JobResult.from_json_dict(payload, job)
        assert restored.error_kind == "OSError"
        assert not restored.ok
