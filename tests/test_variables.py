"""Unit tests for repro.core.variables (Variable, Cluster, SearchSpace)."""

import pytest

from repro.core.types import Precision, PrecisionConfig
from repro.core.variables import (
    Cluster, Granularity, SearchSpace, Variable, VariableKind,
)


def _two_cluster_space():
    variables = [
        Variable("a", VariableKind.ARRAY, "f"),
        Variable("b", VariableKind.PARAM, "g", pointer=True),
        Variable("s", VariableKind.SCALAR, "f"),
    ]
    clusters = [
        Cluster("f.a", frozenset({"f.a", "g.b"})),
        Cluster("f.s", frozenset({"f.s"})),
    ]
    return SearchSpace(variables, clusters)


class TestVariable:
    def test_uid_is_function_qualified(self):
        var = Variable("x", VariableKind.ARRAY, "kernel")
        assert var.uid == "kernel.x"
        assert str(var) == "kernel.x"

    def test_arrays_are_always_pointers(self):
        var = Variable("x", VariableKind.ARRAY, "kernel", pointer=False)
        assert var.is_pointer

    def test_scalar_is_not_pointer(self):
        assert not Variable("s", VariableKind.SCALAR, "kernel").is_pointer

    def test_param_pointer_flag(self):
        assert Variable("p", VariableKind.PARAM, "f", pointer=True).is_pointer
        assert not Variable("p", VariableKind.PARAM, "f").is_pointer


class TestCluster:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Cluster("c", frozenset())

    def test_iteration_is_sorted(self):
        cluster = Cluster("c", frozenset({"b.y", "a.x"}))
        assert list(cluster) == ["a.x", "b.y"]
        assert len(cluster) == 2
        assert "a.x" in cluster

    def test_singleton(self):
        assert Cluster("c", frozenset({"a.x"})).is_singleton


class TestSearchSpaceConstruction:
    def test_rejects_overlapping_clusters(self):
        variables = [Variable("a", VariableKind.ARRAY, "f")]
        clusters = [
            Cluster("c1", frozenset({"f.a"})),
            Cluster("c2", frozenset({"f.a"})),
        ]
        with pytest.raises(ValueError, match="overlap"):
            SearchSpace(variables, clusters)

    def test_rejects_uncovered_variables(self):
        variables = [
            Variable("a", VariableKind.ARRAY, "f"),
            Variable("b", VariableKind.ARRAY, "f"),
        ]
        clusters = [Cluster("c1", frozenset({"f.a"}))]
        with pytest.raises(ValueError, match="not covered"):
            SearchSpace(variables, clusters)

    def test_rejects_unknown_cluster_members(self):
        variables = [Variable("a", VariableKind.ARRAY, "f")]
        clusters = [Cluster("c1", frozenset({"f.a", "f.ghost"}))]
        with pytest.raises(ValueError, match="unknown variables"):
            SearchSpace(variables, clusters)

    def test_rejects_duplicate_uids(self):
        variables = [
            Variable("a", VariableKind.ARRAY, "f"),
            Variable("a", VariableKind.ARRAY, "f"),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            SearchSpace(variables, [Cluster("c", frozenset({"f.a"}))])

    def test_requires_double_level(self):
        variables = [Variable("a", VariableKind.ARRAY, "f")]
        clusters = [Cluster("c", frozenset({"f.a"}))]
        with pytest.raises(ValueError, match="double"):
            SearchSpace(variables, clusters, levels=(Precision.SINGLE,))


class TestSearchSpace:
    def test_tv_tc(self):
        space = _two_cluster_space()
        assert space.total_variables == 3
        assert space.total_clusters == 2

    def test_locations_by_granularity(self):
        space = _two_cluster_space()
        assert space.locations() == ("f.a", "f.s")
        variable_view = space.at(Granularity.VARIABLE)
        assert variable_view.locations() == ("f.a", "f.s", "g.b")

    def test_at_same_granularity_is_identity(self):
        space = _two_cluster_space()
        assert space.at(Granularity.CLUSTER) is space

    def test_size_is_p_to_the_loc(self):
        space = _two_cluster_space()
        assert space.size() == 2 ** 2
        assert space.at(Granularity.VARIABLE).size() == 2 ** 3

    def test_cluster_of(self):
        space = _two_cluster_space()
        assert space.cluster_of("g.b").cid == "f.a"

    def test_cluster_choice_fans_out(self):
        space = _two_cluster_space()
        config = space.lower("f.a")
        assert config.precision_of("f.a") is Precision.SINGLE
        assert config.precision_of("g.b") is Precision.SINGLE
        assert config.precision_of("f.s") is Precision.DOUBLE

    def test_variable_choice_does_not_fan_out(self):
        space = _two_cluster_space().at(Granularity.VARIABLE)
        config = space.lower("f.a")
        assert config.precision_of("f.a") is Precision.SINGLE
        assert config.precision_of("g.b") is Precision.DOUBLE

    def test_unknown_location_raises(self):
        space = _two_cluster_space()
        with pytest.raises(KeyError, match="unknown cluster"):
            space.lower("nope")
        with pytest.raises(KeyError, match="unknown variable"):
            space.at(Granularity.VARIABLE).lower("nope")

    def test_uniform_config(self):
        space = _two_cluster_space()
        config = space.uniform_config(Precision.SINGLE)
        assert config.lowered_locations() == {"f.a", "g.b", "f.s"}

    def test_uniform_config_accepts_string_names(self):
        space = _two_cluster_space()
        assert space.uniform_config("fp32") == space.uniform_config(Precision.SINGLE)
        assert space.uniform_config("half") == space.uniform_config(Precision.HALF)
        with pytest.raises(ValueError, match="unknown precision"):
            space.uniform_config("quad")

    def test_compilability(self):
        space = _two_cluster_space()
        split = PrecisionConfig({"f.a": Precision.SINGLE})  # g.b stays double
        assert not space.is_compilable(split)
        assert space.violated_clusters(split) == ("f.a",)
        whole = space.lower("f.a")
        assert space.is_compilable(whole)
        assert space.violated_clusters(whole) == ()

    def test_baseline_is_compilable(self):
        assert _two_cluster_space().is_compilable(PrecisionConfig())

    def test_lowered_location_set_cluster_granularity(self):
        space = _two_cluster_space()
        config = space.lower(["f.a", "f.s"])
        assert space.lowered_location_set(config) == frozenset({"f.a", "f.s"})
        partial = PrecisionConfig({"f.a": Precision.SINGLE})
        assert space.lowered_location_set(partial) == frozenset()

    def test_levels_sorted_and_deduped(self):
        variables = [Variable("a", VariableKind.ARRAY, "f")]
        clusters = [Cluster("c", frozenset({"f.a"}))]
        space = SearchSpace(
            variables, clusters,
            levels=(Precision.DOUBLE, Precision.HALF, Precision.DOUBLE),
        )
        assert space.levels == (Precision.HALF, Precision.DOUBLE)
