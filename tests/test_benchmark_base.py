"""Tests for the benchmark framework itself (registry, base class)."""

import numpy as np
import pytest

from repro.benchmarks.base import (
    Benchmark,
    application_benchmarks,
    available_benchmarks,
    collect_output,
    get_benchmark,
    kernel_benchmarks,
    register_benchmark,
)
from repro.errors import BenchmarkNotFound
from repro.runtime.mparray import MPArray
from repro.runtime.profiler import Profile


class TestRegistry:
    def test_seventeen_programs(self):
        assert len(available_benchmarks()) == 17
        assert len(kernel_benchmarks()) == 10
        assert len(application_benchmarks()) == 7

    def test_get_unknown_raises(self):
        with pytest.raises(BenchmarkNotFound, match="available"):
            get_benchmark("fluidanimate")

    def test_register_requires_name(self):
        class Nameless(Benchmark):
            module_name = "m"

            def setup(self):
                return {}

        with pytest.raises(TypeError, match="no name"):
            register_benchmark(Nameless)

    def test_register_rejects_duplicates(self):
        class Duplicate(Benchmark):
            name = "hydro-1d"
            module_name = "m"

            def setup(self):
                return {}

        with pytest.raises(ValueError, match="registered twice"):
            register_benchmark(Duplicate)

    def test_instantiation_requires_module(self):
        class NoModule(Benchmark):
            name = "x"

            def setup(self):
                return {}

        with pytest.raises(TypeError, match="module_name"):
            NoModule()


class TestCollectOutput:
    def test_single_array(self):
        out = collect_output(np.arange(3, dtype=np.float32))
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, [0, 1, 2])

    def test_tuple_concatenates(self):
        out = collect_output((np.ones(2), np.zeros((2, 2))))
        assert out.shape == (6,)

    def test_mparray_unwrapped(self):
        arr = MPArray(np.ones(4), Profile())
        np.testing.assert_array_equal(collect_output(arr), np.ones(4))


class TestBenchmarkMechanics:
    def test_inputs_cached(self):
        bench = get_benchmark("hydro-1d")
        assert bench.inputs() is bench.inputs()

    def test_report_cached(self):
        bench = get_benchmark("hydro-1d")
        assert bench.report() is bench.report()

    def test_data_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("MIXPBENCH_DATA", str(tmp_path))
        bench = get_benchmark("kmeans")
        assert str(bench.data_dir()).startswith(str(tmp_path))
        assert bench.data_dir().is_dir()

    def test_quality_spec_from_class_attributes(self):
        bench = get_benchmark("kmeans")
        assert bench.quality.metric == "MCR"
        bench2 = get_benchmark("hydro-1d")
        assert bench2.quality.metric == "MAE"
        assert bench2.quality.threshold == 1e-8

    def test_paper_timing_attributes(self):
        bench = get_benchmark("lavamd")
        assert bench.runs_per_config == 10  # paper methodology
        assert bench.nominal_seconds > 0
        assert bench.compile_seconds > 0

    def test_repr(self):
        assert "hydro-1d" in repr(get_benchmark("hydro-1d"))

    def test_execute_with_custom_inputs(self):
        from repro.core.types import PrecisionConfig
        bench = get_benchmark("hydro-1d")
        small = bench.execute(PrecisionConfig(), inputs={"n": 1_000, "steps": 1})
        assert small.output.shape[0] == 1_002
