"""Property-based tests on core structures: union-find, search spaces,
delta debugging, and the MPArray/NumPy equivalence."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings
from hypothesis.extra.numpy import arrays

from helpers import ToyProgram

from repro.core.evaluator import ConfigurationEvaluator
from repro.core.types import Precision
from repro.runtime.mparray import MPArray
from repro.runtime.profiler import Profile
from repro.search.delta_debug import DeltaDebugSearch
from repro.typeforge.dependence import UnionFind

# ---------------------------------------------------------------------------
# Union-find


@given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=40))
def test_unionfind_groups_partition(pairs):
    uf = UnionFind()
    for a, b in pairs:
        uf.union(a, b)
    groups = uf.groups()
    seen = [item for members in groups.values() for item in members]
    assert len(seen) == len(set(seen))  # disjoint
    for rep, members in groups.items():
        assert rep in members
        for item in members:
            assert uf.find(item) == rep


@given(st.lists(st.tuples(st.integers(0, 12), st.integers(0, 12)), max_size=30))
def test_unionfind_transitivity(pairs):
    uf = UnionFind()
    for a, b in pairs:
        uf.union(a, b)
    for a, b in pairs:
        assert uf.find(a) == uf.find(b)


# ---------------------------------------------------------------------------
# Search spaces


@given(
    n_clusters=st.integers(1, 8),
    members=st.integers(1, 3),
    subset_seed=st.integers(0, 2**16),
)
def test_cluster_configs_always_compile(n_clusters, members, subset_seed):
    program = ToyProgram(n_clusters=n_clusters, members_per_cluster=members)
    space = program.search_space()
    rng = np.random.default_rng(subset_seed)
    chosen = [loc for loc in space.locations() if rng.random() < 0.5]
    if not chosen:
        return
    config = space.lower(chosen)
    assert space.is_compilable(config)
    assert space.lowered_location_set(config) == frozenset(chosen)


@given(n_clusters=st.integers(1, 6), members=st.integers(2, 3))
def test_partial_cluster_configs_never_compile(n_clusters, members):
    program = ToyProgram(n_clusters=n_clusters, members_per_cluster=members)
    space = program.search_space()
    cluster = space.clusters[0]
    first_member = sorted(cluster.members)[0]
    from repro.core.types import PrecisionConfig
    config = PrecisionConfig({first_member: Precision.SINGLE})
    assert not space.is_compilable(config)
    assert cluster.cid in space.violated_clusters(config)


# ---------------------------------------------------------------------------
# Delta debugging invariants


@given(
    n_clusters=st.integers(1, 10),
    toxic_mask=st.integers(0, 2**10 - 1),
)
@settings(max_examples=40, deadline=None)
def test_delta_debugging_finds_exact_complement(n_clusters, toxic_mask):
    """On a monotone failure model DD must lower exactly the non-toxic
    clusters: the result passes and is maximal."""
    toxic = tuple(i for i in range(n_clusters) if toxic_mask & (1 << i))
    program = ToyProgram(n_clusters=n_clusters, toxic=toxic)
    evaluator = ConfigurationEvaluator(program, measurement_noise=0.0)
    outcome = DeltaDebugSearch().run(evaluator)
    space = program.search_space()
    expected = frozenset(
        space.clusters[i].cid for i in range(n_clusters) if i not in toxic
    )
    if not expected:
        assert not outcome.found_solution
        return
    assert outcome.found_solution
    assert space.lowered_location_set(outcome.final.config) == expected


# ---------------------------------------------------------------------------
# MPArray equivalence with plain NumPy

finite = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)
small_arrays = arrays(np.float64, st.integers(1, 32), elements=finite)


@given(small_arrays, small_arrays)
@settings(max_examples=60)
def test_mparray_arithmetic_matches_numpy(a, b):
    n = min(a.size, b.size)
    a, b = a[:n], b[:n]
    profile = Profile()
    wa, wb = MPArray(a.copy(), profile), MPArray(b.copy(), profile)
    np.testing.assert_array_equal((wa + wb).data, a + b)
    np.testing.assert_array_equal((wa * wb).data, a * b)
    np.testing.assert_array_equal((wa - wb).data, a - b)
    np.testing.assert_array_equal(np.maximum(wa, wb).data, np.maximum(a, b))


@given(small_arrays)
@settings(max_examples=60)
def test_mparray_reductions_match_numpy(a):
    profile = Profile()
    wrapped = MPArray(a.copy(), profile)
    assert float(wrapped.sum()) == float(a.sum())
    assert float(np.min(wrapped)) == float(a.min())
    assert int(np.argmax(wrapped)) == int(a.argmax())


@given(small_arrays, st.integers(0, 31))
@settings(max_examples=60)
def test_mparray_indexing_matches_numpy(a, index):
    index = index % a.size
    profile = Profile()
    wrapped = MPArray(a.copy(), profile)
    assert wrapped[index] == a[index]
    np.testing.assert_array_equal(wrapped[: index + 1].data, a[: index + 1])


@given(small_arrays)
@settings(max_examples=40)
def test_mparray_profile_only_grows(a):
    profile = Profile()
    wrapped = MPArray(a.copy(), profile)
    checkpoints = []
    wrapped = wrapped + 1.0
    checkpoints.append(sum(profile.ops.values()))
    wrapped = wrapped * 2.0
    checkpoints.append(sum(profile.ops.values()))
    _ = wrapped.sum()
    checkpoints.append(sum(profile.ops.values()))
    assert checkpoints == sorted(checkpoints)
    assert checkpoints[0] > 0
