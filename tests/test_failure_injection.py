"""Failure injection: every strategy must survive a misbehaving program.

A program that crashes on some configurations (the evaluator reports
``RUNTIME_ERROR``), returns NaN outputs, or blows the budget must
never take a search down with an unhandled exception — the harness has
to keep scheduling the rest of the grid.

The executor-level section injects faults one layer lower: benchmarks
that hang past the trial timeout, kill their worker process outright
(``os._exit``, the segfault stand-in), or fail transiently N times
before succeeding.  Every backend must finish the search with correct
timeout/retry accounting, and retried transients must leave the trial
log bit-identical to a fault-free run.
"""

import copy
import math
import os
import time

import pytest

from helpers import ToyProgram

from repro.benchmarks import base as bench_base
from repro.benchmarks.kernels.tridiag import Tridiag
from repro.core.batch import make_executor
from repro.core.evaluator import ConfigurationEvaluator
from repro.core.results import EvaluationStatus
from repro.core.types import Precision
from repro.search import make_strategy
from repro.search.registry import ALGORITHM_ORDER
from repro.verify.quality import QualitySpec

ALL_STRATEGIES = ALGORITHM_ORDER + ("HRC", "RS", "LD")


class CrashingProgram(ToyProgram):
    """Raises when any cluster beyond the first two is lowered."""

    def execute(self, config):
        lowered = self.lowered_clusters(config)
        fragile = {c.cid for c in self._space.clusters[2:]}
        if any(c.cid in fragile for c in lowered):
            self.executions += 1
            raise FloatingPointError("synthetic numerical crash")
        return super().execute(config)


class NanProgram(ToyProgram):
    """Outputs NaN whenever the last cluster is lowered."""

    def execute(self, config):
        result = super().execute(config)
        lowered = {c.cid for c in self.lowered_clusters(config)}
        if self._space.clusters[-1].cid in lowered:
            result.output[:] = float("nan")
        return result


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
class TestCrashingProgram:
    def test_search_survives_runtime_errors(self, strategy):
        program = CrashingProgram(n_clusters=5, functions=("f", "g"))
        evaluator = ConfigurationEvaluator(program, measurement_noise=0.0)
        outcome = make_strategy(strategy).run(evaluator)  # must not raise
        crashed = [
            t for t in outcome.trials
            if t.status is EvaluationStatus.RUNTIME_ERROR
        ]
        # the fragile region is large; every strategy touches it
        assert crashed or outcome.evaluations <= 2
        if outcome.found_solution:
            lowered = program.search_space().lowered_location_set(
                outcome.final.config,
            )
            fragile = {c.cid for c in program.search_space().clusters[2:]}
            assert not (lowered & fragile)


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
class TestNanProgram:
    def test_nan_outputs_fail_verification(self, strategy):
        program = NanProgram(n_clusters=4, functions=("f", "g"))
        evaluator = ConfigurationEvaluator(program, measurement_noise=0.0)
        outcome = make_strategy(strategy).run(evaluator)
        if outcome.found_solution:
            last = program.search_space().clusters[-1].cid
            lowered = program.search_space().lowered_location_set(
                outcome.final.config,
            )
            assert last not in lowered
        nan_trials = [
            t for t in outcome.trials
            if t.status is EvaluationStatus.FAILED_QUALITY
            and math.isnan(t.error_value)
        ]
        # NaN shows up as a quality failure, never as a crash
        for trial in nan_trials:
            assert trial.status is EvaluationStatus.FAILED_QUALITY


class TestRuntimeErrorAccounting:
    def test_runtime_error_trial_shape(self):
        program = CrashingProgram(n_clusters=5)
        evaluator = ConfigurationEvaluator(program, measurement_noise=0.0)
        space = evaluator.space()
        fragile = space.locations()[3]
        trial = evaluator.evaluate(space.lower(fragile))
        assert trial.status is EvaluationStatus.RUNTIME_ERROR
        assert math.isnan(trial.speedup)
        assert math.isnan(trial.error_value)
        assert trial.analysis_seconds > 0  # build + failed run charged

    def test_half_target_on_crashing_program(self):
        strategy = make_strategy("DD")
        strategy.target_precision = Precision.HALF
        program = CrashingProgram(n_clusters=5)
        evaluator = ConfigurationEvaluator(program, measurement_noise=0.0)
        outcome = strategy.run(evaluator)
        assert outcome.evaluations >= 1


# -- executor-level fault injection ------------------------------------------
#
# Registry benchmarks that misbehave *below* the evaluator: in the
# execution itself, possibly inside a worker process.  All faults are
# gated on the configuration actually lowering something, so the
# evaluator's all-double baseline (executed in the parent, before any
# pool exists) never faults.  Cross-process state (attempt counters,
# hang durations) travels through MIXPBENCH_FAULT_DIR marker files and
# environment variables, which forked pool workers inherit.


def _attempt(tag: str) -> int:
    """This execution's 0-based attempt number for ``tag``, counted
    atomically across processes via O_EXCL marker files."""
    root = os.environ["MIXPBENCH_FAULT_DIR"]
    number = 0
    while True:
        try:
            fd = os.open(
                os.path.join(root, f"{tag}.{number}"),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            number += 1
            continue
        os.close(fd)
        return number


class _FaultyTridiag(Tridiag):
    """Tridiag that misbehaves on lowered configurations only."""

    def execute(self, config, inputs=None):
        if config.lowered_locations():
            self._fault(config)
        return super().execute(config, inputs)

    def _fault(self, config):
        raise NotImplementedError


class HangBench(_FaultyTridiag):
    """Sleeps past the trial timeout on every lowered configuration."""

    name = "hang-bench"

    def _fault(self, config):
        time.sleep(float(os.environ["MIXPBENCH_HANG_SECONDS"]))


class DieBench(_FaultyTridiag):
    """Takes its worker process down — the segfault stand-in."""

    name = "die-bench"

    def _fault(self, config):
        os._exit(17)


class TransientBench(_FaultyTridiag):
    """Fails each lowered configuration twice, then succeeds."""

    name = "transient-bench"

    def _fault(self, config):
        if _attempt("t-" + config.digest()) < 2:
            raise OSError("synthetic transient failure")


class CrashOnceBench(_FaultyTridiag):
    """Kills its worker on each configuration's first attempt only."""

    name = "crashonce-bench"

    def _fault(self, config):
        if _attempt("c-" + config.digest()) < 1:
            os._exit(17)


_FAULT_BENCHES = (HangBench, DieBench, TransientBench, CrashOnceBench)


@pytest.fixture()
def fault_env(data_env, tmp_path, monkeypatch):
    fault_dir = tmp_path / "faults"
    fault_dir.mkdir(exist_ok=True)
    monkeypatch.setenv("MIXPBENCH_FAULT_DIR", str(fault_dir))
    monkeypatch.setenv("MIXPBENCH_HANG_SECONDS", "0.25")
    # register_benchmark refuses duplicates; these entries are
    # test-local, so poke the registry directly and clean up after
    for cls in _FAULT_BENCHES:
        bench_base._REGISTRY[cls.name] = cls
    yield tmp_path
    for cls in _FAULT_BENCHES:
        bench_base._REGISTRY.pop(cls.name, None)


def _search(
    bench_name,
    algorithm="DD",
    executor_name=None,
    max_evaluations=6,
    **fault_kw,
):
    bench = bench_base.get_benchmark(bench_name)
    executor = (
        make_executor(executor_name, 2, **fault_kw)
        if executor_name is not None else None
    )
    try:
        evaluator = ConfigurationEvaluator(
            bench,
            quality=QualitySpec(bench.metric, bench.default_threshold),
            max_evaluations=max_evaluations,
            executor=executor,
        )
        outcome = make_strategy(algorithm).run(evaluator)
    finally:
        if executor is not None:
            executor.close()
    return outcome, evaluator, executor


def _comparable(outcome):
    """Outcome payload minus what legitimately differs between a
    fault-free tridiag run and a retried fault-bench run: the program
    name and the telemetry block."""
    payload = copy.deepcopy(outcome.to_json_dict())
    payload.pop("program")
    payload["metadata"].pop("eval_stats", None)
    return payload


def _runtime_errors(outcome):
    return [
        t for t in outcome.trials if t.status is EvaluationStatus.RUNTIME_ERROR
    ]


class TestHangTimeouts:
    """A trial that outlives its wall-clock budget becomes a
    RUNTIME_ERROR trial; the search finishes; every timeout is counted."""

    def test_serial_posthoc_timeout(self, fault_env, monkeypatch):
        monkeypatch.setenv("MIXPBENCH_HANG_SECONDS", "0.2")
        outcome, evaluator, executor = _search(
            "hang-bench", "DD", "serial", trial_timeout=0.05,
        )
        errors = _runtime_errors(outcome)
        assert errors, "no hung trial was charged as a timeout"
        assert evaluator.stats.timeouts == len(errors)
        assert executor.worker_restarts == 0  # nothing to kill in-line

    def test_thread_abandons_hung_worker(self, fault_env, monkeypatch):
        monkeypatch.setenv("MIXPBENCH_HANG_SECONDS", "1.5")
        outcome, evaluator, executor = _search(
            "hang-bench", "DD", "thread",
            trial_timeout=0.3, max_evaluations=3,
        )
        errors = _runtime_errors(outcome)
        assert errors
        assert evaluator.stats.timeouts == len(errors)
        # the pool was respawned so hung threads do not eat capacity
        assert executor.worker_restarts >= 1
        assert evaluator.stats.worker_restarts == executor.worker_restarts

    def test_process_kills_hung_worker(self, fault_env, monkeypatch):
        monkeypatch.setenv("MIXPBENCH_HANG_SECONDS", "30")
        started = time.monotonic()
        outcome, evaluator, executor = _search(
            "hang-bench", "DD", "process",
            trial_timeout=1.0, max_evaluations=2,
        )
        elapsed = time.monotonic() - started
        errors = _runtime_errors(outcome)
        assert errors
        assert evaluator.stats.timeouts == len(errors)
        assert executor.worker_restarts >= 1
        # the 30s sleep must have been preempted, not waited out
        assert elapsed < 20


class TestWorkerCrash:
    """os._exit in a worker — only the process backend can recover."""

    def test_deterministic_crash_becomes_runtime_error(self, fault_env):
        outcome, evaluator, executor = _search(
            "die-bench", "DD", "process",
            max_retries=1, backoff_base=0.001, max_evaluations=3,
        )
        errors = _runtime_errors(outcome)
        assert errors, "worker crashes must surface as RUNTIME_ERROR trials"
        assert executor.worker_restarts >= 1
        assert executor.retries >= 1  # the isolated retry was charged
        assert evaluator.stats.worker_restarts == executor.worker_restarts

    def test_crash_once_then_succeed_is_invisible(self, fault_env):
        reference, _, _ = _search("tridiag", "DD")
        outcome, evaluator, executor = _search(
            "crashonce-bench", "DD", "process",
            max_retries=2, backoff_base=0.001,
        )
        assert _comparable(outcome) == _comparable(reference)
        assert executor.worker_restarts >= 1
        assert executor.retries >= 1
        assert not _runtime_errors(outcome)


class TestTransientRetries:
    """Fail-twice-then-succeed must be invisible given retry budget."""

    @pytest.mark.parametrize("executor_name", ["serial", "thread", "process"])
    def test_retries_reproduce_the_fault_free_run(
        self, fault_env, executor_name
    ):
        reference, _, _ = _search("tridiag", "GA", max_evaluations=8)
        outcome, evaluator, executor = _search(
            "transient-bench", "GA", executor_name,
            max_retries=3, backoff_base=0.001, max_evaluations=8,
        )
        assert _comparable(outcome) == _comparable(reference)
        assert executor.retries >= 2  # two injected failures per config
        assert evaluator.stats.retries == executor.retries

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_every_strategy_survives_transients(self, fault_env, strategy):
        reference, _, _ = _search("tridiag", strategy, max_evaluations=8)
        outcome, _, executor = _search(
            "transient-bench", strategy, "serial",
            max_retries=3, backoff_base=0.001, max_evaluations=8,
        )
        assert _comparable(outcome) == _comparable(reference)
        assert executor.retries >= 2

    def test_exhausted_retry_budget_fails_the_trial(self, fault_env):
        outcome, evaluator, _ = _search(
            "transient-bench", "DD", "serial",
            max_retries=1, backoff_base=0.001, max_evaluations=3,
        )
        # two injected failures > one retry: the trial must fail,
        # the search must still finish
        assert _runtime_errors(outcome)
