"""Failure injection: every strategy must survive a misbehaving program.

A program that crashes on some configurations (the evaluator reports
``RUNTIME_ERROR``), returns NaN outputs, or blows the budget must
never take a search down with an unhandled exception — the harness has
to keep scheduling the rest of the grid.
"""

import math

import pytest

from helpers import ToyProgram

from repro.core.evaluator import ConfigurationEvaluator
from repro.core.results import EvaluationStatus
from repro.core.types import Precision
from repro.search import make_strategy
from repro.search.registry import ALGORITHM_ORDER

ALL_STRATEGIES = ALGORITHM_ORDER + ("HRC", "RS", "LD")


class CrashingProgram(ToyProgram):
    """Raises when any cluster beyond the first two is lowered."""

    def execute(self, config):
        lowered = self.lowered_clusters(config)
        fragile = {c.cid for c in self._space.clusters[2:]}
        if any(c.cid in fragile for c in lowered):
            self.executions += 1
            raise FloatingPointError("synthetic numerical crash")
        return super().execute(config)


class NanProgram(ToyProgram):
    """Outputs NaN whenever the last cluster is lowered."""

    def execute(self, config):
        result = super().execute(config)
        lowered = {c.cid for c in self.lowered_clusters(config)}
        if self._space.clusters[-1].cid in lowered:
            result.output[:] = float("nan")
        return result


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
class TestCrashingProgram:
    def test_search_survives_runtime_errors(self, strategy):
        program = CrashingProgram(n_clusters=5, functions=("f", "g"))
        evaluator = ConfigurationEvaluator(program, measurement_noise=0.0)
        outcome = make_strategy(strategy).run(evaluator)  # must not raise
        crashed = [
            t for t in outcome.trials
            if t.status is EvaluationStatus.RUNTIME_ERROR
        ]
        # the fragile region is large; every strategy touches it
        assert crashed or outcome.evaluations <= 2
        if outcome.found_solution:
            lowered = program.search_space().lowered_location_set(
                outcome.final.config,
            )
            fragile = {c.cid for c in program.search_space().clusters[2:]}
            assert not (lowered & fragile)


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
class TestNanProgram:
    def test_nan_outputs_fail_verification(self, strategy):
        program = NanProgram(n_clusters=4, functions=("f", "g"))
        evaluator = ConfigurationEvaluator(program, measurement_noise=0.0)
        outcome = make_strategy(strategy).run(evaluator)
        if outcome.found_solution:
            last = program.search_space().clusters[-1].cid
            lowered = program.search_space().lowered_location_set(
                outcome.final.config,
            )
            assert last not in lowered
        nan_trials = [
            t for t in outcome.trials
            if t.status is EvaluationStatus.FAILED_QUALITY
            and math.isnan(t.error_value)
        ]
        # NaN shows up as a quality failure, never as a crash
        for trial in nan_trials:
            assert trial.status is EvaluationStatus.FAILED_QUALITY


class TestRuntimeErrorAccounting:
    def test_runtime_error_trial_shape(self):
        program = CrashingProgram(n_clusters=5)
        evaluator = ConfigurationEvaluator(program, measurement_noise=0.0)
        space = evaluator.space()
        fragile = space.locations()[3]
        trial = evaluator.evaluate(space.lower(fragile))
        assert trial.status is EvaluationStatus.RUNTIME_ERROR
        assert math.isnan(trial.speedup)
        assert math.isnan(trial.error_value)
        assert trial.analysis_seconds > 0  # build + failed run charged

    def test_half_target_on_crashing_program(self):
        strategy = make_strategy("DD")
        strategy.target_precision = Precision.HALF
        program = CrashingProgram(n_clusters=5)
        evaluator = ConfigurationEvaluator(program, measurement_noise=0.0)
        outcome = strategy.run(evaluator)
        assert outcome.evaluations >= 1
