"""Bit-exactness: the fast recorder must be invisible.

The fast-path runtime (signature-cached ufunc recording, dict-keyed
profile counters, RNG replay, input caching, init-copy elision and
dead-temporary buffer reuse) is a pure performance optimisation: every
benchmark must produce byte-identical outputs, identical profile
summaries and identical modeled times whether it runs under the
readable reference recorder or the fast path — cold *and* warm, so the
per-process caches are proven safe too.

These tests are the contract that lets `scripts/bench_runtime.py`
claim its speedup changes nothing observable.
"""

from __future__ import annotations

import sys
import warnings

import numpy as np
import pytest

from repro.benchmarks.base import (
    available_benchmarks, clear_process_caches, get_benchmark,
)
from repro.core.types import Precision, PrecisionConfig
from repro.runtime import fuse as _fuse
from repro.runtime import memory as mp_memory
from repro.runtime import mparray as _mparray
from repro.runtime.memory import Workspace
from repro.runtime.mparray import reference_recording

ALL_BENCHMARKS = available_benchmarks()

#: subset re-checked under a uniformly lowered configuration so the
#: cast-recording paths (and srad's inf/NaN flood) are covered too.
LOWERED_SUBSET = ("blackscholes", "kmeans", "srad", "tridiag")


@pytest.fixture(scope="module")
def exact_env(tmp_path_factory):
    """Module-private data dir + clean per-process caches."""
    patcher = pytest.MonkeyPatch()
    patcher.setenv("MIXPBENCH_DATA", str(tmp_path_factory.mktemp("data")))
    clear_process_caches()
    yield
    clear_process_caches()
    patcher.undo()


@pytest.fixture(scope="module")
def suite_runs(exact_env):
    """Lazily execute each (benchmark, config) once under the reference
    recorder, then twice on the fast path (cold, then warm so the RNG
    replay / input / recipe caches are all live)."""
    cache: dict = {}

    def run(name: str, config: PrecisionConfig):
        key = (name, config.digest())
        if key not in cache:
            # inf/NaN is expected behaviour for the lowered configs
            # (srad is *designed* to overflow); warnings-as-errors is
            # test_apps' job, not this suite's.
            with np.errstate(all="ignore"), warnings.catch_warnings():
                warnings.simplefilter("ignore")
                clear_process_caches()
                with reference_recording():
                    ref = get_benchmark(name).execute(config)
                clear_process_caches()
                cold = get_benchmark(name).execute(config)
                warm = get_benchmark(name).execute(config)
            cache[key] = (ref, cold, warm)
        return cache[key]

    return run


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
class TestBaselineExactness:
    """Every benchmark, all-double baseline: fast == reference."""

    def test_outputs_bit_identical(self, name, suite_runs):
        ref, cold, warm = suite_runs(name, PrecisionConfig())
        reference = np.asarray(ref.output)
        for result in (cold, warm):
            output = np.asarray(result.output)
            assert output.shape == reference.shape
            assert output.dtype == reference.dtype
            # byte equality is NaN-aware: identical bit patterns pass
            # where `==` would reject NaN == NaN.
            assert output.tobytes() == reference.tobytes()

    def test_profile_summaries_identical(self, name, suite_runs):
        ref, cold, warm = suite_runs(name, PrecisionConfig())
        assert cold.profile.summary() == ref.profile.summary()
        assert warm.profile.summary() == ref.profile.summary()

    def test_modeled_seconds_identical(self, name, suite_runs):
        ref, cold, warm = suite_runs(name, PrecisionConfig())
        assert cold.modeled_seconds == ref.modeled_seconds
        assert warm.modeled_seconds == ref.modeled_seconds


@pytest.mark.parametrize("name", LOWERED_SUBSET)
class TestLoweredExactness:
    """Uniform single precision: exercises the cast-charging paths and
    the NaN/inf-saturated srad scenario."""

    def _config(self, name):
        return get_benchmark(name).search_space().uniform_config(Precision.SINGLE)

    def test_outputs_bit_identical(self, name, suite_runs):
        ref, cold, warm = suite_runs(name, self._config(name))
        reference = np.asarray(ref.output)
        for result in (cold, warm):
            assert np.asarray(result.output).tobytes() == reference.tobytes()

    def test_profiles_and_times_identical(self, name, suite_runs):
        ref, cold, warm = suite_runs(name, self._config(name))
        for result in (cold, warm):
            assert result.profile.summary() == ref.profile.summary()
            assert result.modeled_seconds == ref.modeled_seconds


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
class TestFusionExactness:
    """Every benchmark: the trace-fusion fast path (on by default in
    ``suite_runs``'s cold and warm executions) must be byte-identical
    to the interpreted fast path with fusion forced off."""

    def test_interpreted_matches_fused(self, name, suite_runs):
        ref, cold, warm = suite_runs(name, PrecisionConfig())
        with np.errstate(all="ignore"), warnings.catch_warnings():
            warnings.simplefilter("ignore")
            prev = _fuse.set_fusion_enabled(False)
            try:
                clear_process_caches()
                interpreted = get_benchmark(name).execute(PrecisionConfig())
            finally:
                _fuse.set_fusion_enabled(prev)
        reference = np.asarray(ref.output)
        output = np.asarray(interpreted.output)
        assert output.tobytes() == reference.tobytes()
        assert interpreted.profile.summary() == ref.profile.summary()
        assert interpreted.modeled_seconds == ref.modeled_seconds


def test_suite_produces_fused_coverage(exact_env):
    """The fusion machinery is actually engaged by the suite: warm
    repetitions of fusion-friendly benchmarks compile regions and
    replay ops through them (guarding against a silent regression that
    quietly falls back to interpreted everywhere)."""
    if not _fuse.fusion_enabled():
        pytest.skip("fusion disabled via MIXPBENCH_FUSE")
    _fuse.reset_registry()
    _fuse.STATS.reset()
    with np.errstate(all="ignore"), warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for name in ("lavamd", "hotspot", "cfd"):
            clear_process_caches()
            bench = get_benchmark(name)
            bench.execute(PrecisionConfig())
            bench.execute(PrecisionConfig())
    assert _fuse.STATS.regions_compiled > 0
    assert _fuse.STATS.fused_ops > 0


class TestElisionSafety:
    """The init-copy elision may only ever steal provably-dead buffers."""

    def test_dead_temporary_is_elided(self):
        ws = Workspace()
        a = ws.array("a", shape=64, fill=1.0)
        before = mp_memory._ELISIONS
        t = ws.array("t", init=a + 1.0)
        assert mp_memory._ELISIONS == before + 1
        assert float(t[0]) == 2.0
        # the stolen buffer must not alias the bound operand
        t[:] = -5.0
        assert float(a[0]) == 1.0

    def test_bound_mparray_is_copied(self):
        ws = Workspace()
        a = ws.array("a", shape=32, fill=3.0)
        bound = a + 1.0  # a name now holds the temporary: no longer dead
        before = mp_memory._ELISIONS
        u = ws.array("u", init=bound)
        assert mp_memory._ELISIONS == before
        u[:] = 99.0
        assert float(bound[0]) == 4.0

    def test_bound_ndarray_is_copied(self):
        ws = Workspace()
        raw = np.full(16, 7.0)
        before = mp_memory._ELISIONS
        v = ws.array("v", init=raw)
        assert mp_memory._ELISIONS == before
        v[:] = 0.0
        assert raw[0] == 7.0

    def test_dtype_mismatch_is_copied(self):
        ws = Workspace(PrecisionConfig({"w": Precision.SINGLE}))
        a = ws.array("a", shape=8, fill=2.0)  # fp64
        before = mp_memory._ELISIONS
        w = ws.array("w", init=a * 2.0)  # fp64 temp into an fp32 slot
        assert mp_memory._ELISIONS == before
        assert w.dtype == np.dtype(np.float32)

    def test_reference_mode_never_elides(self):
        ws = Workspace()
        a = ws.array("a", shape=64, fill=1.0)
        before = mp_memory._ELISIONS
        with reference_recording():
            ws.array("t", init=a + 1.0)
        assert mp_memory._ELISIONS == before


class TestBufferReuseSafety:
    """Operators may reuse only dead temporaries — never bound data."""

    def test_bound_operands_survive_arithmetic(self):
        ws = Workspace()
        x = ws.array("x", shape=128, fill=2.0)
        y = ws.array("y", shape=128, fill=3.0)
        z = x + y
        assert float(z[0]) == 5.0
        assert z._data is not x._data and z._data is not y._data
        assert float(x[0]) == 2.0 and float(y[0]) == 3.0

    def test_temporary_chains_compute_correct_values(self):
        ws = Workspace()
        x = ws.array("x", shape=256, fill=1.5)
        chain = ((x + 1.0) * 2.0 - x) / 0.5  # every intermediate dies
        expected = ((1.5 + 1.0) * 2.0 - 1.5) / 0.5
        assert float(chain[0]) == expected
        assert float(x[0]) == 1.5

    def test_right_operand_temporaries(self):
        ws = Workspace()
        x = ws.array("x", shape=256, fill=4.0)
        result = x + (x * 0.25)  # b-side temporary dies
        assert float(result[0]) == 5.0
        assert float(x[0]) == 4.0
        result = 1.0 + (x - 2.0)  # reflected op with dead left... right
        assert float(result[0]) == 3.0
        assert float(x[0]) == 4.0

    def test_reuse_records_identical_profile(self):
        def kernel(ws):
            a = ws.array("a", shape=512, fill=1.25)
            b = ws.array("b", shape=512, fill=0.75)
            acc = ws.array("acc", init=(a + b) * 0.5)
            acc[:] = acc + (a - b) / 2.0
            return acc

        fast_ws = Workspace()
        fast = kernel(fast_ws)
        ref_ws = Workspace()
        with reference_recording():
            ref = kernel(ref_ws)
        assert fast._data.tobytes() == ref._data.tobytes()
        assert fast_ws.profile.summary() == ref_ws.profile.summary()


class TestReuseCalibration:
    """The refcount thresholds are measured on this interpreter at
    import; if the probe's sanity check fails they stay -9 (disabled),
    never a guess."""

    def test_thresholds_fail_closed_in_pairs(self):
        assert (_mparray._T_SELF == -9) == (_mparray._T_DATA == -9)
        assert (_mparray._T_OTHER == -9) == (_mparray._T_ODATA == -9)

    def test_enabled_thresholds_are_plausible_refcounts(self):
        for threshold in (
            _mparray._T_SELF, _mparray._T_DATA,
            _mparray._T_OTHER, _mparray._T_ODATA,
        ):
            assert threshold == -9 or 2 <= threshold <= 8

    def test_live_operand_refcounts_exceed_thresholds(self):
        """A benchmark-style bound array must never look dead."""
        ws = Workspace()
        x = ws.array("x", shape=16, fill=1.0)

        # mirror the operator frame: one extra argument binding, the
        # same vantage point the threshold was calibrated from.
        def probe(arr):
            return sys.getrefcount(arr)

        # x is held by this frame *and* the workspace: at least one
        # reference more than a dying temporary would have.
        if _mparray._T_SELF != -9:
            assert probe(x) > _mparray._T_SELF
