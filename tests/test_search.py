"""Unit tests for the six search strategies on the synthetic program."""

import pytest

from helpers import ToyProgram

from repro.core.evaluator import ConfigurationEvaluator
from repro.core.results import EvaluationStatus
from repro.core.variables import Granularity
from repro.search import (
    CombinationalSearch,
    CompositionalSearch,
    DeltaDebugSearch,
    GeneticSearch,
    HierarchicalCompositionalSearch,
    HierarchicalSearch,
    build_hierarchy,
    make_strategy,
)
from repro.search.registry import ALGORITHM_ORDER, canonical_name


def run_search(strategy, program=None, **eval_kwargs):
    program = program if program is not None else ToyProgram(n_clusters=4, toxic=(0,))
    evaluator = ConfigurationEvaluator(program, measurement_noise=0.0, **eval_kwargs)
    return strategy.run(evaluator), program


def lowered(outcome, program):
    space = program.search_space()
    return space.lowered_location_set(outcome.final.config)


class TestRegistry:
    @pytest.mark.parametrize("abbr", ALGORITHM_ORDER)
    def test_all_abbreviations_resolve(self, abbr):
        strategy = make_strategy(abbr)
        assert strategy.strategy_name

    def test_full_names_resolve(self):
        assert make_strategy("delta-debugging").strategy_name == "delta-debugging"
        assert make_strategy("ddebug").strategy_name == "delta-debugging"
        assert make_strategy("genetic").strategy_name == "genetic"

    def test_canonical_name(self):
        assert canonical_name("ddebug") == "DD"
        assert canonical_name("hierarchical") == "HR"

    def test_unknown_raises(self):
        from repro.errors import MixPBenchError
        with pytest.raises(MixPBenchError, match="unknown search strategy"):
            make_strategy("simulated-annealing")

    def test_granularities_match_paper(self):
        assert make_strategy("CB").granularity is Granularity.CLUSTER
        assert make_strategy("CM").granularity is Granularity.CLUSTER
        assert make_strategy("DD").granularity is Granularity.CLUSTER
        assert make_strategy("GA").granularity is Granularity.CLUSTER
        assert make_strategy("HR").granularity is Granularity.VARIABLE
        assert make_strategy("HC").granularity is Granularity.VARIABLE


class TestCombinational:
    def test_finds_global_optimum(self):
        outcome, program = run_search(CombinationalSearch())
        assert outcome.found_solution
        # optimum: all three non-toxic clusters lowered
        assert len(lowered(outcome, program)) == 3

    def test_exhaustive_evaluation_count(self):
        outcome, _ = run_search(CombinationalSearch())
        assert outcome.evaluations == 2 ** 4 - 1

    def test_refuses_intractable_spaces(self):
        program = ToyProgram(n_clusters=30)
        evaluator = ConfigurationEvaluator(program, measurement_noise=0.0)
        with pytest.raises(ValueError, match="intractable"):
            CombinationalSearch(max_locations=24)._search(evaluator)

    def test_single_cluster_space(self):
        outcome, program = run_search(
            CombinationalSearch(), ToyProgram(n_clusters=1),
        )
        assert outcome.evaluations == 1
        assert outcome.found_solution

    def test_nothing_passes(self):
        outcome, _ = run_search(
            CombinationalSearch(), ToyProgram(n_clusters=2, toxic=(0, 1)),
        )
        assert not outcome.found_solution


class TestCompositional:
    def test_individual_then_union(self):
        outcome, program = run_search(CompositionalSearch())
        assert outcome.found_solution
        assert len(lowered(outcome, program)) == 3
        # 4 individuals + 1 maximal union
        assert outcome.evaluations == 5

    def test_union_shortcut_terminates_early(self):
        outcome, _ = run_search(CompositionalSearch(), ToyProgram(n_clusters=6))
        assert outcome.evaluations == 7  # 6 singles + passing union

    def test_pairwise_fallback_when_union_fails(self):
        # interaction: the union includes toxic? toxic clusters fail alone,
        # so the union of passing members passes here; craft a program
        # where two specific clusters only fail together is out of the toy
        # model's scope — instead verify pairwise stage on partial failure.
        program = ToyProgram(n_clusters=3, toxic=(0, 1))
        outcome, _ = run_search(CompositionalSearch(), program)
        assert outcome.found_solution
        assert outcome.evaluations == 3  # only one passing single, no unions


class TestDeltaDebugging:
    def test_all_single_shortcut(self):
        outcome, program = run_search(DeltaDebugSearch(), ToyProgram(n_clusters=5))
        assert outcome.found_solution
        assert outcome.evaluations == 1  # initial criterion succeeds
        assert len(lowered(outcome, program)) == 5

    def test_excludes_toxic_cluster(self):
        outcome, program = run_search(DeltaDebugSearch())
        assert outcome.found_solution
        low = lowered(outcome, program)
        toxic_cid = program.search_space().clusters[0].cid
        assert toxic_cid not in low
        assert len(low) == 3

    def test_multiple_toxic_clusters(self):
        program = ToyProgram(n_clusters=8, toxic=(1, 5))
        outcome, program = run_search(DeltaDebugSearch(), program)
        assert outcome.found_solution
        low = lowered(outcome, program)
        assert len(low) == 6
        space = program.search_space()
        assert space.clusters[1].cid not in low
        assert space.clusters[5].cid not in low

    def test_everything_toxic_finds_nothing(self):
        program = ToyProgram(n_clusters=3, toxic=(0, 1, 2))
        outcome, _ = run_search(DeltaDebugSearch(), program)
        assert not outcome.found_solution

    def test_stricter_search_costs_more(self):
        cheap_program = ToyProgram(n_clusters=12)
        cheap, _ = run_search(DeltaDebugSearch(), cheap_program)
        hard_program = ToyProgram(n_clusters=12, toxic=(2, 7, 11))
        hard, _ = run_search(DeltaDebugSearch(), hard_program)
        assert hard.evaluations > cheap.evaluations


class TestHierarchical:
    def test_wholesale_conversion_when_everything_passes(self):
        program = ToyProgram(n_clusters=4, functions=("f", "g"))
        outcome, program = run_search(HierarchicalSearch(), program)
        assert outcome.found_solution
        assert outcome.evaluations == 1  # root passes immediately

    def test_descends_on_failure(self):
        program = ToyProgram(n_clusters=4, toxic=(0,), functions=("f", "g"))
        outcome, program = run_search(HierarchicalSearch(), program)
        assert outcome.found_solution
        assert outcome.evaluations > 1
        low = outcome.final.config.lowered_locations()
        toxic_uid = next(iter(program.search_space().clusters[0].members))
        assert toxic_uid not in low

    def test_splitting_clusters_wastes_evaluations(self):
        program = ToyProgram(n_clusters=2, members_per_cluster=3, toxic=(0,))
        outcome, _ = run_search(HierarchicalSearch(), program)
        statuses = [t.status for t in outcome.trials]
        assert EvaluationStatus.COMPILE_ERROR in statuses

    def test_nothing_convertible(self):
        program = ToyProgram(n_clusters=2, toxic=(0, 1))
        outcome, _ = run_search(HierarchicalSearch(), program)
        assert not outcome.found_solution


class TestHierarchicalCompositional:
    def test_combines_components(self):
        program = ToyProgram(n_clusters=4, toxic=(0,), functions=("f", "g"))
        outcome, program = run_search(HierarchicalCompositionalSearch(), program)
        assert outcome.found_solution
        assert len(outcome.final.config.lowered_locations()) == 3

    def test_root_pass_short_circuits(self):
        program = ToyProgram(n_clusters=4, functions=("f", "g"))
        outcome, _ = run_search(HierarchicalCompositionalSearch(), program)
        assert outcome.evaluations == 1

    def test_compile_errors_at_variable_granularity(self):
        program = ToyProgram(n_clusters=2, members_per_cluster=2, toxic=(0,),
                             functions=("f", "g"))
        outcome, _ = run_search(HierarchicalCompositionalSearch(), program)
        statuses = [t.status for t in outcome.trials]
        assert EvaluationStatus.COMPILE_ERROR in statuses


class TestGenetic:
    def test_finds_a_solution(self):
        outcome, program = run_search(GeneticSearch(seed=3))
        assert outcome.found_solution
        toxic_cid = program.search_space().clusters[0].cid
        assert toxic_cid not in lowered(outcome, program)

    def test_deterministic_for_fixed_seed(self):
        a, _ = run_search(GeneticSearch(seed=11))
        b, _ = run_search(GeneticSearch(seed=11))
        assert a.final.config == b.final.config
        assert a.evaluations == b.evaluations

    def test_bounded_evaluations(self):
        program = ToyProgram(n_clusters=20)
        outcome, _ = run_search(GeneticSearch(), program)
        cap = GeneticSearch().population_size * (GeneticSearch().max_generations + 1)
        assert outcome.evaluations <= cap

    def test_rejects_tiny_population(self):
        with pytest.raises(ValueError):
            GeneticSearch(population_size=1)

    def test_describe_records_parameters(self):
        info = GeneticSearch(population_size=9, seed=5).describe()
        assert info["population_size"] == 9
        assert info["seed"] == 5
        assert info["granularity"] == "cluster"


class TestOutcomeBookkeeping:
    def test_outcome_identity_fields(self):
        outcome, _ = run_search(DeltaDebugSearch())
        assert outcome.strategy == "delta-debugging"
        assert outcome.program == "toy"
        assert outcome.threshold == 1e-6
        assert not outcome.timed_out
        assert outcome.trials

    def test_timeout_reported(self):
        program = ToyProgram(n_clusters=12, toxic=(0, 5, 9))
        evaluator = ConfigurationEvaluator(
            program, time_limit_seconds=400.0, measurement_noise=0.0,
        )
        outcome = DeltaDebugSearch().run(evaluator)
        assert outcome.timed_out
        assert outcome.final is None

    def test_final_config_resolves_to_trial(self):
        outcome, program = run_search(CombinationalSearch())
        matching = [t for t in outcome.trials if t.config == outcome.final.config]
        assert matching


class TestHierarchyTree:
    def test_single_function_collapses(self):
        from helpers import make_space
        space = make_space(4, functions=("main",)).at(Granularity.VARIABLE)
        root = build_hierarchy(space)
        assert len(root.variables) == 4
        # module level collapsed; children are function/variable nodes
        labels = [child.label for child in root.children]
        assert any("variable:" in lbl or "function:" in lbl for lbl in labels)

    def test_multi_function_structure(self):
        from helpers import make_space
        space = make_space(4, functions=("f", "g")).at(Granularity.VARIABLE)
        root = build_hierarchy(space)
        assert {len(child.variables) for child in root.children} == {2}

    def test_walk_visits_all_nodes(self):
        from helpers import make_space
        space = make_space(3, functions=("f", "g")).at(Granularity.VARIABLE)
        root = build_hierarchy(space)
        nodes = list(root.walk())
        assert nodes[0] is root
        leaves = [n for n in nodes if n.is_leaf]
        assert frozenset().union(*(n.variables for n in leaves)) == root.variables
