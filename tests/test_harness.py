"""Tests for the harness: YAML config, plugins, runner, scheduler, CLI."""

import json

import pytest

from repro.errors import HarnessConfigError, PluginError
from repro.harness.config import load_config, parse_config
from repro.harness.plugins import (
    AnalysisPlugin, DeployedApp, available_plugins, get_plugin, register_plugin,
)
from repro.harness.runner import Harness
from repro.harness.scheduler import SearchJob, grid_jobs, run_grid

VALID_YAML = """
kmeans:
  benchmark: kmeans
  build: ['generate-inputs']
  clean: ['remove-inputs']
  metric: MCR
  threshold: 1.0e-6
  runs: 10
  time_limit_hours: 24
  analysis:
    floatsmith:
      name: floatSmith
      extra_args:
        algorithm: ddebug
"""


class TestConfigParsing:
    def test_valid_file(self, tmp_path):
        path = tmp_path / "kmeans.yaml"
        path.write_text(VALID_YAML)
        configs = load_config(path)
        assert len(configs) == 1
        entry = configs[0]
        assert entry.name == "kmeans"
        assert entry.benchmark == "kmeans"
        assert entry.metric == "MCR"
        assert entry.threshold == 1e-6
        assert entry.runs == 10
        assert entry.time_limit_hours == 24.0
        spec = entry.analysis("floatsmith")
        assert spec.plugin == "floatSmith"
        assert spec.extra_args == {"algorithm": "ddebug"}

    def test_missing_file(self, tmp_path):
        with pytest.raises(HarnessConfigError, match="not found"):
            load_config(tmp_path / "nope.yaml")

    def test_invalid_yaml(self, tmp_path):
        path = tmp_path / "broken.yaml"
        path.write_text("a: [unclosed")
        with pytest.raises(HarnessConfigError, match="invalid YAML"):
            load_config(path)

    def test_benchmark_defaults_to_entry_name(self):
        entry = parse_config({"hydro-1d": {}})[0]
        assert entry.benchmark == "hydro-1d"

    def test_unknown_keys_rejected(self):
        with pytest.raises(HarnessConfigError, match="unknown keys"):
            parse_config({"x": {"thresold": 1e-3}})

    def test_bad_threshold_rejected(self):
        with pytest.raises(HarnessConfigError, match="threshold"):
            parse_config({"x": {"threshold": "tiny"}})
        with pytest.raises(HarnessConfigError, match="positive"):
            parse_config({"x": {"threshold": -1}})

    def test_bad_runs_rejected(self):
        with pytest.raises(HarnessConfigError, match="runs"):
            parse_config({"x": {"runs": 0}})

    def test_fuse_key_parses_and_validates(self):
        assert parse_config({"x": {"fuse": False}})[0].fuse is False
        assert parse_config({"x": {"fuse": True}})[0].fuse is True
        assert parse_config({"x": {}})[0].fuse is None  # harness default
        with pytest.raises(HarnessConfigError, match="fuse"):
            parse_config({"x": {"fuse": "yes please"}})

    def test_analysis_requires_name(self):
        with pytest.raises(HarnessConfigError, match="'name'"):
            parse_config({"x": {"analysis": {"a": {}}}})

    def test_non_mapping_rejected(self):
        with pytest.raises(HarnessConfigError, match="mapping"):
            parse_config(["not", "a", "mapping"])
        with pytest.raises(HarnessConfigError, match="mapping"):
            parse_config({"x": "oops"})

    def test_unknown_analysis_lookup(self):
        entry = parse_config({"x": {}})[0]
        with pytest.raises(HarnessConfigError, match="no analysis"):
            entry.analysis("ghost")

    def test_shipped_configs_parse(self):
        from pathlib import Path
        config_dir = Path(__file__).parent.parent / "configs"
        files = sorted(config_dir.glob("*.yaml"))
        assert len(files) == 17
        for path in files:
            entries = load_config(path)
            assert len(entries) == 1
            assert entries[0].analyses


class TestPlugins:
    def test_floatsmith_registered(self):
        assert "floatsmith" in available_plugins()
        assert get_plugin("floatSmith").plugin_name == "floatSmith"

    def test_unknown_plugin(self):
        with pytest.raises(PluginError, match="unknown analysis plugin"):
            get_plugin("ghost")

    def test_register_requires_name(self):
        class Anonymous(AnalysisPlugin):
            def analysis(self, app, **extra):
                raise NotImplementedError

        with pytest.raises(PluginError, match="no plugin_name"):
            register_plugin(Anonymous)

    def test_custom_plugin_roundtrip(self):
        class Null(AnalysisPlugin):
            plugin_name = "nullTest"

            def analysis(self, app, **extra):
                raise NotImplementedError

        register_plugin(Null)
        try:
            assert isinstance(get_plugin("nulltest"), Null)
        finally:
            from repro.harness import plugins as plugins_module
            plugins_module._PLUGINS.pop("nulltest", None)

    def test_floatsmith_rejects_unknown_args(self, tmp_path, data_env):
        from repro.benchmarks.base import get_benchmark
        from repro.verify.quality import QualitySpec
        app = DeployedApp(
            benchmark=get_benchmark("tridiag"),
            quality=QualitySpec("MAE", 1e-8),
            runs_per_config=10,
            time_limit_seconds=86400,
            output_dir=tmp_path,
        )
        plugin = get_plugin("floatSmith")
        with pytest.raises(PluginError, match="unknown extra_args"):
            plugin.analysis(app, algorithm="DD", bogus=1)

    def test_floatsmith_writes_interchange_artifact(self, tmp_path, data_env):
        from repro.benchmarks.base import get_benchmark
        from repro.verify.quality import QualitySpec
        app = DeployedApp(
            benchmark=get_benchmark("tridiag"),
            quality=QualitySpec("MAE", 1e-8),
            runs_per_config=10,
            time_limit_seconds=86400,
            output_dir=tmp_path,
        )
        result = get_plugin("floatSmith").analysis(app, algorithm="DD")
        payload = json.loads(result.artifact.read_text())
        assert payload["program"] == "tridiag"
        assert payload["strategy"] == "delta-debugging"
        assert payload["configuration"]["actions"]
        assert result.outcome.found_solution


class TestHarnessRunner:
    def test_run_entry_end_to_end(self, tmp_path, data_env):
        config = parse_config({
            "tridiag": {
                "threshold": 1e-8,
                "analysis": {
                    "fs": {"name": "floatSmith", "extra_args": {"algorithm": "DD"}},
                },
            },
        })[0]
        harness = Harness(output_dir=tmp_path / "results")
        report = harness.run_entry(config)
        assert report.benchmark == "tridiag"
        assert report.metric == "MAE"
        assert len(report.analyses) == 1
        analysis = report.analyses[0]
        assert analysis.found_solution
        assert analysis.speedup > 0.5
        assert analysis.error_value <= 1e-8
        assert analysis.artifact.exists()

    def test_run_file(self, tmp_path, data_env):
        path = tmp_path / "cfg.yaml"
        path.write_text(VALID_YAML.replace("kmeans", "tridiag").replace("MCR", "MAE"))
        harness = Harness(output_dir=tmp_path / "out")
        reports = harness.run_file(path)
        assert len(reports) == 1
        assert reports[0].analyses[0].strategy == "delta-debugging"


class TestScheduler:
    def test_grid_jobs_cross_product(self):
        jobs = grid_jobs(["a", "b"], ["DD", "GA"], [1e-3, 1e-8])
        assert len(jobs) == 8
        assert jobs[0] == SearchJob("a", "DD", 1e-3)

    def test_run_grid_serial(self, data_env):
        jobs = grid_jobs(["tridiag"], ["DD", "CB"], [1e-8])
        results = run_grid(jobs)
        assert all(r.ok for r in results)
        assert [r.job.algorithm for r in results] == ["DD", "CB"]

    def test_run_grid_parallel_preserves_order(self, data_env):
        jobs = grid_jobs(["tridiag", "innerprod"], ["DD"], [1e-8])
        results = run_grid(jobs, workers=2)
        assert [r.job.program for r in results] == ["tridiag", "innerprod"]
        assert all(r.ok for r in results)

    def test_failed_job_reported_not_raised(self):
        results = run_grid([SearchJob("no-such-bench", "DD", 1e-6)])
        assert not results[0].ok
        assert "BenchmarkNotFound" in results[0].error

    def test_job_label(self):
        job = SearchJob("kmeans", "ddebug", 1e-6)
        assert job.label() == "kmeans/DD@1e-06"
