"""Tests for the beyond-the-paper extensions: the cluster-aware
hierarchical strategy (HRC) and half-precision targeting."""

import numpy as np
from helpers import ToyProgram

from repro.core.evaluator import ConfigurationEvaluator
from repro.core.results import EvaluationStatus
from repro.core.types import Precision
from repro.core.variables import Granularity
from repro.search import (
    ClusterHierarchicalSearch,
    DeltaDebugSearch,
    HierarchicalSearch,
    build_cluster_hierarchy,
    make_strategy,
)


def _evaluator(program):
    return ConfigurationEvaluator(program, measurement_noise=0.0)


class TestClusterHierarchy:
    def test_registered_as_hrc(self):
        strategy = make_strategy("HRC")
        assert strategy.strategy_name == "hierarchical-clustered"
        assert strategy.granularity is Granularity.CLUSTER

    def test_tree_spans_all_clusters(self):
        program = ToyProgram(n_clusters=5, members_per_cluster=2,
                             functions=("f", "g"))
        root = build_cluster_hierarchy(program.search_space())
        assert len(root.variables) == 5
        leaf_union = frozenset().union(
            *(node.variables for node in root.walk() if node.is_leaf)
        )
        assert leaf_union == root.variables

    def test_cluster_homes_by_majority(self):
        program = ToyProgram(n_clusters=4, functions=("f", "g"))
        root = build_cluster_hierarchy(program.search_space())
        labels = sorted(
            node.label for node in root.walk() if node.label.startswith("function:")
        )
        assert labels == ["function:f", "function:g"]


class TestHrcSearch:
    def test_never_produces_compile_errors(self):
        program = ToyProgram(
            n_clusters=4, members_per_cluster=3, toxic=(0,),
            functions=("f", "g"),
        )
        outcome = ClusterHierarchicalSearch().run(_evaluator(program))
        assert outcome.found_solution
        assert all(
            t.status is not EvaluationStatus.COMPILE_ERROR
            for t in outcome.trials
        )

    def test_hr_wastes_evaluations_hrc_does_not(self):
        def fresh():
            return ToyProgram(
                n_clusters=4, members_per_cluster=3, toxic=(0,),
                functions=("f", "g"),
            )

        hr = HierarchicalSearch().run(_evaluator(fresh()))
        hrc = ClusterHierarchicalSearch().run(_evaluator(fresh()))
        hr_wasted = sum(
            1 for t in hr.trials if t.status is EvaluationStatus.COMPILE_ERROR
        )
        assert hr_wasted > 0
        assert hrc.found_solution
        assert hrc.evaluations <= hr.evaluations

    def test_matches_dd_solution_on_toy(self):
        def fresh():
            return ToyProgram(n_clusters=6, toxic=(2,), functions=("f", "g", "h"))

        dd = DeltaDebugSearch().run(_evaluator(fresh()))
        hrc = ClusterHierarchicalSearch().run(_evaluator(fresh()))
        program = fresh()
        space = program.search_space()
        assert space.lowered_location_set(hrc.final.config) == \
            space.lowered_location_set(dd.final.config)

    def test_wholesale_pass_is_single_evaluation(self):
        program = ToyProgram(n_clusters=4, functions=("f", "g"))
        outcome = ClusterHierarchicalSearch().run(_evaluator(program))
        assert outcome.evaluations == 1

    def test_nothing_convertible(self):
        program = ToyProgram(n_clusters=2, toxic=(0, 1))
        outcome = ClusterHierarchicalSearch().run(_evaluator(program))
        assert not outcome.found_solution


class TestHalfPrecisionTarget:
    def test_dd_can_target_half(self):
        program = ToyProgram(n_clusters=3)
        strategy = DeltaDebugSearch()
        strategy.target_precision = Precision.HALF
        outcome = strategy.run(_evaluator(program))
        assert outcome.found_solution
        precisions = set(outcome.final.config.values())
        assert precisions == {Precision.HALF}

    def test_half_workspace_dtypes(self):
        from repro.benchmarks.base import get_benchmark
        bench = get_benchmark("gen-lin-recur")
        config = bench.search_space().uniform_config(Precision.HALF)
        result = bench.execute(config)
        # dyadic inputs remain exact even in fp16
        base = bench.execute(
            bench.search_space().uniform_config(Precision.DOUBLE)
        )
        np.testing.assert_array_equal(result.output, base.output)

    def test_half_faster_than_single_on_cheap_ops(self):
        from repro.benchmarks.base import get_benchmark
        bench = get_benchmark("banded-lin-eq")
        single = bench.execute(bench.search_space().uniform_config(Precision.SINGLE))
        half = bench.execute(bench.search_space().uniform_config(Precision.HALF))
        assert half.modeled_seconds < single.modeled_seconds

    def test_half_overflow_detected(self):
        """innerprod's integer sums exceed fp16 range mid-search? They
        stay within 65504 at the shipped size — verify fp16 is at
        least *evaluable* and the quality machinery sees the result."""
        from repro.benchmarks.base import get_benchmark
        from repro.verify.metrics import mae
        bench = get_benchmark("planckian")
        base = bench.execute(bench.search_space().uniform_config(Precision.DOUBLE))
        half = bench.execute(bench.search_space().uniform_config(Precision.HALF))
        error = mae(base.output, half.output)
        assert error > 1e-6 or error != error  # large or NaN, never tiny


class TestExtensionExperiments:
    def test_ext_half_rows(self, tmp_path, data_env):
        from repro.experiments import ext_half
        rows = ext_half.rows()
        assert len(rows) == 10
        by_name = {row[0]: row for row in rows}
        # dyadic kernels are exact under both targets
        assert by_name["gen-lin-recur"][2] == "0"
        assert by_name["gen-lin-recur"][5] == "0"

    def test_ext_hrc_cells(self, tmp_path, data_env):
        """One HR/HRC pair on one app (keeps the unit test fast)."""
        from repro.experiments.context import ExperimentContext
        from repro.experiments.ext_hrc import _cells
        ctx = ExperimentContext(results_dir=tmp_path, use_disk_cache=False)
        row = _cells(ctx, "hpccg", 1e-8)
        ev_hr, wasted_hr, _su_hr, ev_hrc, wasted_hrc, _su_hrc = row
        assert wasted_hrc == 0          # HRC never splits a cluster
        assert wasted_hr > 0            # HR does
        assert ev_hrc < ev_hr           # and pays for it

    def test_runner_knows_extensions(self):
        from repro.experiments.runner import EXPERIMENTS
        assert "ext-half" in EXPERIMENTS
        assert "ext-hrc" in EXPERIMENTS
