"""Property-based tests for the trace-fusion fast path (hypothesis).

The contract under test is the strongest one the runtime makes:
executing any straight-line ufunc sequence must produce bit-identical
outputs and identical profiles whether it runs

* under the readable reference recorder,
* on the interpreted fast path (fusion forced off), or
* through compiled fused regions (fusion on, repeated until the
  recorded chains promote and replay).

Random short programs over random dtypes/shapes probe the learning,
promotion and replay machinery; the explicit tests below pin the
guard-miss fallbacks (shape changes, aliased operands, mid-chain
mutation) that hypothesis is unlikely to hit by chance.
"""

from __future__ import annotations

import warnings

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.types import Precision, PrecisionConfig
from repro.runtime import fuse as _fuse
from repro.runtime.memory import Workspace
from repro.runtime.mparray import reference_recording

#: ops are appended to a growing value list; each step draws operand
#: indices into it (0 and 1 are the declared input arrays)
_BINARY = ("add", "sub", "mul", "div", "max")
_UNARY = ("sqrt", "abs", "neg")
_SCALAR = ("smul", "sadd")


@st.composite
def programs(draw):
    n_ops = draw(st.integers(min_value=2, max_value=6))
    steps = []
    for i in range(n_ops):
        kind = draw(st.sampled_from(_BINARY + _UNARY + _SCALAR))
        live = 2 + i  # inputs plus every prior result
        src1 = draw(st.integers(min_value=0, max_value=live - 1))
        src2 = draw(st.integers(min_value=0, max_value=live - 1))
        const = draw(st.sampled_from((0.5, 1.25, 2.0, -0.75)))
        steps.append((kind, src1, src2, const))
    precision = draw(st.sampled_from((Precision.DOUBLE, Precision.SINGLE)))
    shape = draw(st.sampled_from(((4,), (16,), (3, 5))))
    return precision, shape, steps


def _run_program(precision, shape, steps):
    """Execute one random program in a fresh workspace; returns the
    final array's bytes and the workspace profile summary."""
    config = PrecisionConfig({"a": precision, "b": precision})
    ws = Workspace(config)
    size = int(np.prod(shape))
    init_a = (np.arange(size, dtype=np.float64).reshape(shape) % 7) * 0.25 + 0.5
    init_b = (np.arange(size, dtype=np.float64).reshape(shape) % 5) * 0.5 + 1.0
    values = [ws.array("a", init=init_a), ws.array("b", init=init_b)]
    for kind, src1, src2, const in steps:
        x = values[src1]
        y = values[src2]
        if kind == "add":
            result = x + y
        elif kind == "sub":
            result = x - y
        elif kind == "mul":
            result = x * y
        elif kind == "div":
            result = x / y
        elif kind == "max":
            result = np.maximum(x, y)
        elif kind == "sqrt":
            result = np.sqrt(x)
        elif kind == "abs":
            result = np.abs(x)
        elif kind == "neg":
            result = -x
        elif kind == "smul":
            result = x * const
        else:  # sadd
            result = x + const
        values.append(result)
    # binding the result to a declaration ends the learning chain (the
    # same foreign-op boundary every real benchmark hits), so recorded
    # chains are offered for promotion instead of dying with the trace
    final = ws.array("out", init=values[-1] + 0.0)
    return np.asarray(final._data).tobytes(), ws.profile.summary()


@given(programs())
@settings(max_examples=40, deadline=None)
def test_fused_interpreted_reference_identical(program):
    precision, shape, steps = program
    _fuse.reset_registry()
    with np.errstate(all="ignore"), warnings.catch_warnings():
        warnings.simplefilter("ignore")
        with reference_recording():
            reference = _run_program(precision, shape, steps)
        prev = _fuse.set_fusion_enabled(False)
        try:
            interpreted = _run_program(precision, shape, steps)
        finally:
            _fuse.set_fusion_enabled(prev)
        # repeat until any recorded chain has been sighted, promoted
        # and replayed; every repetition must stay bit-identical
        fused = [_run_program(precision, shape, steps) for _ in range(4)]
    assert interpreted == reference
    for run in fused:
        assert run == reference


def _promote(kernel, *args, runs: int = 3):
    """Run a kernel enough times for its chains to promote/replay."""
    results = []
    with np.errstate(all="ignore"), warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for _ in range(runs):
            results.append(kernel(Workspace(), *args))
    return results


class TestGuardMissFallbacks:
    """Promoted regions must fall back (and stay exact) when a later
    call violates the recorded assumptions."""

    def setup_method(self):
        _fuse.reset_registry()

    @staticmethod
    def _bytes(arr):
        return np.asarray(arr._data).tobytes()

    def test_shape_change_after_promotion(self):
        def kernel(ws, n):
            a = ws.array("a", shape=n, fill=1.5)
            b = ws.array("b", shape=n, fill=0.5)
            r = (((a + b) * 2.0 - b) / 1.5 + a) * 0.5
            return ws.array("out", init=r + 0.0)  # closes the chain

        _promote(kernel, 64)
        fast = kernel(Workspace(), 32)  # dtype/shape guard miss
        with reference_recording():
            ref = kernel(Workspace(), 32)
        assert self._bytes(fast) == self._bytes(ref)

    def test_shape_change_mid_trace(self):
        def kernel(ws):
            a = ws.array("a", shape=(4, 8), fill=2.0)
            row = ws.array("r", shape=8, fill=1.0)
            t = (((a * 0.5 + a) * 1.25 - a) / 2.0) + a
            r = t + row  # broadcasting op mid-sequence
            return ws.array("out", init=r + 0.0)  # closes the chain

        runs = _promote(kernel)
        with reference_recording():
            ref = kernel(Workspace())
        for fast in runs:
            assert self._bytes(fast) == self._bytes(ref)

    def test_aliased_operands_after_promotion(self):
        def kernel(ws, alias):
            x = ws.array("x", shape=64, fill=1.25)
            y = x if alias else ws.array("y", shape=64, fill=0.75)
            r = ((x + y) * 0.5 - y) / 1.5 + x
            return ws.array("out", init=r + 0.0)  # closes the chain

        _promote(kernel, False)  # learn on distinct buffers
        fast = kernel(Workspace(), True)  # same buffer bound twice
        with reference_recording():
            ref = kernel(Workspace(), True)
        assert self._bytes(fast) == self._bytes(ref)

    def test_mutation_mid_chain_breaks_trace(self):
        def kernel(ws):
            a = ws.array("a", shape=64, fill=1.0)
            b = ws.array("b", shape=64, fill=2.0)
            t = a + b
            a[0] = 5.0  # foreign op: must end any active region
            return ws.array("out", init=t * a + 0.0)  # closes the chain

        runs = _promote(kernel, runs=4)
        with reference_recording():
            ref = kernel(Workspace())
        for fast in runs:
            assert self._bytes(fast) == self._bytes(ref)

    def test_repeated_promotion_actually_fuses(self):
        """Sanity: the machinery under test is actually engaged — a
        plain eligible kernel produces fused ops after two sightings."""
        def kernel(ws):
            a = ws.array("a", shape=128, fill=1.5)
            b = ws.array("b", shape=128, fill=0.25)
            r = ((a + b) * 2.0 - b) / 1.5 + a
            return ws.array("out", init=r + 0.0)  # closes the chain

        before = _fuse.STATS.fused_ops
        _promote(kernel, runs=4)
        assert _fuse.STATS.fused_ops > before


def test_fusion_disabled_installs_no_tracer():
    prev = _fuse.set_fusion_enabled(False)
    try:
        assert Workspace().profile.fuse is None
    finally:
        _fuse.set_fusion_enabled(prev)
    with reference_recording():
        assert Workspace().profile.fuse is None


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
