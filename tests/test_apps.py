"""Tests for the seven proxy applications (paper Section III-B)."""

import math

import numpy as np
import pytest

from repro.benchmarks.base import application_benchmarks, get_benchmark
from repro.core.types import Precision, PrecisionConfig
from repro.verify.metrics import get_metric, mae, mcr

APPS = ("blackscholes", "cfd", "hotspot", "hpccg", "kmeans", "lavamd", "srad")


def test_suite_has_seven_applications():
    assert application_benchmarks() == tuple(sorted(APPS))


@pytest.mark.parametrize("name", APPS)
class TestEveryApplication:
    def test_baseline_execution_finite(self, name, data_env):
        bench = get_benchmark(name)
        result = bench.execute(PrecisionConfig())
        assert np.all(np.isfinite(result.output))
        assert result.modeled_seconds > 0

    def test_deterministic_across_instances(self, name, data_env):
        a = get_benchmark(name).execute(PrecisionConfig()).output
        b = get_benchmark(name).execute(PrecisionConfig()).output
        np.testing.assert_array_equal(a, b)

    def test_typeforge_analysis_nontrivial(self, name, data_env):
        report = get_benchmark(name).report()
        assert report.total_variables >= 15
        assert 1 < report.total_clusters <= report.total_variables

    def test_quality_metric_registered(self, name, data_env):
        bench = get_benchmark(name)
        get_metric(bench.metric)  # must not raise


class TestPaperBehaviours:
    def test_blackscholes_weak_clustering(self, data_env):
        """Most Blackscholes locations are scalars: TC close to TV."""
        report = get_benchmark("blackscholes").report()
        assert report.total_clusters / report.total_variables > 0.8

    def test_cfd_strong_clustering(self, data_env):
        """CFD's parameter-pointer style collapses many variables."""
        report = get_benchmark("cfd").report()
        assert report.total_clusters / report.total_variables < 0.35

    def test_srad_single_precision_overflows_to_nan(self, data_env):
        """The paper's SRAD row: output destroyed at single precision."""
        bench = get_benchmark("srad")
        base = bench.execute(PrecisionConfig())
        single = bench.execute(bench.search_space().uniform_config(Precision.SINGLE))
        assert np.all(np.isfinite(base.output))
        assert not np.all(np.isfinite(single.output))
        assert math.isnan(mae(base.output, single.output))

    def test_srad_emits_no_runtime_warnings(self, data_env):
        """inf/NaN is SRAD's *expected* low-precision behaviour and den
        hits zero even at double: neither may leak RuntimeWarnings."""
        import warnings

        bench = get_benchmark("srad")
        single_cfg = bench.search_space().uniform_config("fp32")
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            bench.execute(PrecisionConfig())
            bench.execute(single_cfg)

    def test_kmeans_single_preserves_assignment(self, data_env):
        bench = get_benchmark("kmeans")
        base = bench.execute(PrecisionConfig())
        single = bench.execute(bench.search_space().uniform_config(Precision.SINGLE))
        assert mcr(base.output, single.output) == 0.0

    def test_kmeans_reads_typed_input_file(self, data_env):
        bench = get_benchmark("kmeans")
        inputs = bench.inputs()
        assert inputs["path"].exists()
        result = bench.execute(PrecisionConfig())
        assert result.profile.io_bytes > 0

    def test_lavamd_largest_conversion_speedup(self, data_env):
        """LavaMD's cache-residency effect tops the suite (paper 2.66x)."""
        speedups = {}
        for name in APPS:
            bench = get_benchmark(name)
            base = bench.execute(PrecisionConfig())
            single = bench.execute_manual(Precision.SINGLE)
            speedups[name] = base.modeled_seconds / single.modeled_seconds
        assert max(speedups, key=speedups.get) == "lavamd"
        assert speedups["lavamd"] > 2.0

    def test_lavamd_footprint_crosses_cache_boundary(self, data_env):
        from repro.runtime.machine import DEFAULT_MACHINE
        bench = get_benchmark("lavamd")
        base = bench.execute(PrecisionConfig())
        single = bench.execute(bench.search_space().uniform_config(Precision.SINGLE))
        llc = DEFAULT_MACHINE.cache_levels[-1].capacity_bytes
        assert base.profile.peak_footprint > llc
        assert single.profile.peak_footprint <= llc

    def test_hotspot_literal_limits_tool_speedup(self, data_env):
        """Typeforge cannot demote the double literal, so the manual
        conversion (which rewrites it) is faster (paper Section IV)."""
        bench = get_benchmark("hotspot")
        base = bench.execute(PrecisionConfig())
        tool = bench.execute(bench.search_space().uniform_config(Precision.SINGLE))
        manual = bench.execute_manual(Precision.SINGLE)
        tool_speedup = base.modeled_seconds / tool.modeled_seconds
        manual_speedup = base.modeled_seconds / manual.modeled_seconds
        assert manual_speedup > tool_speedup > 1.2

    def test_hotspot_passes_strictest_threshold(self, data_env):
        """HotSpot converts wholesale even at 1e-8 (paper Table V)."""
        bench = get_benchmark("hotspot")
        base = bench.execute(PrecisionConfig())
        single = bench.execute(bench.search_space().uniform_config(Precision.SINGLE))
        assert mae(base.output, single.output) <= 1e-8

    def test_hpccg_no_speedup_from_precision(self, data_env):
        """Index-gather dominated: lowering floats barely helps."""
        bench = get_benchmark("hpccg")
        base = bench.execute(PrecisionConfig())
        single = bench.execute(bench.search_space().uniform_config(Precision.SINGLE))
        speedup = base.modeled_seconds / single.modeled_seconds
        assert 0.9 < speedup < 1.35

    def test_hpccg_converges(self, data_env):
        """CG must actually solve the system at double precision."""
        import numpy as np
        bench = get_benchmark("hpccg")
        result = bench.execute(PrecisionConfig())
        assert np.max(np.abs(result.output)) < 1e3  # bounded solution

    def test_blackscholes_single_error_scale(self, data_env):
        """Paper Table IV: quality loss ~4e-6."""
        bench = get_benchmark("blackscholes")
        base = bench.execute(PrecisionConfig())
        single = bench.execute(bench.search_space().uniform_config(Precision.SINGLE))
        error = mae(base.output, single.output)
        assert 1e-7 < error < 1e-4

    def test_cfd_single_error_scale(self, data_env):
        """Paper Table IV: quality loss ~1.1e-7 (passes 1e-6, fails 1e-8)."""
        bench = get_benchmark("cfd")
        base = bench.execute(PrecisionConfig())
        single = bench.execute(bench.search_space().uniform_config(Precision.SINGLE))
        error = mae(base.output, single.output)
        assert 1e-8 < error < 1e-6

    def test_multi_module_hierarchy(self, data_env):
        """CFD and HPCCG split compute kernels into separate modules."""
        assert len(get_benchmark("cfd").report().modules()) == 2
        assert len(get_benchmark("hpccg").report().modules()) == 2
