"""White-box tests of the genetic algorithm's machinery."""

import numpy as np
from helpers import ToyProgram

from repro.core.evaluator import ConfigurationEvaluator
from repro.core.results import EvaluationStatus
from repro.search.genetic import GeneticSearch


def outcome_for(program=None, **ga_kwargs):
    program = program if program is not None else ToyProgram(n_clusters=6, toxic=(0,))
    evaluator = ConfigurationEvaluator(program, measurement_noise=0.0)
    return GeneticSearch(**ga_kwargs).run(evaluator), program


class TestPopulationMechanics:
    def test_next_generation_preserves_population_size(self):
        strategy = GeneticSearch(population_size=8, seed=1)
        rng = np.random.default_rng(0)
        n = 10
        population = [rng.random(n) < 0.5 for _ in range(8)]
        scored = [(float(i), None) for i in range(8)]
        offspring = strategy._next_generation(
            population, scored, rng, n, lambda: None,
        )
        assert len(offspring) == 8

    def test_elite_carried_over(self):
        strategy = GeneticSearch(population_size=6, seed=1)
        rng = np.random.default_rng(0)
        n = 12
        population = [rng.random(n) < 0.5 for _ in range(6)]
        fitnesses = [0.1, 0.2, 5.0, 0.3, 0.1, 0.2]
        scored = [(fit, None) for fit in fitnesses]
        offspring = strategy._next_generation(
            population, scored, rng, n, lambda: None,
        )
        np.testing.assert_array_equal(offspring[0], population[2])

    def test_immigrant_is_a_singleton(self):
        strategy = GeneticSearch(population_size=6, seed=1)
        rng = np.random.default_rng(0)
        n = 12

        def next_singleton():
            genome = np.zeros(n, dtype=bool)
            genome[4] = True
            return genome

        population = [rng.random(n) < 0.5 for _ in range(6)]
        scored = [(1.0, None)] * 6
        offspring = strategy._next_generation(
            population, scored, rng, n, next_singleton,
        )
        assert offspring[1].sum() == 1
        assert offspring[1][4]


class TestSearchBehaviour:
    def test_evaluation_budget_scales_with_generations(self):
        small, _ = outcome_for(max_generations=2, stagnation_limit=2, seed=5)
        large, _ = outcome_for(max_generations=12, stagnation_limit=12, seed=5)
        assert large.evaluations >= small.evaluations

    def test_stagnation_stops_early(self):
        # a trivially easy program: everything passes immediately, the
        # best fitness plateaus, and stagnation should cut the run well
        # below the generation cap
        program = ToyProgram(n_clusters=2)
        evaluator = ConfigurationEvaluator(program, measurement_noise=0.0)
        outcome = GeneticSearch(
            max_generations=50, stagnation_limit=2, seed=5,
        ).run(evaluator)
        cap = 6 * 51
        assert outcome.evaluations < cap / 4

    def test_different_seeds_may_find_different_paths(self):
        a, _ = outcome_for(seed=1)
        b, _ = outcome_for(seed=2)
        # both valid; evaluation *sequences* differ (nondeterminism of
        # the method across seeds, determinism within one — the paper's
        # point about GA's randomness)
        assert a.found_solution and b.found_solution
        assert (a.evaluations != b.evaluations
                or a.final.config != b.final.config
                or a.trials != b.trials)

    def test_never_returns_failing_config(self):
        outcome, program = outcome_for(seed=9)
        assert outcome.found_solution
        final_trials = [
            t for t in outcome.trials if t.config == outcome.final.config
        ]
        assert final_trials
        assert all(t.status is EvaluationStatus.PASSED for t in final_trials)

    def test_cached_duplicates_do_not_inflate_ev(self):
        outcome, _ = outcome_for(seed=11)
        configs = [t.config for t in outcome.trials]
        assert len(configs) == len(set(configs))  # trial log is unique
