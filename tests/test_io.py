"""Unit tests for the typed binary I/O runtime (mp_fread / mp_fwrite)."""

import numpy as np
import pytest

from repro.core.types import Precision, PrecisionConfig
from repro.errors import MixPBenchError
from repro.runtime.io import mp_fread, mp_fwrite, read_typed, write_typed
from repro.runtime.memory import Workspace


class TestTypedFiles:
    def test_write_read_roundtrip(self, tmp_path):
        data = np.linspace(0, 1, 17)
        path = tmp_path / "data.bin"
        nbytes = write_typed(path, data)
        assert nbytes == 17 * 8
        back = read_typed(path)
        np.testing.assert_array_equal(back, data)

    def test_stored_precision_conversion(self, tmp_path):
        data = np.linspace(0, 1, 8)
        path = tmp_path / "data32.bin"
        write_typed(path, data, stored=Precision.SINGLE)
        back = read_typed(path, stored=Precision.SINGLE)
        assert back.dtype == np.float32
        np.testing.assert_allclose(back, data, rtol=1e-6)

    def test_write_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "x.bin"
        write_typed(path, np.ones(3))
        assert path.exists()

    def test_read_missing_file_raises(self, tmp_path):
        with pytest.raises(MixPBenchError, match="not found"):
            read_typed(tmp_path / "missing.bin")

    def test_count_limits_read(self, tmp_path):
        path = tmp_path / "d.bin"
        write_typed(path, np.arange(10.0))
        assert read_typed(path, count=4).shape == (4,)


class TestWorkspaceIO:
    def test_mp_fread_converts_to_configured_precision(self, tmp_path):
        path = tmp_path / "input.bin"
        write_typed(path, np.arange(6.0))
        ws = Workspace(PrecisionConfig({"x": Precision.SINGLE}))
        x = mp_fread(ws, "x", path)
        assert x.dtype == np.float32
        np.testing.assert_array_equal(x.data, np.arange(6, dtype=np.float32))

    def test_mp_fread_reshapes(self, tmp_path):
        path = tmp_path / "grid.bin"
        write_typed(path, np.arange(12.0))
        ws = Workspace()
        x = mp_fread(ws, "x", path, shape=(3, 4))
        assert x.shape == (3, 4)

    def test_mp_fread_records_io(self, tmp_path):
        path = tmp_path / "input.bin"
        write_typed(path, np.arange(6.0))
        ws = Workspace()
        mp_fread(ws, "x", path)
        assert ws.profile.io_bytes == 48

    def test_mp_fwrite_converts_back_to_stored(self, tmp_path):
        ws = Workspace(PrecisionConfig({"x": Precision.SINGLE}))
        x = ws.array("x", init=np.linspace(0, 1, 5))
        path = tmp_path / "out.bin"
        mp_fwrite(ws, x, path)
        back = read_typed(path)
        assert back.dtype == np.float64
        np.testing.assert_allclose(back, x.data, rtol=1e-6)

    def test_mp_fwrite_counts_conversion_cast(self, tmp_path):
        ws = Workspace(PrecisionConfig({"x": Precision.SINGLE}))
        x = ws.array("x", init=np.ones(5))
        mp_fwrite(ws, x, tmp_path / "out.bin")
        assert ws.profile.cast_elements == 5

    def test_listing3_pattern(self, tmp_path):
        """The paper's Listing 3: read, compute, write — under both
        precisions, with the file format fixed at double."""
        path_in = tmp_path / "input.bin"
        write_typed(path_in, np.arange(8.0))
        outputs = {}
        for name, precision in [("d", Precision.DOUBLE), ("s", Precision.SINGLE)]:
            ws = Workspace(PrecisionConfig({"ptr": precision}))
            ptr = mp_fread(ws, "ptr", path_in)
            ptr[:] = ptr * 2.0
            path_out = tmp_path / f"out_{name}.bin"
            mp_fwrite(ws, ptr, path_out)
            outputs[name] = read_typed(path_out)
        assert outputs["d"].dtype == outputs["s"].dtype == np.float64
        np.testing.assert_allclose(outputs["d"], outputs["s"], rtol=1e-6)
