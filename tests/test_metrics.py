"""Unit tests for the verification library metrics."""

import math

import numpy as np
import pytest

from repro.errors import VerificationError
from repro.verify.metrics import (
    available_metrics, get_metric, lower_is_better, mae, max_abs_error,
    mcr, mre, mse, r_squared, register_metric, relative_divergence, rmse,
)


class TestMae:
    def test_identical_outputs(self):
        x = np.linspace(0, 1, 10)
        assert mae(x, x.copy()) == 0.0

    def test_known_value(self):
        assert mae([1.0, 2.0], [1.5, 2.5]) == pytest.approx(0.5)

    def test_sign_symmetric(self):
        ref = np.zeros(4)
        assert mae(ref, ref + 0.1) == pytest.approx(mae(ref, ref - 0.1))

    def test_nan_candidate_gives_nan(self):
        assert math.isnan(mae([1.0, 2.0], [1.0, float("nan")]))

    def test_inf_candidate_gives_nan(self):
        assert math.isnan(mae([1.0], [float("inf")]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(VerificationError, match="shapes differ"):
            mae([1.0, 2.0], [1.0])

    def test_empty_outputs_raise(self):
        with pytest.raises(VerificationError, match="empty"):
            mae([], [])

    def test_accepts_2d_inputs(self):
        a = np.ones((3, 3))
        assert mae(a, a + 1) == pytest.approx(1.0)


class TestMseRmse:
    def test_mse_known_value(self):
        assert mse([0.0, 0.0], [1.0, 3.0]) == pytest.approx(5.0)

    def test_rmse_is_sqrt_of_mse(self):
        ref = np.zeros(5)
        cand = np.arange(5.0)
        assert rmse(ref, cand) == pytest.approx(math.sqrt(mse(ref, cand)))

    def test_rmse_penalises_outliers_more_than_mae(self):
        ref = np.zeros(10)
        spike = np.zeros(10)
        spike[0] = 10.0
        assert rmse(ref, spike) > mae(ref, spike)

    def test_nan_propagates(self):
        assert math.isnan(mse([1.0], [float("nan")]))
        assert math.isnan(rmse([1.0], [float("nan")]))


class TestR2:
    def test_perfect_fit(self):
        x = np.linspace(0, 1, 20)
        assert r_squared(x, x.copy()) == pytest.approx(1.0)

    def test_mean_predictor_scores_zero(self):
        ref = np.array([1.0, 2.0, 3.0, 4.0])
        cand = np.full(4, ref.mean())
        assert r_squared(ref, cand) == pytest.approx(0.0)

    def test_constant_reference(self):
        ref = np.ones(4)
        assert r_squared(ref, ref.copy()) == 1.0
        assert r_squared(ref, ref + 1) == float("-inf")

    def test_nan_candidate(self):
        assert math.isnan(r_squared([1.0, 2.0], [1.0, float("nan")]))


class TestMcr:
    def test_all_match(self):
        labels = np.array([0.0, 1.0, 2.0, 1.0])
        assert mcr(labels, labels.copy()) == 0.0

    def test_fraction_mismatched(self):
        assert mcr([0, 1, 2, 3], [0, 1, 9, 9]) == pytest.approx(0.5)

    def test_rounds_before_comparing(self):
        assert mcr([1.0, 2.0], [1.0001, 1.9999]) == 0.0

    def test_nan_candidate(self):
        assert math.isnan(mcr([1.0], [float("nan")]))


class TestRegistry:
    def test_builtins_present(self):
        assert set(available_metrics()) >= {"MAE", "MSE", "RMSE", "R2", "MCR"}

    def test_lookup_case_insensitive(self):
        assert get_metric("mae") is mae
        assert get_metric(" Rmse ") is rmse

    def test_unknown_metric_raises(self):
        with pytest.raises(VerificationError, match="unknown quality metric"):
            get_metric("WAT")

    def test_direction(self):
        assert lower_is_better("MAE")
        assert lower_is_better("MCR")
        assert not lower_is_better("R2")
        with pytest.raises(VerificationError):
            lower_is_better("WAT")

    def test_register_custom_metric(self):
        def max_abs(ref, cand):
            return float(np.max(np.abs(np.asarray(ref) - np.asarray(cand))))

        register_metric("MAXABS", max_abs)
        try:
            assert get_metric("maxabs")([0.0, 0.0], [1.0, 3.0]) == 3.0
            assert lower_is_better("MAXABS")
        finally:
            # keep the global registry clean for other tests
            from repro.verify import metrics as metrics_module
            metrics_module._METRICS.pop("MAXABS", None)

    def test_register_rejects_empty_name(self):
        with pytest.raises(ValueError):
            register_metric("  ", mae)


class TestExtensionMetrics:
    def test_linf_known_value(self):
        assert max_abs_error([0.0, 0.0, 0.0], [0.1, -0.5, 0.2]) == pytest.approx(0.5)

    def test_linf_dominates_mae(self):
        ref = np.zeros(8)
        cand = np.linspace(0, 1, 8)
        assert max_abs_error(ref, cand) >= mae(ref, cand)

    def test_linf_nan(self):
        assert math.isnan(max_abs_error([1.0], [float("nan")]))

    def test_mre_is_scale_free(self):
        ref = np.array([1.0, 10.0, 100.0])
        cand = ref * 1.01
        assert mre(ref, cand) == pytest.approx(0.01, rel=1e-9)

    def test_mre_nan(self):
        assert math.isnan(mre([1.0], [float("inf")]))

    def test_extension_metrics_registered(self):
        assert get_metric("LINF") is max_abs_error
        assert get_metric("mre") is mre
        assert lower_is_better("LINF")
        assert lower_is_better("MRE")


class TestNonFiniteHardening:
    """The metrics must stay warning-free and well-defined on the
    degenerate inputs low-precision (shadow) executions produce."""

    def test_mse_huge_candidate_overflows_to_inf_without_warning(self):
        with np.errstate(over="raise"):  # any FP warning becomes an error
            value = mse([0.0], [1e200])
        assert value == float("inf")

    def test_r2_constant_reference_imperfect_candidate(self):
        assert r_squared([2.0, 2.0], [2.0, 3.0]) == float("-inf")

    def test_r2_constant_reference_perfect_candidate(self):
        assert r_squared([2.0, 2.0], [2.0, 2.0]) == 1.0

    def test_mre_zero_reference_uses_absolute_error(self):
        # a zero reference cell must not divide by an epsilon floor
        assert mre([0.0, 1.0], [0.5, 1.0]) == pytest.approx(0.25)

    def test_mre_all_zero_reference(self):
        assert mre([0.0, 0.0], [0.0, 0.0]) == 0.0

    def test_mre_no_warning_on_zero_denominator(self):
        with np.errstate(divide="raise", invalid="raise"):
            mre(np.zeros(4), np.ones(4))


class TestRelativeDivergence:
    def test_identical_is_zero(self):
        x = np.linspace(-1, 1, 7)
        assert relative_divergence(x, x.copy()) == 0.0

    def test_known_value_is_symmetric(self):
        assert relative_divergence([2.0], [1.0]) == pytest.approx(0.5)
        assert relative_divergence([1.0], [2.0]) == pytest.approx(0.5)

    def test_zero_against_zero_contributes_zero(self):
        # 0 vs 0 must be exactly 0, never 0/0
        with np.errstate(invalid="raise", divide="raise"):
            assert relative_divergence([0.0, 1.0], [0.0, 1.0]) == 0.0

    def test_zero_against_nonzero_is_one(self):
        assert relative_divergence([0.0], [0.5]) == 1.0

    def test_bounded_by_two_for_finite_inputs(self):
        rng = np.random.default_rng(0)
        ref = rng.standard_normal(64)
        cand = -ref  # opposite signs: the worst finite case
        assert relative_divergence(ref, cand) <= 2.0

    def test_nonfinite_candidate_is_inf(self):
        assert relative_divergence([1.0], [float("nan")]) == float("inf")
        assert relative_divergence([1.0], [float("inf")]) == float("inf")

    def test_nonfinite_reference_positions_ignored(self):
        # inf reference cell carries no information; the finite cell decides
        value = relative_divergence([float("inf"), 2.0], [0.0, 1.0])
        assert value == pytest.approx(0.5)

    def test_all_nonfinite_reference_is_zero(self):
        assert relative_divergence([float("nan")], [1.0]) == 0.0

    def test_registered(self):
        assert get_metric("RELDIV") is relative_divergence
        assert lower_is_better("RELDIV")
