"""Persistent evaluation cache: replay across evaluator instances,
context-keyed invalidation, and torn-write tolerance.

The load-bearing property: a replayed evaluation charges the same
simulated cost and the same EV increment as the original, so result
tables are identical with a cold or a warm cache — only real host
time changes.
"""

import json

import pytest

from helpers import ToyProgram

from repro.core.evaluator import ConfigurationEvaluator
from repro.runtime import cache as cache_module
from repro.runtime.cache import EvaluationCache, context_fingerprint
from repro.search.registry import make_strategy


def make_pair(tmp_path, **program_args):
    """A ToyProgram plus an evaluator wired to a tmp-dir cache."""
    program = ToyProgram(n_clusters=5, toxic=(1,), **program_args)
    cache = EvaluationCache(tmp_path / "cache")
    evaluator = ConfigurationEvaluator(
        program, measurement_noise=0.0, cache=cache,
    )
    return program, evaluator


def trial_log(evaluator):
    return [
        (t.index, t.config.digest(), t.status, t.error_value, t.speedup,
         t.modeled_seconds, t.analysis_seconds)
        for t in evaluator.trials
    ]


class TestContextFingerprint:
    def test_stable(self):
        assert context_fingerprint(a=1, b="x") == context_fingerprint(a=1, b="x")

    def test_sensitive_to_every_field(self):
        base = context_fingerprint(program="p", threshold=1e-6)
        assert context_fingerprint(program="p", threshold=1e-4) != base
        assert context_fingerprint(program="q", threshold=1e-6) != base

    def test_schema_version_invalidates_globally(self, monkeypatch):
        before = context_fingerprint(program="p")
        monkeypatch.setattr(cache_module, "CACHE_SCHEMA_VERSION", 999)
        assert context_fingerprint(program="p") != before


class TestReplayAcrossInstances:
    def test_second_instance_replays_without_executing(self, tmp_path):
        program1, evaluator1 = make_pair(tmp_path)
        space = evaluator1.space()
        configs = [space.lower(loc) for loc in space.locations()]
        for config in configs:
            evaluator1.evaluate(config)
        assert evaluator1.stats.fresh_evaluations == len(configs)
        assert evaluator1.stats.persistent_hits == 0

        program2, evaluator2 = make_pair(tmp_path)
        baseline_only = program2.executions  # the reference execution
        for config in configs:
            evaluator2.evaluate(config)
        assert program2.executions == baseline_only  # nothing re-executed
        assert evaluator2.stats.persistent_hits == len(configs)
        assert evaluator2.stats.fresh_evaluations == 0

        # identical tables: same EV, same simulated clock, same trials
        assert evaluator2.evaluations == evaluator1.evaluations
        assert evaluator2.analysis_seconds == evaluator1.analysis_seconds
        assert trial_log(evaluator2) == trial_log(evaluator1)

    def test_search_outcome_identical_with_warm_cache(self, tmp_path):
        program1, evaluator1 = make_pair(tmp_path)
        cold = make_strategy("GA").run(evaluator1)

        program2, evaluator2 = make_pair(tmp_path)
        warm = make_strategy("GA").run(evaluator2)

        assert evaluator2.stats.persistent_hits > 0
        assert evaluator2.stats.fresh_evaluations < evaluator1.stats.fresh_evaluations
        a, b = cold.to_json_dict(), warm.to_json_dict()
        a["metadata"].pop("eval_stats")
        b["metadata"].pop("eval_stats")
        assert a == b

    def test_threshold_change_gives_cold_cache(self, tmp_path):
        program1, evaluator1 = make_pair(tmp_path)
        space = evaluator1.space()
        config = space.lower(space.locations()[0])
        evaluator1.evaluate(config)

        program2, evaluator2 = make_pair(tmp_path, threshold=1e-3)
        evaluator2.evaluate(config)
        assert evaluator2.stats.persistent_hits == 0
        assert evaluator2.stats.fresh_evaluations == 1

    def test_compile_errors_are_replayed_too(self, tmp_path):
        def build(tmp):
            program = ToyProgram(n_clusters=2, members_per_cluster=2)
            cache = EvaluationCache(tmp / "cache")
            return program, ConfigurationEvaluator(
                program, measurement_noise=0.0, cache=cache,
            )

        from repro.core.variables import Granularity

        program1, evaluator1 = build(tmp_path)
        # lower a single member of a two-member cluster: not compilable
        variable_space = program1.search_space(Granularity.VARIABLE)
        bad = variable_space.lower(variable_space.locations()[0])
        trial1 = evaluator1.evaluate(bad)
        assert not trial1.passed

        program2, evaluator2 = build(tmp_path)
        trial2 = evaluator2.evaluate(bad)
        assert trial2.status == trial1.status
        assert trial2.analysis_seconds == trial1.analysis_seconds
        assert evaluator2.stats.persistent_hits == 1
        assert evaluator2.stats.compile_errors == 1


class TestCacheStore:
    def test_counters_and_len(self, tmp_path):
        cache = EvaluationCache(tmp_path)
        assert cache.get("p", "ctx", "d1") is None
        assert cache.misses == 1
        cache.put("p", "ctx", "d1", {"status": "passed"})
        assert cache.writes == 1
        assert cache.get("p", "ctx", "d1") == {"status": "passed"}
        assert cache.hits == 1
        assert len(cache) == 1

    def test_survives_reload_from_disk(self, tmp_path):
        EvaluationCache(tmp_path).put("p", "ctx", "d1", {"x": 1})
        fresh = EvaluationCache(tmp_path)
        assert fresh.get("p", "ctx", "d1") == {"x": 1}

    def test_context_mismatch_is_a_miss(self, tmp_path):
        cache = EvaluationCache(tmp_path)
        cache.put("p", "ctx-a", "d1", {"x": 1})
        assert cache.get("p", "ctx-b", "d1") is None

    def test_torn_and_garbage_lines_are_skipped(self, tmp_path):
        cache = EvaluationCache(tmp_path)
        cache.put("p", "ctx", "d1", {"x": 1})
        path = next(tmp_path.glob("*.jsonl"))
        with path.open("a") as handle:
            handle.write('{"context": "ctx", "config": "d2", "rec')  # torn
            handle.write("\nnot json at all\n")
        good_line = json.dumps(
            {"context": "ctx", "config": "d3", "record": {"x": 3}}
        )
        with path.open("a") as handle:
            handle.write(good_line + "\n")
        fresh = EvaluationCache(tmp_path)
        assert fresh.get("p", "ctx", "d1") == {"x": 1}
        assert fresh.get("p", "ctx", "d2") is None
        assert fresh.get("p", "ctx", "d3") == {"x": 3}

    def test_program_names_are_sanitized(self, tmp_path):
        cache = EvaluationCache(tmp_path)
        cache.put("weird/name with spaces", "ctx", "d1", {"x": 1})
        files = list(tmp_path.glob("*.jsonl"))
        assert len(files) == 1
        assert "/" not in files[0].name
        assert " " not in files[0].name


class TestCacheToggleEquivalence:
    @pytest.mark.parametrize("algorithm", ["CB", "DD"])
    def test_tables_identical_with_and_without_cache(self, tmp_path, algorithm):
        program_a = ToyProgram(n_clusters=5, toxic=(1,))
        plain = ConfigurationEvaluator(program_a, measurement_noise=0.0)
        without = make_strategy(algorithm).run(plain)

        program_b, evaluator_b = make_pair(tmp_path)
        with_cache = make_strategy(algorithm).run(evaluator_b)

        a, b = without.to_json_dict(), with_cache.to_json_dict()
        a["metadata"].pop("eval_stats")
        b["metadata"].pop("eval_stats")
        assert a == b
