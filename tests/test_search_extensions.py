"""Tests for the extension strategies: RandomSearch and the
precision ladder."""

import pytest

from helpers import ToyProgram

from repro.core.evaluator import ConfigurationEvaluator
from repro.core.types import Precision
from repro.search import PrecisionLadderSearch, RandomSearch, make_strategy


def _evaluator(program=None, **kwargs):
    program = program if program is not None else ToyProgram(n_clusters=4, toxic=(0,))
    return ConfigurationEvaluator(program, measurement_noise=0.0, **kwargs)


class TestRandomSearch:
    def test_registered(self):
        assert make_strategy("RS").strategy_name == "random"
        assert make_strategy("random-search").strategy_name == "random"

    def test_finds_a_passing_config(self):
        outcome = RandomSearch(budget=20, seed=1).run(_evaluator())
        assert outcome.found_solution
        program = ToyProgram(n_clusters=4, toxic=(0,))
        space = program.search_space()
        toxic = space.clusters[0].cid
        assert toxic not in space.lowered_location_set(outcome.final.config)

    def test_budget_bounds_unique_evaluations(self):
        outcome = RandomSearch(budget=10, seed=3).run(
            _evaluator(ToyProgram(n_clusters=12)),
        )
        assert outcome.evaluations <= 10

    def test_deterministic_per_seed(self):
        a = RandomSearch(budget=15, seed=7).run(_evaluator())
        b = RandomSearch(budget=15, seed=7).run(_evaluator())
        assert a.final.config == b.final.config
        assert a.evaluations == b.evaluations

    def test_rejects_zero_budget(self):
        with pytest.raises(ValueError):
            RandomSearch(budget=0)

    def test_nothing_passes(self):
        outcome = RandomSearch(budget=10).run(
            _evaluator(ToyProgram(n_clusters=2, toxic=(0, 1))),
        )
        assert not outcome.found_solution

    def test_describe(self):
        info = RandomSearch(budget=12, seed=5).describe()
        assert info["budget"] == 12
        assert info["seed"] == 5


class TestPrecisionLadder:
    def test_registered(self):
        assert make_strategy("LD").strategy_name == "precision-ladder"

    def test_reaches_half_when_tolerated(self):
        """ToyProgram's error model ignores the level, so the ladder
        should push everything convertible down to half."""
        outcome = PrecisionLadderSearch().run(_evaluator())
        assert outcome.found_solution
        levels = set(outcome.final.config.values())
        assert Precision.HALF in levels
        assert Precision.DOUBLE not in levels or len(levels) >= 1

    def test_kernel_backs_off_at_strict_threshold(self, data_env):
        """On a real kernel whose fp16 error violates the bound, the
        ladder must return the single-precision rung."""
        from repro.benchmarks.base import get_benchmark
        from repro.verify.quality import QualitySpec
        evaluator = ConfigurationEvaluator(
            get_benchmark("banded-lin-eq"), quality=QualitySpec("MAE", 1e-8),
        )
        outcome = PrecisionLadderSearch().run(evaluator)
        assert outcome.found_solution
        assert set(outcome.final.config.values()) == {Precision.SINGLE}

    def test_kernel_reaches_half_at_loose_threshold(self, data_env):
        from repro.benchmarks.base import get_benchmark
        from repro.verify.quality import QualitySpec
        evaluator = ConfigurationEvaluator(
            get_benchmark("banded-lin-eq"), quality=QualitySpec("MAE", 1e-3),
        )
        outcome = PrecisionLadderSearch().run(evaluator)
        assert outcome.found_solution
        assert Precision.HALF in set(outcome.final.config.values())
        dd = make_strategy("DD").run(ConfigurationEvaluator(
            get_benchmark("banded-lin-eq"), quality=QualitySpec("MAE", 1e-3),
        ))
        assert outcome.speedup > dd.speedup

    def test_nothing_convertible(self):
        outcome = PrecisionLadderSearch().run(
            _evaluator(ToyProgram(n_clusters=2, toxic=(0, 1))),
        )
        assert not outcome.found_solution

    def test_mixed_three_level_config_is_possible(self, data_env):
        """On eos at a mid threshold the ladder may keep some clusters
        at single while dropping others to half — verify the machinery
        produces valid mixed-level configurations at all."""
        from repro.benchmarks.base import get_benchmark
        from repro.verify.quality import QualitySpec
        evaluator = ConfigurationEvaluator(
            get_benchmark("eos"), quality=QualitySpec("MAE", 1e-5),
        )
        outcome = PrecisionLadderSearch().run(evaluator)
        assert outcome.found_solution
        space = get_benchmark("eos").search_space()
        assert space.is_compilable(outcome.final.config)


class TestMultiLevelCombinational:
    """The paper's full p**loc enumeration (Section II)."""

    def _search(self, program, levels):
        from repro.search import CombinationalSearch
        evaluator = ConfigurationEvaluator(program, measurement_noise=0.0)
        return CombinationalSearch(levels=levels).run(evaluator)

    def test_p_cubed_enumeration_count(self):
        program = ToyProgram(n_clusters=2)
        outcome = self._search(
            program, (Precision.HALF, Precision.SINGLE, Precision.DOUBLE),
        )
        # 3^2 assignments minus the all-double baseline
        assert outcome.evaluations == 3 ** 2 - 1

    def test_finds_the_half_optimum(self):
        program = ToyProgram(n_clusters=2)
        outcome = self._search(
            program, (Precision.HALF, Precision.SINGLE, Precision.DOUBLE),
        )
        assert outcome.found_solution
        assert set(outcome.final.config.values()) == {Precision.HALF}

    def test_avoids_toxic_cluster_at_every_level(self):
        program = ToyProgram(n_clusters=3, toxic=(1,))
        outcome = self._search(
            program, (Precision.HALF, Precision.SINGLE, Precision.DOUBLE),
        )
        assert outcome.found_solution
        toxic_members = program.search_space().clusters[1].members
        for uid in toxic_members:
            assert outcome.final.config.precision_of(uid) is Precision.DOUBLE

    def test_ceiling_guards_explosion(self):
        from repro.search import CombinationalSearch
        program = ToyProgram(n_clusters=10)
        evaluator = ConfigurationEvaluator(program, measurement_noise=0.0)
        strategy = CombinationalSearch(
            levels=(Precision.HALF, Precision.SINGLE, Precision.DOUBLE),
            max_configurations=100,
        )
        with pytest.raises(ValueError, match="ceiling"):
            strategy._search(evaluator)

    def test_describe_includes_levels(self):
        from repro.search import CombinationalSearch
        info = CombinationalSearch(
            levels=(Precision.SINGLE, Precision.DOUBLE),
        ).describe()
        assert info["levels"] == ["single", "double"]

    def test_two_level_mode_matches_subset_mode(self):
        from repro.search import CombinationalSearch
        def fresh():
            return ToyProgram(n_clusters=3, toxic=(0,))

        subset = CombinationalSearch().run(
            ConfigurationEvaluator(fresh(), measurement_noise=0.0),
        )
        multi = CombinationalSearch(
            levels=(Precision.SINGLE, Precision.DOUBLE),
        ).run(ConfigurationEvaluator(fresh(), measurement_noise=0.0))
        assert subset.final.config == multi.final.config
