"""Unit tests for the instrumented MPArray wrapper."""

import numpy as np
import pytest

from repro.runtime.mparray import MPArray, unwrap, wrap
from repro.runtime.profiler import OpClass, Profile


@pytest.fixture()
def profile():
    return Profile()


def tracked(data, profile):
    return MPArray(np.asarray(data), profile)


class TestBasics:
    def test_wraps_only_ndarrays(self, profile):
        with pytest.raises(TypeError):
            MPArray([1, 2, 3], profile)

    def test_attributes_delegate(self, profile):
        arr = tracked(np.zeros((2, 3), dtype=np.float32), profile)
        assert arr.shape == (2, 3)
        assert arr.ndim == 2
        assert arr.size == 6
        assert arr.dtype == np.float32
        assert arr.nbytes == 24
        assert len(arr) == 2

    def test_unwrap_and_wrap(self, profile):
        raw = np.ones(3)
        assert unwrap(tracked(raw, profile)) is raw
        assert unwrap(42) == 42
        assert isinstance(wrap(raw, profile), MPArray)
        assert wrap(1.5, profile) == 1.5

    def test_zero_d_results_unwrap_to_scalars(self, profile):
        arr = tracked(np.arange(4.0), profile)
        total = arr.sum()
        assert isinstance(total, np.floating)
        assert float(total) == 6.0

    def test_conversions(self, profile):
        arr = tracked(np.asarray([2.5]), profile)
        assert float(arr) == 2.5
        assert int(arr) == 2
        assert bool(tracked(np.asarray([1.0]), profile))
        assert arr.item() == 2.5


class TestUfuncInstrumentation:
    def test_elementwise_counts_elements(self, profile):
        a = tracked(np.ones(100), profile)
        b = tracked(np.ones(100), profile)
        c = a + b
        assert isinstance(c, MPArray)
        assert profile.ops[(OpClass.CHEAP, "float64")] == 100
        assert profile.bytes_read == 1600
        assert profile.bytes_written == 800

    def test_results_match_numpy(self, profile):
        a = tracked(np.arange(5.0), profile)
        np.testing.assert_array_equal((a * 2 + 1).data, np.arange(5.0) * 2 + 1)

    def test_division_is_medium(self, profile):
        a = tracked(np.ones(10), profile)
        _ = a / 2.0
        assert profile.ops[(OpClass.MEDIUM, "float64")] == 10

    def test_exp_is_trans(self, profile):
        a = tracked(np.ones(10), profile)
        _ = np.exp(a)
        assert profile.ops[(OpClass.TRANS, "float64")] == 10

    def test_promotion_records_casts(self, profile):
        a32 = tracked(np.ones(10, dtype=np.float32), profile)
        strong64 = np.float64(2.0)
        result = a32 * strong64
        assert result.dtype == np.float64
        assert profile.cast_elements == 10

    def test_weak_python_float_keeps_dtype(self, profile):
        a32 = tracked(np.ones(10, dtype=np.float32), profile)
        result = a32 * 2.0
        assert result.dtype == np.float32
        assert profile.cast_elements == 0

    def test_comparison_charged_at_input_precision(self, profile):
        a = tracked(np.ones(10, dtype=np.float32), profile)
        _ = a > 0.5
        assert profile.ops[(OpClass.CHEAP, "float32")] == 10

    def test_reduce_counts_input_size(self, profile):
        a = tracked(np.ones(1000), profile)
        _ = np.add.reduce(a)
        assert profile.ops[(OpClass.CHEAP, "float64")] == 1000

    def test_reduceat(self, profile):
        a = tracked(np.ones(100), profile)
        out = np.add.reduceat(a, np.arange(0, 100, 10))
        assert out.shape == (10,)
        assert profile.ops[(OpClass.CHEAP, "float64")] == 100

    def test_out_kwarg_writes_in_place(self, profile):
        a = tracked(np.ones(10), profile)
        b = tracked(np.zeros(10), profile)
        result = np.add(a, a, out=b)
        np.testing.assert_array_equal(b.data, 2.0 * np.ones(10))
        assert isinstance(result, MPArray)

    def test_integer_ops_classed_int(self, profile):
        a = tracked(np.arange(10), profile)
        _ = a + 1
        assert (OpClass.INT, "int64") in profile.ops

    def test_matmul_counts_flops(self, profile):
        a = tracked(np.ones((4, 8)), profile)
        b = tracked(np.ones((8, 3)), profile)
        c = a @ b
        assert c.shape == (4, 3)
        assert profile.ops[(OpClass.CHEAP, "float64")] == 2 * 4 * 3 * 8


class TestFunctionInstrumentation:
    def test_dot_counts_flops(self, profile):
        a = tracked(np.ones(64), profile)
        b = tracked(np.ones(64), profile)
        result = np.dot(a, b)
        assert float(result) == 64.0
        assert profile.ops[(OpClass.CHEAP, "float64")] == 2 * 64

    def test_dot_mixed_dtype_records_cast(self, profile):
        a = tracked(np.ones(16, dtype=np.float32), profile)
        b = tracked(np.ones(16, dtype=np.float64), profile)
        np.dot(a, b)
        assert profile.cast_elements == 16

    def test_where_is_move(self, profile):
        cond = tracked(np.array([True, False, True]), profile)
        x = tracked(np.ones(3), profile)
        y = tracked(np.zeros(3), profile)
        result = np.where(cond, x, y)
        np.testing.assert_array_equal(result.data, [1.0, 0.0, 1.0])
        assert (OpClass.MOVE, "float64") in profile.ops

    def test_sum_mean_argmin_count_input(self, profile):
        a = tracked(np.arange(100.0), profile)
        assert float(np.sum(a)) == pytest.approx(4950.0)
        assert float(np.mean(a)) == pytest.approx(49.5)
        assert int(np.argmin(a)) == 0
        total = sum(
            n for (opclass, _d), n in profile.ops.items() if opclass is OpClass.CHEAP
        )
        assert total == 300

    def test_unknown_function_falls_back(self, profile):
        a = tracked(np.arange(10.0), profile)
        rolled = np.roll(a, 2)
        assert isinstance(rolled, MPArray)
        np.testing.assert_array_equal(rolled.data, np.roll(np.arange(10.0), 2))
        assert profile.ufunc_calls >= 1


class TestIndexing:
    def test_basic_slice_is_free_view(self, profile):
        a = tracked(np.arange(10.0), profile)
        view = a[2:5]
        assert isinstance(view, MPArray)
        assert profile.gather_elements == 0
        view[:] = 0.0
        assert a.data[3] == 0.0  # shares storage

    def test_scalar_index_returns_scalar(self, profile):
        a = tracked(np.arange(10.0), profile)
        assert a[3] == 3.0
        assert profile.gather_elements == 0

    def test_fancy_index_is_gather(self, profile):
        a = tracked(np.arange(10.0), profile)
        picked = a[np.array([1, 5, 7])]
        np.testing.assert_array_equal(picked.data, [1.0, 5.0, 7.0])
        assert profile.gather_elements == 3

    def test_boolean_mask_is_gather(self, profile):
        a = tracked(np.arange(10.0), profile)
        mask = np.arange(10) % 2 == 0
        picked = a[mask]
        assert picked.size == 5
        assert profile.gather_elements == 5

    def test_setitem_records_move(self, profile):
        a = tracked(np.zeros(10), profile)
        a[2:6] = 1.0
        assert profile.ops[(OpClass.MOVE, "float64")] == 4
        assert profile.bytes_written == 32

    def test_setitem_cast_on_dtype_mismatch(self, profile):
        a = tracked(np.zeros(10, dtype=np.float32), profile)
        a[:] = np.ones(10, dtype=np.float64)
        assert profile.cast_elements == 10
        assert a.dtype == np.float32

    def test_setitem_scatter(self, profile):
        a = tracked(np.zeros(10), profile)
        a[np.array([1, 3])] = 5.0
        assert profile.gather_elements == 2
        assert a.data[1] == 5.0

    def test_tuple_slicing_2d(self, profile):
        a = tracked(np.zeros((4, 4)), profile)
        a[1:-1, 1:-1] = 7.0
        assert a.data[1, 1] == 7.0
        assert profile.ops[(OpClass.MOVE, "float64")] == 4


class TestHelpers:
    def test_astype_records_cast(self, profile):
        a = tracked(np.ones(8, dtype=np.float64), profile)
        b = a.astype(np.float32)
        assert b.dtype == np.float32
        assert profile.cast_elements == 8

    def test_astype_same_dtype_no_cast(self, profile):
        a = tracked(np.ones(8), profile)
        a.astype(np.float64)
        assert profile.cast_elements == 0

    def test_copy_and_fill(self, profile):
        a = tracked(np.ones(8), profile)
        b = a.copy()
        b.fill(3.0)
        assert b.data[0] == 3.0
        assert a.data[0] == 1.0
        assert profile.ops[(OpClass.MOVE, "float64")] == 16

    def test_reshape_ravel_transpose_share_profile(self, profile):
        a = tracked(np.zeros((2, 3)), profile)
        assert a.reshape(3, 2).shape == (3, 2)
        assert a.ravel().shape == (6,)
        assert a.T.shape == (3, 2)
        assert a.transpose().shape == (3, 2)

    def test_iteration_yields_rows(self, profile):
        a = tracked(np.arange(6.0).reshape(2, 3), profile)
        rows = list(a)
        assert len(rows) == 2
        assert isinstance(rows[0], MPArray)

    def test_array_protocol(self, profile):
        a = tracked(np.arange(4.0), profile)
        raw = np.asarray(a)
        np.testing.assert_array_equal(raw, np.arange(4.0))
        converted = np.asarray(a, dtype=np.float32)
        assert converted.dtype == np.float32


class TestRecipeTableConcurrency:
    """The signature->recipe table is shared process state: reads are
    lock-free (GIL-atomic dict probes), writes go through
    ``_remember_recipe`` under a lock with bounded-size eviction."""

    def test_eviction_keeps_table_bounded(self, monkeypatch):
        from repro.runtime import mparray as _mparray

        monkeypatch.setattr(_mparray, "_RECIPES_MAX", 16)
        saved = dict(_mparray._RECIPES)
        _mparray._RECIPES.clear()
        try:
            for i in range(64):
                _mparray._remember_recipe(("synthetic", i), ("recipe", i))
                assert len(_mparray._RECIPES) <= 16
            # the newest insert always survives its own insertion
            assert _mparray._RECIPES[("synthetic", 63)] == ("recipe", 63)
        finally:
            _mparray._RECIPES.clear()
            _mparray._RECIPES.update(saved)

    def test_eviction_drops_oldest_quarter_first(self, monkeypatch):
        from repro.runtime import mparray as _mparray

        monkeypatch.setattr(_mparray, "_RECIPES_MAX", 8)
        saved = dict(_mparray._RECIPES)
        _mparray._RECIPES.clear()
        try:
            for i in range(8):
                _mparray._remember_recipe(("old", i), i)
            _mparray._remember_recipe(("new", 0), 99)
            assert ("old", 0) not in _mparray._RECIPES
            assert ("old", 1) not in _mparray._RECIPES
            assert ("old", 7) in _mparray._RECIPES
            assert _mparray._RECIPES[("new", 0)] == 99
        finally:
            _mparray._RECIPES.clear()
            _mparray._RECIPES.update(saved)

    def test_threaded_inserts_and_reads_stay_consistent(self, monkeypatch):
        import threading

        from repro.runtime import mparray as _mparray

        monkeypatch.setattr(_mparray, "_RECIPES_MAX", 32)
        errors = []
        barrier = threading.Barrier(8)

        def writer(worker):
            try:
                barrier.wait(timeout=10)
                for i in range(400):
                    key = ("thread", worker % 4, i % 40)
                    _mparray._remember_recipe(key, ("value", worker % 4, i % 40))
            except Exception as exc:  # noqa: BLE001 — reported below
                errors.append(exc)

        def reader(worker):
            try:
                barrier.wait(timeout=10)
                for i in range(400):
                    value = _mparray._RECIPES.get(("thread", worker % 4, i % 40))
                    # racing a concurrent eviction may miss, but a hit
                    # must be the full, correctly-keyed recipe tuple
                    if value is not None:
                        assert value == ("value", worker % 4, i % 40)
            except Exception as exc:  # noqa: BLE001 — reported below
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
        threads += [threading.Thread(target=reader, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert len(_mparray._RECIPES) <= 32

    def test_threaded_real_workloads_compute_correctly(self):
        import threading

        from repro.runtime.memory import Workspace

        errors = []

        def work(seed):
            try:
                ws = Workspace()
                x = ws.array("x", shape=64, fill=float(seed + 1))
                y = ws.array("y", shape=64, fill=2.0)
                for _ in range(25):
                    z = ((x + y) * 0.5 - y / 4.0) + float(seed)
                expected = ((seed + 1 + 2.0) * 0.5 - 0.5) + seed
                assert float(z[0]) == expected
            except Exception as exc:  # noqa: BLE001 — reported below
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
