"""Shared pytest fixtures."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))  # expose tests/helpers.py

from helpers import ToyProgram  # noqa: E402

from repro.core.evaluator import ConfigurationEvaluator  # noqa: E402


@pytest.fixture()
def toy_program() -> ToyProgram:
    """Four singleton clusters, cluster 0 toxic."""
    return ToyProgram(n_clusters=4, toxic=(0,))


@pytest.fixture()
def toy_evaluator(toy_program) -> ConfigurationEvaluator:
    return ConfigurationEvaluator(toy_program, measurement_noise=0.0)


@pytest.fixture()
def data_env(tmp_path, monkeypatch):
    """Route generated benchmark input files into the test's tmp dir."""
    monkeypatch.setenv("MIXPBENCH_DATA", str(tmp_path / "data"))
    return tmp_path
