"""Tests for table/CSV rendering."""

import csv
from repro.harness.reporting import (
    format_quality, format_speedup, format_table, write_csv,
)


class TestFormatQuality:
    def test_nan_renders_as_nan(self):
        assert format_quality(float("nan")) == "NaN"
        assert format_quality(None) == "NaN"

    def test_zero(self):
        assert format_quality(0.0) == "0"

    def test_power_of_ten_collapses(self):
        assert format_quality(1e-6) == "10^-6"
        assert format_quality(1.02e-9) == "10^-9"

    def test_general_mantissa(self):
        assert format_quality(3.44e-6) == "3.44e-6"
        assert format_quality(2.5e-10) == "2.50e-10"

    def test_negative_values(self):
        assert format_quality(-3.44e-6) == "-3.44e-6"


class TestFormatSpeedup:
    def test_regular(self):
        assert format_speedup(1.678) == "1.68"

    def test_nan_is_dash(self):
        assert format_speedup(float("nan")) == "-"
        assert format_speedup(None) == "-"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbbb"], [["xx", "y"], ["x", "yyyy"]])
        lines = text.splitlines()
        assert lines[0].startswith("a ")
        assert set(lines[1]) <= {"-", "+"}
        assert len(lines) == 4

    def test_title_underlined(self):
        text = format_table(["h"], [["v"]], title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert lines[1] == "=" * len("My Table")

    def test_non_string_cells(self):
        text = format_table(["n", "x"], [[1, 2.5]])
        assert "1" in text and "2.5" in text


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = write_csv(tmp_path / "deep" / "t.csv", ["a", "b"], [[1, 2], [3, 4]])
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]
