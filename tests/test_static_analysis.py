"""Tests for the precision dataflow analyzer, pruner, and linter.

Covers the three layers added on top of the dependence solver:
:mod:`repro.typeforge.dataflow` (output-reachability, must-equal
constraints, hazard sites), :mod:`repro.typeforge.prune` (sound static
search-space reduction), and :mod:`repro.typeforge.lint` (rule-coded
findings with inline suppressions), plus their CLI surfaces.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.benchmarks.base import get_benchmark
from repro.core.evaluator import ConfigurationEvaluator
from repro.core.types import Precision
from repro.core.variables import Cluster, SearchSpace, Variable, VariableKind
from repro.errors import BenchmarkNotFound
from repro.harness.cli import main
from repro.harness.reporting import format_prune_stats
from repro.search.registry import make_strategy
from repro.typeforge import analyze_sources
from repro.typeforge.astscan import scan_source
from repro.typeforge.dataflow import analyze_dataflow
from repro.typeforge.lint import (
    format_text, lint_benchmark, lint_sources, reports_to_json, resolve_targets,
)
from repro.typeforge.prune import prune_report, prune_space
from repro.verify.quality import QualitySpec

ACCUMULATOR = """
def k(ws, n):
    x = ws.array('x', 8)
    s = ws.scalar('s', 0.0)
    for i in range(n):
        s = s + x[i]
    return s
"""

IN_PLACE = """
def k(ws, n):
    x = ws.array('x', 8)
    y = ws.array('y', 8)
    for i in range(n):
        x[i] = x[i] + y[i]
    return x
"""

FREEZE_AND_MERGE = """
def k(ws, n):
    x = ws.array('x', 8)
    s = ws.scalar('s', 0.0)
    junk = ws.scalar('junk', 0.0)
    junk = junk + 2.0
    for i in range(n):
        s = s + x[i]
    return s
"""


def dataflow_of(src, entry="k"):
    return analyze_dataflow([scan_source(src, "m")], entry=entry)


def rules_of(df):
    return {h.rule for h in df.hazards}


class TestDataflow:
    def test_accumulator_must_equal(self):
        df = dataflow_of(ACCUMULATOR)
        assert [(m.rule, m.a, m.b) for m in df.must_equal] == [
            ("MPB102", "k.s", "k.x"),
        ]
        assert "MPB203" in rules_of(df)

    def test_in_place_chain_must_equal(self):
        df = dataflow_of(IN_PLACE)
        assert [(m.rule, m.a, m.b) for m in df.must_equal] == [
            ("MPB103", "k.x", "k.y"),
        ]
        assert "MPB201" in rules_of(df)

    def test_cancellation_subtraction_flagged(self):
        df = dataflow_of(
            "def k(ws):\n"
            " a = ws.array('a', 4)\n"
            " b = ws.array('b', 4)\n"
            " d = ws.scalar('d', 0.0)\n"
            " d = a[0] - b[0]\n"
            " return d\n"
        )
        assert {"MPB204", "MPB202"} <= rules_of(df)

    def test_tight_tolerance_flagged(self):
        df = dataflow_of(
            "def k(ws):\n"
            " e = ws.scalar('e', 1.0)\n"
            " if e < 1e-6:\n"
            "  return e\n"
            " return e\n"
        )
        assert "MPB205" in rules_of(df)

    def test_loose_tolerance_not_flagged(self):
        df = dataflow_of(
            "def k(ws):\n"
            " e = ws.scalar('e', 1.0)\n"
            " if e < 0.5:\n"
            "  return e\n"
            " return e\n"
        )
        assert "MPB205" not in rules_of(df)

    def test_unreferenced_accumulator_is_output_irrelevant(self):
        df = dataflow_of(FREEZE_AND_MERGE)
        assert df.output_irrelevant == {"k.junk"}
        assert df.reaches_output("k.s")
        assert not df.reaches_output("k.junk")

    def test_mp_fwrite_is_a_sink(self):
        df = dataflow_of(
            "def k(ws, path):\n"
            " out = ws.array('out', 4)\n"
            " mp_fwrite(ws, out, path)\n"
        )
        assert df.output_relevant == {"k.out"}
        assert not df.output_irrelevant

    def test_reaches_output_rejects_unknown_uid(self):
        df = dataflow_of(ACCUMULATOR)
        with pytest.raises(KeyError, match="ghost"):
            df.reaches_output("k.ghost")

    def test_flow_through_helper_call(self):
        # values passed through a helper still reach the entry's return
        df = dataflow_of(
            "def scale(ws, v):\n"
            " v[:] = v * 0.5\n"
            "def k(ws):\n"
            " data = ws.array('data', 8)\n"
            " coef = ws.scalar('coef', 2.0)\n"
            " scale(ws, data)\n"
            " return data\n"
        )
        assert "k.data" in df.output_relevant
        assert "scale.v" in df.output_relevant
        assert "k.coef" in df.output_irrelevant

    def test_summary_shape(self):
        summary = dataflow_of(FREEZE_AND_MERGE).summary()
        assert summary["entry"] == "k"
        assert summary["output_irrelevant"] == ["k.junk"]
        assert summary["must_equal"]
        assert summary["hazards"] > 0

    def test_hazards_are_located_and_sorted(self):
        df = dataflow_of(IN_PLACE)
        assert all(h.line > 0 for h in df.hazards)
        keys = [(h.file or h.module, h.line, h.col, h.rule) for h in df.hazards]
        assert keys == sorted(keys)


class TestPrune:
    def test_freeze_and_merge(self):
        report = analyze_sources({"m": FREEZE_AND_MERGE}, entry="k")
        result = prune_report(report)
        original = report.search_space()
        assert result.frozen == {"k.junk"}
        assert [(m.a, m.b) for m in result.merges] == [("k.s", "k.x")]
        assert result.space.locations() == ("k.s",)
        stats = result.stats(original)
        assert stats["locations_before"] == 3
        assert stats["locations_after"] == 1
        assert stats["merged"] == ["k.s~k.x [MPB102]"]
        assert "1 frozen, 1 merged" in result.describe(original)

    def test_nothing_to_prune_is_identity(self):
        report = analyze_sources(
            {"m": "def k(ws):\n x = ws.array('x', 4)\n return x\n"},
            entry="k",
        )
        result = prune_report(report)
        assert not result.frozen and not result.merges
        assert result.space.locations() == report.search_space().locations()

    def test_pruned_configs_are_admissible_in_original(self):
        report = analyze_sources({"m": FREEZE_AND_MERGE}, entry="k")
        result = prune_report(report)
        original = report.search_space()
        for location in result.space.locations():
            config = result.space.lower(location)
            assert original.is_compilable(config)
            for uid in result.frozen:
                assert config.precision_of(uid) is Precision.DOUBLE

    def test_prune_report_requires_scans(self):
        report = analyze_sources({"m": ACCUMULATOR}, entry="k")
        bare = dataclasses.replace(report, scans=())
        with pytest.raises(ValueError, match="no module scans"):
            prune_report(bare)

    def test_prune_space_skips_non_searchable_constraints(self):
        # a space narrower than the dataflow facts (e.g. pre-restricted)
        # must not crash on constraints that mention removed variables
        report = analyze_sources({"m": FREEZE_AND_MERGE}, entry="k")
        df = analyze_dataflow(report.scans, entry="k", dependence=report.dependence)
        narrowed = report.search_space().restrict(freeze=["k.s", "k.x"])
        result = prune_space(narrowed, df)
        assert not result.merges
        assert result.frozen == {"k.junk"}


def two_cluster_space():
    variables = [
        Variable("a", VariableKind.ARRAY, "f"),
        Variable("b", VariableKind.ARRAY, "f"),
        Variable("c", VariableKind.SCALAR, "f"),
    ]
    clusters = [
        Cluster("f.a", frozenset({"f.a", "f.b"})),
        Cluster("f.c", frozenset({"f.c"})),
    ]
    return SearchSpace(variables, clusters)


class TestRestrict:
    def test_freeze_removes_whole_cluster(self):
        space = two_cluster_space().restrict(freeze=["f.a", "f.b"])
        assert space.locations() == ("f.c",)
        assert space.total_variables == 1

    def test_merge_unifies_clusters(self):
        space = two_cluster_space().restrict(merge=[("f.a", "f.c")])
        assert space.total_clusters == 1
        assert space.total_variables == 3

    def test_freeze_unknown_variable_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            two_cluster_space().restrict(freeze=["f.ghost"])

    def test_partial_cluster_freeze_rejected(self):
        with pytest.raises(ValueError, match="whole clusters"):
            two_cluster_space().restrict(freeze=["f.a"])

    def test_merge_unknown_variable_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            two_cluster_space().restrict(merge=[("f.a", "f.ghost")])

    def test_frozen_cluster_merged_with_live_one_rejected(self):
        with pytest.raises(ValueError, match="merged clusters"):
            two_cluster_space().restrict(
                freeze=["f.a", "f.b"], merge=[("f.a", "f.c")],
            )


class TestPruneSearchEquivalence:
    """ISSUE acceptance: pruning shrinks the space but the best found
    configuration's verified error matches the unpruned search's."""

    @pytest.mark.parametrize("name", ["innerprod", "kmeans"])
    def test_best_error_unchanged(self, name, data_env):
        outcomes = {}
        for prune in (False, True):
            bench = get_benchmark(name)
            quality = QualitySpec(bench.metric, bench.default_threshold)
            kwargs = {}
            if prune:
                report = bench.report()
                pruned = prune_report(report)
                kwargs = dict(
                    space_override=pruned.space,
                    prune_info=pruned.stats(report.search_space()),
                )
            evaluator = ConfigurationEvaluator(bench, quality=quality, **kwargs)
            strategy = make_strategy("DD")
            outcomes[prune] = (
                strategy.run(evaluator),
                len(evaluator.space(strategy.granularity).locations()),
            )
        (plain, full_locs), (pruned_out, pruned_locs) = outcomes[False], outcomes[True]
        assert pruned_locs < full_locs
        assert pruned_out.found_solution == plain.found_solution
        assert pruned_out.error_value == plain.error_value
        assert pruned_out.metadata["prune"]["locations_after"] == pruned_locs


class TestLint:
    def test_findings_have_rules_severities_locations(self):
        report = lint_sources({"m": ACCUMULATOR}, entry="k", target="t")
        assert report.findings
        for finding in report.findings:
            assert finding.rule.startswith("MPB")
            assert finding.severity in ("error", "warning", "info")
            assert ":" in finding.location()
        assert report.worst_severity() == "warning"

    def test_style_error_becomes_mpb001(self):
        report = lint_sources(
            {"m": "def k(ws):\n y = ws.array('x', 4)\n"}, target="t",
        )
        assert [f.rule for f in report.findings] == ["MPB001"]
        finding = report.findings[0]
        assert finding.severity == "error"
        assert finding.line == 2
        assert report.worst_severity() == "error"

    def test_suppression_with_rule_list(self):
        src = ACCUMULATOR.replace(
            "s = s + x[i]", "s = s + x[i]  # mpb: ignore[MPB203]",
        )
        report = lint_sources({"m": src}, entry="k", target="t")
        by_rule = {f.rule: f for f in report.findings}
        assert by_rule["MPB203"].suppressed
        assert not by_rule["MPB202"].suppressed
        assert report.suppressed_count == 1
        assert all(f.rule != "MPB203" for f in report.active)

    def test_bare_suppression_covers_every_rule(self):
        src = ACCUMULATOR.replace("s = s + x[i]", "s = s + x[i]  # mpb: ignore")
        report = lint_sources({"m": src}, entry="k", target="t")
        on_line = [f for f in report.findings if f.line == 6]
        assert on_line and all(f.suppressed for f in on_line)

    def test_suppressed_findings_do_not_count(self):
        src = ACCUMULATOR.replace(
            "s = s + x[i]", "s = s + x[i]  # mpb: ignore[MPB202,MPB203]",
        )
        report = lint_sources({"m": src}, entry="k", target="t")
        assert report.count("warning") == 0

    def test_ignore_file_with_rule_list(self):
        src = "# mpb: ignore-file[MPB202, MPB203]\n" + ACCUMULATOR
        report = lint_sources({"m": src}, entry="k", target="t")
        by_rule = {f.rule: f for f in report.findings}
        assert by_rule["MPB202"].suppressed
        assert by_rule["MPB203"].suppressed
        assert not by_rule["MPB301"].suppressed  # not in the list
        assert report.suppressed_count >= 2

    def test_bare_ignore_file_suppresses_everything(self):
        src = "# mpb: ignore-file\n" + ACCUMULATOR
        report = lint_sources({"m": src}, entry="k", target="t")
        assert report.findings
        assert all(f.suppressed for f in report.findings)
        assert report.worst_severity() is None
        assert report.active == ()

    def test_ignore_file_does_not_act_as_line_ignore(self):
        # an ignore-file marker sharing a flagged line must not be
        # misread as an inline ignore[...] for that line only
        src = ACCUMULATOR.replace(
            "s = s + x[i]", "s = s + x[i]  # mpb: ignore-file[MPB999]",
        )
        report = lint_sources({"m": src}, entry="k", target="t")
        by_rule = {f.rule: f for f in report.findings}
        assert not by_rule["MPB203"].suppressed

    def test_json_reports_suppressed_count(self):
        src = "# mpb: ignore-file[MPB203]\n" + ACCUMULATOR
        report = lint_sources({"m": src}, entry="k", target="t")
        payload = reports_to_json([report])
        assert payload["targets"][0]["suppressed"] == report.suppressed_count
        assert payload["suppressed"] == report.suppressed_count
        assert payload["suppressed"] >= 1

    def test_bound_rules_reported_as_info(self):
        # the reduction kernel triggers the certifier's MPB301
        # (dominating site) and MPB302 (trip count not trace-bounded)
        report = lint_sources({"m": ACCUMULATOR}, entry="k", target="t")
        by_rule = {f.rule: f for f in report.findings}
        assert by_rule["MPB301"].severity == "info"
        assert by_rule["MPB302"].severity == "info"

    def test_format_text_and_json_agree(self):
        reports = [lint_sources({"m": ACCUMULATOR}, entry="k", target="t")]
        text = format_text(reports)
        assert "== t (warning)" in text
        assert "MPB203" in text
        payload = reports_to_json(reports)
        assert payload["totals"]["warning"] == reports[0].count("warning")
        assert payload["targets"][0]["target"] == "t"

    def test_benchmarks_lint_without_errors(self):
        # the whole registered suite must be MPB001-clean
        report = lint_benchmark("kmeans")
        assert report.count("error") == 0
        assert report.modules

    def test_resolve_targets_directory(self):
        import repro.benchmarks

        suite_dir = str(Path(repro.benchmarks.__file__).parent)
        reports = resolve_targets([suite_dir])
        assert len(reports) == 17

    def test_resolve_targets_rejects_foreign_directory(self, tmp_path):
        with pytest.raises(BenchmarkNotFound):
            resolve_targets([str(tmp_path)])

    def test_resolve_targets_python_file(self, tmp_path):
        target = tmp_path / "kernel.py"
        target.write_text(ACCUMULATOR)
        reports = resolve_targets([str(target)])
        assert reports[0].target == str(target)
        assert all(f.file == str(target) for f in reports[0].findings)


class TestCLI:
    def test_lint_exit_zero_on_warnings(self, capsys):
        assert main(["lint", "innerprod"]) == 0
        out = capsys.readouterr().out
        assert "== innerprod" in out
        assert "MPB" in out

    def test_lint_fail_on_warning(self):
        assert main(["lint", "innerprod", "--fail-on", "warning"]) == 1

    def test_lint_fail_on_never(self):
        assert main(["lint", "innerprod", "--fail-on", "never"]) == 0

    def test_lint_json_format(self, capsys):
        assert main(["lint", "innerprod", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["targets"][0]["target"] == "innerprod"
        assert set(payload["totals"]) == {"error", "warning", "info"}

    def test_lint_unknown_target_is_cli_error(self, capsys):
        assert main(["lint", "no-such-benchmark"]) == 2
        assert "mixpbench: error" in capsys.readouterr().err

    def test_lint_style_error_rendered_with_location(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def k(ws):\n y = ws.array('x', 4)\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert f"{bad}:2:" in out
        assert "MPB001" in out

    def test_analyze_prune_flag(self, capsys):
        assert main(["analyze", "kmeans", "--prune"]) == 0
        out = capsys.readouterr().out
        assert "pruned 11 -> 7 locations" in out
        assert "kmeans_clustering.delta" in out

    def test_search_prune_flag(self, capsys, data_env):
        assert main([
            "search", "kmeans", "--algorithm", "DD",
            "--prune", "--no-cache",
            "--output-dir", str(data_env / "out"),
        ]) == 0
        out = capsys.readouterr().out
        assert "pruned: 11 -> 7 locations (4 frozen, 0 merged)" in out

    def test_certify_text(self, capsys, data_env):
        assert main(["certify", "hpccg"]) == 0
        out = capsys.readouterr().out
        assert "static error-bound certificate" in out
        assert "calibration anchor" in out
        assert "bound sites:" in out
        assert "MPB301" in out

    def test_certify_inert_benchmark(self, capsys, data_env):
        # kmeans is exact at fp32 (MCR metric), so its certificate has
        # no weights and must say so instead of printing empty tables
        assert main(["certify", "kmeans"]) == 0
        out = capsys.readouterr().out
        assert "certificate is inert" in out

    def test_certify_json(self, capsys, data_env):
        assert main(["certify", "hpccg", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["program"] == "hpccg"
        assert payload["model"]["terms"]
        assert payload["certificate"]["weights"]
        ladder = payload["uniform_ladder"]
        assert [step["format"] for step in ladder] == [
            "e8m23", "e8m16", "e8m10", "e8m6", "e8m2",
        ]
        assert any(step["screened"] for step in ladder)

    def test_certify_unknown_benchmark_is_cli_error(self, capsys):
        assert main(["certify", "no-such-benchmark"]) == 2
        assert "mixpbench: error" in capsys.readouterr().err

    def test_search_screen_flag(self, capsys, data_env):
        assert main([
            "search", "hpccg", "--algorithm", "BW",
            "--screen", "--no-cache",
            "--output-dir", str(data_env / "out"),
        ]) == 0
        out = capsys.readouterr().out
        assert "screen: " in out
        assert "skipped" in out


def _load_prune_golden():
    path = Path(__file__).parent / "data" / "prune_golden.json"
    return json.loads(path.read_text())


PRUNE_GOLDEN = _load_prune_golden()


class TestPruneGolden:
    """Pin TV/TC before and after pruning for the whole suite.

    The "before" columns are the repo's reproduced Table II; the
    "after" columns pin what the static pruner removes.  Any analyzer
    change that shifts either shows up here as an explicit diff against
    ``tests/data/prune_golden.json``.
    """

    def test_every_benchmark_is_pinned(self):
        from repro.benchmarks.base import available_benchmarks

        assert sorted(PRUNE_GOLDEN) == sorted(available_benchmarks())
        assert len(PRUNE_GOLDEN) == 17

    @pytest.mark.parametrize("name", sorted(PRUNE_GOLDEN))
    def test_prune_stats_match_golden(self, name):
        expected = PRUNE_GOLDEN[name]
        report = get_benchmark(name).report()
        stats = prune_report(report).stats(report.search_space())
        assert stats["tv_before"] == expected["tv"]
        assert stats["tc_before"] == expected["tc"]
        assert stats["tv_after"] == expected["tv_pruned"]
        assert stats["tc_after"] == expected["tc_pruned"]
        assert stats["frozen"] == expected["frozen"]
        assert stats["merged"] == expected["merged"]

    def test_at_least_five_benchmarks_reduce(self):
        reduced = [
            name for name, row in PRUNE_GOLDEN.items()
            if (row["tv_pruned"], row["tc_pruned"]) != (row["tv"], row["tc"])
        ]
        assert len(reduced) >= 5
        assert {"cfd", "innerprod", "int-predict", "kmeans", "lavamd"} <= set(reduced)


class TestFormatPruneStats:
    def test_empty_renders_dash(self):
        assert format_prune_stats({}) == "-"
        assert format_prune_stats(None) == "-"

    def test_counts_rendered(self):
        stats = {
            "locations_before": 11, "locations_after": 7,
            "frozen": ["a", "b", "c", "d"], "merged": [],
        }
        assert format_prune_stats(stats) == "11 -> 7 locations (4 frozen, 0 merged)"
