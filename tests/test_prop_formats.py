"""Property-based tests for the emulated-format quantisation kernels.

Four families of properties over random values, widths and seeds:

* **idempotence** — requantising an already-quantised array changes
  nothing, for both rounding modes (the invariant that makes in-place
  requantisation of aliased buffers safe);
* **monotonicity** — nearest rounding at ``m+1`` mantissa bits is
  pointwise no further from the exact value than at ``m`` bits (the
  representable sets are nested, so the nearest point can only get
  closer);
* **exact-equivalence oracles** — ``e8m23``/``e11m52`` produce no
  :class:`QuantSpec` at all and parse to the storage dtypes of
  fp32/fp64, so their runs are fp32/fp64 runs by construction;
* **stochastic-rounding unbiasedness** — for every value the *exact*
  expectation ``p·hi + (1-p)·lo`` equals the value (verified in
  rational arithmetic, no sampling noise), and a fixed (seed, uid)
  pair replays the identical draw stream bit-for-bit.
"""

from __future__ import annotations

from fractions import Fraction

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given

from repro.core.types import (
    Precision, get_format, parse_precision, precision_rank,
)
from repro.runtime.quantize import quantize_array, spec_for

# Widths below the storage cap: the only ones that build a QuantSpec.
e8_widths = st.integers(min_value=2, max_value=22)
e11_widths = st.integers(min_value=2, max_value=51)

finite32 = st.floats(
    allow_nan=False, allow_infinity=False, width=32, allow_subnormal=True,
).map(np.float32)
finite64 = st.floats(
    min_value=-1e300, max_value=1e300, allow_nan=False, allow_infinity=False,
)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _quantized(values, fmt_name: str, seed: int = 0, uid: str = "v") -> np.ndarray:
    fmt = get_format(fmt_name)
    arr = np.asarray(values, dtype=fmt.dtype)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    out = arr.copy()
    spec = spec_for(fmt, seed, uid)
    if spec is not None:  # storage-exact widths store verbatim
        quantize_array(out, spec)
    return out


# -- idempotence -----------------------------------------------------------

@given(st.lists(finite64, min_size=1, max_size=32), e11_widths, seeds)
def test_nearest_requantisation_is_identity(values, m, seed):
    once = _quantized(values, f"e11m{m}")
    twice = _quantized(once, f"e11m{m}", seed=seed, uid="other")
    assert twice.tobytes() == once.tobytes()


@given(st.lists(finite32, min_size=1, max_size=32), e8_widths, seeds)
def test_stochastic_requantisation_is_identity(values, m, seed):
    """After one rounding the dropped tail is zero, so the round-up
    probability is exactly 0 — any further stochastic pass, under any
    seed, is the identity."""
    once = _quantized(values, f"e8m{m}sr", seed=0)
    twice = _quantized(once, f"e8m{m}sr", seed=seed, uid="other")
    assert twice.tobytes() == once.tobytes()


@given(st.lists(finite64, min_size=1, max_size=16), e11_widths)
def test_nearest_matches_between_exponent_families(values, m):
    """e8 and e11 kernels are the same bit trick on different storage;
    a value exactly representable in fp32 quantises identically through
    either family at the same width."""
    if m > 22:
        return
    via32 = _quantized(np.asarray(values, dtype=np.float32), f"e8m{m}")
    via64 = _quantized(np.asarray(via32, dtype=np.float64), f"e11m{m}")
    assert np.asarray(via64, dtype=np.float32).tobytes() == via32.tobytes()


# -- monotonicity in mantissa width ---------------------------------------

@given(st.lists(finite64, min_size=1, max_size=32), e11_widths)
def test_error_shrinks_with_mantissa_width(values, m):
    exact = np.asarray(values, dtype=np.float64)
    narrow = _quantized(exact, f"e11m{m}")
    wide = _quantized(exact, f"e11m{m + 1}")
    err_narrow = np.abs(narrow - exact)
    err_wide = np.abs(wide - exact)
    assert np.all(err_wide <= err_narrow)


@given(st.lists(finite32, min_size=1, max_size=32), e8_widths)
def test_error_shrinks_with_mantissa_width_e8(values, m):
    exact = np.asarray(values, dtype=np.float32)
    narrow = _quantized(exact, f"e8m{m}")
    wide = _quantized(exact, f"e8m{m + 1}")
    assert np.all(np.abs(wide - exact) <= np.abs(narrow - exact))


# -- storage-exact oracles -------------------------------------------------

def test_storage_exact_formats_build_no_spec():
    for name, oracle in (("e8m23", Precision.SINGLE), ("e11m52", Precision.DOUBLE)):
        fmt = get_format(name)
        assert fmt.shift == 0
        assert fmt.dtype == oracle.dtype
        assert spec_for(fmt, seed=0, uid="x") is None
    # built-ins never quantise either
    for p in Precision:
        assert spec_for(p, seed=0, uid="x") is None


@given(st.lists(finite32, min_size=1, max_size=32))
def test_e8m23_stores_are_fp32_stores(values):
    """Width 23 keeps every fp32 mantissa bit: rounding with shift 1 at
    width 22 changes bits for odd-tailed values, but the m23 path never
    even builds a kernel — the stored array is the fp32 array."""
    arr = np.asarray(values, dtype=np.float32)
    assert spec_for(get_format("e8m23"), 0, "v") is None
    assert spec_for(get_format("e11m52"), 0, "v") is None
    # and the parse path agrees on identity with the storage precision
    assert parse_precision("e8m23").storage is Precision.SINGLE
    assert parse_precision("e11m52").storage is Precision.DOUBLE
    assert arr.tobytes() == np.asarray(values, dtype=np.float32).tobytes()


# -- stochastic rounding ---------------------------------------------------

@given(st.lists(finite64, min_size=1, max_size=16), e11_widths, seeds)
def test_stochastic_rounding_is_exactly_unbiased(values, m, seed):
    """E[q(x)] == x in exact rational arithmetic: the two outcomes are
    the truncation ``lo`` and ``lo + ulp`` with P(up) = tail / 2**s,
    and bit patterns map to values linearly across the span."""
    fmt = get_format(f"e11m{m}sr")
    shift = fmt.shift
    exact = np.asarray(values, dtype=np.float64)
    u = exact.view(np.uint64)
    for x, bits in zip(exact, u):
        tail = int(bits) & ((1 << shift) - 1)
        lo_bits = int(bits) & ~((1 << shift) - 1)
        lo = float(np.uint64(lo_bits).view(np.float64))
        hi = float(np.uint64(lo_bits + (1 << shift)).view(np.float64))
        if not (np.isfinite(lo) and np.isfinite(hi)):
            continue  # rounding may overflow the binade into inf
        p_up = Fraction(tail, 1 << shift)
        expectation = (1 - p_up) * Fraction(lo) + p_up * Fraction(hi)
        assert expectation == Fraction(float(x))


@given(st.lists(finite64, min_size=1, max_size=64), e11_widths, seeds)
def test_stochastic_draws_replay_under_fixed_seed(values, m, seed):
    name = f"e11m{m}sr"
    first = _quantized(values, name, seed=seed, uid="acc")
    again = _quantized(values, name, seed=seed, uid="acc")
    assert first.tobytes() == again.tobytes()


@given(st.lists(finite64, min_size=4, max_size=64), e11_widths, seeds)
def test_stochastic_results_stay_on_the_grid(values, m, seed):
    """Whatever the draws, every stored value is representable at the
    emulated width (the dropped tail is zero)."""
    out = _quantized(values, f"e11m{m}sr", seed=seed)
    shift = get_format(f"e11m{m}").shift
    tails = out.view(np.uint64) & np.uint64((1 << shift) - 1)
    assert not tails.any()


# -- parsing / interning ---------------------------------------------------

@given(e11_widths, st.booleans())
def test_get_format_interns_one_instance(m, sr):
    name = f"e11m{m}{'sr' if sr else ''}"
    assert get_format(name) is get_format(name)
    assert parse_precision(name) is get_format(name)
    assert get_format(name).name == name


def test_unknown_format_errors_enumerate_custom_widths():
    """Unknown-precision messages must list the emulated widths, not
    just the three built-in dtype names (they all route through the
    format registry's hint)."""
    from repro.core.types import PrecisionConfig

    with pytest.raises(ValueError) as exc:
        parse_precision("float8")
    message = str(exc.value)
    assert "e8m<2..23>" in message and "e11m<2..52>" in message
    assert "sr" in message

    with pytest.raises(ValueError) as exc:
        PrecisionConfig.from_json_dict({
            "actions": [{"location": "x", "to_type": "e8m99"}],
            "default": "double",
        })
    # out-of-range widths report the valid range for that family
    assert "must be in [2, 23]" in str(exc.value)


def test_uniform_config_error_lists_custom_widths():
    import tests.helpers as _  # noqa: F401  (path setup parity)
    from repro.benchmarks.base import get_benchmark

    space = get_benchmark("eos").search_space()
    with pytest.raises(ValueError) as exc:
        space.uniform_config("bfloat16")
    assert "e8m<2..23>" in str(exc.value)
    # the registry spelling works where the unknown name failed
    config = space.uniform_config("e8m10")
    assert all(parse_precision(p).name == "e8m10" for _loc, p in config.items())


@given(st.sampled_from([2, 5, 10, 22]), st.sampled_from([2, 5, 10, 22]))
def test_precision_rank_orders_by_width(m_a, m_b):
    a, b = get_format(f"e8m{m_a}"), get_format(f"e8m{m_b}")
    assert (precision_rank(a) < precision_rank(b)) == (m_a < m_b)
    # built-in fp32 sorts before the storage-exact emulated spelling
    assert precision_rank(Precision.SINGLE) < precision_rank(get_format("e8m23"))
