"""Tests for the shadow-value sensitivity subsystem (repro.shadow).

The contracts under test, in the order the pipeline uses them:

* the fp64 reference path of a shadow run is **bit-identical** to a
  normal instrumented execution — shadow replicas are bookkeeping,
  never a perturbation;
* attribution is deterministic (repeated runs serialize identically)
  and sensible (a dyadic coefficient table has marginal 0);
* guided search outcomes are identical across serial/thread/process
  executors, and with guidance disabled every outcome is
  byte-identical to the unguided pipeline;
* the predict-and-verify recommendation is always backed by a real
  evaluation through the standard ``ConfigurationEvaluator``;
* shadow and prune provenance compose in ``SearchOutcome.metadata``;
* no benchmark emits runtime warnings under fp16 shadow execution.
"""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro.benchmarks.base import (
    available_benchmarks, collect_output, get_benchmark,
)
from repro.core.batch import make_executor
from repro.core.evaluator import ConfigurationEvaluator
from repro.core.types import PrecisionConfig
from repro.search.registry import make_strategy
from repro.shadow import (
    Recommendation, SensitivityReport, ShadowContext, ShadowOrder,
    ShadowWorkspace, recommend_and_verify, run_shadow_analysis,
    shadow_guidance,
)


def _shadow_reference_output(bench, precisions=("single",)) -> np.ndarray:
    """The fp64 reference output of one shadow-mode execution."""
    ctx = ShadowContext(precisions)
    report = bench.report()
    ws = ShadowWorkspace(
        PrecisionConfig(),
        name_map=report.name_map,
        seed=bench.seed,
        rng_cache=bench._shared_state()["rng"],
        shadow_context=ctx,
    )
    raw = bench.entry_point()(ws, **bench.inputs())
    return collect_output(raw)


def _outcome_payload(outcome) -> dict:
    """Outcome JSON with the host-timing telemetry stripped."""
    payload = outcome.to_json_dict()
    payload["metadata"].pop("eval_stats", None)
    return payload


class TestReferenceBitExactness:
    @pytest.mark.parametrize("name", ["tridiag", "innerprod", "eos", "planckian"])
    def test_fp64_path_identical_to_normal_run(self, name):
        bench = get_benchmark(name)
        normal = bench.execute(PrecisionConfig()).output
        shadowed = _shadow_reference_output(bench)
        assert normal.dtype == shadowed.dtype
        assert normal.tobytes() == shadowed.tobytes()

    def test_fp16_replicas_do_not_perturb_reference(self):
        bench = get_benchmark("eos")
        normal = bench.execute(PrecisionConfig()).output
        shadowed = _shadow_reference_output(bench, precisions=("single", "half"))
        assert normal.tobytes() == shadowed.tobytes()


class TestAttribution:
    @pytest.fixture(scope="class")
    def eos_report(self) -> SensitivityReport:
        return run_shadow_analysis(get_benchmark("eos"))

    def test_covers_declared_variables(self, eos_report):
        uids = {v.uid for v in eos_report.variables}
        assert {"kernel.u", "kernel.coef", "kernel.x"} <= uids

    def test_dyadic_coefficients_have_zero_marginal(self, eos_report):
        # eos's coefficient table is dyadic: exactly representable in
        # fp32, and its ops amplify nothing of its own
        scores = eos_report.marginal_scores()
        assert scores["kernel.coef"] == 0.0
        assert scores["kernel.u"] > 0.0

    def test_joint_score_saturates_but_marginal_discriminates(self, eos_report):
        joint = eos_report.variable_scores()
        marginal = eos_report.marginal_scores()
        # joint: coef shares the run's worst divergence with u
        assert joint["kernel.coef"] == joint["kernel.u"]
        assert marginal["kernel.coef"] < marginal["kernel.u"]

    def test_first_divergence_and_op_counts(self, eos_report):
        by_uid = {v.uid: v for v in eos_report.for_precision("single")}
        assert by_uid["kernel.u"].first_divergence_op == 1  # diverges at declaration
        assert by_uid["kernel.u"].ops > by_uid["kernel.x"].ops
        assert eos_report.op_count > 0

    def test_predicted_error_measured_on_uniform_replica(self, eos_report):
        predicted = eos_report.predicted_error["single"]
        assert 0.0 < predicted < 1e-6  # fp32-rounding scale for eos/MAE

    def test_variables_sorted_canonically(self, eos_report):
        keys = [(v.uid, v.precision) for v in eos_report.variables]
        assert keys == sorted(keys)


class TestDeterminism:
    def test_repeated_analysis_serializes_identically(self):
        bench = get_benchmark("planckian")
        first = run_shadow_analysis(bench).to_json_dict()
        second = run_shadow_analysis(bench).to_json_dict()
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_report_round_trips_through_json(self, tmp_path):
        report = run_shadow_analysis(get_benchmark("eos"), include_half=True)
        path = tmp_path / "report.json"
        report.save(path)
        assert SensitivityReport.load(path) == report

    @pytest.mark.parametrize("executor_name", ["serial", "thread", "process"])
    def test_guided_search_identical_across_executors(
        self, executor_name, data_env
    ):
        bench = get_benchmark("eos")
        location_order, shadow_info = shadow_guidance(bench)
        executor = make_executor(executor_name, 2)
        try:
            evaluator = ConfigurationEvaluator(
                bench, executor=executor,
                location_order=location_order, shadow_info=shadow_info,
            )
            outcome = make_strategy("DD").run(evaluator)
        finally:
            executor.close()
        payload = _outcome_payload(outcome)
        reference = _outcome_payload(
            make_strategy("DD").run(ConfigurationEvaluator(
                bench, location_order=location_order, shadow_info=shadow_info,
            ))
        )
        assert payload == reference


class TestDisabledModeByteIdentity:
    @pytest.mark.parametrize("algorithm", ["DD", "HR", "GA"])
    def test_explicit_none_order_is_the_unguided_pipeline(self, algorithm):
        bench = get_benchmark("eos")
        plain = make_strategy(algorithm).run(ConfigurationEvaluator(bench))
        disabled = make_strategy(algorithm).run(ConfigurationEvaluator(
            bench, location_order=None, shadow_info=None,
        ))
        assert _outcome_payload(disabled) == _outcome_payload(plain)
        assert "shadow" not in disabled.metadata


class TestGuidedSearchSavings:
    @pytest.mark.parametrize("name,algorithm", [
        ("eos", "DD"), ("planckian", "DD"), ("hpccg", "HR"),
    ])
    def test_same_error_fewer_evaluations(self, name, algorithm):
        bench = get_benchmark(name)
        unguided = make_strategy(algorithm).run(ConfigurationEvaluator(bench))
        location_order, shadow_info = shadow_guidance(bench)
        guided = make_strategy(algorithm).run(ConfigurationEvaluator(
            bench, location_order=location_order, shadow_info=shadow_info,
        ))
        assert guided.error_value == unguided.error_value
        assert guided.evaluations < unguided.evaluations
        assert guided.metadata["shadow"]["variables"] > 0


class TestRecommendation:
    def test_eos_recommendation_is_verified_and_exact(self):
        bench = get_benchmark("eos")
        report = run_shadow_analysis(bench)
        evaluator = ConfigurationEvaluator(bench)
        rec = recommend_and_verify(report, evaluator)
        assert isinstance(rec, Recommendation)
        assert rec.passed
        assert rec.lowered == ("kernel.coef",)
        assert rec.verified_error == 0.0

    @pytest.mark.parametrize("name", ["eos", "hpccg", "blackscholes"])
    def test_nonempty_recommendation_backed_by_passing_trial(self, name):
        bench = get_benchmark(name)
        report = run_shadow_analysis(bench)
        rec = recommend_and_verify(report, ConfigurationEvaluator(bench))
        assert rec.passed
        assert rec.evaluations == len(rec.trials)
        if rec.lowered:
            # the recommended config is literally one the evaluator passed
            assert any(
                t.passed and t.config == rec.config for t in rec.trials
            )
            threshold = bench.default_threshold
            assert rec.verified_error <= threshold

    def test_uniform_double_floor_when_nothing_tolerates(self):
        # an impossible threshold forces the recommendation down to the
        # unchanged program, which passes by definition
        bench = get_benchmark("hpccg")
        report = run_shadow_analysis(bench)
        from repro.verify.quality import QualitySpec

        evaluator = ConfigurationEvaluator(
            bench, quality=QualitySpec(bench.metric, 0.0),
        )
        rec = recommend_and_verify(report, evaluator)
        assert rec.passed
        assert rec.lowered == ()
        assert rec.verified_error == 0.0
        assert rec.evaluations >= 1  # it did try before falling back


class TestMetadataComposition:
    def test_prune_and_shadow_compose(self):
        from repro.typeforge.prune import prune_report

        bench = get_benchmark("kmeans")
        report = bench.report()
        pruned = prune_report(report)
        location_order, shadow_info = shadow_guidance(bench)
        evaluator = ConfigurationEvaluator(
            bench,
            space_override=pruned.space,
            prune_info=pruned.stats(report.search_space()),
            location_order=location_order,
            shadow_info=shadow_info,
        )
        outcome = make_strategy("DD").run(evaluator)
        assert outcome.metadata["prune"]["locations_after"] <= (
            outcome.metadata["prune"]["locations_before"]
        )
        assert outcome.metadata["shadow"]["ops"] > 0
        json.dumps(outcome.to_json_dict())  # the composition stays serializable


class TestShadowOrder:
    def test_score_of_takes_worst_observed_member(self):
        order = ShadowOrder("p", "single", scores={"a": 1.0, "b": 3.0})
        assert order.score_of(["a", "b"]) == 3.0

    def test_unobserved_members_ignored_in_mixed_groups(self):
        # parameter-binding aliases never declared through the
        # workspace must not poison their cluster's score
        order = ShadowOrder("p", "single", scores={"a": 1.0})
        assert order.score_of(["a", "callee.alias"]) == 1.0

    def test_fully_unobserved_group_is_most_sensitive(self):
        order = ShadowOrder("p", "single", scores={"a": 1.0})
        assert order.score_of(["x", "y"]) == float("inf")

    def test_arrange_is_most_sensitive_first_with_name_ties(self):
        bench = get_benchmark("eos")
        space = bench.search_space()
        order = run_shadow_analysis(bench).ordering()
        arranged = order.arrange(space.locations(), space)
        assert sorted(arranged) == sorted(space.locations())
        scores = [order.location_score(space, loc) for loc in arranged]
        assert scores == sorted(scores, reverse=True)

    def test_summary_is_json_safe_and_ranked(self):
        summary = run_shadow_analysis(get_benchmark("eos")).summary()
        json.dumps(summary)
        assert summary["variables"] == 5
        top_scores = [score for _, score in summary["top"]]
        assert top_scores == sorted(top_scores, reverse=True)


class TestWarningHygiene:
    @pytest.mark.parametrize("name", available_benchmarks())
    def test_no_runtime_warnings_under_fp16_shadows(self, name, data_env):
        bench = get_benchmark(name)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            report = run_shadow_analysis(bench, include_half=True)
        assert report.precisions == ("single", "half")
        json.dumps(report.to_json_dict())


class TestCli:
    def test_sensitivity_command(self, capsys, data_env):
        from repro.harness.cli import main

        assert main(["sensitivity", "eos"]) == 0
        out = capsys.readouterr().out
        assert "Shadow sensitivity for eos" in out
        assert "kernel.coef" in out
        assert "verified" in out

    def test_search_order_shadow(self, capsys, data_env):
        from repro.harness.cli import main

        assert main([
            "search", "eos", "--algorithm", "DD", "--order", "shadow",
            "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "shadow:" in out
        assert "vars ranked over" in out
