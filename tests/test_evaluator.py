"""Unit tests for the ConfigurationEvaluator."""

import math

import pytest

from helpers import ToyProgram

from repro.core.evaluator import ConfigurationEvaluator, measured_seconds
from repro.core.results import EvaluationStatus
from repro.core.types import Precision, PrecisionConfig
from repro.core.variables import Granularity
from repro.errors import MixPBenchError, SearchBudgetExceeded


def make_evaluator(**kwargs):
    program_args = kwargs.pop("program_args", {})
    program = ToyProgram(n_clusters=4, toxic=(0,), **program_args)
    return program, ConfigurationEvaluator(program, measurement_noise=0.0, **kwargs)


class TestMeasuredSeconds:
    def test_deterministic_per_digest(self):
        a = measured_seconds(1.0, "abc", 10)
        b = measured_seconds(1.0, "abc", 10)
        assert a == b

    def test_varies_with_digest(self):
        assert measured_seconds(1.0, "abc", 10) != measured_seconds(1.0, "xyz", 10)

    def test_close_to_modeled(self):
        assert measured_seconds(1.0, "abc", 10, noise=0.01) == pytest.approx(1.0, rel=0.05)

    def test_no_noise_is_identity(self):
        assert measured_seconds(2.5, "abc", 10, noise=0.0) == 2.5
        assert measured_seconds(2.5, "abc", 2, noise=0.1) == 2.5


class TestEvaluation:
    def test_passing_config(self):
        program, evaluator = make_evaluator()
        space = evaluator.space()
        safe = space.locations()[1]
        trial = evaluator.evaluate(space.lower(safe))
        assert trial.status is EvaluationStatus.PASSED
        assert trial.speedup > 1.0
        assert evaluator.evaluations == 1

    def test_failing_config(self):
        program, evaluator = make_evaluator()
        space = evaluator.space()
        toxic = space.locations()[0]
        trial = evaluator.evaluate(space.lower(toxic))
        assert trial.status is EvaluationStatus.FAILED_QUALITY
        assert trial.error_value > evaluator.quality.threshold

    def test_compile_error_for_split_cluster(self):
        program = ToyProgram(n_clusters=2, members_per_cluster=2)
        evaluator = ConfigurationEvaluator(program, measurement_noise=0.0)
        cluster = program.search_space().clusters[0]
        one_member = PrecisionConfig({sorted(cluster.members)[0]: Precision.SINGLE})
        trial = evaluator.evaluate(one_member)
        assert trial.status is EvaluationStatus.COMPILE_ERROR
        assert math.isnan(trial.speedup)
        # compile errors cost compile time but never run
        assert trial.analysis_seconds == program.compile_seconds

    def test_cache_returns_without_new_evaluation(self):
        program, evaluator = make_evaluator()
        space = evaluator.space()
        config = space.lower(space.locations()[1])
        first = evaluator.evaluate(config)
        executions = program.executions
        second = evaluator.evaluate(config)
        assert second.from_cache
        assert not first.from_cache
        assert second.speedup == first.speedup
        assert evaluator.evaluations == 1
        assert program.executions == executions

    def test_trials_log_excludes_cache_hits(self):
        _, evaluator = make_evaluator()
        space = evaluator.space()
        config = space.lower(space.locations()[1])
        evaluator.evaluate(config)
        evaluator.evaluate(config)
        assert len(evaluator.trials) == 1

    def test_best_passing(self):
        _, evaluator = make_evaluator()
        space = evaluator.space()
        evaluator.evaluate(space.lower(space.locations()[0]))   # fails
        evaluator.evaluate(space.lower(space.locations()[1]))   # 1 cluster gain
        best = evaluator.evaluate(space.lower(space.locations()[1:]))  # 3 clusters
        assert evaluator.best_passing() == best

    def test_best_passing_none_when_nothing_passes(self):
        _, evaluator = make_evaluator()
        space = evaluator.space()
        evaluator.evaluate(space.lower(space.locations()[0]))
        assert evaluator.best_passing() is None


class TestBudget:
    def test_time_budget_exhausts(self):
        program = ToyProgram(n_clusters=8)
        evaluator = ConfigurationEvaluator(
            program, time_limit_seconds=200.0, measurement_noise=0.0,
        )
        # baseline profiling charged ~60s; each eval ~60s
        space = evaluator.space()
        with pytest.raises(SearchBudgetExceeded):
            for location in space.locations():
                evaluator.evaluate(space.lower(location))
        assert evaluator.analysis_seconds >= 200.0 or evaluator.evaluations < 8

    def test_max_evaluations_ceiling(self):
        program = ToyProgram(n_clusters=8)
        evaluator = ConfigurationEvaluator(
            program, max_evaluations=2, measurement_noise=0.0,
        )
        space = evaluator.space()
        evaluator.evaluate(space.lower(space.locations()[0]))
        evaluator.evaluate(space.lower(space.locations()[1]))
        with pytest.raises(SearchBudgetExceeded):
            evaluator.evaluate(space.lower(space.locations()[2]))

    def test_cache_hits_do_not_consume_budget(self):
        program = ToyProgram(n_clusters=4)
        evaluator = ConfigurationEvaluator(
            program, max_evaluations=1, measurement_noise=0.0,
        )
        space = evaluator.space()
        config = space.lower(space.locations()[0])
        evaluator.evaluate(config)
        evaluator.evaluate(config)  # cached: no SearchBudgetExceeded

    def test_remaining_seconds(self):
        program, evaluator = make_evaluator(time_limit_seconds=1e6)
        before = evaluator.remaining_seconds
        space = evaluator.space()
        evaluator.evaluate(space.lower(space.locations()[1]))
        assert evaluator.remaining_seconds < before


class TestBaseline:
    def test_baseline_output_exposed(self):
        program, evaluator = make_evaluator()
        assert evaluator.baseline_output.shape == (8,)

    def test_nonfinite_baseline_rejected(self):
        class BrokenProgram(ToyProgram):
            def execute(self, config):
                result = super().execute(config)
                result.output[0] = float("nan")
                return result

        with pytest.raises(MixPBenchError, match="not finite"):
            ConfigurationEvaluator(BrokenProgram())

    def test_space_granularities(self):
        _, evaluator = make_evaluator()
        assert evaluator.space().granularity is Granularity.CLUSTER
        assert evaluator.space(Granularity.VARIABLE).granularity is Granularity.VARIABLE


class TestTimingModes:
    def test_wall_clock_mode_runs(self):
        from repro.core.evaluator import TimingMode
        program = ToyProgram(n_clusters=2)
        evaluator = ConfigurationEvaluator(
            program, timing=TimingMode.WALL_CLOCK,
        )
        space = evaluator.space()
        trial = evaluator.evaluate(space.lower(space.locations()[0]))
        assert trial.passed
        assert trial.speedup > 0
        # modeled time still recorded alongside
        assert trial.modeled_seconds > 0

    def test_wall_clock_disables_synthetic_noise(self):
        from repro.core.evaluator import TimingMode
        program = ToyProgram(n_clusters=2)
        evaluator = ConfigurationEvaluator(
            program, timing=TimingMode.WALL_CLOCK, measurement_noise=0.5,
        )
        assert evaluator._effective_noise() == 0.0

    def test_modeled_is_default(self):
        from repro.core.evaluator import TimingMode
        program = ToyProgram(n_clusters=2)
        evaluator = ConfigurationEvaluator(program)
        assert evaluator.timing is TimingMode.MODELED

    def test_cli_exports_timing(self):
        from repro.core import TimingMode
        assert TimingMode.WALL_CLOCK.value == "wall_clock"
