"""Unit tests for the benchmark helper functions' mathematics.

Each MPB helper is also plain numerics; these tests pin the formulas
directly (with double-precision workspaces), independent of the
precision machinery."""

import numpy as np
import pytest

from repro.runtime.memory import Workspace
from repro.runtime.mparray import MPArray


@pytest.fixture()
def ws():
    return Workspace(seed=0)


def wrap(ws, values):
    return MPArray(np.asarray(values, dtype=np.float64), ws.profile)


class TestKernelHelpers:
    def test_hydro_halo_is_periodic(self, ws):
        from repro.benchmarks.kernels.hydro_1d import halo
        u = wrap(ws, [99.0, 1.0, 2.0, 3.0, -99.0])
        halo(ws, u)
        assert u.data[0] == 3.0    # u[-2]
        assert u.data[-1] == 1.0   # u[1]

    def test_tridiag_sweep_elimination(self, ws):
        from repro.benchmarks.kernels.tridiag import sweep
        v = wrap(ws, [2.0, 4.0, 8.0])
        sweep(ws, v)
        np.testing.assert_array_equal(v.data, [2.0, 3.0, 6.0])

    def test_gen_lin_recur_doubling_is_prefix_sum(self, ws):
        from repro.benchmarks.kernels.gen_lin_recur import recurrence
        w = wrap(ws, [1.0, 1.0, 1.0, 1.0])
        recurrence(ws, w)   # halves: w[2:] += w[:2]
        np.testing.assert_array_equal(w.data, [1.0, 1.0, 2.0, 2.0])

    def test_int_predict_advance_damps(self, ws):
        from repro.benchmarks.kernels.int_predict import advance
        s = wrap(ws, [1.0, -2.0])
        advance(ws, s)
        np.testing.assert_allclose(s.data, [0.9375, -1.875])

    def test_int_predict_correct_is_convex_blend(self, ws):
        from repro.benchmarks.kernels.int_predict import correct
        s = wrap(ws, [0.0, 4.0, 8.0])
        correct(ws, s)
        # s[:-1] = 0.75*s[:-1] + 0.25*s[1:]
        np.testing.assert_allclose(s.data, [1.0, 5.0, 8.0])

    def test_diff_predictor_forward_diff(self, ws):
        from repro.benchmarks.kernels.diff_predictor import forward_diff
        s = wrap(ws, [1.0, 3.0, 6.0])
        forward_diff(ws, s)
        np.testing.assert_allclose(s.data, [1.0, 1.5, 3.0])

    def test_planckian_radiate_halves(self, ws):
        from repro.benchmarks.kernels.planckian import radiate
        f = wrap(ws, [2.0, 4.0])
        radiate(ws, f)
        np.testing.assert_array_equal(f.data, [1.0, 2.0])


class TestAppHelpers:
    def test_cfd_pressure_is_ideal_gas(self, ws):
        from repro.benchmarks.apps.cfd_flux import GAMMA, compute_pressure
        dens = wrap(ws, [1.0])
        energy = wrap(ws, [2.5])
        spd2 = wrap(ws, [0.0])
        pressure = compute_pressure(ws, dens, energy, spd2)
        assert float(pressure.data[0]) == pytest.approx((GAMMA - 1.0) * 2.5)

    def test_cfd_speed_of_sound(self, ws):
        from repro.benchmarks.apps.cfd_flux import GAMMA, compute_speed_of_sound
        dens = wrap(ws, [1.0])
        prs = wrap(ws, [1.0])
        sos = compute_speed_of_sound(ws, dens, prs)
        assert float(sos.data[0]) == pytest.approx(np.sqrt(GAMMA))

    def test_cfd_velocity_is_momentum_over_density(self, ws):
        from repro.benchmarks.apps.cfd_flux import compute_velocity
        vel = compute_velocity(ws, wrap(ws, [4.0]), wrap(ws, [2.0]))
        assert float(vel.data[0]) == 2.0

    def test_cfd_speed_sqd_sums_squares(self, ws):
        from repro.benchmarks.apps.cfd_flux import compute_speed_sqd
        spd2 = compute_speed_sqd(
            ws, wrap(ws, [1.0]), wrap(ws, [2.0]), wrap(ws, [2.0]),
        )
        assert float(spd2.data[0]) == 9.0

    def test_hpccg_ddot_matches_numpy(self, ws):
        from repro.benchmarks.apps.hpccg_ops import ddot
        a = wrap(ws, [1.0, 2.0, 3.0])
        b = wrap(ws, [4.0, 5.0, 6.0])
        assert float(ddot(ws, a, b)) == 32.0

    def test_hpccg_waxpby(self, ws):
        from repro.benchmarks.apps.hpccg_ops import waxpby
        x = wrap(ws, [1.0, 2.0])
        y = wrap(ws, [10.0, 20.0])
        out = wrap(ws, [0.0, 0.0])
        waxpby(ws, 2.0, x, 0.5, y, out)
        np.testing.assert_allclose(out.data, [7.0, 14.0])

    def test_hpccg_sparsemv_identity(self, ws):
        from repro.benchmarks.apps.hpccg_ops import sparsemv
        # 3x3 identity in CSR with one nonzero per row
        vals = wrap(ws, [1.0, 1.0, 1.0])
        x = wrap(ws, [7.0, 8.0, 9.0])
        y = wrap(ws, [0.0, 0.0, 0.0])
        cols = np.array([0, 1, 2], dtype=np.int32)
        row_start = np.array([0, 1, 2], dtype=np.int32)
        sparsemv(ws, vals, x, y, cols, row_start)
        np.testing.assert_array_equal(y.data, [7.0, 8.0, 9.0])

    def test_srad_coefficient_is_clamped(self, ws):
        from repro.benchmarks.apps.srad import diffusion_coefficient
        jc = wrap(ws, np.full((3, 3), 2.0))
        dn = wrap(ws, np.full((3, 3), 50.0))   # violent gradients
        ds = wrap(ws, np.full((3, 3), -50.0))
        dw = wrap(ws, np.full((3, 3), 50.0))
        de = wrap(ws, np.full((3, 3), -50.0))
        c = diffusion_coefficient(ws, jc, dn, ds, dw, de, np.float64(0.5))
        assert np.all(c.data >= 0.0)
        assert np.all(c.data <= 1.0)

    def test_blackscholes_cndf_limits(self, ws):
        from repro.benchmarks.apps.blackscholes import cndf
        x = wrap(ws, [-8.0, 0.0, 8.0])
        result = cndf(ws, x)
        assert float(result.data[0]) == pytest.approx(0.0, abs=1e-6)
        assert float(result.data[1]) == pytest.approx(0.5, abs=1e-6)
        assert float(result.data[2]) == pytest.approx(1.0, abs=1e-6)

    def test_blackscholes_cndf_is_monotone(self, ws):
        from repro.benchmarks.apps.blackscholes import cndf
        xs = np.linspace(-4, 4, 41)
        result = cndf(ws, wrap(ws, xs)).data
        assert np.all(np.diff(result) > 0)

    def test_lavamd_interaction_decays_with_distance(self, ws):
        from repro.benchmarks.apps.lavamd import interaction
        px = wrap(ws, [0.0]); py = wrap(ws, [0.0]); pz = wrap(ws, [0.0])
        qv = wrap(ws, [1.0])
        near = interaction(ws, px, py, pz, qv, px, py, pz, qv,
                           0.1, 0.0, 0.0, 0.5)
        far = interaction(ws, px, py, pz, qv, px, py, pz, qv,
                          2.0, 0.0, 0.0, 0.5)
        assert abs(float(near[0].data[0])) > abs(float(far[0].data[0]))

    def test_hotspot_iteration_conserves_boundary(self, ws):
        from repro.benchmarks.apps.hotspot import single_iteration
        t_in = wrap(ws, np.full((4, 4), 0.005))
        t_out = wrap(ws, np.zeros((4, 4)))
        power = wrap(ws, np.zeros((4, 4)))
        single_iteration(ws, t_in, t_out, power, np.float64(0.005),
                         0.2, 1.0, 1.0, 0.02)
        np.testing.assert_array_equal(t_out.data[0, :], t_in.data[0, :])
        np.testing.assert_array_equal(t_out.data[:, -1], t_in.data[:, -1])
        # uniform field at ambient: interior unchanged too
        np.testing.assert_allclose(t_out.data[1:-1, 1:-1], 0.005)
