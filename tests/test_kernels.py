"""Tests for the ten kernel benchmarks (paper Table I / Table II)."""

import numpy as np
import pytest

from repro.benchmarks.base import get_benchmark, kernel_benchmarks
from repro.core.types import Precision, PrecisionConfig
from repro.verify.metrics import mae

# the paper's Table II kernel rows — matched exactly by construction
TABLE2 = {
    "banded-lin-eq": (2, 1),
    "diff-predictor": (5, 1),
    "eos": (7, 2),
    "gen-lin-recur": (4, 1),
    "hydro-1d": (6, 2),
    "iccg": (2, 1),
    "innerprod": (3, 2),
    "int-predict": (9, 2),
    "planckian": (6, 2),
    "tridiag": (3, 1),
}

KERNELS = sorted(TABLE2)


def test_suite_has_ten_kernels():
    assert kernel_benchmarks() == tuple(KERNELS)


@pytest.mark.parametrize("name", KERNELS)
class TestEveryKernel:
    def test_table2_tv_tc_match_paper(self, name):
        report = get_benchmark(name).report()
        assert (report.total_variables, report.total_clusters) == TABLE2[name]

    def test_baseline_execution_finite(self, name):
        bench = get_benchmark(name)
        result = bench.execute(PrecisionConfig())
        assert np.all(np.isfinite(result.output))
        assert result.modeled_seconds > 0
        assert result.profile.total_flops() > 0

    def test_execution_is_deterministic(self, name):
        bench = get_benchmark(name)
        a = bench.execute(PrecisionConfig()).output
        b = get_benchmark(name).execute(PrecisionConfig()).output
        np.testing.assert_array_equal(a, b)

    def test_single_precision_runs_and_is_close(self, name):
        bench = get_benchmark(name)
        base = bench.execute(PrecisionConfig())
        single = bench.execute(bench.search_space().uniform_config(Precision.SINGLE))
        error = mae(base.output, single.output)
        assert np.isfinite(error)
        assert error < 1e-6  # kernels are engineered near the 1e-8 regime

    def test_single_precision_never_slower_than_half_speed(self, name):
        bench = get_benchmark(name)
        base = bench.execute(PrecisionConfig())
        single = bench.execute(bench.search_space().uniform_config(Precision.SINGLE))
        speedup = base.modeled_seconds / single.modeled_seconds
        assert 0.5 < speedup < 8.0


class TestKernelSpecificBehaviour:
    def test_exact_kernels_have_zero_single_error(self):
        """Dyadic-input kernels verify exactly (paper's 0.0 rows)."""
        for name in ("gen-lin-recur", "innerprod", "tridiag"):
            bench = get_benchmark(name)
            base = bench.execute(PrecisionConfig())
            single = bench.execute(bench.search_space().uniform_config(Precision.SINGLE))
            assert mae(base.output, single.output) == 0.0, name

    def test_banded_cache_crossing_speedup(self):
        """banded-lin-eq crosses the LLC boundary: speedup beyond 2x SIMD."""
        bench = get_benchmark("banded-lin-eq")
        base = bench.execute(PrecisionConfig())
        single = bench.execute(bench.search_space().uniform_config(Precision.SINGLE))
        assert base.modeled_seconds / single.modeled_seconds > 2.5

    def test_planckian_single_fails_strict_threshold(self):
        """Full single exceeds 1e-8 so searches must back off (paper)."""
        bench = get_benchmark("planckian")
        base = bench.execute(PrecisionConfig())
        single = bench.execute(bench.search_space().uniform_config(Precision.SINGLE))
        assert mae(base.output, single.output) > 1e-8

    def test_eos_coefficient_cluster_is_exact(self):
        """Lowering only the dyadic coefficient table changes nothing."""
        bench = get_benchmark("eos")
        base = bench.execute(PrecisionConfig())
        space = bench.search_space()
        coef_cluster = next(c for c in space.clusters if "coef" in c.cid)
        partial = bench.execute(space.lower(coef_cluster.cid))
        assert mae(base.output, partial.output) == 0.0

    def test_eos_field_cluster_fails_strict_threshold(self):
        bench = get_benchmark("eos")
        base = bench.execute(PrecisionConfig())
        space = bench.search_space()
        field_cluster = next(c for c in space.clusters if len(c) > 1)
        partial = bench.execute(space.lower(field_cluster.cid))
        assert mae(base.output, partial.output) > 1e-8

    def test_iccg_ping_pong_cluster(self):
        report = get_benchmark("iccg").report()
        assert report.clusters[0].members == frozenset({"kernel.x", "kernel.v"})

    def test_half_precision_also_supported(self):
        bench = get_benchmark("innerprod")
        half = bench.execute(bench.search_space().uniform_config(Precision.HALF))
        assert half.output.dtype == np.float64  # collected output is float64
