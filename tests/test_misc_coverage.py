"""Miscellaneous coverage: experiment helpers, errors hierarchy,
kernel input-scaling, and the remaining small surfaces."""

import pytest

from repro import errors


class TestErrorHierarchy:
    def test_all_errors_derive_from_base(self):
        subclasses = [
            errors.CompileError, errors.VerificationError, errors.StyleError,
            errors.UnknownVariableError, errors.SearchBudgetExceeded,
            errors.HarnessConfigError, errors.PluginError,
            errors.BenchmarkNotFound,
        ]
        for exc in subclasses:
            assert issubclass(exc, errors.MixPBenchError)

    def test_catchall(self):
        with pytest.raises(errors.MixPBenchError):
            raise errors.CompileError("split cluster")


class TestTableFormattingHelpers:
    def test_quality_nano_units(self):
        from repro.experiments.table3 import _quality_nano
        assert _quality_nano(0.0) == "0.0"
        assert _quality_nano(9.94e-9) == "9.94"
        assert _quality_nano(1.13e-9) == "1.13"
        assert _quality_nano(float("nan")) == "-"
        assert _quality_nano(None) == "-"

    def test_paper_quality_column_roundtrip(self):
        """Our renderer prints Table III qualities in the same units
        the paper's header declares (1e-9)."""
        from repro.experiments.table3 import _quality_nano
        from repro.experiments.paper_data import TABLE3_QUALITY
        for values in TABLE3_QUALITY.values():
            for value in values:
                rendered = _quality_nano(value * 1e-9)
                assert float(rendered.replace("-", "0") or 0) >= 0


class TestKernelInputScaling:
    @pytest.mark.parametrize("name, small_inputs", [
        ("hydro-1d", {"n": 500, "steps": 2}),
        ("eos", {"n": 100, "steps": 1}),
        ("tridiag", {"n": 64, "passes": 1}),
        ("iccg", {"n": 1024, "passes": 1}),
        ("gen-lin-recur", {"n": 128, "levels": 2}),
        ("diff-predictor", {"n": 1000, "order": 2}),
        ("banded-lin-eq", {"n": 1000, "sweeps": 1}),
        ("int-predict", {"n": 500, "steps": 1}),
        ("planckian", {"n": 200, "steps": 1}),
        ("innerprod", {"n": 256, "chunks": 4, "self_product": False}),
    ])
    def test_kernels_run_at_any_size(self, name, small_inputs):
        """The kernels are parametric in their problem size — a suite
        usability requirement for users with different budgets."""
        import numpy as np
        from repro.benchmarks.base import get_benchmark
        from repro.core.types import PrecisionConfig
        bench = get_benchmark(name)
        result = bench.execute(PrecisionConfig(), inputs=small_inputs)
        assert np.all(np.isfinite(result.output))
        assert result.modeled_seconds > 0

    def test_innerprod_self_product_branch(self):
        """The aliasing fast path (x = z) must compute x·x exactly."""
        import numpy as np
        from repro.benchmarks.base import get_benchmark
        from repro.core.types import PrecisionConfig
        bench = get_benchmark("innerprod")
        inputs = dict(bench.inputs(), self_product=True)
        result = bench.execute(PrecisionConfig(), inputs=inputs)
        assert float(result.output[0]) > 0  # a sum of squares


class TestVersionsAndMetadata:
    def test_pyproject_and_package_version_agree(self):
        import tomllib
        from pathlib import Path
        import repro
        pyproject = tomllib.loads(
            (Path(repro.__file__).parents[2] / "pyproject.toml").read_text()
        )
        assert pyproject["project"]["version"] == repro.__version__

    def test_console_scripts_declared(self):
        import tomllib
        from pathlib import Path
        import repro
        pyproject = tomllib.loads(
            (Path(repro.__file__).parents[2] / "pyproject.toml").read_text()
        )
        scripts = pyproject["project"]["scripts"]
        assert scripts["mixpbench"] == "repro.harness.cli:main"
        assert scripts["mixpbench-experiments"] == "repro.experiments.runner:main"


class TestDocumentationShipped:
    @pytest.mark.parametrize("name", [
        "README.md", "DESIGN.md", "EXPERIMENTS.md",
        "docs/mpb-style.md", "docs/machine-model.md",
        "docs/search-algorithms.md", "docs/harness.md", "docs/tutorial.md",
    ])
    def test_document_exists_and_is_substantial(self, name):
        from pathlib import Path
        import repro
        root = Path(repro.__file__).parents[2]
        path = root / name
        assert path.exists(), name
        assert len(path.read_text()) > 1500, name

    def test_design_references_every_table_and_figure(self):
        from pathlib import Path
        import repro
        root = Path(repro.__file__).parents[2]
        design = (root / "DESIGN.md").read_text()
        for artifact in ("Table I", "Table II", "Table III", "Table IV",
                         "Table V", "Fig 2a", "Fig 2b", "Fig 3"):
            assert artifact in design, artifact
