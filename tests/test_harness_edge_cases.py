"""Edge cases of the harness runner and scheduler."""

import math

from repro.harness.config import parse_config
from repro.harness.runner import Harness
from repro.harness.scheduler import SearchJob, run_grid


class TestRunnerEdgeCases:
    def test_no_solution_report(self, tmp_path, data_env):
        """SRAD at an impossible threshold with a tiny evaluation cap:
        the analysis completes but finds nothing; the report must say
        so without NaN crashes."""
        config = parse_config({
            "srad": {
                "threshold": 1e-30,
                "analysis": {
                    "fs": {
                        "name": "floatSmith",
                        "extra_args": {
                            "algorithm": "RS",
                            "strategy_args": {"budget": 3},
                        },
                    },
                },
            },
        })[0]
        report = Harness(output_dir=tmp_path).run_entry(config)
        analysis = report.analyses[0]
        assert not analysis.found_solution
        assert math.isnan(analysis.speedup)
        assert math.isnan(analysis.error_value)
        assert analysis.config is None
        assert analysis.artifact.exists()

    def test_timeout_report(self, tmp_path, data_env):
        """A micro budget forces a timeout; the harness reports it."""
        config = parse_config({
            "blackscholes": {
                "threshold": 1e-8,
                "time_limit_hours": 0.1,
                "analysis": {
                    "fs": {"name": "floatSmith",
                           "extra_args": {"algorithm": "DD"}},
                },
            },
        })[0]
        report = Harness(output_dir=tmp_path).run_entry(config)
        analysis = report.analyses[0]
        assert analysis.timed_out
        assert not analysis.found_solution

    def test_multiple_analyses_share_deployment(self, tmp_path, data_env):
        config = parse_config({
            "tridiag": {
                "threshold": 1e-8,
                "analysis": {
                    "first": {"name": "floatSmith",
                              "extra_args": {"algorithm": "DD"}},
                    "second": {"name": "floatSmith",
                               "extra_args": {"algorithm": "GA"}},
                },
            },
        })[0]
        report = Harness(output_dir=tmp_path).run_entry(config)
        assert [a.identifier for a in report.analyses] == ["first", "second"]
        assert {a.strategy for a in report.analyses} == {
            "delta-debugging", "genetic",
        }

    def test_metric_override_from_yaml(self, tmp_path, data_env):
        """YAML can verify with a different metric than the benchmark's
        default (here LINF instead of MAE)."""
        config = parse_config({
            "tridiag": {
                "metric": "LINF",
                "threshold": 1e-6,
                "analysis": {
                    "fs": {"name": "floatSmith",
                           "extra_args": {"algorithm": "DD"}},
                },
            },
        })[0]
        report = Harness(output_dir=tmp_path).run_entry(config)
        assert report.metric == "LINF"
        assert report.analyses[0].found_solution

    def test_extension_strategy_via_yaml(self, tmp_path, data_env):
        config = parse_config({
            "hydro-1d": {
                "threshold": 1e-8,
                "analysis": {
                    "hrc": {"name": "floatSmith",
                            "extra_args": {"algorithm": "HRC"}},
                },
            },
        })[0]
        report = Harness(output_dir=tmp_path).run_entry(config)
        assert report.analyses[0].strategy == "hierarchical-clustered"
        assert report.analyses[0].found_solution


class TestSchedulerEdgeCases:
    def test_metric_override_in_job(self, data_env):
        job = SearchJob("tridiag", "DD", 1e-6, metric="RMSE")
        result = run_grid([job])[0]
        assert result.ok
        assert result.outcome.found_solution

    def test_max_evaluations_propagates(self, data_env):
        job = SearchJob("eos", "CB", 1e-8, max_evaluations=1)
        result = run_grid([job])[0]
        assert result.ok
        assert result.outcome.timed_out
        assert result.outcome.evaluations == 1

    def test_empty_grid(self):
        assert run_grid([]) == []

    def test_unknown_algorithm_is_captured(self, data_env):
        result = run_grid([SearchJob("tridiag", "ZZ", 1e-6)])[0]
        assert not result.ok
        assert "unknown search strategy" in result.error
