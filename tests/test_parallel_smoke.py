"""End-to-end smoke: the CLI's parallel executors reproduce serial
results exactly on real suite benchmarks.

This is the regression gate behind CI's smoke job: for a fixed seed,
``mixpbench search --executor process`` must save a SearchOutcome
identical to the serial run (telemetry aside), and a repeat run
against a warm persistent cache must replay instead of re-executing.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).parent.parent


def run_cli(args, tmp_path):
    result = subprocess.run(
        [sys.executable, "-m", "repro.harness.cli", *args],
        capture_output=True, text=True, timeout=600, cwd=REPO_ROOT,
        env={"PATH": "/usr/bin:/bin", "HOME": str(tmp_path),
             "MIXPBENCH_DATA": str(tmp_path / "data"),
             "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def saved_outcome(path):
    payload = json.loads(Path(path).read_text())
    stats = payload["metadata"].pop("eval_stats")
    return payload, stats


@pytest.mark.parametrize("algorithm", ["GA", "CB"])
def test_process_executor_matches_serial(algorithm, tmp_path):
    common = [
        "search", "tridiag", "--algorithm", algorithm,
        "--max-evaluations", "12", "--no-cache",
        "--output-dir", str(tmp_path / "out"),
    ]
    run_cli([*common, "--executor", "serial",
             "--save", str(tmp_path / "serial.json")], tmp_path)
    run_cli([*common, "--executor", "process", "--workers", "2",
             "--save", str(tmp_path / "process.json")], tmp_path)

    serial, serial_stats = saved_outcome(tmp_path / "serial.json")
    parallel, parallel_stats = saved_outcome(tmp_path / "process.json")
    assert serial == parallel
    assert parallel_stats["executor"] == "process"
    assert parallel_stats["workers"] == 2
    assert parallel_stats["prefetched_executions"] > 0


def test_warm_cache_replays_instead_of_executing(tmp_path):
    common = [
        "search", "tridiag", "--algorithm", "GA",
        "--max-evaluations", "12",
        "--output-dir", str(tmp_path / "out"),
    ]
    run_cli([*common, "--save", str(tmp_path / "cold.json")], tmp_path)
    run_cli([*common, "--save", str(tmp_path / "warm.json")], tmp_path)

    cold, cold_stats = saved_outcome(tmp_path / "cold.json")
    warm, warm_stats = saved_outcome(tmp_path / "warm.json")
    assert cold == warm
    assert warm_stats["persistent_hits"] > 0
    assert warm_stats["fresh_evaluations"] < cold_stats["fresh_evaluations"]
    assert (tmp_path / "out" / "cache").is_dir()


def test_trace_file_is_written(tmp_path):
    run_cli([
        "search", "tridiag", "--algorithm", "DD", "--max-evaluations", "8",
        "--no-cache", "--trace", "--output-dir", str(tmp_path / "out"),
    ], tmp_path)
    trace = tmp_path / "out" / "traces" / "tridiag-DD.jsonl"
    assert trace.is_file()
    events = [json.loads(line) for line in trace.read_text().splitlines()]
    assert events, "trace is empty"
    kinds = {event["kind"] for event in events}
    assert "evaluate" in kinds
    assert [event["seq"] for event in events] == list(range(len(events)))
