"""Integration tests: cross-component behaviour of the whole stack."""

import json

import numpy as np
import pytest

from repro.benchmarks.base import available_benchmarks, get_benchmark
from repro.core.evaluator import ConfigurationEvaluator
from repro.core.results import SearchOutcome
from repro.core.types import Precision, PrecisionConfig
from repro.core.variables import Granularity
from repro.search import make_strategy
from repro.verify.quality import QualitySpec


class TestDtypePlumbing:
    """The configuration's dtype choices must actually reach the data."""

    @pytest.mark.parametrize("name", ["hydro-1d", "eos", "blackscholes"])
    def test_partial_config_changes_output(self, name, data_env):
        bench = get_benchmark(name)
        space = bench.search_space()
        base = bench.execute(PrecisionConfig())
        multi = next((c for c in space.clusters if len(c) > 1), space.clusters[0])
        partial = bench.execute(space.lower(multi.cid))
        # lowering a real compute cluster must perturb the output
        assert not np.array_equal(base.output, partial.output)

    def test_uniform_configs_order_errors_monotonically(self, data_env):
        """half error >= single error >= double error (= 0) on an
        inexact kernel."""
        from repro.verify.metrics import mae
        bench = get_benchmark("hydro-1d")
        space = bench.search_space()
        base = bench.execute(PrecisionConfig())
        single = mae(base.output, bench.execute(
            space.uniform_config(Precision.SINGLE)).output)
        half = mae(base.output, bench.execute(
            space.uniform_config(Precision.HALF)).output)
        assert 0.0 < single < half

    def test_cluster_members_share_dtype_at_runtime(self, data_env):
        """Executing any compilable config keeps cluster members
        consistent — exercised via the hpccg mega-cluster, whose
        vectors interact in every helper."""
        bench = get_benchmark("hpccg")
        space = bench.search_space()
        big = max(space.clusters, key=len)
        result = bench.execute(space.lower(big.cid))
        assert np.all(np.isfinite(result.output))


class TestSearchReproducibility:
    @pytest.mark.parametrize("algorithm", ["CB", "CM", "DD", "HR", "HC", "GA", "HRC"])
    def test_runs_are_bit_deterministic(self, algorithm, data_env):
        def run():
            evaluator = ConfigurationEvaluator(
                get_benchmark("eos"), quality=QualitySpec("MAE", 1e-8),
            )
            return make_strategy(algorithm).run(evaluator)

        first, second = run(), run()
        assert first.evaluations == second.evaluations
        assert first.analysis_seconds == second.analysis_seconds
        if first.found_solution:
            assert first.final.config == second.final.config
            assert first.speedup == second.speedup

    def test_outcome_survives_interchange_roundtrip(self, tmp_path, data_env):
        evaluator = ConfigurationEvaluator(
            get_benchmark("planckian"), quality=QualitySpec("MAE", 1e-8),
        )
        outcome = make_strategy("HR").run(evaluator)
        path = tmp_path / "outcome.json"
        outcome.save(path)
        loaded = SearchOutcome.load(path)
        assert loaded.evaluations == outcome.evaluations
        assert loaded.final == outcome.final
        assert [t.status for t in loaded.trials] == [t.status for t in outcome.trials]
        json.loads(path.read_text())  # strictly valid JSON (NaN encoded)

    def test_found_config_reproduces_reported_quality(self, data_env):
        """The harness re-verifies the tuned binary; search-reported
        quality and re-measured quality must agree exactly."""
        bench = get_benchmark("hydro-1d")
        quality = QualitySpec("MAE", 1e-8)
        evaluator = ConfigurationEvaluator(bench, quality=quality)
        outcome = make_strategy("DD").run(evaluator)
        assert outcome.found_solution
        base = bench.execute(PrecisionConfig())
        tuned = bench.execute(outcome.final.config)
        assert quality.measure(base.output, tuned.output) == outcome.error_value


class TestBudgetAccounting:
    def test_analysis_time_is_sum_of_trials_plus_baseline(self, data_env):
        evaluator = ConfigurationEvaluator(
            get_benchmark("eos"), quality=QualitySpec("MAE", 1e-8),
        )
        baseline_charge = evaluator.analysis_seconds
        assert baseline_charge > 0
        outcome = make_strategy("CB").run(evaluator)
        trial_costs = sum(t.analysis_seconds for t in outcome.trials)
        assert outcome.analysis_seconds == pytest.approx(
            baseline_charge + trial_costs,
        )

    def test_compile_errors_cost_less_than_runs(self, data_env):
        evaluator = ConfigurationEvaluator(
            get_benchmark("eos"), quality=QualitySpec("MAE", 1e-8),
        )
        outcome = make_strategy("HR").run(evaluator)
        compile_trials = [t for t in outcome.trials
                          if t.status.value == "compile_error"]
        run_trials = [t for t in outcome.trials if t.passed]
        assert compile_trials and run_trials
        assert max(t.analysis_seconds for t in compile_trials) < \
            min(t.analysis_seconds for t in run_trials)


class TestSuiteWideSmoke:
    def test_every_benchmark_tunes_with_dd(self, data_env):
        """DD completes on the entire suite at each program's default
        threshold — the suite's core usability contract."""
        for name in available_benchmarks():
            bench = get_benchmark(name)
            evaluator = ConfigurationEvaluator(bench)
            outcome = make_strategy("DD").run(evaluator)
            assert not outcome.timed_out, name
            assert outcome.evaluations >= 1, name

    def test_variable_and_cluster_views_are_consistent(self, data_env):
        for name in available_benchmarks():
            space = get_benchmark(name).search_space()
            variable_view = space.at(Granularity.VARIABLE)
            assert variable_view.total_variables == space.total_variables
            assert len(variable_view.locations()) >= len(space.locations())
            covered = set()
            for cluster in space.clusters:
                covered |= cluster.members
            assert covered == {v.uid for v in space.variables}
