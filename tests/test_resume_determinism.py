"""Determinism gate: kill-and-resume must be invisible in the results.

Mirrors the bit-exactness discipline of test_fastpath_exactness: an
uninterrupted reference grid is the contract, and resuming from a
journal cut at several points — right after the header, mid-way
through a job's trials, and on a torn half-record — must reproduce the
reference trial logs, EV counts and final configurations byte for
byte.  Only the telemetry block (``eval_stats``) may differ: a resumed
run answers journaled trials from the replay store, which it reports
as persistent hits.

The CLI test goes one step further and SIGKILLs a real ``mixpbench
grid`` process mid-run, then resumes it in a fresh process.
"""

from __future__ import annotations

import copy
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.harness.scheduler import SearchJob, run_grid

REPO_ROOT = Path(__file__).parent.parent

JOBS = [
    SearchJob("tridiag", "DD", 1e-8, max_evaluations=10),
    SearchJob("tridiag", "GA", 1e-8, max_evaluations=10),
    # prune + shadow guidance together: both provenance blocks must
    # ride through the journal and the resume byte-identically
    SearchJob("eos", "DD", 1e-8, max_evaluations=10, prune=True, shadow=True),
]


def _payloads(results):
    payloads = []
    for result in results:
        payload = copy.deepcopy(result.to_json_dict())
        if payload["outcome"]:
            payload["outcome"]["metadata"].pop("eval_stats", None)
        payloads.append(payload)
    return payloads


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """Uninterrupted journaled reference run + its journal lines."""
    patcher = pytest.MonkeyPatch()
    root = tmp_path_factory.mktemp("resume-determinism")
    patcher.setenv("MIXPBENCH_DATA", str(root / "data"))
    runs = root / "runs"
    results = run_grid(JOBS, run_id="reference", runs_dir=runs)
    assert all(result.ok for result in results)
    lines = (runs / "reference" / "journal.jsonl").read_bytes().splitlines(
        keepends=True
    )
    yield {"runs": runs, "payloads": _payloads(results), "lines": lines}
    patcher.undo()


def _cut_points(lines):
    """Three crash points: nothing journaled yet, mid-way through the
    trials, and a torn half-record at the tail."""
    return {
        "after-header": lines[:1],
        "mid-trials": lines[: 1 + (len(lines) - 1) // 2],
        "torn-tail": lines[:-1] + [lines[-1][: max(1, len(lines[-1]) // 2)]],
    }


@pytest.mark.parametrize("cut", ["after-header", "mid-trials", "torn-tail"])
def test_resume_is_bit_identical_to_uninterrupted(reference, cut):
    prefix = _cut_points(reference["lines"])[cut]
    run_id = f"cut-{cut}"
    cut_dir = reference["runs"] / run_id
    cut_dir.mkdir()
    (cut_dir / "journal.jsonl").write_bytes(b"".join(prefix))

    resumed = run_grid(JOBS, resume=run_id, runs_dir=reference["runs"])

    payloads = _payloads(resumed)
    assert payloads == reference["payloads"]
    # the headline numbers, spelled out for the humans reading a failure
    for mine, ref in zip(payloads, reference["payloads"]):
        assert mine["outcome"]["evaluations"] == ref["outcome"]["evaluations"]
        assert mine["outcome"]["final"] == ref["outcome"]["final"]
        assert mine["outcome"]["trials"] == ref["outcome"]["trials"]
    # the prune+shadow job's provenance composed and survived the resume
    guided = payloads[-1]["outcome"]["metadata"]
    assert guided["prune"]["locations_before"] >= guided["prune"]["locations_after"]
    assert guided["shadow"]["variables"] > 0 and guided["shadow"]["ops"] > 0


def test_resumed_journal_can_resume_again(reference):
    """A resume of a resume is still the reference — the journal stays
    consistent after the first recovery appended to it."""
    prefix = _cut_points(reference["lines"])["mid-trials"]
    cut_dir = reference["runs"] / "twice"
    cut_dir.mkdir()
    (cut_dir / "journal.jsonl").write_bytes(b"".join(prefix))
    first = run_grid(JOBS, resume="twice", runs_dir=reference["runs"])
    second = run_grid(JOBS, resume="twice", runs_dir=reference["runs"])
    assert all(result.resumed for result in second)
    assert _payloads(first) == reference["payloads"]
    assert _payloads(second) == reference["payloads"]


# -- CLI crash/recovery ------------------------------------------------------

GRID_ARGS = [
    "grid", "--programs", "tridiag", "--algorithms", "DD", "GA",
    "--thresholds", "1e-8", "--max-evaluations", "10", "--no-cache",
]


def _cli_env(tmp_path):
    return {
        "PATH": "/usr/bin:/bin", "HOME": str(tmp_path),
        "MIXPBENCH_DATA": str(tmp_path / "data"),
        "PYTHONPATH": str(REPO_ROOT / "src"),
    }


def _run_cli(args, tmp_path):
    result = subprocess.run(
        [sys.executable, "-m", "repro.harness.cli", *args],
        capture_output=True, text=True, timeout=600, cwd=REPO_ROOT,
        env=_cli_env(tmp_path),
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def _stripped_results(path):
    payloads = json.loads(Path(path).read_text())
    for payload in payloads:
        if payload["outcome"]:
            payload["outcome"]["metadata"].pop("eval_stats", None)
    return payloads


def test_cli_grid_survives_sigkill(tmp_path):
    out = tmp_path / "out"
    _run_cli([*GRID_ARGS, "--output-dir", str(out), "--run-id", "reference"],
             tmp_path)

    victim_journal = out / "runs" / "victim" / "journal.jsonl"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.harness.cli", *GRID_ARGS,
         "--output-dir", str(out), "--run-id", "victim"],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        cwd=REPO_ROOT, env=_cli_env(tmp_path),
    )
    try:
        # kill as soon as some trials hit the journal; if the grid is
        # faster than the poll the journal is simply complete, which
        # resumes just as well (and exercises the restore path)
        deadline = time.monotonic() + 120
        while process.poll() is None and time.monotonic() < deadline:
            if (
                victim_journal.exists()
                and victim_journal.read_bytes().count(b'"kind": "trial"') >= 3
            ):
                break
            time.sleep(0.01)
        if process.poll() is None:
            os.kill(process.pid, signal.SIGKILL)
    finally:
        process.wait(timeout=60)

    assert victim_journal.exists(), "the victim never journaled anything"
    _run_cli([*GRID_ARGS, "--output-dir", str(out), "--resume", "victim"],
             tmp_path)

    reference = _stripped_results(out / "runs" / "reference" / "results.json")
    recovered = _stripped_results(out / "runs" / "victim" / "results.json")
    assert recovered == reference
