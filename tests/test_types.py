"""Unit tests for repro.core.types (Precision, PrecisionConfig)."""

import json

import numpy as np
import pytest

from repro.core.types import Precision, PrecisionConfig


class TestPrecision:
    def test_dtype_mapping(self):
        assert Precision.HALF.dtype == np.dtype(np.float16)
        assert Precision.SINGLE.dtype == np.dtype(np.float32)
        assert Precision.DOUBLE.dtype == np.dtype(np.float64)

    def test_bits_and_bytes(self):
        assert Precision.HALF.bits == 16
        assert Precision.SINGLE.bits == 32
        assert Precision.DOUBLE.bits == 64
        assert Precision.SINGLE.bytes == 4

    @pytest.mark.parametrize("alias, expected", [
        ("single", Precision.SINGLE),
        ("float", Precision.SINGLE),
        ("fp32", Precision.SINGLE),
        ("32", Precision.SINGLE),
        ("DOUBLE", Precision.DOUBLE),
        ("float64", Precision.DOUBLE),
        ("half", Precision.HALF),
        (" fp16 ", Precision.HALF),
    ])
    def test_from_name(self, alias, expected):
        assert Precision.from_name(alias) is expected

    def test_from_name_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown precision"):
            Precision.from_name("quad")

    def test_from_dtype_roundtrip(self):
        for precision in Precision:
            assert Precision.from_dtype(precision.dtype) is precision

    def test_from_dtype_rejects_non_float(self):
        with pytest.raises(ValueError):
            Precision.from_dtype(np.int32)

    def test_ordering(self):
        assert Precision.HALF < Precision.SINGLE < Precision.DOUBLE
        assert Precision.DOUBLE >= Precision.SINGLE
        assert not Precision.SINGLE > Precision.SINGLE
        assert Precision.SINGLE <= Precision.SINGLE

    def test_ordering_with_other_types(self):
        with pytest.raises(TypeError):
            _ = Precision.SINGLE < 32


class TestPrecisionConfig:
    def test_empty_config_is_baseline(self):
        config = PrecisionConfig()
        assert config.is_baseline()
        assert config.precision_of("anything") is Precision.DOUBLE
        assert len(config) == 0

    def test_assignments_resolve(self):
        config = PrecisionConfig({"a": Precision.SINGLE})
        assert config.precision_of("a") is Precision.SINGLE
        assert config.precision_of("b") is Precision.DOUBLE
        assert config.dtype_of("a") == np.dtype(np.float32)

    def test_string_precision_names_are_coerced(self):
        config = PrecisionConfig({"a": "fp32", "b": "half"}, default="fp64")
        assert config.precision_of("a") is Precision.SINGLE
        assert config.precision_of("b") is Precision.HALF
        assert config.default is Precision.DOUBLE
        assert config == PrecisionConfig(
            {"a": Precision.SINGLE, "b": Precision.HALF}
        )

    def test_assign_accepts_string_names(self):
        config = PrecisionConfig().assign("a", "single")
        assert config.precision_of("a") is Precision.SINGLE

    def test_unknown_string_precision_rejected(self):
        with pytest.raises(ValueError, match="unknown precision"):
            PrecisionConfig({"a": "quad"})

    def test_default_assignments_are_dropped(self):
        config = PrecisionConfig({"a": Precision.DOUBLE, "b": Precision.SINGLE})
        assert "a" not in config
        assert "b" in config
        assert len(config) == 1

    def test_equality_is_canonical(self):
        explicit = PrecisionConfig({"a": Precision.DOUBLE})
        assert explicit == PrecisionConfig()
        assert hash(explicit) == hash(PrecisionConfig())

    def test_rejects_non_precision_values(self):
        with pytest.raises(TypeError, match="must be a Precision"):
            PrecisionConfig({"a": 3.14})

    def test_assign_returns_new_config(self):
        base = PrecisionConfig()
        derived = base.assign("x", Precision.SINGLE)
        assert base.is_baseline()
        assert derived.precision_of("x") is Precision.SINGLE

    def test_assign_many(self):
        config = PrecisionConfig().assign(["x", "y"], Precision.HALF)
        assert config.precision_of("x") is Precision.HALF
        assert config.precision_of("y") is Precision.HALF

    def test_without(self):
        config = PrecisionConfig({"x": Precision.SINGLE, "y": Precision.SINGLE})
        reduced = config.without("x")
        assert reduced.precision_of("x") is Precision.DOUBLE
        assert reduced.precision_of("y") is Precision.SINGLE

    def test_merge_prefers_other(self):
        first = PrecisionConfig({"x": Precision.SINGLE})
        second = PrecisionConfig({"x": Precision.HALF, "y": Precision.SINGLE})
        merged = first.merge(second)
        assert merged.precision_of("x") is Precision.HALF
        assert merged.precision_of("y") is Precision.SINGLE

    def test_lowered_locations(self):
        config = PrecisionConfig({"x": Precision.SINGLE, "y": Precision.HALF})
        assert config.lowered_locations() == frozenset({"x", "y"})

    def test_mapping_protocol(self):
        config = PrecisionConfig({"x": Precision.SINGLE})
        assert dict(config) == {"x": Precision.SINGLE}
        assert config["x"] is Precision.SINGLE
        assert list(iter(config)) == ["x"]

    def test_json_roundtrip(self):
        config = PrecisionConfig({"f.x": Precision.SINGLE, "g.y": Precision.HALF})
        payload = config.to_json_dict()
        json.dumps(payload)  # must be serialisable
        assert PrecisionConfig.from_json_dict(payload) == config

    def test_json_dict_structure(self):
        payload = PrecisionConfig({"x": Precision.SINGLE}).to_json_dict()
        assert payload["default"] == "double"
        assert payload["actions"] == [{"location": "x", "to_type": "single"}]

    def test_from_json_rejects_malformed(self):
        with pytest.raises(ValueError, match="malformed"):
            PrecisionConfig.from_json_dict({"nonsense": True})

    def test_digest_stable_and_distinct(self):
        a = PrecisionConfig({"x": Precision.SINGLE})
        b = PrecisionConfig({"y": Precision.SINGLE})
        assert a.digest() == PrecisionConfig({"x": Precision.SINGLE}).digest()
        assert a.digest() != b.digest()
        assert len(a.digest()) == 16

    def test_repr_mentions_assignments(self):
        config = PrecisionConfig({"x": Precision.SINGLE})
        assert "x=single" in repr(config)

    def test_custom_default(self):
        config = PrecisionConfig(default=Precision.SINGLE)
        assert config.precision_of("x") is Precision.SINGLE
        raised = config.assign("x", Precision.DOUBLE)
        assert raised.precision_of("x") is Precision.DOUBLE
        assert raised.lowered_locations() == frozenset()
