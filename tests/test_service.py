"""Tests of :mod:`repro.service`: specs, the durable queue, the
scheduler (quotas, cancellation, crash redispatch, recovery) and the
daemon-free client half."""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.checkpoint import JournalError, RunJournal, job_key
from repro.errors import MixPBenchError
from repro.harness.scheduler import run_grid, run_shard
from repro.service import (
    GridSpec, JobRecord, QuotaExceeded, Scheduler, SchedulerHooks,
    ServiceDraining, ServiceError, ServiceJournal, SpecError, UnknownJob,
    attach, job_status, load_service_state, request_cancel, results_path,
    service_status, state_paths, submit_request,
)

SMALL = dict(
    programs=("tridiag",), algorithms=("DD",), thresholds=(1e-8,),
    max_evaluations=4,
)


def small_spec(**overrides) -> GridSpec:
    return GridSpec(**{**SMALL, **overrides})


def stripped(payload: list[dict]) -> list[dict]:
    """Results with the run-dependent telemetry block removed — the
    repo-wide byte-identity comparison convention."""
    out = json.loads(json.dumps(payload))
    for row in out:
        (row.get("outcome") or {}).get("metadata", {}).pop("eval_stats", None)
    return out


# ---------------------------------------------------------------------------
# GridSpec / JobRecord


class TestGridSpec:
    def test_round_trip(self):
        spec = small_spec(executor="thread", executor_workers=2, prune=True)
        clone = GridSpec.from_json_dict(spec.to_json_dict())
        assert clone == spec
        assert clone.digest() == spec.digest()

    def test_digest_is_content_addressed(self):
        assert small_spec().digest() == small_spec().digest()
        assert small_spec().digest() != small_spec(max_evaluations=5).digest()

    def test_empty_axis_rejected(self):
        with pytest.raises(SpecError):
            GridSpec(programs=(), algorithms=("DD",), thresholds=(1e-8,))

    def test_unknown_executor_rejected(self):
        with pytest.raises(SpecError):
            small_spec(executor="quantum")

    def test_unknown_field_rejected(self):
        payload = small_spec().to_json_dict()
        payload["cache_dir"] = "/tmp/x"
        with pytest.raises(SpecError, match="cache_dir"):
            GridSpec.from_json_dict(payload)

    def test_missing_field_rejected(self):
        payload = small_spec().to_json_dict()
        del payload["programs"]
        with pytest.raises(SpecError, match="programs"):
            GridSpec.from_json_dict(payload)

    def test_shards_and_label(self):
        spec = GridSpec(
            programs=("a", "b"), algorithms=("DD", "GA"), thresholds=(1e-8,),
        )
        assert spec.shards == 4
        assert spec.label() == "a,b x DD,GA @ 1e-08"

    def test_fuse_round_trip_and_shard_propagation(self):
        spec = small_spec(fuse=False)
        clone = GridSpec.from_json_dict(spec.to_json_dict())
        assert clone == spec
        assert all(job.fuse is False for job in clone.jobs())
        assert all(job.fuse is True for job in small_spec().jobs())

    def test_fuse_defaults_true_for_legacy_payloads(self):
        payload = small_spec().to_json_dict()
        del payload["fuse"]  # a spec journaled before the field existed
        assert GridSpec.from_json_dict(payload).fuse is True

    def test_job_record_round_trip(self):
        record = JobRecord(
            job_id="job-0001-aaaa", tenant="alice", spec=small_spec(),
            state="done", stats={"shards": 1},
        )
        clone = JobRecord.from_json_dict(record.to_json_dict())
        assert clone == record
        assert clone.terminal


# ---------------------------------------------------------------------------
# Durable queue: the service journal


class TestServiceJournal:
    def test_fresh_directory_gets_header(self, tmp_path):
        journal = ServiceJournal(tmp_path)
        journal.close()
        state = load_service_state(state_paths(tmp_path)["journal"])
        assert state.version == 1
        assert state.jobs == {}

    def test_submit_and_state_round_trip(self, tmp_path):
        record = JobRecord(job_id="job-0001-aaaa", tenant="t", spec=small_spec())
        with ServiceJournal(tmp_path) as journal:
            journal.append_submit(record, 1)
            journal.append_state(record.job_id, "running")
            journal.append_state(
                record.job_id, "done", stats={"shards_done": 1},
            )
        state = load_service_state(state_paths(tmp_path)["journal"])
        loaded = state.jobs[record.job_id]
        assert loaded.state == "done"
        assert loaded.stats == {"shards_done": 1}
        assert state.sequence == 1

    def test_torn_tail_is_truncated_on_reopen(self, tmp_path):
        record = JobRecord(job_id="job-0001-aaaa", tenant="t", spec=small_spec())
        with ServiceJournal(tmp_path) as journal:
            journal.append_submit(record, 1)
        path = state_paths(tmp_path)["journal"]
        with path.open("ab") as handle:
            handle.write(b'{"kind": "state", "job_id": "job-0001-a')  # SIGKILL
        state = load_service_state(path)
        assert state.torn_tail
        assert state.jobs[record.job_id].state == "queued"
        with ServiceJournal(tmp_path) as journal:  # reopen truncates
            journal.append_state(record.job_id, "done")
        final = load_service_state(path)
        assert not final.torn_tail
        assert final.jobs[record.job_id].state == "done"

    def test_version_mismatch_refused(self, tmp_path):
        path = state_paths(tmp_path)["journal"]
        path.write_text('{"kind": "service", "version": 99}\n')
        with pytest.raises(JournalError, match="version"):
            ServiceJournal(tmp_path)

    def test_unknown_record_kinds_are_ignored(self, tmp_path):
        with ServiceJournal(tmp_path) as journal:
            journal.append("audit", who="future-schema")
        state = load_service_state(state_paths(tmp_path)["journal"])
        assert state.jobs == {}


# ---------------------------------------------------------------------------
# Scheduler


class TestScheduler:
    def test_two_tenants_dedupe_and_match_direct_grid(self, data_env):
        spec = small_spec(algorithms=("DD", "GA"), max_evaluations=8)
        scheduler = Scheduler(data_env / "svc", workers=2, quota=4)
        scheduler.start()
        try:
            first = scheduler.submit(spec, tenant="alice")
            second = scheduler.submit(spec, tenant="bob")
            assert scheduler.wait_job(first, timeout=180) == "done"
            assert scheduler.wait_job(second, timeout=180) == "done"
        finally:
            scheduler.stop(drain=True)

        stats_a = scheduler.status(first)["job"]["stats"]
        stats_b = scheduler.status(second)["job"]["stats"]
        # overlapping submissions dedupe through the one shared cache:
        # at least one tenant's evaluations were someone else's work
        assert stats_a["persistent_hits"] + stats_b["persistent_hits"] > 0
        assert stats_a["evaluations"] == stats_b["evaluations"]

        direct = [r.to_json_dict() for r in run_grid(spec.jobs())]
        for job_id in (first, second):
            served = json.loads(
                results_path(data_env / "svc", job_id).read_text()
            )
            assert stripped(served) == stripped(direct)

    def test_quota_counts_active_jobs_per_tenant(self, tmp_path):
        scheduler = Scheduler(tmp_path / "svc", quota=1)  # never started
        scheduler.submit(small_spec(), tenant="alice")
        with pytest.raises(QuotaExceeded):
            scheduler.submit(small_spec(), tenant="alice")
        scheduler.submit(small_spec(), tenant="bob")  # separate budget
        scheduler.stop(drain=False)

    def test_submit_while_draining_rejected(self, tmp_path):
        scheduler = Scheduler(tmp_path / "svc")
        scheduler.drain()
        with pytest.raises(ServiceDraining):
            scheduler.submit(small_spec())
        scheduler.stop(drain=False)

    def test_cancel_queued_job(self, tmp_path):
        scheduler = Scheduler(tmp_path / "svc")  # workers never started
        job_id = scheduler.submit(small_spec())
        assert scheduler.cancel(job_id) == "cancelled"
        assert scheduler.status(job_id)["job"]["state"] == "cancelled"
        assert not results_path(tmp_path / "svc", job_id).exists()
        assert scheduler.cancel(job_id) == "cancelled"  # idempotent no-op
        scheduler.stop(drain=False)
        # the cancellation is durable: a reopened service keeps it
        reopened = Scheduler(tmp_path / "svc")
        assert reopened.status(job_id)["job"]["state"] == "cancelled"
        reopened.stop(drain=False)

    def test_cancel_running_job_stops_at_shard_boundary(self, data_env):
        cancelled = threading.Event()
        holder: dict[str, Scheduler] = {}

        def on_shard_start(job_id: str, key: str) -> None:
            if not cancelled.is_set():
                cancelled.set()
                holder["scheduler"].cancel(job_id)

        scheduler = Scheduler(
            data_env / "svc", workers=1,
            hooks=SchedulerHooks(shard_started=on_shard_start),
        )
        holder["scheduler"] = scheduler
        job_id = scheduler.submit(small_spec(algorithms=("DD", "GA")))
        scheduler.start()
        try:
            assert scheduler.wait_job(job_id, timeout=180) == "cancelled"
        finally:
            scheduler.stop(drain=True)
        stats = scheduler.status(job_id)["job"]["stats"]
        # the in-flight shard finished, the unstarted one was dropped
        assert stats["shards_done"] == 1
        assert stats["shards"] == 2

    def test_worker_crash_is_redispatched(self, data_env):
        crashes = {"left": 1}

        def crash_once(job_id: str, key: str) -> None:
            if crashes["left"] > 0:
                crashes["left"] -= 1
                raise RuntimeError("synthetic worker crash")

        scheduler = Scheduler(
            data_env / "svc", workers=1, shard_retries=2,
            hooks=SchedulerHooks(shard_started=crash_once),
        )
        scheduler.start()
        try:
            job_id = scheduler.submit(small_spec())
            assert scheduler.wait_job(job_id, timeout=180) == "done"
        finally:
            scheduler.stop(drain=True)
        stats = scheduler.status(job_id)["job"]["stats"]
        assert stats["redispatched_shards"] == 1
        assert stats["shards_done"] == 1

    def test_worker_crash_exhausts_retries(self, data_env):
        def always_crash(job_id: str, key: str) -> None:
            raise RuntimeError("synthetic worker crash")

        scheduler = Scheduler(
            data_env / "svc", workers=1, shard_retries=1,
            hooks=SchedulerHooks(shard_started=always_crash),
        )
        scheduler.start()
        try:
            job_id = scheduler.submit(small_spec())
            assert scheduler.wait_job(job_id, timeout=180) == "failed"
        finally:
            scheduler.stop(drain=True)
        job = scheduler.status(job_id)["job"]
        assert "WorkerCrash" in job["error"]
        assert job["stats"]["redispatched_shards"] == 1

    def test_unknown_job_and_bad_tenant(self, tmp_path):
        scheduler = Scheduler(tmp_path / "svc")
        with pytest.raises(UnknownJob):
            scheduler.cancel("job-9999-missing")
        with pytest.raises(MixPBenchError):
            scheduler.submit(small_spec(), tenant="no/slashes")
        scheduler.stop(drain=False)

    def test_recovery_resumes_killed_jobs_trial_by_trial(self, data_env):
        """A SIGKILL'd service's ledger says `running`; the reopened
        scheduler re-enqueues the job and its finished shard is
        restored from the run journal instead of recomputed."""
        root = data_env / "svc"
        spec = small_spec(algorithms=("DD", "GA"))
        paths = state_paths(root)
        for name in ("cache", "runs", "jobs", "spool"):
            paths[name].mkdir(parents=True, exist_ok=True)

        # what the dead daemon left behind: an accepted job mid-run …
        record = JobRecord(job_id="job-0001-deadbeef", tenant="alice", spec=spec)
        with ServiceJournal(root) as journal:
            journal.append_submit(record, 1)
            journal.append_state(record.job_id, "running")
        # … whose first shard it had journaled to completion
        shards = spec.jobs()
        with RunJournal(paths["runs"], record.job_id, shards) as run_journal:
            run_shard(shards[0], journal=run_journal, key=job_key(0, shards[0]))

        scheduler = Scheduler(root, workers=1)
        assert scheduler.status(record.job_id)["job"]["state"] == "queued"
        scheduler.start()
        try:
            assert scheduler.wait_job(record.job_id, timeout=180) == "done"
        finally:
            scheduler.stop(drain=True)
        stats = scheduler.status(record.job_id)["job"]["stats"]
        assert stats["shards_restored"] == 1
        assert stats["shards_done"] == 2

        direct = [r.to_json_dict() for r in run_grid(spec.jobs())]
        served = json.loads(results_path(root, record.job_id).read_text())
        assert stripped(served) == stripped(direct)

    def test_recovery_finalizes_fully_journaled_job_without_workers(
        self, data_env
    ):
        """If every shard was journaled before the crash, only the
        terminal ledger transition was lost — recovery writes it (and
        results.json) without executing anything."""
        root = data_env / "svc"
        spec = small_spec()
        paths = state_paths(root)
        paths["runs"].mkdir(parents=True, exist_ok=True)
        record = JobRecord(job_id="job-0001-deadbeef", tenant="alice", spec=spec)
        with ServiceJournal(root) as journal:
            journal.append_submit(record, 1)
            journal.append_state(record.job_id, "running")
        shards = spec.jobs()
        with RunJournal(paths["runs"], record.job_id, shards) as run_journal:
            for index, shard in enumerate(shards):
                run_shard(shard, journal=run_journal, key=job_key(index, shard))

        scheduler = Scheduler(root)  # note: start() never called
        job = scheduler.status(record.job_id)["job"]
        scheduler.stop(drain=False)
        assert job["state"] == "done"
        assert job["stats"]["shards_restored"] == 1
        assert results_path(root, record.job_id).exists()


# ---------------------------------------------------------------------------
# Spool protocol + client


class TestSpoolAndClient:
    def _spool_submit(self, scheduler: Scheduler, payload: dict) -> dict:
        spool = scheduler.paths["spool"]
        (spool / "req-1.json").write_text(json.dumps(payload))
        assert scheduler.poll_spool() == 1
        return json.loads((spool / "req-1.ack.json").read_text())

    def test_spool_submission_acked(self, tmp_path):
        scheduler = Scheduler(tmp_path / "svc")
        ack = self._spool_submit(
            scheduler,
            {"tenant": "alice", "spec": small_spec().to_json_dict()},
        )
        scheduler.stop(drain=False)
        assert ack["ok"]
        assert scheduler.status(ack["job_id"])["job"]["tenant"] == "alice"

    def test_spool_malformed_spec_rejected(self, tmp_path):
        scheduler = Scheduler(tmp_path / "svc")
        ack = self._spool_submit(scheduler, {"tenant": "alice", "spec": {}})
        scheduler.stop(drain=False)
        assert not ack["ok"]
        assert "program" in ack["error"]

    def test_spool_cancel_request(self, tmp_path):
        scheduler = Scheduler(tmp_path / "svc")
        job_id = scheduler.submit(small_spec())
        request_cancel(tmp_path / "svc", job_id)
        assert scheduler.poll_spool() == 1
        assert scheduler.status(job_id)["job"]["state"] == "cancelled"
        scheduler.stop(drain=False)

    def test_status_is_readable_without_a_daemon(self, tmp_path):
        scheduler = Scheduler(tmp_path / "svc")
        job_id = scheduler.submit(small_spec())
        scheduler.stop(drain=False)
        snapshot = service_status(tmp_path / "svc")
        assert snapshot["serving_pid"] is None
        assert [job["job_id"] for job in snapshot["jobs"]] == [job_id]
        assert job_status(tmp_path / "svc", job_id)["state"] == "queued"
        with pytest.raises(ServiceError, match="no such job"):
            job_status(tmp_path / "svc", "job-9999-missing")

    def test_submit_request_times_out_without_daemon(self, tmp_path):
        with pytest.raises(ServiceError, match="serve"):
            submit_request(
                tmp_path / "svc", small_spec(), timeout=0.2, poll_seconds=0.05,
            )

    def test_serve_loop_end_to_end_in_process(self, data_env):
        """The daemon loop itself: spool ingestion, pid file, stop-file
        drain — driven through the real client functions."""
        root = data_env / "svc"
        scheduler = Scheduler(root, workers=1)
        server = threading.Thread(
            target=scheduler.serve,
            kwargs={"poll_seconds": 0.02, "idle_exit_seconds": 60.0},
            daemon=True,
        )
        server.start()
        try:
            job_id = submit_request(root, small_spec(), tenant="alice", timeout=30)
            assert service_status(root)["serving_pid"] is not None
            assert attach(root, job_id, timeout=180) == "done"
        finally:
            (root / "stop").touch()
            server.join(timeout=30)
        assert not server.is_alive()
        assert not (root / "serve.pid").exists()
        assert service_status(root)["serving_pid"] is None

    def test_attach_streams_progress_and_returns_state(self, data_env):
        root = data_env / "svc"
        scheduler = Scheduler(root, workers=1)
        scheduler.start()
        lines: list[str] = []
        try:
            job_id = scheduler.submit(small_spec())
            state = attach(root, job_id, stream=lines.append, timeout=180)
        finally:
            scheduler.stop(drain=True)
        assert state == "done"
        assert any(line.startswith("shard ") for line in lines)
        assert any("state: done" in line for line in lines)
        with pytest.raises(ServiceError, match="no such job"):
            attach(root, "job-9999-missing")
