"""Property-based tests on verification-metric invariants (hypothesis)."""

import math

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings
from hypothesis.extra.numpy import arrays

from repro.verify.metrics import mae, mcr, mse, r_squared, rmse

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
vectors = arrays(np.float64, st.integers(1, 64), elements=finite)


@st.composite
def vector_pairs(draw):
    ref = draw(vectors)
    cand = draw(arrays(np.float64, ref.shape, elements=finite))
    return ref, cand


@given(vectors)
def test_identity_has_zero_error(x):
    assert mae(x, x.copy()) == 0.0
    assert mse(x, x.copy()) == 0.0
    assert rmse(x, x.copy()) == 0.0
    assert mcr(x, x.copy()) == 0.0


@given(vector_pairs())
def test_errors_are_nonnegative(pair):
    ref, cand = pair
    assert mae(ref, cand) >= 0.0
    assert mse(ref, cand) >= 0.0
    assert rmse(ref, cand) >= 0.0
    assert 0.0 <= mcr(ref, cand) <= 1.0


@given(vector_pairs())
def test_rmse_dominates_mae(pair):
    """RMSE >= MAE always (Cauchy–Schwarz) — 'penalises large errors'."""
    ref, cand = pair
    assert rmse(ref, cand) >= mae(ref, cand) * (1.0 - 1e-12) - 1e-150  # subnormal squares underflow


@given(vector_pairs())
def test_mae_symmetry(pair):
    ref, cand = pair
    assert mae(ref, cand) == mae(cand, ref)


@given(vector_pairs(), finite)
@settings(max_examples=50)
def test_mae_translation_invariance(pair, shift):
    ref, cand = pair
    shifted = mae(ref + shift, cand + shift)
    assert math.isclose(shifted, mae(ref, cand), rel_tol=1e-6, abs_tol=1e-6)


@given(vectors, st.floats(min_value=0.1, max_value=1e3))
def test_mae_scales_linearly(ref, scale):
    cand = ref + 1.0
    assert math.isclose(
        mae(ref * scale, cand * scale), scale * mae(ref, cand),
        rel_tol=1e-9, abs_tol=1e-12,
    )


@given(vector_pairs())
@settings(max_examples=50)
def test_r_squared_upper_bound(pair):
    ref, cand = pair
    value = r_squared(ref, cand)
    assert value <= 1.0 or math.isnan(value)


@given(vectors)
def test_nan_poisoning(x):
    poisoned = x.copy()
    poisoned[0] = np.nan
    assert math.isnan(mae(x, poisoned))
    assert math.isnan(mse(x, poisoned))
    assert math.isnan(mcr(x, poisoned))
    assert math.isnan(r_squared(x, poisoned))
