"""Property-based tests on verification-metric invariants (hypothesis)."""

import math

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings
from hypothesis.extra.numpy import arrays

from repro.verify.metrics import mae, mcr, mse, r_squared, rmse

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
vectors = arrays(np.float64, st.integers(1, 64), elements=finite)


@st.composite
def vector_pairs(draw):
    ref = draw(vectors)
    cand = draw(arrays(np.float64, ref.shape, elements=finite))
    return ref, cand


@given(vectors)
def test_identity_has_zero_error(x):
    assert mae(x, x.copy()) == 0.0
    assert mse(x, x.copy()) == 0.0
    assert rmse(x, x.copy()) == 0.0
    assert mcr(x, x.copy()) == 0.0


@given(vector_pairs())
def test_errors_are_nonnegative(pair):
    ref, cand = pair
    assert mae(ref, cand) >= 0.0
    assert mse(ref, cand) >= 0.0
    assert rmse(ref, cand) >= 0.0
    assert 0.0 <= mcr(ref, cand) <= 1.0


@given(vector_pairs())
def test_rmse_dominates_mae(pair):
    """RMSE >= MAE always (Cauchy–Schwarz) — 'penalises large errors'."""
    ref, cand = pair
    assert rmse(ref, cand) >= mae(ref, cand) * (1.0 - 1e-12) - 1e-150  # subnormal squares underflow


@given(vector_pairs())
def test_mae_symmetry(pair):
    ref, cand = pair
    assert mae(ref, cand) == mae(cand, ref)


@given(vector_pairs(), finite)
@settings(max_examples=50)
def test_mae_translation_invariance(pair, shift):
    ref, cand = pair
    shifted = mae(ref + shift, cand + shift)
    assert math.isclose(shifted, mae(ref, cand), rel_tol=1e-6, abs_tol=1e-6)


@given(vectors, st.floats(min_value=0.1, max_value=1e3))
def test_mae_scales_linearly(ref, scale):
    cand = ref + 1.0
    assert math.isclose(
        mae(ref * scale, cand * scale), scale * mae(ref, cand),
        rel_tol=1e-9, abs_tol=1e-12,
    )


@given(vector_pairs())
@settings(max_examples=50)
def test_r_squared_upper_bound(pair):
    ref, cand = pair
    value = r_squared(ref, cand)
    assert value <= 1.0 or math.isnan(value)


@given(vectors)
def test_nan_poisoning(x):
    poisoned = x.copy()
    poisoned[0] = np.nan
    assert math.isnan(mae(x, poisoned))
    assert math.isnan(mse(x, poisoned))
    assert math.isnan(mcr(x, poisoned))
    assert math.isnan(r_squared(x, poisoned))


def _divergence_reference(ref, cand):
    """The textbook formulation of :func:`_relative_divergence_core`
    (pre-fast-path), kept as the oracle the optimised version must
    match bit-for-bit: the shadow engine's attribution numbers flow
    straight from it."""
    with np.errstate(all="ignore"):
        ref = np.asarray(ref, dtype=np.float64)
        cand = np.asarray(cand, dtype=np.float64)
        ref_ok = np.isfinite(ref)
        if not ref_ok.all():
            if not ref_ok.any():
                return 0.0
            ref = ref[ref_ok]
            cand = cand[ref_ok]
        if not np.isfinite(cand).all():
            return float("inf")
        diff = np.abs(ref - cand)
        nonzero = diff > 0.0
        if not nonzero.any():
            return 0.0
        diff = diff[nonzero]
        denom = np.maximum(np.abs(ref[nonzero]), np.abs(cand[nonzero]))
        return float(np.max(diff / denom))


@st.composite
def divergence_cases(draw):
    """fp64 reference vs a replica at a random shadow precision, with
    non-finite cells sprinkled into both sides."""
    ref = draw(arrays(
        np.float64, st.integers(0, 48),
        elements=st.floats(min_value=-1e30, max_value=1e30,
                           allow_nan=False, allow_infinity=False),
    ))
    dtype = draw(st.sampled_from((np.float16, np.float32, np.float64)))
    with np.errstate(all="ignore"):
        cand = ref.astype(dtype)
    if draw(st.booleans()) and ref.size:
        cand = cand + draw(st.sampled_from(
            (dtype(0.5), dtype(1e-3), dtype(0))))
    for arr, poison in ((ref, draw(st.booleans())), (cand, draw(st.booleans()))):
        if poison and ref.size:
            i = draw(st.integers(0, ref.size - 1))
            arr[i] = draw(st.sampled_from((np.nan, np.inf, -np.inf)))
    return ref, cand


@given(divergence_cases())
@settings(max_examples=200)
def test_relative_divergence_fast_path_matches_reference(case):
    from repro.verify.metrics import _relative_divergence_core

    ref, cand = case
    got = _relative_divergence_core(ref, cand)
    want = _divergence_reference(ref, cand)
    assert got == want or (math.isnan(got) and math.isnan(want))


@given(st.floats(allow_nan=True, allow_infinity=True),
       st.floats(allow_nan=True, allow_infinity=True),
       st.sampled_from((np.float16, np.float32, np.float64)))
@settings(max_examples=200)
def test_relative_divergence_scalar_path_matches_reference(r, c, dtype):
    from repro.verify.metrics import _relative_divergence_core

    with np.errstate(all="ignore"):
        ref, cand = np.float64(r), dtype(c)
    got = _relative_divergence_core(ref, cand)
    want = _divergence_reference(ref, cand)
    assert got == want or (math.isnan(got) and math.isnan(want))
