"""Batch-evaluation layer: executors, prefetch/replay determinism,
and EvalStats accounting.

The contract under test is the one DESIGN'd into
:mod:`repro.core.batch`: executors compute only the pure execution of
a configuration, all bookkeeping is replayed serially, so a parallel
run's trial log is bit-identical to the serial one.
"""

import numpy as np
import pytest

from helpers import ToyProgram

from repro.core.batch import (
    DEFAULT_BATCH_SIZE, EXECUTOR_NAMES, ExecutionFailure, ProcessExecutor,
    SerialExecutor, ThreadExecutor, WorkStealingQueue, chunked,
    execute_guarded, make_executor,
)
from repro.core.evaluator import ConfigurationEvaluator, TimingMode
from repro.core.telemetry import EvalStats
from repro.search.registry import make_strategy


def trial_log(evaluator):
    """Everything observable about a trial log, bitwise."""
    return [
        (t.index, t.config.digest(), t.status, t.error_value, t.speedup,
         t.modeled_seconds, t.analysis_seconds)
        for t in evaluator.trials
    ]


def outcome_payload(outcome):
    """Interchange JSON with the (legitimately varying) telemetry removed."""
    payload = outcome.to_json_dict()
    payload.get("metadata", {}).pop("eval_stats", None)
    return payload


def run_strategy(algorithm, executor=None):
    program = ToyProgram(n_clusters=6, toxic=(0, 3))
    evaluator = ConfigurationEvaluator(
        program, measurement_noise=0.0, executor=executor,
    )
    outcome = make_strategy(algorithm).run(evaluator)
    return program, evaluator, outcome


class TestChunked:
    def test_even_split(self):
        assert list(chunked(range(6), 2)) == [[0, 1], [2, 3], [4, 5]]

    def test_ragged_tail(self):
        assert list(chunked(range(5), 2)) == [[0, 1], [2, 3], [4]]

    def test_consumes_generators(self):
        assert list(chunked((i for i in range(3)), 10)) == [[0, 1, 2]]

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            list(chunked(range(3), 0))

    def test_default_batch_size_positive(self):
        assert DEFAULT_BATCH_SIZE >= 1


class TestExecutors:
    def configs(self, program, count=5):
        space = program.search_space()
        locations = space.locations()
        return [space.lower(locations[: i + 1]) for i in range(count)]

    @pytest.mark.parametrize("name", EXECUTOR_NAMES)
    def test_results_match_serial(self, name):
        program = ToyProgram(n_clusters=6, toxic=(1,))
        configs = self.configs(program)
        reference = SerialExecutor().run(program, configs)
        with make_executor(name, 2) as executor:
            results = executor.run(program, configs)
        assert len(results) == len(reference)
        for got, want in zip(results, reference):
            np.testing.assert_array_equal(got.output, want.output)
            assert got.modeled_seconds == want.modeled_seconds

    def test_make_executor_names_and_defaults(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("thread"), ThreadExecutor)
        assert isinstance(make_executor("process"), ProcessExecutor)
        assert make_executor("thread", 7).workers == 7
        with pytest.raises(ValueError):
            make_executor("gpu")

    def test_runtime_error_becomes_failure_marker(self):
        class ExplodingProgram(ToyProgram):
            def execute(self, config):
                raise FloatingPointError("overflow in half precision")

        program = ExplodingProgram()
        result = execute_guarded(program, program.search_space().lower(
            program.search_space().locations()[0]
        ))
        assert isinstance(result, ExecutionFailure)
        assert result.kind == "FloatingPointError"

    def test_process_executor_falls_back_for_unregistered_programs(self):
        # ToyProgram is not a registry benchmark, so the process backend
        # must transparently degrade to threads instead of failing to
        # resolve the name in the worker.
        program = ToyProgram(n_clusters=4)
        configs = self.configs(program, count=4)
        with ProcessExecutor(2) as executor:
            results = executor.run(program, configs)
        assert len(results) == 4
        assert all(not isinstance(r, ExecutionFailure) for r in results)


class TestPrefetchReplay:
    def test_prefetch_stages_and_evaluate_consumes(self):
        program = ToyProgram(n_clusters=4)
        evaluator = ConfigurationEvaluator(
            program, measurement_noise=0.0, executor=ThreadExecutor(2),
        )
        space = evaluator.space()
        configs = [space.lower(loc) for loc in space.locations()]
        staged = evaluator.prefetch(configs)
        assert staged == len(configs)
        executed_before = program.executions
        for config in configs:
            evaluator.evaluate(config)
        # evaluate() consumed staged results instead of re-executing
        assert program.executions == executed_before
        assert evaluator.stats.prefetched_executions == len(configs)

    def test_prefetch_noop_without_executor(self):
        program = ToyProgram(n_clusters=4)
        evaluator = ConfigurationEvaluator(program, measurement_noise=0.0)
        space = evaluator.space()
        assert evaluator.prefetch([space.lower(space.locations()[0])]) == 0

    def test_prefetch_noop_under_wall_clock(self):
        program = ToyProgram(n_clusters=4)
        evaluator = ConfigurationEvaluator(
            program, measurement_noise=0.0, executor=ThreadExecutor(2),
            timing=TimingMode.WALL_CLOCK,
        )
        space = evaluator.space()
        assert evaluator.prefetch([space.lower(space.locations()[0])]) == 0

    def test_evaluate_many_equals_serial_loop(self):
        space_configs = None
        logs = []
        for executor in (None, ThreadExecutor(3)):
            program = ToyProgram(n_clusters=5, toxic=(2,))
            evaluator = ConfigurationEvaluator(
                program, measurement_noise=0.0, executor=executor,
            )
            space = evaluator.space()
            if space_configs is None:
                space_configs = [space.lower(loc) for loc in space.locations()]
            if executor is None:
                for config in space_configs:
                    evaluator.evaluate(config)
            else:
                evaluator.evaluate_many(space_configs)
            logs.append(trial_log(evaluator))
            assert evaluator.analysis_seconds > 0
        assert logs[0] == logs[1]

    @pytest.mark.parametrize("algorithm", ["CB", "GA", "HR", "HC"])
    def test_strategy_trial_logs_identical_across_executors(self, algorithm):
        _, serial_eval, serial_outcome = run_strategy(algorithm)
        with ThreadExecutor(4) as executor:
            _, batch_eval, batch_outcome = run_strategy(algorithm, executor)
        assert trial_log(serial_eval) == trial_log(batch_eval)
        assert outcome_payload(serial_outcome) == outcome_payload(batch_outcome)


class TestEvalStats:
    def test_accounting_identity(self):
        # every EV is either fresh or a persistent replay; memory hits
        # are extra answers that never enter the trial log
        program = ToyProgram(n_clusters=4)
        evaluator = ConfigurationEvaluator(program, measurement_noise=0.0)
        space = evaluator.space()
        config = space.lower(space.locations()[0])
        evaluator.evaluate(config)
        evaluator.evaluate(config)  # repeat: memory hit
        evaluator.evaluate(space.lower(space.locations()[1]))
        stats = evaluator.stats
        assert stats.evaluations == stats.fresh_evaluations + stats.persistent_hits
        assert stats.evaluations == 2
        assert stats.memory_hits == 1
        assert stats.cache_hits == 1
        assert evaluator.evaluations == stats.evaluations

    def test_batch_counters(self):
        program = ToyProgram(n_clusters=4)
        with ThreadExecutor(2) as executor:
            evaluator = ConfigurationEvaluator(
                program, measurement_noise=0.0, executor=executor,
            )
            space = evaluator.space()
            configs = [space.lower(loc) for loc in space.locations()]
            evaluator.evaluate_many(configs)
        stats = evaluator.stats
        assert stats.batches == 1
        assert stats.batched_configs == len(configs)
        assert stats.prefetched_executions == len(configs)
        assert stats.executor == "thread"
        assert stats.workers == 2
        assert stats.wall_seconds >= 0.0

    def test_outcome_metadata_carries_stats(self):
        _, evaluator, outcome = run_strategy("DD")
        stats = outcome.metadata["eval_stats"]
        assert stats["evaluations"] == evaluator.evaluations
        assert stats["labels"]["strategy"] == outcome.strategy
        assert stats["labels"]["program"] == "toy"

    def test_as_dict_and_merge(self):
        a = EvalStats(evaluations=3, fresh_evaluations=2, persistent_hits=1,
                      wall_seconds=0.5)
        b = EvalStats(evaluations=1, fresh_evaluations=1, memory_hits=4)
        a.merge(b)
        assert a.evaluations == 4
        assert a.fresh_evaluations == 3
        assert a.memory_hits == 4
        payload = a.as_dict()
        assert payload["cache_hits"] == a.memory_hits + a.persistent_hits
        assert payload["executor"] == "serial"


class TestWorkStealingQueue:
    def test_fifo_within_a_lane(self):
        queue = WorkStealingQueue()
        queue.push("a", 1)
        queue.push("a", 2)
        assert queue.pop(preferred="a") == ("a", 1)
        assert queue.pop(preferred="a") == ("a", 2)
        assert len(queue) == 0

    def test_prefers_own_lane_then_steals_deepest(self):
        queue = WorkStealingQueue()
        queue.push("shallow", 1)
        queue.push("deep", 1)
        queue.push("deep", 2)
        queue.push("mine", 1)
        assert queue.pop(preferred="mine") == ("mine", 1)
        # own lane empty: steal from the deepest backlog
        assert queue.pop(preferred="mine") == ("deep", 1)

    def test_steal_tie_breaks_by_lane_name(self):
        queue = WorkStealingQueue()
        queue.push("b", 1)
        queue.push("a", 1)
        lane, _ = queue.pop(preferred="zzz")
        assert lane == "b"  # equal depth: the greatest lane name wins

    def test_drop_lane_returns_unstarted_items(self):
        queue = WorkStealingQueue()
        queue.push("a", 1)
        queue.push("a", 2)
        queue.push("b", 9)
        assert queue.drop_lane("a") == [1, 2]
        assert queue.drop_lane("a") == []
        assert len(queue) == 1

    def test_pop_timeout_and_close(self):
        queue = WorkStealingQueue()
        assert queue.pop(timeout=0.01) is None
        queue.push("a", 1)
        queue.close()
        assert queue.pop() == ("a", 1)  # closing drains, it does not drop
        assert queue.pop() is None

    def test_close_wakes_blocked_consumers(self):
        import threading

        queue = WorkStealingQueue()
        seen = []
        thread = threading.Thread(
            target=lambda: seen.append(queue.pop(timeout=30.0))
        )
        thread.start()
        queue.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert seen == [None]
