"""Unit tests for repro.runtime.profiler."""

from repro.runtime.profiler import OpClass, Profile, opclass_for_ufunc


class TestOpClassMapping:
    def test_cheap_ufuncs(self):
        assert opclass_for_ufunc("add", "f") is OpClass.CHEAP
        assert opclass_for_ufunc("multiply", "f") is OpClass.CHEAP
        assert opclass_for_ufunc("maximum", "f") is OpClass.CHEAP

    def test_medium_ufuncs(self):
        assert opclass_for_ufunc("true_divide", "f") is OpClass.MEDIUM
        assert opclass_for_ufunc("sqrt", "f") is OpClass.MEDIUM

    def test_trans_ufuncs(self):
        assert opclass_for_ufunc("exp", "f") is OpClass.TRANS
        assert opclass_for_ufunc("log", "f") is OpClass.TRANS
        assert opclass_for_ufunc("power", "f") is OpClass.TRANS

    def test_integer_kind_forces_int_class(self):
        assert opclass_for_ufunc("add", "i") is OpClass.INT
        assert opclass_for_ufunc("exp", "u") is OpClass.INT
        assert opclass_for_ufunc("add", "b") is OpClass.INT

    def test_unknown_ufunc_defaults_cheap(self):
        assert opclass_for_ufunc("mystery_op", "f") is OpClass.CHEAP


class TestProfile:
    def test_record_op_accumulates(self):
        profile = Profile()
        profile.record_op(OpClass.CHEAP, "float64", 100, bytes_read=800, bytes_written=80)
        profile.record_op(OpClass.CHEAP, "float64", 50)
        assert profile.ops[(OpClass.CHEAP, "float64")] == 150
        assert profile.bytes_read == 800
        assert profile.bytes_written == 80
        assert profile.ufunc_calls == 2

    def test_separate_buckets_per_dtype(self):
        profile = Profile()
        profile.record_op(OpClass.CHEAP, "float64", 10)
        profile.record_op(OpClass.CHEAP, "float32", 20)
        assert profile.ops[(OpClass.CHEAP, "float64")] == 10
        assert profile.ops[(OpClass.CHEAP, "float32")] == 20

    def test_casts_recorded(self):
        profile = Profile()
        profile.record_op(OpClass.CHEAP, "float64", 10, casts=10)
        profile.record_cast(5)
        assert profile.cast_elements == 15

    def test_gather_recorded(self):
        profile = Profile()
        profile.record_gather(100, 800)
        assert profile.gather_elements == 100
        assert profile.bytes_read == 800
        assert profile.ufunc_calls == 1

    def test_io_recorded(self):
        profile = Profile()
        profile.record_io(4096)
        assert profile.io_bytes == 4096

    def test_footprint_tracks_peak(self):
        profile = Profile()
        profile.track_alloc(100)
        profile.track_alloc(200)
        profile.track_free(100)
        profile.track_alloc(50)
        assert profile.peak_footprint == 300

    def test_footprint_never_negative(self):
        profile = Profile()
        profile.track_free(100)
        profile.track_alloc(10)
        assert profile.peak_footprint == 10

    def test_merge(self):
        a, b = Profile(), Profile()
        a.record_op(OpClass.CHEAP, "float64", 10, bytes_read=80)
        b.record_op(OpClass.CHEAP, "float64", 5, bytes_written=40)
        b.record_op(OpClass.TRANS, "float32", 7)
        b.record_gather(3, 12)
        b.track_alloc(999)
        a.merge(b)
        assert a.ops[(OpClass.CHEAP, "float64")] == 15
        assert a.ops[(OpClass.TRANS, "float32")] == 7
        assert a.bytes_read == 92
        assert a.bytes_written == 40
        assert a.gather_elements == 3
        assert a.peak_footprint == 999

    def test_total_flops_excludes_int(self):
        profile = Profile()
        profile.record_op(OpClass.CHEAP, "float64", 10)
        profile.record_op(OpClass.INT, "int32", 1000)
        assert profile.total_flops() == 10

    def test_summary_is_json_friendly(self):
        import json
        profile = Profile()
        profile.record_op(OpClass.MEDIUM, "float32", 4, bytes_read=16)
        summary = profile.summary()
        json.dumps(summary)
        assert summary["ops"] == {"medium/float32": 4}
        assert summary["bytes_read"] == 16
