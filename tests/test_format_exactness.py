"""Byte-identity of the storage-exact emulated formats.

``e8m23`` and ``e11m52`` keep every mantissa bit of their fp32/fp64
storage, so a configuration spelled with them must be *byte-identical*
to the same configuration spelled with the built-in dtypes: same
output bits, same profile summary, same modeled time.  This is the
suite enforcing the PR's hard invariant — the emulated-format
machinery may not perturb anything that does not actually drop bits.

Every benchmark is checked cold and warm (so the fuse-cache replay
path is proven exact too) and once more with fusion forced off.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.benchmarks.base import (
    available_benchmarks, clear_process_caches, get_benchmark,
)
from repro.core.types import Precision, get_format
from repro.runtime import fuse as _fuse

ALL_BENCHMARKS = available_benchmarks()

#: (alias, built-in oracle): the storage-exact emulated formats and the
#: dtype each must be indistinguishable from
ALIASES = (
    ("e8m23", Precision.SINGLE),
    ("e11m52", Precision.DOUBLE),
)


@pytest.fixture(scope="module")
def exact_env(tmp_path_factory):
    """Module-private data dir + clean per-process caches."""
    patcher = pytest.MonkeyPatch()
    patcher.setenv("MIXPBENCH_DATA", str(tmp_path_factory.mktemp("data")))
    clear_process_caches()
    yield
    clear_process_caches()
    patcher.undo()


@pytest.fixture(scope="module")
def suite_runs(exact_env):
    """Execute each (benchmark, config, fuse) once cold and once warm,
    lazily, sharing results across the alias/oracle comparisons."""
    cache: dict = {}

    def run(name: str, config, fuse: bool = True):
        key = (name, config.digest(), fuse)
        if key not in cache:
            # lowered configs are allowed to overflow (srad is designed
            # to); warnings-as-errors is test_apps' job, not this suite's
            with np.errstate(all="ignore"), warnings.catch_warnings():
                warnings.simplefilter("ignore")
                prev = _fuse.set_fusion_enabled(False) if not fuse else None
                try:
                    clear_process_caches()
                    cold = get_benchmark(name).execute(config)
                    warm = get_benchmark(name).execute(config)
                finally:
                    if not fuse:
                        _fuse.set_fusion_enabled(prev)
            cache[key] = (cold, warm)
        return cache[key]

    return run


def _configs(name: str, alias: str, builtin: Precision):
    space = get_benchmark(name).search_space()
    return space.uniform_config(get_format(alias)), space.uniform_config(builtin)


@pytest.mark.parametrize("alias,builtin", ALIASES, ids=[a for a, _ in ALIASES])
@pytest.mark.parametrize("name", ALL_BENCHMARKS)
class TestStorageExactAliases:
    """uniform e8m23 == uniform fp32, uniform e11m52 == uniform fp64."""

    def test_fused_cold_and_warm_bit_identical(self, name, alias, builtin, suite_runs):
        emulated, oracle = _configs(name, alias, builtin)
        ref_cold, ref_warm = suite_runs(name, oracle)
        got_cold, got_warm = suite_runs(name, emulated)
        for ref, got in ((ref_cold, got_cold), (ref_warm, got_warm)):
            reference = np.asarray(ref.output)
            output = np.asarray(got.output)
            assert output.shape == reference.shape
            assert output.dtype == reference.dtype
            # byte equality is NaN-aware: identical bit patterns pass
            # where `==` would reject NaN == NaN.
            assert output.tobytes() == reference.tobytes()

    def test_fused_profiles_and_times_identical(self, name, alias, builtin, suite_runs):
        emulated, oracle = _configs(name, alias, builtin)
        ref_cold, ref_warm = suite_runs(name, oracle)
        got_cold, got_warm = suite_runs(name, emulated)
        for ref, got in ((ref_cold, got_cold), (ref_warm, got_warm)):
            assert got.profile.summary() == ref.profile.summary()
            assert got.modeled_seconds == ref.modeled_seconds

    def test_unfused_bit_identical(self, name, alias, builtin, suite_runs):
        emulated, oracle = _configs(name, alias, builtin)
        ref, _ = suite_runs(name, oracle, fuse=False)
        got, _ = suite_runs(name, emulated, fuse=False)
        assert np.asarray(got.output).tobytes() == np.asarray(ref.output).tobytes()
        assert got.profile.summary() == ref.profile.summary()
        assert got.modeled_seconds == ref.modeled_seconds

    def test_unfused_matches_fused(self, name, alias, builtin, suite_runs):
        """The emulated spelling is fusion-invariant on its own, not
        just equal to the oracle on both paths."""
        emulated, _ = _configs(name, alias, builtin)
        fused, _ = suite_runs(name, emulated)
        unfused, _ = suite_runs(name, emulated, fuse=False)
        assert (
            np.asarray(unfused.output).tobytes()
            == np.asarray(fused.output).tobytes()
        )
