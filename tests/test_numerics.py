"""Numerical validation of the benchmark implementations.

Beyond running, each application must be a *correct* instance of its
algorithm: CG has to solve its system, Black-Scholes prices must obey
no-arbitrage bounds, the thermal and diffusion solvers must be stable,
K-means must recover the planted clustering.  These tests pin the
mathematics the precision experiments stand on.
"""

import numpy as np
import pytest

from repro.benchmarks.base import get_benchmark
from repro.core.types import PrecisionConfig
from repro.runtime.memory import Workspace


class TestHpccgMathematics:
    def test_cg_actually_solves_the_system(self, data_env):
        """Recompute A@x - b from the benchmark's own CSR structure."""
        bench = get_benchmark("hpccg")
        inputs = bench.inputs()
        x = bench.execute(PrecisionConfig()).output

        # regenerate the matrix/rhs exactly as run() does (same seed)
        ws = Workspace(seed=bench.seed)
        n, nnz_per_row = inputs["n"], inputs["nnz_per_row"]
        raw = -(0.5 / nnz_per_row) * ws.rng.random(n * nnz_per_row)
        raw[::nnz_per_row] = 4.0
        b = 200.0 * ws.rng.random(n)

        ax = np.zeros(n)
        cols = inputs["cols"]
        np.add.at(ax, np.repeat(np.arange(n), nnz_per_row), raw * x[cols])
        residual = np.linalg.norm(ax - b) / np.linalg.norm(b)
        assert residual < 1e-8

    def test_diagonal_dominance(self, data_env):
        """The generated system must be diagonally dominant (so CG on
        it is well posed and fp32 perturbations stay benign)."""
        bench = get_benchmark("hpccg")
        nnz_per_row = bench.inputs()["nnz_per_row"]
        offdiag_mass = (nnz_per_row - 1) * (0.5 / nnz_per_row)
        assert offdiag_mass < 4.0


class TestBlackscholesFinance:
    def _prices(self, otype_value):
        bench = get_benchmark("blackscholes")
        n = 512
        ws = Workspace(seed=bench.seed)
        spt = 25.0 + 75.0 * ws.rng.random(n)
        strike = 20.0 + 80.0 * ws.rng.random(n)
        rate = 0.02 + 0.08 * ws.rng.random(n)
        vol = 0.1 + 0.4 * ws.rng.random(n)
        otime = 0.25 + 3.75 * ws.rng.random(n)
        from repro.benchmarks.apps.blackscholes import black_scholes
        ws2 = Workspace(seed=1)
        from repro.runtime.mparray import MPArray
        args = [MPArray(a.copy(), ws2.profile) for a in (spt, strike, rate, vol, otime)]
        otype = MPArray(np.full(n, float(otype_value)), ws2.profile)
        prices = black_scholes(ws2, *args, otype)
        return spt, strike, rate, otime, np.asarray(prices.data, dtype=np.float64)

    def test_call_price_bounds(self):
        """0 <= C <= S and C >= S - K e^{-rT} (no-arbitrage)."""
        spt, strike, rate, otime, calls = self._prices(0.0)
        assert np.all(calls >= -1e-9)
        assert np.all(calls <= spt + 1e-9)
        intrinsic = spt - strike * np.exp(-rate * otime)
        assert np.all(calls >= intrinsic - 1e-7)

    def test_put_price_bounds(self):
        """0 <= P <= K e^{-rT} and P >= K e^{-rT} - S."""
        spt, strike, rate, otime, puts = self._prices(1.0)
        discounted_strike = strike * np.exp(-rate * otime)
        assert np.all(puts >= -1e-9)
        assert np.all(puts <= discounted_strike + 1e-9)
        assert np.all(puts >= discounted_strike - spt - 1e-7)

    def test_put_call_parity(self):
        """C - P = S - K e^{-rT}, the sharpest internal consistency
        check a Black-Scholes implementation can satisfy."""
        spt, strike, rate, otime, calls = self._prices(0.0)
        _, _, _, _, puts = self._prices(1.0)
        parity = calls - puts
        expected = spt - strike * np.exp(-rate * otime)
        np.testing.assert_allclose(parity, expected, atol=1e-8)


class TestHotspotPhysics:
    def test_temperatures_stay_bounded(self, data_env):
        """The explicit scheme must be stable: no runaway values."""
        bench = get_benchmark("hotspot")
        result = bench.execute(PrecisionConfig())
        assert np.all(result.output > 0.0)
        assert np.all(result.output < 0.1)

    def test_heating_is_monotone_with_power(self, data_env):
        """More iterations with positive power cannot cool the chip's
        interior on average."""
        bench = get_benchmark("hotspot")
        inputs = dict(bench.inputs())
        short = dict(inputs, iterations=2)
        long = dict(inputs, iterations=12)
        t_short = bench.execute(PrecisionConfig(), inputs=short).output
        t_long = bench.execute(PrecisionConfig(), inputs=long).output
        assert t_long.mean() > t_short.mean()


class TestKmeansRecovery:
    def test_recovers_planted_clustering(self, data_env):
        """The blobs are well separated: the algorithm's partition must
        match the generator's planted labels up to relabelling."""
        bench = get_benchmark("kmeans")
        labels = bench.execute(PrecisionConfig()).output.astype(int)

        rng = np.random.default_rng(bench.seed + 2)
        k = bench.inputs()["k"]
        n = bench.inputs()["n"]
        rng.uniform(-40.0, 40.0, size=(k, 16))
        planted = rng.integers(0, k, n)

        # each found cluster must be (almost) pure in planted labels
        impure = 0
        for j in range(k):
            members = planted[labels == j]
            if len(members) == 0:
                continue
            dominant = np.bincount(members).max()
            impure += len(members) - dominant
        assert impure / n < 0.01


class TestSradStability:
    def test_double_diffusion_is_contractive(self, data_env):
        """In double precision the diffusion must keep the image finite
        and reduce roughness (it is a denoiser)."""
        bench = get_benchmark("srad")
        inputs = dict(bench.inputs())
        none = bench.execute(PrecisionConfig(), inputs=dict(inputs, iterations=0)).output
        several = bench.execute(PrecisionConfig(), inputs=dict(inputs, iterations=6)).output

        def roughness(img):
            grid = img.reshape(inputs["rows"], inputs["cols"])
            return float(np.mean(np.abs(np.diff(grid, axis=0))))

        assert np.all(np.isfinite(several))
        assert roughness(several) < roughness(none)


class TestCfdConservationShape:
    def test_density_stays_positive(self, data_env):
        bench = get_benchmark("cfd")
        output = bench.execute(PrecisionConfig()).output
        nel = bench.inputs()["nel"]
        density = output[:nel]
        assert np.all(density > 0.0)

    def test_update_magnitude_is_controlled(self, data_env):
        """The explicit scheme must not blow up over the iterations."""
        bench = get_benchmark("cfd")
        inputs = dict(bench.inputs())
        one = bench.execute(PrecisionConfig(), inputs=dict(inputs, iterations=1)).output
        three = bench.execute(PrecisionConfig()).output
        assert np.max(np.abs(three)) < 10 * max(np.max(np.abs(one)), 1.0)


class TestLavamdForces:
    def test_forces_scale_with_charge(self, data_env):
        """Doubling the charges quadruples the pairwise force term
        (fs ~ q_i q_j)."""
        from repro.benchmarks.apps.lavamd import interaction
        ws = Workspace(seed=3)
        from repro.runtime.mparray import MPArray
        n = 1024
        rng = np.random.default_rng(0)

        def force_norm(scale):
            px = MPArray(rng.random(n).copy(), ws.profile)
            py = MPArray(rng.random(n).copy(), ws.profile)
            pz = MPArray(rng.random(n).copy(), ws.profile)
            qv = MPArray(scale * (rng.random(n) - 0.5), ws.profile)
            gx, gy, gz, gq = px, py, pz, qv
            fx, fy, fz = interaction(
                ws, px, py, pz, qv, gx, gy, gz, gq, 0.1, 0.0, 0.0, 0.5,
            )
            return float(np.sum(np.abs(fx.data)))

        rng = np.random.default_rng(0)
        base = force_norm(1.0)
        rng = np.random.default_rng(0)
        scaled = force_norm(2.0)
        assert scaled == pytest.approx(4.0 * base, rel=1e-9)
