"""Unit tests for the roofline machine model."""

import pytest

from repro.runtime.machine import DEFAULT_MACHINE, CacheLevel, MachineModel
from repro.runtime.profiler import OpClass, Profile


def _profile(opclass, dtype, n, bytes_total=0.0, footprint=1):
    profile = Profile()
    profile.record_op(opclass, dtype, n, bytes_read=bytes_total)
    profile.track_alloc(footprint)
    return profile


class TestCacheLevel:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CacheLevel(0, 1e9)
        with pytest.raises(ValueError):
            CacheLevel(1024, -1.0)


class TestBandwidthTiering:
    def test_small_footprint_gets_fastest_tier(self):
        machine = DEFAULT_MACHINE
        fastest = machine.cache_levels[0].bandwidth_bytes_per_s
        assert machine.bandwidth(1) == fastest

    def test_spill_to_dram(self):
        machine = DEFAULT_MACHINE
        llc = machine.cache_levels[-1]
        assert machine.bandwidth(llc.capacity_bytes) == llc.bandwidth_bytes_per_s
        assert machine.bandwidth(llc.capacity_bytes + 1) == machine.dram_bandwidth

    def test_tiers_are_monotonic(self):
        machine = DEFAULT_MACHINE
        bandwidths = [lvl.bandwidth_bytes_per_s for lvl in machine.cache_levels]
        assert bandwidths == sorted(bandwidths, reverse=True)
        assert machine.dram_bandwidth < bandwidths[-1]


class TestComputeRates:
    def test_fp32_cheap_is_twice_fp64(self):
        machine = DEFAULT_MACHINE
        t64 = machine.time(_profile(OpClass.CHEAP, "float64", 1e9))
        t32 = machine.time(_profile(OpClass.CHEAP, "float32", 1e9))
        assert t64 / t32 == pytest.approx(2.0, rel=0.01)

    def test_transcendental_is_dtype_independent(self):
        machine = DEFAULT_MACHINE
        t64 = machine.time(_profile(OpClass.TRANS, "float64", 1e8))
        t32 = machine.time(_profile(OpClass.TRANS, "float32", 1e8))
        assert t64 == pytest.approx(t32, rel=0.01)

    def test_int_ops_dtype_independent(self):
        machine = DEFAULT_MACHINE
        t_a = machine.time(_profile(OpClass.INT, "int32", 1e8))
        t_b = machine.time(_profile(OpClass.INT, "int64", 1e8))
        assert t_a == pytest.approx(t_b)

    def test_unknown_dtype_falls_back_conservatively(self):
        machine = DEFAULT_MACHINE
        t = machine.time(_profile(OpClass.CHEAP, "int64", 1e9))
        t64 = machine.time(_profile(OpClass.CHEAP, "float64", 1e9))
        assert t > 0
        assert t <= t64 * 1.01  # falls back to INT or slowest float rate


class TestRoofline:
    def test_memory_bound_when_traffic_dominates(self):
        machine = DEFAULT_MACHINE
        llc_plus = machine.cache_levels[-1].capacity_bytes + 1
        heavy = _profile(OpClass.CHEAP, "float64", 10,
                         bytes_total=1e9, footprint=llc_plus)
        expected = 1e9 / machine.dram_bandwidth
        assert machine.time(heavy) == pytest.approx(expected, rel=0.05)

    def test_cache_residency_speeds_up_memory_bound(self):
        machine = DEFAULT_MACHINE
        llc = machine.cache_levels[-1].capacity_bytes
        slow = _profile(OpClass.CHEAP, "float64", 10, bytes_total=1e9, footprint=llc + 1)
        fast = _profile(OpClass.CHEAP, "float64", 10, bytes_total=5e8, footprint=llc // 2)
        assert machine.time(slow) > machine.time(fast) * 2

    def test_cast_and_gather_penalties(self):
        machine = DEFAULT_MACHINE
        base = Profile()
        base.record_op(OpClass.CHEAP, "float64", 100)
        with_casts = Profile()
        with_casts.record_op(OpClass.CHEAP, "float64", 100, casts=1e9)
        assert machine.time(with_casts) > machine.time(base)
        with_gather = Profile()
        with_gather.record_op(OpClass.CHEAP, "float64", 100)
        with_gather.record_gather(1e9, 0)
        assert machine.time(with_gather) > machine.time(base)

    def test_call_overhead_charged(self):
        machine = DEFAULT_MACHINE
        many_calls = Profile()
        for _ in range(1000):
            many_calls.record_op(OpClass.CHEAP, "float64", 1)
        few_calls = Profile()
        few_calls.record_op(OpClass.CHEAP, "float64", 1000)
        assert machine.time(many_calls) > machine.time(few_calls)

    def test_empty_profile_costs_nothing(self):
        assert DEFAULT_MACHINE.time(Profile()) == 0.0

    def test_breakdown_components_sum_close_to_time(self):
        machine = DEFAULT_MACHINE
        profile = Profile()
        profile.record_op(OpClass.CHEAP, "float64", 1e6, bytes_read=8e6)
        profile.record_op(OpClass.TRANS, "float64", 1e5)
        profile.record_gather(1e4, 8e4)
        profile.record_cast(1e4)
        breakdown = machine.breakdown(profile)
        total = sum(v for k, v in breakdown.items() if k != "bandwidth")
        assert total == pytest.approx(machine.time(profile), rel=0.01)

    def test_custom_machine_is_usable(self):
        machine = MachineModel(
            name="tiny",
            cache_levels=(CacheLevel(1024, 1e9),),
            dram_bandwidth=1e8,
        )
        assert machine.bandwidth(512) == 1e9
        assert machine.bandwidth(4096) == 1e8
