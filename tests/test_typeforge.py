"""Unit tests for the Typeforge-style type-dependence analysis."""

import pytest

from repro.errors import StyleError
from repro.typeforge import analyze_sources, scan_source
from repro.typeforge.dependence import UnionFind


def analyze(src, entry=None):
    return analyze_sources({"mod": src}, entry=entry, program="test")


LISTING1 = '''
def vect_mult(ws, n, input, inout, ratio):
    ratio = ws.param("ratio", ratio)
    res = ws.scalar("res", 0.0)
    for i in range(n):
        res = res + ratio * input[i]
    inout[0] = inout[0] + res

def foo(ws):
    arr = ws.array("arr", 10)
    val = ws.array("val", 1)
    scale = ws.scalar("scale", 2.0)
    vect_mult(ws, 10, arr, val, scale)
'''


class TestListing1:
    """The paper's running example must produce its exact partition."""

    def test_partition(self):
        report = analyze(LISTING1, entry="foo")
        partition = {frozenset(c.members) for c in report.clusters}
        assert partition == {
            frozenset({"foo.arr", "vect_mult.input"}),
            frozenset({"foo.val", "vect_mult.inout"}),
            frozenset({"foo.scale"}),
            frozenset({"vect_mult.ratio"}),
            frozenset({"vect_mult.res"}),
        }

    def test_tv_tc(self):
        report = analyze(LISTING1, entry="foo")
        assert report.total_variables == 7
        assert report.total_clusters == 5

    def test_name_map(self):
        report = analyze(LISTING1, entry="foo")
        assert report.name_map["arr"] == "foo.arr"
        assert report.name_map["ratio"] == "vect_mult.ratio"
        # the array-bound parameter has no runtime declaration
        assert "input" not in report.name_map


class TestScanner:
    def test_declarations_found(self):
        scan = scan_source(
            "def k(ws):\n x = ws.array('x', 4)\n s = ws.scalar('s', 1.0)\n",
            "m",
        )
        decls = {(d.slot.name, d.decl_kind) for d in scan.functions["k"].declarations}
        assert decls == {("x", "array"), ("s", "scalar")}

    def test_mp_fread_is_array_declaration(self):
        scan = scan_source(
            "def k(ws, path):\n img = mp_fread(ws, 'img', path)\n", "m",
        )
        decls = scan.functions["k"].declarations
        assert decls[0].decl_kind == "array"
        assert decls[0].slot.name == "img"

    def test_declaration_name_mismatch_rejected(self):
        with pytest.raises(StyleError, match="must match"):
            analyze("def k(ws):\n y = ws.array('x', 4)\n")

    def test_double_declaration_rejected(self):
        src = "def k(ws):\n x = ws.array('x', 4)\n x = ws.array('x', 8)\n"
        with pytest.raises(StyleError, match="declared twice"):
            analyze(src)

    def test_non_literal_name_rejected(self):
        with pytest.raises(StyleError, match="string literal"):
            analyze("def k(ws, n):\n x = ws.array(n, 4)\n")

    def test_ws_param_skipped_in_callsites(self):
        scan = scan_source(
            "def g(ws, a):\n a[0] = 1.0\n"
            "def k(ws):\n x = ws.array('x', 4)\n g(ws, x)\n",
            "m",
        )
        callee, args = scan.functions["k"].callsites[0]
        assert callee == "g"
        assert args == [("x", 0)]

    def test_subscripts_recorded(self):
        scan = scan_source("def k(ws, a):\n a[0] = a[1]\n", "m")
        assert "a" in scan.functions["k"].subscripted

    def test_returns_recorded(self):
        scan = scan_source("def k(ws):\n x = ws.array('x', 1)\n return x\n", "m")
        assert scan.functions["k"].returns == ["x"]


class TestDependenceRules:
    def test_tuple_swap_unifies(self):
        src = (
            "def k(ws):\n"
            " x = ws.array('x', 4)\n"
            " v = ws.array('v', 4)\n"
            " x, v = v, x\n"
        )
        report = analyze(src)
        assert report.total_clusters == 1
        assert report.clusters[0].members == frozenset({"k.x", "k.v"})

    def test_slice_alias_unifies(self):
        src = (
            "def g(ws, part):\n part[0] = 1.0\n"
            "def k(ws):\n"
            " big = ws.array('big', 10)\n"
            " chunk = big[2:6]\n"
            " g(ws, chunk)\n"
        )
        report = analyze(src)
        cluster = next(c for c in report.clusters if "k.big" in c)
        assert "g.part" in cluster

    def test_scalar_element_load_does_not_create_variable(self):
        src = (
            "def k(ws):\n"
            " coef = ws.array('coef', 3)\n"
            " q = coef[0]\n"
            " x = ws.array('x', 4)\n"
            " x[:] = x * q\n"
        )
        report = analyze(src)
        assert report.total_variables == 2  # coef and x only
        assert report.total_clusters == 2

    def test_scalar_assignment_does_not_unify(self):
        src = (
            "def k(ws):\n"
            " a = ws.scalar('a', 1.0)\n"
            " b = ws.scalar('b', 2.0)\n"
            " b = a\n"
        )
        report = analyze(src)
        assert report.total_clusters == 2

    def test_return_binding_aliases(self):
        src = (
            "def make(ws):\n"
            " buf = ws.array('buf', 4)\n"
            " return buf\n"
            "def use(ws, data):\n"
            " data[0] = 1.0\n"
            "def k(ws):\n"
            " out = make(ws)\n"
            " use(ws, out)\n"
        )
        report = analyze(src, entry="k")
        cluster = next(c for c in report.clusters if "make.buf" in c)
        assert "use.data" in cluster

    def test_shared_parameter_unifies_two_arrays(self):
        src = (
            "def f(ws, s):\n s[0] = 0.0\n"
            "def k(ws):\n"
            " a = ws.array('a', 4)\n"
            " b = ws.array('b', 4)\n"
            " f(ws, a)\n"
            " f(ws, b)\n"
        )
        report = analyze(src)
        assert report.total_clusters == 1
        assert len(report.clusters[0]) == 3

    def test_entry_params_are_not_variables(self):
        src = "def k(ws, data):\n x = ws.array('x', init=data[0])\n"
        report = analyze(src, entry="k")
        assert report.total_variables == 1

    def test_scalar_in_pointer_context_rejected(self):
        src = (
            "def f(ws, arr):\n arr[0] = 1.0\n"
            "def k(ws):\n s = ws.scalar('s', 1.0)\n f(ws, s)\n"
        )
        with pytest.raises(StyleError, match="pointer"):
            analyze(src)

    def test_duplicate_function_across_modules_rejected(self):
        with pytest.raises(StyleError, match="more than one module"):
            analyze_sources({
                "m1": "def f(ws):\n x = ws.array('x', 1)\n",
                "m2": "def f(ws):\n y = ws.array('y', 1)\n",
            })

    def test_duplicate_bare_name_rejected(self):
        src = (
            "def f(ws):\n x = ws.array('x', 1)\n"
            "def g(ws):\n x = ws.array('x', 1)\n"
        )
        with pytest.raises(StyleError, match="unique"):
            analyze(src)

    def test_cross_module_binding(self):
        report = analyze_sources({
            "ops": "def scale(ws, vec):\n vec[:] = vec * 0.5\n",
            "main": (
                "def k(ws):\n"
                " data = ws.array('data', 8)\n"
                " scale(ws, data)\n"
            ),
        }, entry="k")
        cluster = next(c for c in report.clusters if "k.data" in c)
        assert "scale.vec" in cluster
        variables = {v.uid: v for v in report.variables}
        assert variables["scale.vec"].module == "ops"
        assert variables["k.data"].module == "main"


class TestDependenceEdgeCases:
    def test_self_alias_is_harmless(self):
        src = "def k(ws):\n x = ws.array('x', 4)\n x = x\n"
        report = analyze(src)
        assert report.total_variables == 1
        assert report.total_clusters == 1

    def test_return_into_subscript_does_not_unify(self):
        # a[0] = make(ws): the scalar lands in an array *element*, which
        # is a legal cast — the scalar and the array stay independent
        src = (
            "def make(ws):\n s = ws.scalar('s', 1.0)\n return s\n"
            "def k(ws):\n a = ws.array('a', 4)\n a[0] = make(ws)\n"
        )
        report = analyze(src, entry="k")
        assert report.total_variables == 2
        assert report.total_clusters == 2

    def test_return_into_subscript_flows_to_output(self):
        # ...but the dataflow pass still sees the value reach the output
        from repro.typeforge.dataflow import analyze_dataflow

        src = (
            "def make(ws):\n s = ws.scalar('s', 1.0)\n return s\n"
            "def k(ws):\n a = ws.array('a', 4)\n a[0] = make(ws)\n return a\n"
        )
        report = analyze(src, entry="k")
        dataflow = analyze_dataflow(report.scans, entry="k", dependence=report.dependence)
        assert dataflow.output_relevant == {"k.a", "make.s"}


class TestStyleErrorLocations:
    def test_scan_error_carries_line_and_col(self):
        with pytest.raises(StyleError) as excinfo:
            analyze("def k(ws):\n y = ws.array('x', 4)\n")
        error = excinfo.value
        assert error.line == 2
        assert error.col and error.col > 0
        assert str(error).startswith(f"{error.line}:{error.col}: ")

    def test_solver_error_carries_location(self):
        src = (
            "def f(ws):\n x = ws.array('x', 1)\n"
            "def g(ws):\n x = ws.array('x', 1)\n"
        )
        with pytest.raises(StyleError) as excinfo:
            analyze(src)
        assert excinfo.value.line == 4  # the second, conflicting declaration

    def test_location_includes_file_when_scanned_from_path(self, tmp_path):
        from repro.typeforge.astscan import scan_source

        path = tmp_path / "bad.py"
        source = (
            "def k(ws):\n s = ws.scalar('s', 1.0)\n f2(ws, s)\n"
            "def f2(ws, arr):\n arr[0] = 1.0\n"
        )
        path.write_text(source)
        with pytest.raises(StyleError) as excinfo:
            from repro.typeforge.dependence import solve

            solve([scan_source(source, "bad", path=str(path))])
        error = excinfo.value
        assert error.file == str(path)
        assert str(error).startswith(f"{path}:")
        assert error.location.startswith(str(path))

    def test_location_none_renders_bare_message(self):
        error = StyleError("plain")
        assert error.location is None
        assert str(error) == "plain"


class TestReport:
    def test_search_space_construction(self):
        report = analyze(LISTING1, entry="foo")
        space = report.search_space()
        assert space.total_variables == 7
        assert space.total_clusters == 5

    def test_function_and_module_listing(self):
        report = analyze(LISTING1, entry="foo")
        assert report.functions() == ("foo", "vect_mult")
        assert report.modules() == ("mod",)
        assert len(report.variables_in_function("foo")) == 3
        assert len(report.variables_in_module("mod")) == 7

    def test_summary_shape(self):
        summary = analyze(LISTING1, entry="foo").summary()
        assert summary["total_variables"] == 7
        assert "clusters" in summary


class TestUnionFind:
    def test_union_and_find(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.find("a") == uf.find("c")
        assert uf.find("d") == "d"

    def test_groups(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.add("c")
        groups = {frozenset(v) for v in uf.groups().values()}
        assert groups == {frozenset({"a", "b"}), frozenset({"c"})}

    def test_contains(self):
        uf = UnionFind()
        uf.add("x")
        assert "x" in uf
        assert "y" not in uf

    def test_idempotent_union(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("a", "b")
        assert len(uf.groups()) == 1

    def test_find_applies_path_halving(self):
        # White-box: build the degenerate chain 4 -> 3 -> 2 -> 1 -> 0
        # by hand; one find(4) must rewire every visited node to its
        # grandparent, halving the path.
        uf = UnionFind()
        for item in range(5):
            uf.add(item)
        for item in range(1, 5):
            uf._parent[item] = item - 1
        assert uf.find(4) == 0
        assert uf._parent[4] == 2  # grandparent, not 3
        assert uf._parent[2] == 0
        # a second find walks the halved path and fully flattens it
        assert uf.find(4) == 0
        assert uf._parent[4] == 0

    def test_union_by_rank_attaches_shallow_under_deep(self):
        uf = UnionFind()
        uf.union("a", "b")       # rank(root{a,b}) becomes 1
        deep_root = uf.find("a")
        uf.union("c", "a")       # rank 0 joins rank 1: root unchanged
        assert uf.find("c") == deep_root
        assert uf._rank[deep_root] == 1

    def test_rank_tie_increments_winner(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("c", "d")
        first, second = uf.find("a"), uf.find("c")
        assert uf._rank[first] == uf._rank[second] == 1
        uf.union("a", "c")       # tie: merged root's rank must grow
        root = uf.find("a")
        assert uf._rank[root] == 2
        assert {uf.find(x) for x in "abcd"} == {root}

    def test_roots_are_fixpoints(self):
        uf = UnionFind()
        for pair in [("a", "b"), ("c", "d"), ("b", "c"), ("e", "f")]:
            uf.union(*pair)
        for item in "abcdef":
            root = uf.find(item)
            assert uf.find(root) == root
            assert uf._parent[root] == root


class TestExplain:
    def test_direct_binding_chain(self):
        report = analyze(LISTING1, entry="foo")
        chain = report.explain("foo.arr", "vect_mult.input")
        assert chain is not None
        assert len(chain) == 1
        assert "argument/parameter binding" in chain[0]

    def test_independent_variables_return_none(self):
        report = analyze(LISTING1, entry="foo")
        assert report.explain("foo.arr", "foo.val") is None
        assert report.explain("foo.scale", "vect_mult.res") is None

    def test_same_variable_is_empty_chain(self):
        report = analyze(LISTING1, entry="foo")
        assert report.explain("foo.arr", "foo.arr") == []

    def test_unknown_variable_raises(self):
        report = analyze(LISTING1, entry="foo")
        with pytest.raises(KeyError, match="ghost"):
            report.explain("foo.arr", "foo.ghost")

    def test_multi_hop_chain(self):
        src = (
            "def middle(ws, m):\n m[0] = 1.0\n"
            "def k(ws):\n"
            " a = ws.array('a', 4)\n"
            " b = ws.array('b', 4)\n"
            " middle(ws, a)\n"
            " middle(ws, b)\n"
        )
        report = analyze(src)
        chain = report.explain("k.a", "k.b")
        assert chain is not None
        assert len(chain) == 2  # a -> middle.m -> b

    def test_explanation_consistent_with_clusters(self):
        """explain() finds a chain iff the pair shares a cluster."""
        report = analyze(LISTING1, entry="foo")
        for first in report.variables:
            for second in report.variables:
                connected = report.explain(first.uid, second.uid) is not None
                same_cluster = any(
                    first.uid in c and second.uid in c for c in report.clusters
                )
                assert connected == same_cluster, (first.uid, second.uid)
