"""Bit-width bisection search (``BW``) and its golden pins.

Unit tests cover the strategy mechanics — the width ladder, the
feasibility probe, the binary-search invariant that the returned width
always passed — and the registry/CLI plumbing (``--rounding`` only
reaches strategies that accept it).  The golden suite pins search-space
sizes and full BW outcomes for five representative programs against
``tests/data/formats_golden.json``; regenerate the file (see the
docstring there) only when the search or the spaces *intentionally*
change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.benchmarks.base import get_benchmark
from repro.core.evaluator import ConfigurationEvaluator
from repro.core.types import Precision, get_format, parse_precision
from repro.search.bitwidth import BitWidthSearch, emulated_domain
from repro.search.registry import canonical_name, make_strategy, strategy_kwargs


def _load_golden():
    path = Path(__file__).parent / "data" / "formats_golden.json"
    return json.loads(path.read_text())


GOLDEN = _load_golden()


class TestEmulatedDomain:
    def test_default_ladder_spans_e8_plus_double(self):
        domain = emulated_domain()
        assert domain[0] is get_format("e8m2")
        assert domain[-2] is get_format("e8m23")
        assert domain[-1] is Precision.DOUBLE
        assert len(domain) == 23  # m2..m23 plus the double fallback

    def test_e11_ladder(self):
        domain = emulated_domain(exponent_bits=11, min_mantissa=40)
        assert [f.name for f in domain[:3]] == ["e11m40", "e11m41", "e11m42"]
        assert domain[-1] is Precision.DOUBLE

    def test_stochastic_ladder_uses_sr_formats(self):
        domain = emulated_domain(rounding="stochastic")
        assert domain[0] is get_format("e8m2sr")
        assert all(
            fmt.stochastic for fmt in domain[:-1]
        )

    def test_rejects_bad_arguments(self):
        from repro.errors import MixPBenchError

        with pytest.raises(MixPBenchError, match="rounding"):
            emulated_domain(rounding="up")
        with pytest.raises(MixPBenchError, match="exponent"):
            emulated_domain(exponent_bits=5)
        with pytest.raises(MixPBenchError, match="min_mantissa"):
            emulated_domain(min_mantissa=40)  # exceeds the e8 cap


class TestRegistryPlumbing:
    def test_aliases_resolve_to_bw(self):
        for alias in ("BW", "bisect", "bitwidth", "bitwidth-bisection"):
            assert canonical_name(alias) == "BW"
            assert isinstance(make_strategy(alias), BitWidthSearch)

    def test_strategy_kwargs_only_feeds_bw(self):
        assert strategy_kwargs("BW", rounding="stochastic") == {
            "rounding": "stochastic"
        }
        # a mixed --algorithms DD BW --rounding stochastic grid must not
        # pass the kwarg to strategies that don't take it
        assert strategy_kwargs("DD", rounding="stochastic") == {}
        assert strategy_kwargs("HR", rounding="nearest") == {}

    def test_describe_records_parameters(self):
        strategy = make_strategy("BW", min_mantissa=5, rounding="stochastic")
        description = strategy.describe()
        assert description["min_mantissa"] == 5
        assert description["rounding"] == "stochastic"


class TestBisectionSearch:
    def test_final_config_was_an_evaluated_passing_trial(self):
        bench = get_benchmark("eos")
        evaluator = ConfigurationEvaluator(bench)
        outcome = make_strategy("BW").run(evaluator)
        assert outcome.found_solution
        final_digest = outcome.final.config.digest()
        passing = {
            t.config.digest() for t in outcome.trials if t.passed
        }
        assert final_digest in passing

    def test_assigned_widths_pass_and_narrower_fails(self):
        """The bisection invariant: the chosen width passes; one bit
        narrower (when the chosen width is above the floor) fails."""
        bench = get_benchmark("eos")
        outcome = make_strategy("BW").run(ConfigurationEvaluator(bench))
        config = outcome.final.config
        quality = bench.quality
        import numpy as np

        baseline = bench.execute(type(config)())
        for location, precision in config.items():
            fmt = parse_precision(precision)
            if fmt is Precision.DOUBLE or fmt.mantissa_bits <= 2:
                continue
            narrower = config.assign(
                location, get_format(f"e8m{fmt.mantissa_bits - 1}")
            )
            with np.errstate(all="ignore"):
                err = quality.measure(
                    baseline.output, bench.execute(narrower).output
                )
            assert not err <= bench.default_threshold

    def test_stochastic_mode_runs(self):
        bench = get_benchmark("eos")
        outcome = make_strategy("BW", rounding="stochastic").run(
            ConfigurationEvaluator(bench)
        )
        assert outcome.evaluations > 0
        if outcome.found_solution:
            for _loc, precision in outcome.final.config.items():
                fmt = parse_precision(precision)
                if fmt is not Precision.DOUBLE:
                    assert fmt.stochastic


@pytest.mark.parametrize("program", sorted(GOLDEN))
class TestFormatsGolden:
    """Pinned space sizes and BW outcomes for the representative set."""

    def test_space_sizes_match_golden(self, program):
        pin = GOLDEN[program]
        space = get_benchmark(program).search_space()
        assert len(space.locations()) == pin["locations"]
        assert space.size() == pin["standard_space_size"]
        domain = emulated_domain()
        assert len(domain) == pin["bitwidth_domain_size"]
        bw_space = space.with_width_domains(
            {loc: domain for loc in space.locations()}
        )
        assert bw_space.size() == pin["bitwidth_space_size"]

    def test_bw_outcome_matches_golden(self, program):
        pin = GOLDEN[program]
        bench = get_benchmark(program)
        outcome = make_strategy("BW").run(ConfigurationEvaluator(bench))
        assert outcome.evaluations == pin["bw_evaluations"]
        assert outcome.found_solution == pin["bw_found_solution"]
        if pin["bw_found_solution"]:
            assert outcome.final.config.to_json_dict() == pin["bw_final"]
