#!/usr/bin/env python3
"""Compare all six mixed-precision search algorithms on one program.

Reproduces a single row of the paper's Table III: every algorithm —
combinational, compositional, delta-debugging, hierarchical,
hierarchical-compositional and the genetic algorithm — tunes the same
kernel at the same quality threshold, and the EV/SU/AC metrics are
tabulated side by side.

Run with:  python examples/compare_algorithms.py [benchmark] [threshold]
"""

try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # running from a source checkout without install
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import sys

from repro.benchmarks import get_benchmark
from repro.core import ConfigurationEvaluator
from repro.harness import format_quality, format_speedup, format_table
from repro.search import ALGORITHM_ORDER, make_strategy
from repro.verify import QualitySpec


def main(program: str = "eos", threshold: float = 1e-8) -> None:
    rows = []
    for abbreviation in ALGORITHM_ORDER:
        bench = get_benchmark(program)
        evaluator = ConfigurationEvaluator(
            bench, quality=QualitySpec(bench.metric, threshold),
        )
        outcome = make_strategy(abbreviation).run(evaluator)
        rows.append([
            abbreviation,
            outcome.strategy,
            outcome.evaluations,
            f"{outcome.analysis_seconds / 3600:.2f}h",
            format_speedup(outcome.speedup),
            format_quality(outcome.error_value),
            "timeout" if outcome.timed_out else
            ("ok" if outcome.found_solution else "none"),
        ])
    print(format_table(
        ["abbr", "strategy", "EV", "analysis", "SU", "AC", "status"],
        rows,
        title=f"{program} @ threshold {threshold:g}",
    ))


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "eos"
    bound = float(sys.argv[2]) if len(sys.argv) > 2 else 1e-8
    main(name, bound)
