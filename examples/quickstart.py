#!/usr/bin/env python3
"""Quickstart: analyse and tune one benchmark end to end.

Picks the `hydro-1d` kernel, runs the Typeforge type-dependence
analysis, tunes it with the delta-debugging search at the paper's
strict kernel threshold, and reports the three paper metrics:
Evaluated Configurations (EV), Speedup (SU) and Accuracy (AC).

Run with:  python examples/quickstart.py
"""

try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # running from a source checkout without install
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.benchmarks import get_benchmark
from repro.core import ConfigurationEvaluator
from repro.search import make_strategy
from repro.verify import QualitySpec


def main() -> None:
    bench = get_benchmark("hydro-1d")
    print(f"Benchmark: {bench.name} — {bench.description}")

    # 1. Static analysis: which variables exist, which must share a type?
    report = bench.report()
    print(f"\nTypeforge: TV={report.total_variables} variables, "
          f"TC={report.total_clusters} clusters")
    for cluster in report.clusters:
        members = ", ".join(sorted(cluster.members))
        print(f"  cluster {cluster.cid}: {{{members}}}")

    # 2. Search: which clusters can run in single precision?
    quality = QualitySpec("MAE", 1e-8)
    evaluator = ConfigurationEvaluator(bench, quality=quality)
    outcome = make_strategy("DD").run(evaluator)

    # 3. Report, paper style.
    print(f"\nDelta-debugging search @ MAE <= {quality.threshold:g}")
    print(f"  evaluated configurations (EV): {outcome.evaluations}")
    if outcome.found_solution:
        lowered = sorted(outcome.final.config.lowered_locations())
        print(f"  speedup (SU):                  {outcome.speedup:.2f}x")
        print(f"  accuracy (AC):                 {outcome.error_value:.3e}")
        print(f"  variables lowered to single:   {', '.join(lowered)}")
    else:
        print("  no valid mixed-precision configuration found")


if __name__ == "__main__":
    main()
