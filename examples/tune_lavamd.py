#!/usr/bin/env python3
"""Domain scenario: why LavaMD is the mixed-precision poster child.

The paper's sharpest observation (Section V): lowering LavaMD's
particle arrays halves their footprint, which flips the working set
from DRAM-resident to cache-resident — a speedup no instruction-level
tool can see, because it comes from *memory layout*, not arithmetic.

This script makes the mechanism visible: it executes LavaMD under the
all-double and all-single configurations, prints the modeled working
set against the machine's cache capacities and the resulting runtime
breakdown, then sweeps all three paper thresholds with delta debugging
to show where the conversion stops being allowed.

Run with:  python examples/tune_lavamd.py
"""

try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # running from a source checkout without install
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.benchmarks import get_benchmark
from repro.core import ConfigurationEvaluator, Precision, PrecisionConfig
from repro.runtime import DEFAULT_MACHINE
from repro.search import DeltaDebugSearch
from repro.verify import QualitySpec


def describe_execution(label: str, result) -> None:
    footprint_mb = result.profile.peak_footprint / 2**20
    bandwidth = DEFAULT_MACHINE.bandwidth(result.profile.peak_footprint)
    print(f"  {label}:")
    print(f"    working set     : {footprint_mb:6.1f} MiB")
    print(f"    effective BW    : {bandwidth / 1e9:6.1f} GB/s")
    print(f"    modeled runtime : {result.modeled_seconds * 1e3:6.1f} modeled ms")


def main() -> None:
    bench = get_benchmark("lavamd")
    llc = DEFAULT_MACHINE.cache_levels[-1]
    print(f"Machine: LLC = {llc.capacity_bytes / 2**20:.0f} MiB "
          f"@ {llc.bandwidth_bytes_per_s / 1e9:.0f} GB/s, "
          f"DRAM @ {DEFAULT_MACHINE.dram_bandwidth / 1e9:.0f} GB/s")

    print("\nCache residency of the particle state:")
    baseline = bench.execute(PrecisionConfig())
    describe_execution("double precision", baseline)
    single = bench.execute(bench.search_space().uniform_config(Precision.SINGLE))
    describe_execution("single precision", single)
    print(f"  conversion speedup: "
          f"{baseline.modeled_seconds / single.modeled_seconds:.2f}x")

    print("\nDelta-debugging search across the paper's thresholds:")
    for threshold in (1e-3, 1e-6, 1e-8):
        evaluator = ConfigurationEvaluator(
            get_benchmark("lavamd"), quality=QualitySpec("MAE", threshold),
        )
        outcome = DeltaDebugSearch().run(evaluator)
        lowered = (
            len(outcome.final.config.lowered_locations())
            if outcome.found_solution else 0
        )
        speedup = f"{outcome.speedup:.2f}x" if outcome.found_solution else "-"
        print(f"  threshold {threshold:8.0e}: EV={outcome.evaluations:3d}  "
              f"SU={speedup:>6}  lowered variables={lowered}")

    print("\nThe wholesale conversion survives only the relaxed 1e-3 bound —")
    print("below that, the accumulated force error forbids it, and with the")
    print("arrays stuck in double precision the cache effect (and the")
    print("speedup) disappears, exactly as the paper's Table V shows.")


if __name__ == "__main__":
    main()
