#!/usr/bin/env python3
"""Drive the YAML harness programmatically (paper Listing 4 workflow).

Builds a configuration document equivalent to the paper's K-means
example, deploys the benchmark through the harness, runs the
FloatSmith analysis plugin, and prints the verified result — the same
pipeline `mixpbench run configs/kmeans.yaml` executes from the shell.

Run with:  python examples/harness_yaml.py
"""

try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # running from a source checkout without install
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import tempfile
from pathlib import Path

from repro.harness import Harness, format_quality, format_speedup

CONFIG = """\
# K-means, as in the paper's Listing 4
kmeans:
  benchmark: kmeans
  build: ['generate-inputs']
  clean: ['remove-inputs']
  metric: MCR
  threshold: 1.0e-6
  runs: 10
  time_limit_hours: 24
  analysis:
    floatsmith:
      name: floatSmith
      extra_args:
        algorithm: ddebug
    genetic:
      name: floatSmith
      extra_args:
        algorithm: GA
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as scratch:
        config_path = Path(scratch) / "kmeans.yaml"
        config_path.write_text(CONFIG)

        harness = Harness(output_dir=Path(scratch) / "results")
        for report in harness.run_file(config_path):
            print(f"{report.name}: verify {report.metric} <= {report.threshold:g}")
            for analysis in report.analyses:
                status = (
                    "timeout" if analysis.timed_out
                    else "ok" if analysis.found_solution
                    else "none"
                )
                print(
                    f"  [{analysis.identifier}] {analysis.strategy:18s} "
                    f"EV={analysis.evaluations:3d} "
                    f"analysis={analysis.analysis_hours:5.2f}h "
                    f"SU={format_speedup(analysis.speedup):>5} "
                    f"AC={format_quality(analysis.error_value):>8} "
                    f"({status})"
                )
                print(f"      interchange artifact: {analysis.artifact.name}")


if __name__ == "__main__":
    main()
