#!/usr/bin/env python3
"""Extend the suite: bring your own benchmark.

HPC-MixPBench's design goal (2) is "extensible interfaces for
integrating new approximation techniques" — and new *programs*.  This
script shows the full path for a user code:

1. write the compute kernel in the constrained MPB style (here: a
   damped Jacobi smoother, defined inline);
2. run the Typeforge analysis on its source to get variables/clusters;
3. wrap it in a tiny Program adapter;
4. tune it with any search strategy.

Run with:  python examples/custom_benchmark.py
"""

try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # running from a source checkout without install
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.core import ConfigurationEvaluator, ExecutionResult, Granularity
from repro.runtime import DEFAULT_MACHINE, Workspace
from repro.search import make_strategy
from repro.typeforge import analyze_sources
from repro.verify import QualitySpec

KERNEL_SOURCE = '''
def smooth(ws, grid):
    grid[1:-1] = 0.25 * (grid[:-2] + grid[2:]) + 0.5 * grid[1:-1]

def jacobi(ws, n, sweeps):
    u = ws.array("u", init=0.1 * ws.rng.standard_normal(n))
    rhs = ws.array("rhs", init=0.05 * ws.rng.standard_normal(n))
    omega = ws.scalar("omega", 0.8)
    for _ in range(sweeps):
        smooth(ws, u)
        u[1:-1] = u[1:-1] + omega * (rhs[1:-1] - u[1:-1])
    return u
'''

# Make the source importable so the kernel actually runs.
_namespace: dict = {}
exec(compile(KERNEL_SOURCE, "<user-kernel>", "exec"), _namespace)


class JacobiProgram:
    """Minimal Program-protocol adapter around the inline kernel."""

    name = "user-jacobi"
    quality = QualitySpec("MAE", 1e-8)
    runs_per_config = 10
    nominal_seconds = 2.0
    compile_seconds = 10.0

    def __init__(self) -> None:
        self.report = analyze_sources(
            {"user_jacobi": KERNEL_SOURCE}, entry="jacobi", program=self.name,
        )

    def search_space(self, granularity=Granularity.CLUSTER):
        return self.report.search_space(granularity)

    def execute(self, config) -> ExecutionResult:
        ws = Workspace(config, name_map=self.report.name_map, seed=42)
        output = _namespace["jacobi"](ws, n=50_000, sweeps=6)
        return ExecutionResult(
            output=np.asarray(output.data, dtype=np.float64).copy(),
            profile=ws.profile,
            modeled_seconds=DEFAULT_MACHINE.time(ws.profile),
        )


def main() -> None:
    program = JacobiProgram()
    print(f"Custom program {program.name!r}: "
          f"TV={program.report.total_variables}, "
          f"TC={program.report.total_clusters}")
    for cluster in program.report.clusters:
        print(f"  cluster {cluster.cid}: {sorted(cluster.members)}")

    for algorithm in ("CB", "DD", "GA"):
        evaluator = ConfigurationEvaluator(program)
        outcome = make_strategy(algorithm).run(evaluator)
        if outcome.found_solution:
            print(f"{algorithm}: EV={outcome.evaluations:2d}  "
                  f"SU={outcome.speedup:.2f}x  AC={outcome.error_value:.2e}")
        else:
            print(f"{algorithm}: EV={outcome.evaluations:2d}  no solution")


if __name__ == "__main__":
    main()
