"""Bench: the paper-vs-measured shape comparison.

Every check in this report is a formal acceptance criterion of the
reproduction; the bench fails if any regresses.
"""

from conftest import run_once

from repro.experiments import compare


def test_compare(benchmark, ctx, results_dir):
    text = run_once(benchmark, lambda: compare.run(ctx, results_dir=str(results_dir)))
    print("\n" + text)
    verdicts = [row[-1] for row in compare.rows(ctx)]
    assert verdicts and all(v == "PASS" for v in verdicts)
