"""Shared fixtures for the reproduction benchmarks.

The search-driven benches share one :class:`ExperimentContext` whose
per-cell outcomes persist under ``results/searches`` at the repository
root, so a full ``pytest benchmarks/ --benchmark-only`` run computes
each (program × algorithm × threshold) search exactly once and
subsequent runs reuse the interchange JSON.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.context import ExperimentContext

RESULTS_DIR = Path(__file__).parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def ctx(results_dir) -> ExperimentContext:
    return ExperimentContext(results_dir=results_dir)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    Search experiments are deterministic and cache their grid, so
    multiple timing rounds would only measure the cache."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
