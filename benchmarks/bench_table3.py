"""Bench: regenerate paper Table III (kernel evaluation, 6 algorithms).

Shape assertions, mirroring the paper's Section IV-B.1 findings:

* the cluster-level searches (CB, CM, DD, GA) converge to the same
  configuration on every kernel;
* the variable-level hierarchical searches evaluate more
  configurations on the multi-cluster kernels (wasted compile errors);
* banded-lin-eq keeps its outsized cache-crossing speedup.
"""

import math

from conftest import run_once

from repro.benchmarks.base import kernel_benchmarks
from repro.experiments import table3
from repro.experiments.context import KERNEL_THRESHOLD


def test_table3(benchmark, ctx, results_dir):
    text = run_once(benchmark, lambda: table3.run(ctx, results_dir=str(results_dir)))
    print("\n" + text)

    for kernel in kernel_benchmarks():
        outcomes = {
            alg: ctx.outcome(kernel, alg, KERNEL_THRESHOLD)
            for alg in ("CB", "CM", "DD", "HR", "HC", "GA")
        }
        # every search found a solution within budget on every kernel
        for alg, outcome in outcomes.items():
            assert outcome is not None and not outcome.timed_out, (kernel, alg)

        # cluster-level searches agree on the solution quality
        cluster_errors = {
            round(outcomes[a].error_value, 15) if not math.isnan(outcomes[a].error_value) else None
            for a in ("CB", "DD")
        }
        assert len(cluster_errors) == 1, kernel

    # HR/HC burn evaluations on the kernels whose full conversion fails
    assert ctx.outcome("eos", "HR", KERNEL_THRESHOLD).evaluations > \
        ctx.outcome("eos", "DD", KERNEL_THRESHOLD).evaluations
    assert ctx.outcome("planckian", "HC", KERNEL_THRESHOLD).evaluations > \
        ctx.outcome("planckian", "CB", KERNEL_THRESHOLD).evaluations

    # the cache-crossing kernel keeps its large speedup
    assert ctx.outcome("banded-lin-eq", "DD", KERNEL_THRESHOLD).speedup > 2.5
