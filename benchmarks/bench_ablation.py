"""Ablation benches for the design choices DESIGN.md calls out.

1. **Clustering** (the paper's central recommendation): running DD at
   variable granularity instead of cluster granularity both inflates
   the evaluation count and risks missing the solution entirely,
   because individually-typed variables produce non-compiling
   configurations.
2. **CM's union heuristic**: without the maximal-union shortcut the
   compositional pool grows combinatorially.
3. **GA population sizing**: the iteration cap trades solution quality
   for bounded, predictable analysis time.
"""

import pytest

from repro.benchmarks.base import get_benchmark
from repro.core.evaluator import ConfigurationEvaluator
from repro.core.results import EvaluationStatus
from repro.core.variables import Granularity
from repro.search import CompositionalSearch, DeltaDebugSearch, GeneticSearch
from repro.verify.quality import QualitySpec


def _evaluator(name, threshold, **kwargs):
    bench = get_benchmark(name)
    return ConfigurationEvaluator(
        bench, quality=QualitySpec(bench.metric, threshold), **kwargs,
    )


class VariableLevelDD(DeltaDebugSearch):
    """DD forced onto raw variables (the ablated configuration)."""

    strategy_name = "delta-debugging-variables"
    granularity = Granularity.VARIABLE


def test_ablation_clustering_reduces_search_effort(benchmark):
    """Paper: 'preprocessing the application source code to group
    variables into clusters ... increases the effectiveness of search
    algorithms'."""
    def run_both():
        # the strict threshold forces both searches past the
        # all-single shortcut and into the partition refinement
        clustered = DeltaDebugSearch().run(_evaluator("cfd", 1e-8))
        unclustered = VariableLevelDD().run(_evaluator("cfd", 1e-8))
        return clustered, unclustered

    clustered, unclustered = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(
        f"\nDD on cfd @1e-8: clustered EV={clustered.evaluations}, "
        f"variable-level EV={unclustered.evaluations}"
    )
    assert clustered.found_solution
    assert unclustered.evaluations >= clustered.evaluations
    # variable-level search wastes evaluations on compile errors
    wasted = [
        t for t in unclustered.trials
        if t.status is EvaluationStatus.COMPILE_ERROR
    ]
    assert wasted


def test_ablation_cm_union_heuristic(benchmark):
    """Without the maximal-union shortcut CM re-explores pairwise
    unions; with it, benign programs finish right after stage one."""
    def run_both():
        fast = CompositionalSearch(use_union_heuristic=True).run(
            _evaluator("kmeans", 1e-6),
        )
        slow = CompositionalSearch(use_union_heuristic=False).run(
            _evaluator("kmeans", 1e-6, max_evaluations=200),
        )
        return fast, slow

    fast, slow = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(
        f"\nCM on kmeans @1e-6: union-heuristic EV={fast.evaluations}, "
        f"pairwise EV={slow.evaluations} (timed out: {slow.timed_out})"
    )
    assert fast.found_solution and not fast.timed_out
    assert slow.timed_out or slow.evaluations > 3 * fast.evaluations


def test_ablation_ga_iteration_cap(benchmark):
    """More generations buy GA better configurations at a predictable
    linear cost (paper: the cap makes GA's analysis time easy to
    predict but costs solution quality)."""
    def run_pair():
        capped = GeneticSearch(max_generations=2, stagnation_limit=2).run(
            _evaluator("lavamd", 1e-3),
        )
        generous = GeneticSearch(max_generations=12, stagnation_limit=6).run(
            _evaluator("lavamd", 1e-3),
        )
        return capped, generous

    capped, generous = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print(
        f"\nGA on lavamd @1e-3: capped EV={capped.evaluations} "
        f"SU={capped.speedup:.2f}; generous EV={generous.evaluations} "
        f"SU={generous.speedup:.2f}"
    )
    assert generous.evaluations > capped.evaluations
    assert generous.speedup >= capped.speedup - 0.05


@pytest.mark.parametrize("noise", [0.0, 0.01, 0.05])
def test_ablation_measurement_noise(benchmark, noise):
    """Timing jitter shifts reported speedups but not the chosen
    configuration on well-separated kernels."""
    def run():
        return DeltaDebugSearch().run(
            _evaluator("banded-lin-eq", 1e-8, measurement_noise=noise),
        )

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome.found_solution
    assert outcome.speedup > 2.5
