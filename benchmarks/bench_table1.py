"""Bench: regenerate paper Table I (kernel inventory)."""

from conftest import run_once

from repro.experiments import table1


def test_table1(benchmark, results_dir):
    text = run_once(benchmark, lambda: table1.run(results_dir=str(results_dir)))
    print("\n" + text)
    rows = table1.rows()
    assert len(rows) == 10
    names = [row[0] for row in rows]
    assert "banded-lin-eq" in names and "tridiag" in names
