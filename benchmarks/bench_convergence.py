"""Bench: anytime-performance comparison of DD vs GA."""

from conftest import run_once

from repro.experiments import ext_convergence


def test_ext_convergence(benchmark, ctx, results_dir):
    text = run_once(
        benchmark, lambda: ext_convergence.run(ctx, results_dir=str(results_dir)),
    )
    print("\n" + text)

    series = ext_convergence.series(ctx)
    assert series
    # curves are monotone within each (application, algorithm) pair
    previous_key, previous_value = None, 0.0
    for program, algorithm, _evaluation, best in series:
        key = (program, algorithm)
        value = float(best)
        if key == previous_key:
            assert value >= previous_value - 1e-12
        previous_key, previous_value = key, value
