"""Benches for the beyond-the-paper extension experiments.

* ``ext-half``: delta debugging with fp16 as the target level — the
  third precision level the paper's machinery supports but never
  evaluates.
* ``ext-hrc``: the cluster-aware hierarchical redesign the paper's
  Section V motivates, against the original variable-level HR.
"""

from conftest import run_once

from repro.experiments import ext_half, ext_hrc


def test_ext_half(benchmark, results_dir):
    text = run_once(benchmark, lambda: ext_half.run(results_dir=str(results_dir)))
    print("\n" + text)

    rows = {row[0]: row for row in ext_half.rows()}
    # half at least matches single's modeled speedup on the
    # cache-crossing kernel (footprint quarters instead of halving)
    assert float(rows["banded-lin-eq"][4]) > float(rows["banded-lin-eq"][1])
    # dyadic kernels stay exact even in fp16
    assert rows["gen-lin-recur"][5] == "0"
    assert rows["tridiag"][5] == "0"
    # fp16 error is orders of magnitude above fp32 where inexact
    assert rows["hydro-1d"][5] != rows["hydro-1d"][2]


def test_ext_hrc(benchmark, ctx, results_dir):
    text = run_once(benchmark, lambda: ext_hrc.run(ctx, results_dir=str(results_dir)))
    print("\n" + text)

    rows = ext_hrc.rows(ctx)
    wasted_hr = sum(int(r[3]) for r in rows if r[3] != "-")
    wasted_hrc = sum(int(r[6]) for r in rows if r[6] != "-")
    # the redesign eliminates every non-compiling evaluation
    assert wasted_hrc == 0
    assert wasted_hr > 0
    # and reduces total search effort across the grid
    ev_hr = sum(int(r[2]) for r in rows if r[2] != "-")
    ev_hrc = sum(int(r[5]) for r in rows if r[5] != "-")
    assert ev_hrc < ev_hr
