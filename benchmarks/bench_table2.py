"""Bench: regenerate paper Table II (TV/TC per program).

Shape assertions: kernel rows equal the paper exactly; among the
applications CFD shows the strongest clustering and Blackscholes the
weakest, as the paper discusses.
"""

from conftest import run_once

from repro.experiments import table2


def test_table2(benchmark, results_dir):
    text = run_once(benchmark, lambda: table2.run(results_dir=str(results_dir)))
    print("\n" + text)

    rows = {row[0]: (row[2], row[3]) for row in table2.rows()}
    for kernel in ("banded-lin-eq", "diff-predictor", "eos", "gen-lin-recur",
                   "hydro-1d", "iccg", "innerprod", "int-predict",
                   "planckian", "tridiag"):
        assert rows[kernel] == table2.PAPER_VALUES[kernel], kernel

    ratio = {name: tc / tv for name, (tv, tc) in rows.items()
             if name in ("blackscholes", "cfd", "hotspot", "hpccg",
                         "kmeans", "lavamd", "srad")}
    assert max(ratio, key=ratio.get) == "blackscholes"  # weakest clustering
    assert min(ratio, key=ratio.get) == "cfd"           # strongest clustering
