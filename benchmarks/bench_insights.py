"""Bench: derive the paper's Section V insights from the search grid.

The insight engine recomputes each published claim; at least the
mechanical ones (GA stability, DD effort growth, cluster waste,
speedup-not-guaranteed, hierarchical threshold sensitivity) must hold
in the reproduction.
"""

from conftest import run_once

from repro.experiments import insights


def test_insights(benchmark, ctx, results_dir):
    text = run_once(benchmark, lambda: insights.run(ctx, results_dir=str(results_dir)))
    print("\n" + text)

    derived = {i.claim: i for i in insights.derive(ctx)}
    must_hold = [
        "GA's analysis time is the easiest to predict",
        "Delta debugging typically results in configurations providing "
        "the most speedup",
        "As the quality threshold gets stricter, DD explores many more "
        "configurations",
        "Searching on variables without cluster information wastes "
        "evaluations on configurations that do not compile",
        "Reducing the number of double-precision variables does not "
        "always improve execution time",
        "Hierarchical approaches work well for relaxed thresholds but "
        "require many more steps as the threshold tightens",
    ]
    for claim in must_hold:
        assert derived[claim].holds, derived[claim].evidence

    # at minimum, DD and GA are among the always-complete algorithms
    completeness = derived[
        "Only DD and GA identify a valid configuration for all "
        "applications and all thresholds"
    ]
    assert "'DD'" in completeness.evidence
    assert "'GA'" in completeness.evidence
