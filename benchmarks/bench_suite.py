"""Micro-benchmarks: wall-clock execution time of every suite program.

These time the *host-side* cost of one instrumented execution (the
quantity that bounds how fast searches run in this reproduction), for
both the all-double baseline and the all-single configuration.
"""

import pytest

from repro.benchmarks.base import (
    application_benchmarks, get_benchmark, kernel_benchmarks,
)
from repro.core.types import Precision, PrecisionConfig

ALL_PROGRAMS = kernel_benchmarks() + application_benchmarks()


@pytest.mark.parametrize("name", ALL_PROGRAMS)
def test_execute_baseline(benchmark, name):
    bench = get_benchmark(name)
    bench.inputs()
    bench.report()
    result = benchmark.pedantic(
        lambda: bench.execute(PrecisionConfig()), rounds=3, iterations=1,
    )
    assert result.modeled_seconds > 0


@pytest.mark.parametrize("name", ("hydro-1d", "blackscholes", "lavamd"))
def test_execute_single(benchmark, name):
    bench = get_benchmark(name)
    config = bench.search_space().uniform_config(Precision.SINGLE)
    result = benchmark.pedantic(lambda: bench.execute(config), rounds=3, iterations=1)
    assert result.modeled_seconds > 0


@pytest.mark.parametrize("name", ("hydro-1d", "cfd"))
def test_typeforge_analysis(benchmark, name):
    """Cost of the static type-dependence analysis itself."""
    def analyse():
        bench = get_benchmark(name)  # fresh instance: no cached report
        return bench.report()

    report = benchmark.pedantic(analyse, rounds=3, iterations=1)
    assert report.total_variables > 0
