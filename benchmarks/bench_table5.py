"""Bench: regenerate paper Table V (application searches at 3 thresholds).

This is the expensive grid: 7 applications x 5 algorithms x 3 quality
thresholds, each under the simulated 24-hour budget.  Shape assertions
encode the paper's Section IV-B.2 narrative:

* at 1e-3 the initial-criterion searches (DD/HR/HC) terminate
  immediately with wholesale conversions;
* CM exceeds the budget on several applications (gray cells);
* only DD and GA produce a valid configuration for every application
  at every threshold;
* tightening the threshold inflates DD's evaluation count
  (Blackscholes: a handful -> hundreds).
"""

from conftest import run_once

from repro.benchmarks.base import application_benchmarks
from repro.experiments import table5
from repro.experiments.context import APP_THRESHOLDS


def test_table5(benchmark, ctx, results_dir):
    text = run_once(benchmark, lambda: table5.run(ctx, results_dir=str(results_dir)))
    print("\n" + text)

    # DD and GA succeed everywhere (the paper's headline claim)
    for program in application_benchmarks():
        for threshold in APP_THRESHOLDS:
            for algorithm in ("DD", "GA"):
                outcome = ctx.outcome(program, algorithm, threshold)
                assert outcome is not None, (program, algorithm, threshold)
                assert not outcome.timed_out, (program, algorithm, threshold)
                assert outcome.found_solution, (program, algorithm, threshold)

    # CM hits the 24-hour budget somewhere (the paper's gray cells)
    cm_timeouts = sum(
        1
        for program in application_benchmarks()
        for threshold in APP_THRESHOLDS
        if (o := ctx.outcome(program, "CM", threshold)) is not None and o.timed_out
    )
    assert cm_timeouts >= 1

    # relaxed threshold: DD terminates immediately on wholesale programs
    assert ctx.outcome("hotspot", "DD", 1e-3).evaluations == 1
    assert ctx.outcome("lavamd", "DD", 1e-3).evaluations == 1

    # stricter thresholds make DD work much harder on Blackscholes
    dd_relaxed = ctx.outcome("blackscholes", "DD", 1e-3).evaluations
    dd_strict = ctx.outcome("blackscholes", "DD", 1e-8).evaluations
    assert dd_strict > dd_relaxed * 20

    # SRAD never converts anything consequential (NaN at single)
    for threshold in APP_THRESHOLDS:
        outcome = ctx.outcome("srad", "DD", threshold)
        assert outcome.speedup < 1.2

    # LavaMD converts wholesale only at the relaxed bound
    assert ctx.outcome("lavamd", "DD", 1e-3).speedup > 2.0
    assert ctx.outcome("lavamd", "DD", 1e-6).speedup < 1.5
