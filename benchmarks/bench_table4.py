"""Bench: regenerate paper Table IV (manual all-single conversion).

Shape assertions against the paper's row structure: LavaMD wins by the
largest margin (cache effect), SRAD's output is destroyed (NaN),
K-means loses nothing (MCR 0) and HPCCG gains essentially nothing.
"""

from conftest import run_once

from repro.experiments import table4


def test_table4(benchmark, results_dir):
    text = run_once(benchmark, lambda: table4.run(results_dir=str(results_dir)))
    print("\n" + text)

    rows = {row[0]: row for row in table4.rows()}
    speedups = {name: float(row[1]) for name, row in rows.items()}

    assert max(speedups, key=speedups.get) == "lavamd"
    assert speedups["lavamd"] > 2.0
    assert rows["srad"][3] == "NaN"
    assert rows["kmeans"][3] == "0"
    assert speedups["hpccg"] < 1.25
    assert speedups["blackscholes"] < 1.3   # transcendental-bound
    assert speedups["hotspot"] > 1.5        # stencil converts well
