"""Bench: regenerate paper Figure 2 (DD vs GA scatter data).

Shape assertions (paper Section IV-B.2):

* Fig 2a — GA's evaluation count is far more stable than DD's: "DD
  typically tests more configurations until it reaches a solution,
  whereas GA presents stable behavior";
* Fig 2b — DD's configurations are at least as fast as GA's on
  average: "Typically, DD produces slightly more performant versions
  than GA."
"""

import math
import statistics

from conftest import run_once

from repro.experiments import fig2


def test_fig2(benchmark, ctx, results_dir):
    text = run_once(benchmark, lambda: fig2.run(ctx, results_dir=str(results_dir)))
    print("\n" + text)

    points = fig2.points(ctx)
    assert points, "figure 2 produced no data"

    by_algorithm: dict[str, list] = {"DD": [], "GA": []}
    for point in points:
        by_algorithm[point.algorithm].append(point)

    # Fig 2a: GA's EV spread is tighter than DD's
    dd_evs = [p.evaluations for p in by_algorithm["DD"]]
    ga_evs = [p.evaluations for p in by_algorithm["GA"]]
    assert statistics.pstdev(ga_evs) < statistics.pstdev(dd_evs)
    assert max(dd_evs) > max(ga_evs)

    # Fig 2b: DD speedups >= GA speedups on average
    def mean_speedup(points_list):
        values = [p.speedup for p in points_list if not math.isnan(p.speedup)]
        return statistics.mean(values)

    assert mean_speedup(by_algorithm["DD"]) >= mean_speedup(by_algorithm["GA"]) - 0.02
