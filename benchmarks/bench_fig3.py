"""Bench: regenerate paper Figure 3 (speedup vs tested configurations).

Shape assertion: "Most of the tested configurations resulted in a
speedup between 1.0 - 1.2.  A limited number of scenarios were able to
produce higher speedups."
"""

from conftest import run_once

from repro.experiments import fig3


def test_fig3(benchmark, ctx, results_dir):
    text = run_once(benchmark, lambda: fig3.run(ctx, results_dir=str(results_dir)))
    print("\n" + text)

    hist = fig3.histogram(ctx)
    total = sum(hist.values())
    assert total > 0
    modal_bin = max(hist, key=hist.get)
    # the modal outcome is the 1.0-1.2 band
    assert modal_bin == "1-1.2"
    # a limited number exceed 2x (LavaMD at the relaxed threshold)
    assert 0 < hist["2-inf"] < total / 4
