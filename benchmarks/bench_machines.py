"""Bench: machine-model sensitivity of the Table IV conversions."""

from conftest import run_once

from repro.experiments import ext_machines


def test_ext_machines(benchmark, results_dir):
    text = run_once(benchmark, lambda: ext_machines.run(results_dir=str(results_dir)))
    print("\n" + text)

    rows = {row[0]: row for row in ext_machines.rows()}
    # LavaMD's win is the cache effect: big on the Xeon, mostly gone
    # on the bandwidth-rich accelerator.
    assert float(rows["lavamd"][1]) > 2.5
    assert float(rows["lavamd"][3]) < 2.0
    # On every machine, every conversion stays >= ~1 (never a
    # catastrophic slowdown from going single).
    for row in rows.values():
        for cell in row[1:]:
            assert float(cell) > 0.9
