"""Configuration evaluation: compile-check, run, verify, time, budget.

The evaluator is the CRAFT back end every search strategy talks to.
For each candidate configuration it:

1. checks compilability — a configuration that splits a Typeforge
   cluster is rejected with :class:`~repro.core.results.EvaluationStatus`
   ``COMPILE_ERROR`` (it still costs an evaluation and simulated build
   time, reproducing the waste the paper attributes to
   variable-granularity searches);
2. executes the program and verifies its output against the all-double
   baseline with the program's quality metric;
3. "times" it with the paper's methodology — ten measured runs, best
   and worst discarded — on the modeled clock, with small deterministic
   per-run jitter standing in for measurement noise;
4. charges compile + run time against the simulated 24-hour analysis
   budget and raises :class:`SearchBudgetExceeded` when it runs out.

Identical configurations are cached (cache hits cost nothing and do not
increment the evaluated-configurations counter EV).

Two further layers sit on top of the serial contract:

* **Batching** — :meth:`ConfigurationEvaluator.prefetch` fans the raw
  executions of not-yet-seen configurations out to a pluggable
  :class:`~repro.core.batch.BatchExecutor`; the bookkeeping (trial
  index, budget, quality check) is then replayed serially, so
  :meth:`evaluate_many` produces a trial log bit-identical to calling
  :meth:`evaluate` in a loop.
* **Persistence** — with an
  :class:`~repro.runtime.cache.EvaluationCache` attached, every fresh
  evaluation is written to disk and replayed on later runs.  A replay
  charges the *same* simulated cost and EV increment as the original
  evaluation (tables stay identical); only real host time is saved.
"""

from __future__ import annotations

import enum
import hashlib
import math
import time
from typing import Iterable, Sequence

import numpy as np

from repro.core.batch import RUNTIME_ERRORS, BatchExecutor, ExecutionFailure
from repro.core.program import ExecutionResult, Program
from repro.core.results import EvaluationStatus, TrialRecord
from repro.core.telemetry import EvalStats, TraceWriter
from repro.core.types import PrecisionConfig
from repro.core.variables import Granularity, SearchSpace
from repro.errors import MixPBenchError, SearchBudgetExceeded
from repro.runtime import fuse as _fuse
from repro.runtime.cache import EvaluationCache, context_fingerprint
from repro.verify.quality import QualitySpec
from repro.runtime.machine import DEFAULT_MACHINE, MachineModel

__all__ = ["ConfigurationEvaluator", "TimingMode", "measured_seconds"]

_DEFAULT_TIME_LIMIT = 24 * 3600.0  # the paper's per-search limit


class TimingMode(enum.Enum):
    """Where a configuration's runtime comes from.

    ``MODELED`` (default) uses the roofline machine model — fully
    deterministic and faithful to the C mechanisms (see DESIGN.md).
    ``WALL_CLOCK`` times the host-side Python execution with
    ``perf_counter`` — the paper's literal methodology, but measuring
    interpreter-and-NumPy performance, which does *not* reflect the
    compiled programs the paper ran; it is provided for experimenting
    with the harness itself.
    """

    MODELED = "modeled"
    WALL_CLOCK = "wall_clock"


def measured_seconds(modeled: float, digest: str, runs: int, noise: float = 0.01) -> float:
    """Apply the paper's timing methodology to a modeled runtime.

    Generates ``runs`` jittered measurements (deterministic per
    configuration digest), drops the best and the worst, and averages
    the rest.  With fewer than three runs the modeled time is returned
    unchanged.
    """
    if runs < 3 or noise <= 0:
        return modeled
    seed = int.from_bytes(hashlib.sha256(digest.encode()).digest()[:8], "big")
    rng = np.random.default_rng(seed)
    samples = modeled * (1.0 + noise * rng.standard_normal(runs))
    samples.sort()
    return float(np.mean(samples[1:-1]))


class ConfigurationEvaluator:
    """Evaluates precision configurations for one program.

    Parameters
    ----------
    program:
        Anything satisfying :class:`repro.core.program.Program`.
    quality:
        Quality spec to verify against (defaults to the program's own).
    machine:
        Machine model used to convert operation profiles into time.
    time_limit_seconds:
        Simulated analysis budget (paper: 24 hours).
    max_evaluations:
        Optional hard ceiling on EV, independent of the clock.
    measurement_noise:
        Relative sigma of the per-run timing jitter.
    executor:
        Optional :class:`~repro.core.batch.BatchExecutor` used by
        :meth:`prefetch` / :meth:`evaluate_many` to run executions in
        parallel.  ``None`` keeps everything in-line.
    cache:
        Optional :class:`~repro.runtime.cache.EvaluationCache`;
        fresh evaluations are persisted and replayed across runs.
    stats:
        Optional :class:`~repro.core.telemetry.EvalStats` to update
        (shared when several evaluators feed one report); a private
        block is created when omitted.
    trace:
        Optional :class:`~repro.core.telemetry.TraceWriter` receiving
        one JSON-lines event per evaluation and batch.
    space_override:
        Optional reduced :class:`~repro.core.variables.SearchSpace`
        (e.g. from :func:`repro.typeforge.prune.prune_report`) that
        :meth:`space` serves to search strategies instead of the
        program's full space.  Compile checks still use the *full*
        cluster partition, and the persistent-cache context is
        unchanged: a configuration evaluates identically with or
        without the override, the override only restricts which
        configurations strategies enumerate.
    prune_info:
        Free-form provenance for the override (frozen/merged counts),
        surfaced in search outcome metadata and reports.
    location_order:
        Optional :class:`~repro.shadow.order.ShadowOrder` (or anything
        with its ``arrange(locations, space)`` shape).  Search
        strategies consult it through
        ``SearchStrategy.ordered_locations`` to enumerate locations
        most-sensitive-first; ``None`` (the default) keeps every
        strategy byte-identical to the unguided behaviour.  Like the
        space override, it never changes what one evaluation returns.
    shadow_info:
        Free-form provenance for the order (shadow-run summary),
        surfaced in search outcome metadata and reports alongside
        ``prune_info``.
    screen:
        Optional :class:`~repro.typeforge.errorbound.CertifiedBound`.
        When attached, :meth:`evaluate` first asks the certificate
        whether the configuration provably violates the quality
        threshold; certified rejects are recorded as
        :attr:`~repro.core.results.EvaluationStatus.SCREENED` trials
        that cost nothing — no execution, no simulated budget, no EV
        increment.  Screening may only *skip*, never accept: every
        configuration the certificate cannot reject evaluates exactly
        as it would have without one, so behaviour with ``screen=None``
        is byte-identical and the verified error of the final
        configuration is unchanged.
    screen_info:
        Free-form provenance for the certificate (calibration anchor,
        safety factor), surfaced in search outcome metadata and
        reports; the live ``screened`` skip count is appended by
        :meth:`SearchStrategy.run <repro.search.base.SearchStrategy.run>`.
    """

    def __init__(
        self,
        program: Program,
        quality: QualitySpec | None = None,
        machine: MachineModel = DEFAULT_MACHINE,
        time_limit_seconds: float = _DEFAULT_TIME_LIMIT,
        max_evaluations: int | None = None,
        measurement_noise: float = 0.01,
        timing: TimingMode = TimingMode.MODELED,
        executor: BatchExecutor | None = None,
        cache: EvaluationCache | None = None,
        stats: EvalStats | None = None,
        trace: TraceWriter | None = None,
        space_override: SearchSpace | None = None,
        prune_info: dict | None = None,
        location_order=None,
        shadow_info: dict | None = None,
        screen=None,
        screen_info: dict | None = None,
    ) -> None:
        self.program = program
        self.quality = quality if quality is not None else program.quality
        self.machine = machine
        self.time_limit_seconds = time_limit_seconds
        self.max_evaluations = max_evaluations
        self.measurement_noise = measurement_noise
        self.timing = timing
        self.executor = executor
        self.cache = cache
        self.trace = trace
        self.stats = stats if stats is not None else EvalStats()
        if executor is not None:
            self.stats.executor = executor.name
            self.stats.workers = executor.workers
        #: last-seen executor incident counters, so shared executors
        #: contribute only the *delta* produced under this evaluator
        self._fault_seen = executor.fault_counters() if executor is not None else {}
        #: last-seen trace-fusion counters (fuse.STATS is process
        #: global), same delta discipline.  Process-pool workers fuse
        #: in their own processes, so their activity is not visible
        #: here — these counters cover in-process executions only.
        self._fuse_seen = _fuse.STATS.snapshot()

        self._cluster_space = program.search_space(Granularity.CLUSTER)
        self.space_override = space_override
        self.prune_info = prune_info
        self.location_order = location_order
        self.shadow_info = shadow_info
        self.screen = screen
        self.screen_info = screen_info
        self._cache: dict[PrecisionConfig, TrialRecord] = {}
        self._staged: dict[PrecisionConfig, ExecutionResult | ExecutionFailure] = {}
        self._trials: list[TrialRecord] = []
        self.evaluations = 0
        self.analysis_seconds = 0.0
        # Everything that changes what an evaluation would return or
        # cost is folded into the persistent-cache context; a mismatch
        # on any field gives a cold cache instead of a wrong replay.
        self._cache_context = context_fingerprint(
            program=program.name,
            program_seed=getattr(program, "seed", None),
            metric=self.quality.metric,
            threshold=self.quality.threshold,
            machine=machine.name,
            runs_per_config=program.runs_per_config,
            noise=self._effective_noise(),
            timing=self.timing.value,
            compile_seconds=program.compile_seconds,
            nominal_seconds=program.nominal_seconds,
        )

        # Reference execution: the original all-double program.  Its
        # output is the verification reference; its measured time is
        # the speedup denominator.  FloatSmith profiles the original
        # before searching, so we charge its cost to the clock but not
        # to the EV counter.
        baseline_config = PrecisionConfig()
        baseline, baseline_seconds = self._timed_execute(baseline_config)
        if baseline.has_nonfinite_output:
            raise MixPBenchError(
                f"{program.name}: baseline (double) output is not finite; "
                "the reference program itself is broken"
            )
        self._baseline_output = np.asarray(baseline.output, dtype=np.float64).copy()
        self._time_scale = (
            program.nominal_seconds / baseline_seconds
            if baseline_seconds > 0
            else 1.0
        )
        self._baseline_measured = measured_seconds(
            baseline_seconds, "baseline:" + baseline_config.digest(),
            program.runs_per_config, self._effective_noise(),
        )
        self.analysis_seconds += self._run_cost(baseline_seconds)
        self._sync_fuse_stats()

    def _effective_noise(self) -> float:
        """Wall-clock timings carry their own physical jitter; only the
        modeled clock needs synthetic measurement noise."""
        return self.measurement_noise if self.timing is TimingMode.MODELED else 0.0

    def _timed_execute(self, config: PrecisionConfig):
        """Execute and return (result, seconds-under-the-active-mode)."""
        started = time.perf_counter()
        execution = self.program.execute(config)
        if self.timing is TimingMode.WALL_CLOCK:
            return execution, time.perf_counter() - started
        return execution, execution.modeled_seconds

    # -- public API -------------------------------------------------------
    def space(self, granularity: Granularity = Granularity.CLUSTER) -> SearchSpace:
        """The search space strategies enumerate, at the requested
        granularity (the pruned space when an override is active)."""
        if self.space_override is not None:
            return self.space_override.at(granularity)
        return self._cluster_space.at(granularity)

    @property
    def baseline_output(self) -> np.ndarray:
        return self._baseline_output

    @property
    def trials(self) -> tuple[TrialRecord, ...]:
        return tuple(self._trials)

    @property
    def remaining_seconds(self) -> float:
        return max(0.0, self.time_limit_seconds - self.analysis_seconds)

    def best_passing(self) -> TrialRecord | None:
        """The fastest configuration seen so far that passed."""
        passing = [t for t in self._trials if t.passed]
        if not passing:
            return None
        return max(passing, key=lambda t: t.speedup)

    def evaluate(self, config: PrecisionConfig) -> TrialRecord:
        """Evaluate one configuration, consuming budget.

        Raises
        ------
        SearchBudgetExceeded
            When the simulated clock or the evaluation ceiling is
            exhausted *before* this configuration could be evaluated.
        """
        cached = self._cache.get(config)
        if cached is not None:
            self.stats.memory_hits += 1
            if self.trace is not None:
                self.trace.emit(
                    "cache_hit", level="memory", config=config.digest(),
                    index=cached.index,
                )
            hit = TrialRecord(
                index=cached.index,
                config=config,
                status=cached.status,
                error_value=cached.error_value,
                speedup=cached.speedup,
                modeled_seconds=cached.modeled_seconds,
                analysis_seconds=0.0,
                from_cache=True,
            )
            return hit

        if self.screen is not None and self.screen.rejects(
            config, self.quality.threshold
        ):
            # Certified over-threshold: skip without executing.  The
            # skip is free — no EV increment, no simulated budget — and
            # the record carries the certificate's best error estimate
            # so strategies that rank failing trials (GA fitness) see a
            # value on the same scale as a measured one.
            self.stats.screened += 1
            record = TrialRecord(
                index=self.evaluations,
                config=config,
                status=EvaluationStatus.SCREENED,
                error_value=self.screen.predict(config),
            )
            self._cache[config] = record
            self._trials.append(record)
            if self.trace is not None:
                self.trace.emit(
                    "screened", config=config.digest(),
                    lower_bound=self.screen.lower(config),
                    threshold=self.quality.threshold,
                )
            return record

        if self.analysis_seconds >= self.time_limit_seconds:
            raise SearchBudgetExceeded(
                f"{self.program.name}: simulated analysis budget "
                f"({self.time_limit_seconds:.0f}s) exhausted after "
                f"{self.evaluations} evaluations"
            )
        if self.max_evaluations is not None and self.evaluations >= self.max_evaluations:
            raise SearchBudgetExceeded(
                f"{self.program.name}: evaluation ceiling "
                f"({self.max_evaluations}) reached"
            )

        record = self._evaluate_fresh(config)
        self._cache[config] = record
        self._trials.append(record)
        return record

    def prefetch(self, configs: Iterable[PrecisionConfig]) -> int:
        """Speculatively execute configurations on the batch executor.

        Only configurations that would actually execute are shipped:
        repeats, persistent-cache hits, non-compilable candidates and
        already-staged configurations are filtered out.  Results are
        staged so a later :meth:`evaluate` consumes them instead of
        executing — budget accounting, trial order and indices are
        untouched.  A no-op without an executor, and under wall-clock
        timing (concurrent wall timings would not be comparable).

        Returns the number of executions fanned out.
        """
        if self.executor is None or self.timing is not TimingMode.MODELED:
            return 0
        pending: list[PrecisionConfig] = []
        seen: set[PrecisionConfig] = set()
        for config in configs:
            if config in seen or config in self._cache or config in self._staged:
                continue
            seen.add(config)
            if self.screen is not None and self.screen.rejects(
                config, self.quality.threshold
            ):
                continue  # evaluate() will screen it; nothing to stage
            if not self._cluster_space.is_compilable(config):
                continue  # rejected before running; nothing to stage
            if self.cache is not None and self.cache.get(
                self.program.name, self._cache_context, config.digest()
            ) is not None:
                continue  # will replay from the persistent cache
            pending.append(config)
        self.stats.batches += 1
        self.stats.batched_configs += len(seen)
        if not pending:
            return 0
        started = time.perf_counter()
        results = self.executor.run(self.program, pending)
        self.stats.wall_seconds += time.perf_counter() - started
        self._sync_fault_stats()
        self._sync_fuse_stats()
        self.stats.prefetched_executions += len(pending)
        self._staged.update(zip(pending, results))
        if self.trace is not None:
            self.trace.emit(
                "batch", requested=len(seen), executed=len(pending),
                executor=self.executor.name, workers=self.executor.workers,
            )
        return len(pending)

    def evaluate_many(
        self, configs: Sequence[PrecisionConfig]
    ) -> list[TrialRecord]:
        """Evaluate a batch: parallel execution, serial bookkeeping.

        Equivalent to ``[self.evaluate(c) for c in configs]`` in every
        observable way (trial log, EV, simulated clock, budget
        exhaustion point); the raw executions of cache misses are
        computed on the executor first.
        """
        configs = list(configs)
        self.prefetch(configs)
        return [self.evaluate(config) for config in configs]

    # -- internals -----------------------------------------------------------
    def _run_cost(self, modeled_seconds: float) -> float:
        """Simulated wall-clock cost of building + timing one config."""
        return (
            self.program.compile_seconds
            + self.program.runs_per_config * modeled_seconds * self._time_scale
        )

    def _evaluate_fresh(self, config: PrecisionConfig) -> TrialRecord:
        self.evaluations += 1
        self.stats.evaluations += 1
        index = self.evaluations

        replayed = self._replay_persistent(config, index)
        if replayed is not None:
            return replayed

        record = self._run_fresh(config, index)
        self.stats.fresh_evaluations += 1
        if record.status is EvaluationStatus.COMPILE_ERROR:
            self.stats.compile_errors += 1
        if self.cache is not None:
            self.cache.put(
                self.program.name, self._cache_context, config.digest(),
                record.to_json_dict(),
            )
        if self.trace is not None:
            self.trace.emit(
                "evaluate", source="fresh", index=index,
                config=config.digest(), status=record.status.value,
                analysis_seconds=record.analysis_seconds,
            )
        return record

    def _replay_persistent(
        self, config: PrecisionConfig, index: int
    ) -> TrialRecord | None:
        """Replay a prior run's record: same simulated cost, same EV
        increment, no program execution."""
        if self.cache is None:
            return None
        payload = self.cache.get(
            self.program.name, self._cache_context, config.digest()
        )
        if payload is None:
            return None
        stored = TrialRecord.from_json_dict(payload)
        record = TrialRecord(
            index=index, config=config, status=stored.status,
            error_value=stored.error_value, speedup=stored.speedup,
            modeled_seconds=stored.modeled_seconds,
            analysis_seconds=stored.analysis_seconds,
        )
        self.analysis_seconds += record.analysis_seconds
        self.stats.persistent_hits += 1
        if record.status is EvaluationStatus.COMPILE_ERROR:
            self.stats.compile_errors += 1
        if self.trace is not None:
            self.trace.emit(
                "evaluate", source="persistent", index=index,
                config=config.digest(), status=record.status.value,
                analysis_seconds=record.analysis_seconds,
            )
        return record

    def _sync_fault_stats(self) -> None:
        """Fold the executor's incident counters into this evaluator's
        stats (delta-based: executors may be shared across evaluators)."""
        if self.executor is None:
            return
        current = self.executor.fault_counters()
        for name, value in current.items():
            delta = value - self._fault_seen.get(name, 0)
            if delta:
                setattr(self.stats, name, getattr(self.stats, name) + delta)
        self._fault_seen = current

    def _sync_fuse_stats(self) -> None:
        """Fold the process-global trace-fusion counters into this
        evaluator's stats, delta-based like :meth:`_sync_fault_stats`
        (several evaluators — or the service's shard workers — share
        one ``fuse.STATS``)."""
        current = _fuse.STATS.snapshot()
        for name, value in current.items():
            delta = value - self._fuse_seen.get(name, 0)
            if delta:
                attr = "fuse_" + name
                setattr(self.stats, attr, getattr(self.stats, attr) + delta)
        self._fuse_seen = current

    def _execute_or_fail(
        self, config: PrecisionConfig
    ) -> tuple[ExecutionResult, float] | None:
        """Staged (prefetched) or in-line execution; ``None`` on a
        runtime error of the configuration."""
        staged = self._staged.pop(config, None)
        if staged is not None:
            if isinstance(staged, ExecutionFailure):
                return None
            return staged, staged.modeled_seconds
        executor = self.executor
        if (
            executor is not None
            and executor.policy.active
            and self.timing is TimingMode.MODELED
        ):
            # route even single executions through the executor, so its
            # timeout/retry envelope protects non-batched strategies too
            started = time.perf_counter()
            try:
                result = executor.run(self.program, [config])[0]
            finally:
                self.stats.wall_seconds += time.perf_counter() - started
                self._sync_fault_stats()
                self._sync_fuse_stats()
            if isinstance(result, ExecutionFailure):
                return None
            return result, result.modeled_seconds
        started = time.perf_counter()
        try:
            return self._timed_execute(config)
        except RUNTIME_ERRORS:
            return None
        finally:
            self.stats.wall_seconds += time.perf_counter() - started
            self._sync_fuse_stats()

    def _run_fresh(self, config: PrecisionConfig, index: int) -> TrialRecord:
        if not self._cluster_space.is_compilable(config):
            cost = self.program.compile_seconds  # build fails, nothing runs
            self.analysis_seconds += cost
            return TrialRecord(
                index=index, config=config,
                status=EvaluationStatus.COMPILE_ERROR,
                analysis_seconds=cost,
            )

        executed = self._execute_or_fail(config)
        if executed is None:
            cost = self._run_cost(0.0)
            self.analysis_seconds += cost
            return TrialRecord(
                index=index, config=config,
                status=EvaluationStatus.RUNTIME_ERROR,
                analysis_seconds=cost,
            )
        execution, seconds = executed

        cost = self._run_cost(seconds)
        self.analysis_seconds += cost

        result = self.quality.check(self._baseline_output, execution.output)
        measured = measured_seconds(
            seconds, config.digest(),
            self.program.runs_per_config, self._effective_noise(),
        )
        speedup = self._baseline_measured / measured if measured > 0 else math.nan
        status = (
            EvaluationStatus.PASSED if result.passed
            else EvaluationStatus.FAILED_QUALITY
        )
        return TrialRecord(
            index=index, config=config, status=status,
            error_value=result.value, speedup=speedup,
            modeled_seconds=execution.modeled_seconds,
            analysis_seconds=cost,
        )
