"""Core abstractions: precision types, program locations, evaluation."""

from repro.core.batch import (
    BatchExecutor, ExecutionFailure, FaultPolicy, ProcessExecutor,
    SerialExecutor, ThreadExecutor, make_executor,
)
from repro.core.checkpoint import (
    JournalTrialStore, RunJournal, RunState, grid_fingerprint, load_run_state,
)
from repro.core.evaluator import ConfigurationEvaluator, TimingMode, measured_seconds
from repro.core.program import ExecutionResult, Program
from repro.core.results import EvaluationStatus, SearchOutcome, TrialRecord
from repro.core.telemetry import EvalStats, TraceWriter
from repro.core.types import Precision, PrecisionConfig
from repro.core.variables import (
    Cluster, Granularity, SearchSpace, Variable, VariableKind,
)

__all__ = [
    "Precision", "PrecisionConfig",
    "Variable", "VariableKind", "Cluster", "Granularity", "SearchSpace",
    "Program", "ExecutionResult",
    "ConfigurationEvaluator", "TimingMode", "measured_seconds",
    "EvaluationStatus", "TrialRecord", "SearchOutcome",
    "BatchExecutor", "SerialExecutor", "ThreadExecutor", "ProcessExecutor",
    "ExecutionFailure", "FaultPolicy", "make_executor",
    "RunJournal", "RunState", "JournalTrialStore", "grid_fingerprint",
    "load_run_state",
    "EvalStats", "TraceWriter",
]
