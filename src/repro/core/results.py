"""Trial records, search outcomes, and the JSON interchange format.

FloatSmith integrates its tool chain through a JSON-based interchange
format; this module plays that role.  Every configuration an evaluator
tries becomes a :class:`TrialRecord`; a finished search is a
:class:`SearchOutcome`.  Both serialise to plain JSON dictionaries so
harness results can be stored, diffed and re-loaded.
"""

from __future__ import annotations

import enum
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.core.types import PrecisionConfig

__all__ = ["EvaluationStatus", "TrialRecord", "SearchOutcome"]


class EvaluationStatus(enum.Enum):
    """What happened when a configuration was evaluated."""

    PASSED = "passed"                # compiled, ran, met the quality threshold
    FAILED_QUALITY = "failed_quality"  # ran but the error exceeded the threshold
    COMPILE_ERROR = "compile_error"  # split a Typeforge cluster (would not compile)
    RUNTIME_ERROR = "runtime_error"  # crashed / produced no output
    SCREENED = "screened"            # statically certified over-threshold; never ran


@dataclass(frozen=True)
class TrialRecord:
    """One evaluated configuration.

    ``speedup`` follows the paper's methodology: each version is
    "executed" ten times, the best and worst are discarded, and the
    averages are compared.  ``analysis_seconds`` is what the trial cost
    on the simulated analysis clock (compile + timed runs).
    """

    index: int
    config: PrecisionConfig
    status: EvaluationStatus
    error_value: float = math.nan
    speedup: float = math.nan
    modeled_seconds: float = math.nan
    analysis_seconds: float = 0.0
    from_cache: bool = False

    @property
    def passed(self) -> bool:
        return self.status is EvaluationStatus.PASSED

    def to_json_dict(self) -> dict:
        return {
            "index": self.index,
            "config": self.config.to_json_dict(),
            "status": self.status.value,
            "error_value": _json_float(self.error_value),
            "speedup": _json_float(self.speedup),
            "modeled_seconds": _json_float(self.modeled_seconds),
            "analysis_seconds": self.analysis_seconds,
            "from_cache": self.from_cache,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping) -> "TrialRecord":
        return cls(
            index=int(payload["index"]),
            config=PrecisionConfig.from_json_dict(payload["config"]),
            status=EvaluationStatus(payload["status"]),
            error_value=_parse_float(payload.get("error_value")),
            speedup=_parse_float(payload.get("speedup")),
            modeled_seconds=_parse_float(payload.get("modeled_seconds")),
            analysis_seconds=float(payload.get("analysis_seconds", 0.0)),
            from_cache=bool(payload.get("from_cache", False)),
        )


@dataclass
class SearchOutcome:
    """The result of running one search strategy on one program."""

    strategy: str
    program: str
    threshold: float
    final: TrialRecord | None
    evaluations: int
    analysis_seconds: float
    timed_out: bool
    trials: list[TrialRecord] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def found_solution(self) -> bool:
        return self.final is not None and self.final.passed

    @property
    def speedup(self) -> float:
        """Speedup of the found configuration (SU); NaN if none found."""
        if not self.found_solution:
            return math.nan
        return self.final.speedup

    @property
    def error_value(self) -> float:
        """Quality (AC) of the found configuration; NaN if none found."""
        if not self.found_solution:
            return math.nan
        return self.final.error_value

    def to_json_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "program": self.program,
            "threshold": self.threshold,
            "final": self.final.to_json_dict() if self.final else None,
            "evaluations": self.evaluations,
            "analysis_seconds": self.analysis_seconds,
            "timed_out": self.timed_out,
            "trials": [t.to_json_dict() for t in self.trials],
            "metadata": self.metadata,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping) -> "SearchOutcome":
        final = payload.get("final")
        return cls(
            strategy=payload["strategy"],
            program=payload["program"],
            threshold=float(payload["threshold"]),
            final=TrialRecord.from_json_dict(final) if final else None,
            evaluations=int(payload["evaluations"]),
            analysis_seconds=float(payload["analysis_seconds"]),
            timed_out=bool(payload["timed_out"]),
            trials=[TrialRecord.from_json_dict(t) for t in payload.get("trials", [])],
            metadata=dict(payload.get("metadata", {})),
        )

    def save(self, path: str | Path) -> None:
        """Write the outcome as interchange JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json_dict(), indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: str | Path) -> "SearchOutcome":
        return cls.from_json_dict(json.loads(Path(path).read_text()))


def _json_float(value: float) -> float | str | None:
    """JSON has no NaN/Inf; encode them as strings."""
    if value is None or math.isfinite(value):
        return value
    return str(value)


def _parse_float(value: Any) -> float:
    if value is None:
        return math.nan
    return float(value)
