"""Batch execution backends for the configuration evaluator.

The paper's harness "offloads the search analysis in parallel on a
cluster"; this module is the single-node analogue.  An executor takes
a list of precision configurations and produces their raw
:class:`~repro.core.program.ExecutionResult`\\ s — the *pure*,
side-effect-free part of an evaluation.  All bookkeeping (trial
indices, the simulated analysis clock, the 24-hour budget, quality
verification) stays in the evaluator and is replayed serially, so a
parallel run produces a trial log bit-identical to the serial one.

Three backends are provided:

``serial``
    In-line execution; the degenerate executor used for reference runs.
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  NumPy releases
    the GIL inside large kernels, so threads already overlap real work.
``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor` fed *picklable
    work items* — ``(benchmark name, machine model, config JSON)``
    triples — so nothing unpicklable crosses the process boundary.
    Workers rebuild the benchmark from the suite registry (once per
    process) and regenerate its inputs deterministically from the
    benchmark seed.  Programs that are not registry benchmarks
    (e.g. ad-hoc :class:`~repro.core.program.Program` objects) fall
    back to in-process threads transparently.

Executions are deterministic functions of the configuration, so *where*
they run never changes *what* they return.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.program import ExecutionResult, Program
from repro.core.types import PrecisionConfig

__all__ = [
    "ExecutionFailure", "BatchExecutor", "SerialExecutor", "ThreadExecutor",
    "ProcessExecutor", "make_executor", "chunked", "EXECUTOR_NAMES",
    "DEFAULT_BATCH_SIZE",
]

EXECUTOR_NAMES = ("serial", "thread", "process")

#: how many configurations the batching strategies hand to
#: ``evaluate_many`` at a time
DEFAULT_BATCH_SIZE = 32


def chunked(iterable, size: int):
    """Yield lists of up to ``size`` items, preserving order."""
    if size < 1:
        raise ValueError("chunk size must be positive")
    chunk: list = []
    for item in iterable:
        chunk.append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk

#: exception types the evaluator treats as a runtime error of the
#: configuration (not of the harness)
RUNTIME_ERRORS = (FloatingPointError, ZeroDivisionError, ValueError, OverflowError)


class ExecutionFailure:
    """A configuration whose execution raised a runtime error.

    Carries the exception type name across process boundaries; the
    evaluator converts it back into a ``RUNTIME_ERROR`` trial.
    """

    __slots__ = ("kind",)

    def __init__(self, kind: str) -> None:
        self.kind = kind

    def __repr__(self) -> str:
        return f"ExecutionFailure({self.kind})"


def execute_guarded(program: Program, config: PrecisionConfig):
    """Execute in-process, mapping runtime errors to a failure marker."""
    try:
        return program.execute(config)
    except RUNTIME_ERRORS as exc:
        return ExecutionFailure(type(exc).__name__)


class BatchExecutor:
    """Base class: run a batch of configuration executions."""

    name = "serial"

    def __init__(self, workers: int = 1) -> None:
        self.workers = max(1, int(workers))

    def run(
        self, program: Program, configs: Sequence[PrecisionConfig]
    ) -> list[ExecutionResult | ExecutionFailure]:
        """Execute ``configs``; results align with the input order."""
        return [execute_guarded(program, config) for config in configs]

    def close(self) -> None:
        """Release pooled workers (no-op for in-line backends)."""

    def __enter__(self) -> "BatchExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} workers={self.workers}>"


class SerialExecutor(BatchExecutor):
    """In-line execution — the reference backend."""

    name = "serial"


class ThreadExecutor(BatchExecutor):
    """Thread-pool execution; the pool persists across batches."""

    name = "thread"

    def __init__(self, workers: int = 4) -> None:
        super().__init__(workers)
        self._pool: ThreadPoolExecutor | None = None

    def run(self, program, configs):
        if len(configs) <= 1:
            return [execute_guarded(program, config) for config in configs]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="mixpbench-eval",
            )
        return list(self._pool.map(lambda c: execute_guarded(program, c), configs))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# -- process backend ---------------------------------------------------------

#: per-worker-process benchmark instances, keyed by (name, machine name)
_WORKER_BENCHMARKS: dict[tuple[str, str], Any] = {}


def _execute_work_item(item: tuple[str, Any, Mapping]) -> tuple:
    """Worker-side execution of one picklable work item.

    Returns a plain ``("ok", output, modeled_seconds)`` or
    ``("error", exception_name)`` tuple — nothing richer than NumPy
    arrays and strings crosses back to the parent.
    """
    program_name, machine, config_payload = item
    key = (program_name, machine.name)
    bench = _WORKER_BENCHMARKS.get(key)
    if bench is None:
        from repro.benchmarks.base import get_benchmark

        bench = get_benchmark(program_name, machine=machine)
        bench.inputs()  # deterministic regeneration, once per process
        _WORKER_BENCHMARKS[key] = bench
    config = PrecisionConfig.from_json_dict(config_payload)
    try:
        result = bench.execute(config)
    except RUNTIME_ERRORS as exc:
        return ("error", type(exc).__name__)
    output = np.asarray(result.output, dtype=np.float64)
    return ("ok", output, float(result.modeled_seconds))


class ProcessExecutor(BatchExecutor):
    """Process-pool execution over picklable work items.

    Only registry benchmarks can be shipped by name; other programs
    degrade to an in-process thread pool so callers never have to
    special-case the backend.
    """

    name = "process"

    def __init__(self, workers: int = 2) -> None:
        super().__init__(workers)
        self._pool: ProcessPoolExecutor | None = None
        self._thread_fallback: ThreadExecutor | None = None

    def _resolvable(self, program: Program) -> bool:
        name = getattr(program, "name", None)
        if not name:
            return False
        from repro.benchmarks.base import available_benchmarks

        return name in available_benchmarks()

    def run(self, program, configs):
        if len(configs) <= 1:
            return [execute_guarded(program, config) for config in configs]
        if not self._resolvable(program):
            if self._thread_fallback is None:
                self._thread_fallback = ThreadExecutor(self.workers)
            return self._thread_fallback.run(program, configs)

        machine = getattr(program, "machine", None)
        if machine is None:
            from repro.runtime.machine import DEFAULT_MACHINE

            machine = DEFAULT_MACHINE
        items = [
            (program.name, machine, config.to_json_dict()) for config in configs
        ]
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        results: list[ExecutionResult | ExecutionFailure] = []
        for payload in self._pool.map(_execute_work_item, items):
            if payload[0] == "error":
                results.append(ExecutionFailure(payload[1]))
            else:
                _tag, output, modeled = payload
                results.append(ExecutionResult(
                    output=output, profile=None, modeled_seconds=modeled,
                ))
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._thread_fallback is not None:
            self._thread_fallback.close()
            self._thread_fallback = None


def make_executor(name: str, workers: int | None = None) -> BatchExecutor:
    """Build an executor from its CLI/YAML name."""
    key = (name or "serial").strip().lower()
    if key == "serial":
        return SerialExecutor()
    if key == "thread":
        return ThreadExecutor(workers if workers is not None else 4)
    if key == "process":
        return ProcessExecutor(workers if workers is not None else 2)
    raise ValueError(
        f"unknown executor {name!r}; choose one of {EXECUTOR_NAMES}"
    )
