"""Batch execution backends for the configuration evaluator.

The paper's harness "offloads the search analysis in parallel on a
cluster"; this module is the single-node analogue.  An executor takes
a list of precision configurations and produces their raw
:class:`~repro.core.program.ExecutionResult`\\ s — the *pure*,
side-effect-free part of an evaluation.  All bookkeeping (trial
indices, the simulated analysis clock, the 24-hour budget, quality
verification) stays in the evaluator and is replayed serially, so a
parallel run produces a trial log bit-identical to the serial one.

Three backends are provided:

``serial``
    In-line execution; the degenerate executor used for reference runs.
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  NumPy releases
    the GIL inside large kernels, so threads already overlap real work.
``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor` fed *picklable
    work items* — ``(benchmark name, machine model, config JSON)``
    triples — so nothing unpicklable crosses the process boundary.
    Workers rebuild the benchmark from the suite registry (once per
    process) and regenerate its inputs deterministically from the
    benchmark seed.  Programs that are not registry benchmarks
    (e.g. ad-hoc :class:`~repro.core.program.Program` objects) fall
    back to in-process threads transparently.

Executions are deterministic functions of the configuration, so *where*
they run never changes *what* they return.

Fault tolerance (see docs/fault-tolerance.md) is opt-in through a
:class:`FaultPolicy`:

* **Per-trial wall-clock timeouts.**  Every backend applies a post-hoc
  elapsed-time check (an execution that took longer than the timeout
  is reported as an ``ExecutionFailure("Timeout")`` even though it
  finished), which keeps the accounting identical across backends.
  The process backend additionally *preempts* true hangs: a worker
  that does not answer within the timeout is killed, the pool is
  respawned, and the work items that died with it are re-dispatched.
  The thread backend cannot kill a hung thread; it abandons the wait,
  respawns the pool to restore capacity, and lets the stuck thread
  finish in the background.
* **Bounded retry with exponential backoff.**  Exceptions that are
  *not* runtime errors of the configuration (those stay
  ``ExecutionFailure``\\ s, never retried) are treated as transient
  worker failures and retried up to ``max_retries`` times with
  deterministic jittered backoff.
* **Process-pool recovery.**  A worker that dies outright (segfault,
  ``os._exit``) breaks the whole :class:`ProcessPoolExecutor`; the
  executor respawns the pool, re-dispatches the lost work items, and
  switches to one-at-a-time isolation dispatch so the poison item
  charges only its own retry budget.

All incidents are counted (``timeouts`` / ``retries`` /
``worker_restarts`` / ``redispatched``) and surfaced through
:class:`~repro.core.telemetry.EvalStats`.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.program import ExecutionResult, Program
from repro.core.types import PrecisionConfig

__all__ = [
    "ExecutionFailure", "FaultPolicy", "BatchExecutor", "SerialExecutor",
    "ThreadExecutor", "ProcessExecutor", "WorkStealingQueue", "make_executor",
    "chunked", "EXECUTOR_NAMES", "DEFAULT_BATCH_SIZE",
]

EXECUTOR_NAMES = ("serial", "thread", "process")

#: how many configurations the batching strategies hand to
#: ``evaluate_many`` at a time
DEFAULT_BATCH_SIZE = 32

#: exceptions that mean "the worker process is gone", not "the work is bad"
_POOL_FAILURES = (BrokenProcessPool, BrokenPipeError, EOFError)


def chunked(iterable, size: int):
    """Yield lists of up to ``size`` items, preserving order."""
    if size < 1:
        raise ValueError("chunk size must be positive")
    chunk: list = []
    for item in iterable:
        chunk.append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk

#: exception types the evaluator treats as a runtime error of the
#: configuration (not of the harness)
RUNTIME_ERRORS = (FloatingPointError, ZeroDivisionError, ValueError, OverflowError)


class WorkStealingQueue:
    """Multi-lane FIFO with work stealing, for sharded schedulers.

    Each *lane* (one submitted grid job, in the service) holds its
    shards in FIFO order.  A worker :meth:`pop`\\ s from its preferred
    lane while that lane has work — shard locality keeps one job's
    warm benchmark instances on one worker — and *steals* from the
    longest other lane when its own runs dry, so a wide job's backlog
    is drained by every idle worker instead of serialising behind one.
    Ties are broken by lane name so scheduling is deterministic under
    a single worker.

    ``close()`` wakes every blocked ``pop`` permanently; a pop on a
    closed, empty queue returns ``None``.  :meth:`drop_lane` removes a
    lane wholesale (job cancellation) and returns the unstarted items.
    """

    def __init__(self) -> None:
        self._lanes: dict[str, deque] = {}
        self._condition = threading.Condition()
        self._closed = False

    def push(self, lane: str, item) -> None:
        with self._condition:
            if self._closed:
                raise RuntimeError("queue is closed")
            self._lanes.setdefault(lane, deque()).append(item)
            self._condition.notify()

    def _select_lane(self, preferred: str | None) -> str | None:
        if preferred is not None and self._lanes.get(preferred):
            return preferred
        candidates = [(lane, q) for lane, q in self._lanes.items() if q]
        if not candidates:
            return None
        # steal from the deepest backlog; lane-name tie-break for
        # deterministic single-worker schedules
        return max(candidates, key=lambda pair: (len(pair[1]), pair[0]))[0]

    def pop(
        self, preferred: str | None = None, timeout: float | None = None
    ) -> tuple[str, Any] | None:
        """Next ``(lane, item)``; ``None`` on timeout or closed-and-empty."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            while True:
                lane = self._select_lane(preferred)
                if lane is not None:
                    queue = self._lanes[lane]
                    item = queue.popleft()
                    if not queue:
                        del self._lanes[lane]
                    return lane, item
                if self._closed:
                    return None
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                self._condition.wait(remaining)

    def drop_lane(self, lane: str) -> list:
        """Remove one lane; returns its not-yet-popped items."""
        with self._condition:
            queue = self._lanes.pop(lane, None)
            return list(queue) if queue else []

    def close(self) -> None:
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    def __len__(self) -> int:
        with self._condition:
            return sum(len(q) for q in self._lanes.values())


class ExecutionFailure:
    """A configuration whose execution raised a runtime error.

    Carries the exception type name across process boundaries; the
    evaluator converts it back into a ``RUNTIME_ERROR`` trial.  Fault
    handling reuses it with synthetic kinds: ``"Timeout"`` for a trial
    that blew its wall-clock budget and ``"WorkerCrash"`` for one that
    repeatedly took its worker process down.
    """

    __slots__ = ("kind",)

    def __init__(self, kind: str) -> None:
        self.kind = kind

    def __repr__(self) -> str:
        return f"ExecutionFailure({self.kind})"


@dataclass(frozen=True)
class FaultPolicy:
    """Retry/timeout envelope for one executor.

    ``trial_timeout`` is the per-trial wall-clock budget in real host
    seconds (``None`` disables it); ``max_retries`` bounds how often a
    *transient* failure — an exception outside ``RUNTIME_ERRORS``, or
    a worker death — is retried before the trial is reported as
    failed.  Backoff between retries grows exponentially from
    ``backoff_base`` up to ``backoff_cap`` with deterministic
    per-(trial, attempt) jitter, so a thundering herd of retries
    spreads out yet tests stay reproducible.
    """

    trial_timeout: float | None = None
    max_retries: int = 0
    backoff_base: float = 0.05
    backoff_cap: float = 2.0

    @property
    def active(self) -> bool:
        return self.trial_timeout is not None or self.max_retries > 0

    def backoff_seconds(self, token: str, attempt: int) -> float:
        """Deterministic jittered exponential backoff for one retry."""
        base = min(self.backoff_cap, self.backoff_base * (2 ** max(0, attempt - 1)))
        digest = hashlib.sha256(f"{token}:{attempt}".encode()).digest()
        return base * (0.5 + 0.5 * digest[0] / 255.0)


#: the do-nothing default policy (no timeout, no retries)
NO_FAULTS = FaultPolicy()


def execute_guarded(program: Program, config: PrecisionConfig):
    """Execute in-process, mapping runtime errors to a failure marker."""
    try:
        return program.execute(config)
    except RUNTIME_ERRORS as exc:
        return ExecutionFailure(type(exc).__name__)


class BatchExecutor:
    """Base class: run a batch of configuration executions."""

    name = "serial"

    def __init__(self, workers: int = 1, policy: FaultPolicy | None = None) -> None:
        self.workers = max(1, int(workers))
        self.policy = policy if policy is not None else NO_FAULTS
        #: fault-tolerance incident counters (see fault_counters)
        self.timeouts = 0
        self.retries = 0
        self.worker_restarts = 0
        self.redispatched = 0

    def run(
        self, program: Program, configs: Sequence[PrecisionConfig]
    ) -> list[ExecutionResult | ExecutionFailure]:
        """Execute ``configs``; results align with the input order."""
        if not self.policy.active:
            return [execute_guarded(program, config) for config in configs]
        results = [self._policy_execute(program, config) for config in configs]
        self._count_timeouts(results)
        return results

    def fault_counters(self) -> dict[str, int]:
        """Incident counters, merged into EvalStats by the evaluator."""
        return {
            "timeouts": self.timeouts,
            "retries": self.retries,
            "worker_restarts": self.worker_restarts,
            "redispatched": self.redispatched,
        }

    def _policy_execute(self, program: Program, config: PrecisionConfig):
        """One in-process execution under the fault policy.

        Runtime errors of the configuration fail immediately (they are
        deterministic properties of the config); any other exception is
        transient and retried with backoff.  An execution that outlives
        the trial timeout is reported as a ``Timeout`` failure — the
        in-process backends cannot preempt it, but the *accounting*
        matches the process backend's preemptive kill.
        """
        policy = self.policy
        attempt = 0
        while True:
            started = time.perf_counter()
            try:
                result = program.execute(config)
            except RUNTIME_ERRORS as exc:
                return ExecutionFailure(type(exc).__name__)
            except Exception as exc:  # noqa: BLE001 — transient worker failure
                if attempt >= policy.max_retries:
                    return ExecutionFailure(type(exc).__name__)
                attempt += 1
                self.retries += 1
                time.sleep(policy.backoff_seconds(config.digest(), attempt))
                continue
            elapsed = time.perf_counter() - started
            if policy.trial_timeout is not None and elapsed > policy.trial_timeout:
                return ExecutionFailure("Timeout")
            return result

    def _count_timeouts(self, results) -> None:
        self.timeouts += sum(
            1 for r in results
            if isinstance(r, ExecutionFailure) and r.kind == "Timeout"
        )

    def close(self) -> None:
        """Release pooled workers (no-op for in-line backends)."""

    def __enter__(self) -> "BatchExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} workers={self.workers}>"


class SerialExecutor(BatchExecutor):
    """In-line execution — the reference backend."""

    name = "serial"


class ThreadExecutor(BatchExecutor):
    """Thread-pool execution; the pool persists across batches.

    With a fault policy attached, each configuration runs through the
    retrying executor and the collection of each future is bounded by
    the trial timeout.  A thread cannot be killed, so a timed-out
    trial's thread keeps running in the background; the pool is
    respawned so pool capacity is not silently eaten by hung tasks.
    """

    name = "thread"

    def __init__(self, workers: int = 4, policy: FaultPolicy | None = None) -> None:
        super().__init__(workers, policy)
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="mixpbench-eval",
            )
        return self._pool

    def run(self, program, configs):
        if not self.policy.active:
            if len(configs) <= 1:
                return [execute_guarded(program, config) for config in configs]
            pool = self._ensure_pool()
            return list(pool.map(lambda c: execute_guarded(program, c), configs))

        pool = self._ensure_pool()
        futures = [
            pool.submit(self._policy_execute, program, config)
            for config in configs
        ]
        results: list[ExecutionResult | ExecutionFailure] = []
        for future in futures:
            try:
                results.append(future.result(timeout=self.policy.trial_timeout))
            except FuturesTimeout:
                # the task is stuck past its budget: give up on the
                # wait, abandon the pool (its threads drain and exit on
                # their own) and restore full capacity with a fresh one
                results.append(ExecutionFailure("Timeout"))
                pool.shutdown(wait=False)
                self._pool = None
                self.worker_restarts += 1
                pool = self._ensure_pool()
        self._count_timeouts(results)
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# -- process backend ---------------------------------------------------------

#: per-worker-process benchmark instances, keyed by (name, machine name)
_WORKER_BENCHMARKS: dict[tuple[str, str], Any] = {}


def _execute_work_item(item: tuple) -> tuple:
    """Worker-side execution of one picklable work item.

    Returns a plain ``("ok", output, modeled_seconds)``,
    ``("error", exception_name)`` or ``("timeout",)`` tuple — nothing
    richer than NumPy arrays and strings crosses back to the parent.
    Transient (non-runtime) exceptions propagate to the parent, which
    owns the retry budget.  The optional fourth item field is the
    trial timeout for the post-hoc elapsed check (worker warm-up —
    input generation, Typeforge analysis — is deliberately excluded
    from the measured window).
    """
    program_name, machine, config_payload = item[:3]
    timeout = item[3] if len(item) > 3 else None
    key = (program_name, machine.name)
    bench = _WORKER_BENCHMARKS.get(key)
    if bench is None:
        from repro.benchmarks.base import get_benchmark

        bench = get_benchmark(program_name, machine=machine)
        bench.inputs()  # deterministic regeneration, once per process
        _WORKER_BENCHMARKS[key] = bench
    config = PrecisionConfig.from_json_dict(config_payload)
    started = time.perf_counter()
    try:
        result = bench.execute(config)
    except RUNTIME_ERRORS as exc:
        return ("error", type(exc).__name__)
    if timeout is not None and time.perf_counter() - started > timeout:
        return ("timeout",)
    output = np.asarray(result.output, dtype=np.float64)
    return ("ok", output, float(result.modeled_seconds))


class ProcessExecutor(BatchExecutor):
    """Process-pool execution over picklable work items.

    Only registry benchmarks can be shipped by name; other programs
    degrade to an in-process thread pool so callers never have to
    special-case the backend.

    With a fault policy attached this is the one backend that can
    truly *recover*: a hung worker is killed at the trial timeout, a
    dead worker (segfault/``os._exit``) is detected through the broken
    pool, and in both cases the pool is respawned and the work items
    that were lost with it are re-dispatched — completed items are
    never re-executed.  After a crash the executor dispatches one item
    at a time until the culprit is identified, so a poison item burns
    only its own retry budget.
    """

    name = "process"

    def __init__(self, workers: int = 2, policy: FaultPolicy | None = None) -> None:
        super().__init__(workers, policy)
        self._pool: ProcessPoolExecutor | None = None
        self._thread_fallback: ThreadExecutor | None = None

    def _resolvable(self, program: Program) -> bool:
        name = getattr(program, "name", None)
        if not name:
            return False
        from repro.benchmarks.base import available_benchmarks

        return name in available_benchmarks()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _kill_pool(self) -> None:
        """Tear a (hung or broken) pool down hard and forget it."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        self.worker_restarts += 1
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.kill()
            except OSError:
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def fault_counters(self) -> dict[str, int]:
        counters = super().fault_counters()
        if self._thread_fallback is not None:
            for key, value in self._thread_fallback.fault_counters().items():
                counters[key] += value
        return counters

    def run(self, program, configs):
        if not self.policy.active and len(configs) <= 1:
            return [execute_guarded(program, config) for config in configs]
        if not self._resolvable(program):
            if self._thread_fallback is None:
                self._thread_fallback = ThreadExecutor(self.workers, self.policy)
            return self._thread_fallback.run(program, configs)

        machine = getattr(program, "machine", None)
        if machine is None:
            from repro.runtime.machine import DEFAULT_MACHINE

            machine = DEFAULT_MACHINE
        timeout = self.policy.trial_timeout
        items = [
            (program.name, machine, config.to_json_dict(), timeout)
            for config in configs
        ]
        if not self.policy.active:
            pool = self._ensure_pool()
            return [
                self._payload_to_result(payload)
                for payload in pool.map(_execute_work_item, items)
            ]
        tokens = [config.digest() for config in configs]
        results = self._run_fault_tolerant(items, tokens)
        self._count_timeouts(results)
        return results

    @staticmethod
    def _payload_to_result(payload: tuple) -> ExecutionResult | ExecutionFailure:
        if payload[0] == "error":
            return ExecutionFailure(payload[1])
        if payload[0] == "timeout":
            return ExecutionFailure("Timeout")
        _tag, output, modeled = payload
        return ExecutionResult(output=output, profile=None, modeled_seconds=modeled)

    def _run_fault_tolerant(self, items: list, tokens: list[str]) -> list:
        """Dispatch work items, surviving hangs, crashes and transients.

        Every loop iteration permanently resolves at least one item
        (success, configuration failure, timeout, or an exhausted retry
        budget) or flips into isolation mode, so the loop terminates
        after a bounded number of dispatches.
        """
        results: list = [None] * len(items)
        attempts = [0] * len(items)
        pending: deque[int] = deque(range(len(items)))
        isolate = False
        while pending:
            if isolate:
                batch = [pending.popleft()]
            else:
                batch = list(pending)
                pending.clear()
            requeue, broke = self._dispatch(items, tokens, batch, attempts, results)
            pending.extend(requeue)
            if broke and not isolate and len(batch) > 1:
                isolate = True  # identify the poison item one by one
        return results

    def _dispatch(
        self, items: list, tokens: list[str], batch: list[int],
        attempts: list[int], results: list,
    ) -> tuple[list[int], bool]:
        """Run one batch; fill ``results``; return (requeue, pool broke)."""
        policy = self.policy
        isolated = len(batch) == 1
        try:
            pool = self._ensure_pool()
            futures = [(i, pool.submit(_execute_work_item, items[i])) for i in batch]
        except _POOL_FAILURES:
            self._kill_pool()
            self.redispatched += len(batch)
            return list(batch), True
        broke = False
        requeue: list[int] = []
        for i, future in futures:
            if broke:
                # the pool died while this item was in flight: keep a
                # result that already materialised, otherwise re-dispatch
                # the lost item (exactly once per incident)
                payload = None
                if future.done() and not future.cancelled():
                    try:
                        payload = future.result(timeout=0)
                    except Exception:  # noqa: BLE001 — died with the pool
                        payload = None
                if payload is not None:
                    results[i] = self._payload_to_result(payload)
                else:
                    requeue.append(i)
                    self.redispatched += 1
                continue
            try:
                payload = future.result(timeout=policy.trial_timeout)
            except FuturesTimeout:
                # hung worker: the trial is charged as a timeout, the
                # pool is killed, and everything else in flight gets
                # re-dispatched on a fresh pool
                results[i] = ExecutionFailure("Timeout")
                self._kill_pool()
                broke = True
            except _POOL_FAILURES:
                self._kill_pool()
                broke = True
                if isolated:
                    # dispatched alone, so this item *is* the culprit
                    if attempts[i] >= policy.max_retries:
                        results[i] = ExecutionFailure("WorkerCrash")
                    else:
                        attempts[i] += 1
                        self.retries += 1
                        time.sleep(policy.backoff_seconds(tokens[i], attempts[i]))
                        requeue.append(i)
                else:
                    # culprit unknown: re-dispatch without charging
                    requeue.append(i)
                    self.redispatched += 1
            except Exception as exc:  # noqa: BLE001 — transient remote failure
                if attempts[i] >= policy.max_retries:
                    results[i] = ExecutionFailure(type(exc).__name__)
                else:
                    attempts[i] += 1
                    self.retries += 1
                    time.sleep(policy.backoff_seconds(tokens[i], attempts[i]))
                    requeue.append(i)
            else:
                results[i] = self._payload_to_result(payload)
        return requeue, broke

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._thread_fallback is not None:
            self._thread_fallback.close()
            self._thread_fallback = None


def make_executor(
    name: str,
    workers: int | None = None,
    trial_timeout: float | None = None,
    max_retries: int = 0,
    backoff_base: float = 0.05,
) -> BatchExecutor:
    """Build an executor from its CLI/YAML name.

    ``trial_timeout``/``max_retries``/``backoff_base`` configure the
    executor's :class:`FaultPolicy`; the defaults leave fault handling
    off, preserving the exact legacy execution paths.
    """
    key = (name or "serial").strip().lower()
    policy = FaultPolicy(
        trial_timeout=trial_timeout,
        max_retries=max(0, int(max_retries)),
        backoff_base=backoff_base,
    )
    if key == "serial":
        return SerialExecutor(policy=policy)
    if key == "thread":
        return ThreadExecutor(workers if workers is not None else 4, policy=policy)
    if key == "process":
        return ProcessExecutor(workers if workers is not None else 2, policy=policy)
    raise ValueError(
        f"unknown executor {name!r}; choose one of {EXECUTOR_NAMES}"
    )
