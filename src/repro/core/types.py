"""Precision levels and precision configurations.

A *precision configuration* is the unit of work in mixed-precision
search: an immutable mapping from program locations (variable or cluster
identifiers) to floating-point precision levels.  The search algorithms
in :mod:`repro.search` enumerate configurations; the evaluator in
:mod:`repro.core.evaluator` compiles, runs and verifies them.
"""

from __future__ import annotations

import enum
import hashlib
import json
from collections.abc import Iterable, Mapping
from typing import Iterator

import numpy as np

__all__ = ["Precision", "PrecisionConfig"]


class Precision(enum.Enum):
    """An IEEE-754 floating-point precision level.

    The paper focuses on ``double`` (64-bit) and ``single`` (32-bit)
    precision; ``half`` is included because the CRAFT search machinery
    is generic over the number of levels (``p`` in the paper's
    ``p**loc`` search-space size).
    """

    HALF = "half"
    SINGLE = "single"
    DOUBLE = "double"

    @property
    def dtype(self) -> np.dtype:
        """The NumPy dtype implementing this precision level."""
        return _DTYPES[self]

    @property
    def bits(self) -> int:
        """Width of the format in bits."""
        return _BITS[self]

    @property
    def bytes(self) -> int:
        """Width of the format in bytes."""
        return _BITS[self] // 8

    @classmethod
    def from_name(cls, name: str) -> "Precision":
        """Parse a precision from its name (``"single"``), a C type
        name (``"float"``/``"double"``) or a bit width (``"32"``)."""
        key = str(name).strip().lower()
        try:
            return _ALIASES[key]
        except KeyError:
            raise ValueError(f"unknown precision name: {name!r}") from None

    @classmethod
    def from_dtype(cls, dtype: np.dtype | type) -> "Precision":
        """Map a NumPy floating dtype back to a precision level."""
        dt = np.dtype(dtype)
        for precision, candidate in _DTYPES.items():
            if candidate == dt:
                return precision
        raise ValueError(f"no precision level for dtype {dt}")

    def __lt__(self, other: "Precision") -> bool:
        if not isinstance(other, Precision):
            return NotImplemented
        return self.bits < other.bits

    def __le__(self, other: "Precision") -> bool:
        if not isinstance(other, Precision):
            return NotImplemented
        return self.bits <= other.bits

    def __gt__(self, other: "Precision") -> bool:
        if not isinstance(other, Precision):
            return NotImplemented
        return self.bits > other.bits

    def __ge__(self, other: "Precision") -> bool:
        if not isinstance(other, Precision):
            return NotImplemented
        return self.bits >= other.bits


_DTYPES: dict[Precision, np.dtype] = {
    Precision.HALF: np.dtype(np.float16),
    Precision.SINGLE: np.dtype(np.float32),
    Precision.DOUBLE: np.dtype(np.float64),
}

_BITS: dict[Precision, int] = {
    Precision.HALF: 16,
    Precision.SINGLE: 32,
    Precision.DOUBLE: 64,
}

_ALIASES: dict[str, Precision] = {
    "half": Precision.HALF,
    "fp16": Precision.HALF,
    "float16": Precision.HALF,
    "16": Precision.HALF,
    "single": Precision.SINGLE,
    "float": Precision.SINGLE,
    "fp32": Precision.SINGLE,
    "float32": Precision.SINGLE,
    "32": Precision.SINGLE,
    "double": Precision.DOUBLE,
    "fp64": Precision.DOUBLE,
    "float64": Precision.DOUBLE,
    "64": Precision.DOUBLE,
}


def _as_precision(value, where: str) -> Precision:
    """Coerce a user-facing precision spec — a :class:`Precision` or any
    name :meth:`Precision.from_name` understands (``"fp32"``,
    ``"double"``, ``"half"``, ``"32"``) — to a :class:`Precision`."""
    if isinstance(value, str):
        return Precision.from_name(value)
    raise TypeError(
        f"precision for {where!r} must be a Precision or a precision "
        f"name string, got {type(value).__name__}"
    )


class PrecisionConfig(Mapping[str, Precision]):
    """An immutable mapping from location names to precision levels.

    Locations not present in the mapping run at the *default* precision
    (double, matching the original all-double programs).  Instances are
    hashable so evaluators can cache results, and they serialise to the
    FloatSmith-style JSON interchange format.
    """

    __slots__ = ("_assignments", "_default", "_key")

    def __init__(
        self,
        assignments: Mapping[str, Precision | str] | Iterable[tuple[str, Precision | str]] = (),
        default: Precision | str = Precision.DOUBLE,
    ) -> None:
        if not isinstance(default, Precision):
            default = _as_precision(default, "default")
        items = dict(assignments)
        for location, precision in items.items():
            if not isinstance(precision, Precision):
                items[location] = _as_precision(precision, location)
        # Assignments equal to the default are redundant; dropping them
        # makes equality and hashing canonical.
        self._assignments = {
            location: precision
            for location, precision in sorted(items.items())
            if precision is not default
        }
        self._default = default
        self._key = (tuple(self._assignments.items()), default)

    @property
    def default(self) -> Precision:
        """Precision used by locations without an explicit assignment."""
        return self._default

    def precision_of(self, location: str) -> Precision:
        """Precision of ``location`` (explicit or default)."""
        return self._assignments.get(location, self._default)

    def dtype_of(self, location: str) -> np.dtype:
        """NumPy dtype of ``location`` under this configuration."""
        return self.precision_of(location).dtype

    # -- Mapping protocol ------------------------------------------------
    def __getitem__(self, location: str) -> Precision:
        return self.precision_of(location)

    def __iter__(self) -> Iterator[str]:
        return iter(self._assignments)

    def __len__(self) -> int:
        return len(self._assignments)

    def __contains__(self, location: object) -> bool:
        return location in self._assignments

    # -- identity --------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PrecisionConfig):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v.value}" for k, v in self._assignments.items())
        return f"PrecisionConfig({{{body}}}, default={self._default.value})"

    # -- derivation ------------------------------------------------------
    def assign(self, locations: Iterable[str] | str, precision: Precision | str) -> "PrecisionConfig":
        """Return a new configuration with ``locations`` set to ``precision``."""
        if not isinstance(precision, Precision):
            precision = _as_precision(precision, "precision")
        if isinstance(locations, str):
            locations = (locations,)
        merged = dict(self._assignments)
        for location in locations:
            merged[location] = precision
        return PrecisionConfig(merged, default=self._default)

    def without(self, locations: Iterable[str] | str) -> "PrecisionConfig":
        """Return a new configuration with ``locations`` reverted to default."""
        if isinstance(locations, str):
            locations = (locations,)
        drop = set(locations)
        kept = {k: v for k, v in self._assignments.items() if k not in drop}
        return PrecisionConfig(kept, default=self._default)

    def merge(self, other: "PrecisionConfig") -> "PrecisionConfig":
        """Union of two configurations (``other`` wins on conflicts)."""
        merged = dict(self._assignments)
        merged.update(other._assignments)
        return PrecisionConfig(merged, default=self._default)

    def lowered_locations(self) -> frozenset[str]:
        """Locations assigned a precision *below* the default."""
        return frozenset(
            loc for loc, prec in self._assignments.items() if prec < self._default
        )

    def is_baseline(self) -> bool:
        """True when every location runs at the default precision."""
        return not self._assignments

    # -- serialisation (FloatSmith JSON interchange) ----------------------
    def to_json_dict(self) -> dict:
        """Serialise to the FloatSmith-style JSON interchange layout."""
        return {
            "default": self._default.value,
            "actions": [
                {"location": location, "to_type": precision.value}
                for location, precision in self._assignments.items()
            ],
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping) -> "PrecisionConfig":
        """Inverse of :meth:`to_json_dict`."""
        try:
            default = Precision.from_name(payload.get("default", "double"))
            actions = payload["actions"]
            assignments = {
                action["location"]: Precision.from_name(action["to_type"])
                for action in actions
            }
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed configuration payload: {payload!r}") from exc
        return cls(assignments, default=default)

    def digest(self) -> str:
        """Stable short hash, used to seed per-configuration noise."""
        blob = json.dumps(self.to_json_dict(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:16]
