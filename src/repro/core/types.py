"""Precision levels and precision configurations.

A *precision configuration* is the unit of work in mixed-precision
search: an immutable mapping from program locations (variable or cluster
identifiers) to floating-point precision levels.  The search algorithms
in :mod:`repro.search` enumerate configurations; the evaluator in
:mod:`repro.core.evaluator` compiles, runs and verifies them.
"""

from __future__ import annotations

import enum
import hashlib
import json
import re
from collections.abc import Iterable, Mapping
from typing import Iterator, Union

import numpy as np

__all__ = [
    "CustomFormat",
    "Precision",
    "PrecisionConfig",
    "PrecisionLike",
    "get_format",
    "mantissa_bits",
    "parse_precision",
    "precision_rank",
    "unit_roundoff",
]


class Precision(enum.Enum):
    """An IEEE-754 floating-point precision level.

    The paper focuses on ``double`` (64-bit) and ``single`` (32-bit)
    precision; ``half`` is included because the CRAFT search machinery
    is generic over the number of levels (``p`` in the paper's
    ``p**loc`` search-space size).
    """

    HALF = "half"
    SINGLE = "single"
    DOUBLE = "double"

    @property
    def dtype(self) -> np.dtype:
        """The NumPy dtype implementing this precision level."""
        return _DTYPES[self]

    @property
    def bits(self) -> int:
        """Width of the format in bits."""
        return _BITS[self]

    @property
    def bytes(self) -> int:
        """Width of the format in bytes."""
        return _BITS[self] // 8

    @classmethod
    def from_name(cls, name: str) -> "Precision":
        """Parse a precision from its name (``"single"``), a C type
        name (``"float"``/``"double"``) or a bit width (``"32"``)."""
        key = str(name).strip().lower()
        try:
            return _ALIASES[key]
        except KeyError:
            raise ValueError(f"unknown precision name: {name!r}") from None

    @classmethod
    def from_dtype(cls, dtype: np.dtype | type) -> "Precision":
        """Map a NumPy floating dtype back to a precision level."""
        dt = np.dtype(dtype)
        for precision, candidate in _DTYPES.items():
            if candidate == dt:
                return precision
        raise ValueError(f"no precision level for dtype {dt}")

    def __lt__(self, other: "Precision") -> bool:
        if not isinstance(other, Precision):
            return NotImplemented
        return self.bits < other.bits

    def __le__(self, other: "Precision") -> bool:
        if not isinstance(other, Precision):
            return NotImplemented
        return self.bits <= other.bits

    def __gt__(self, other: "Precision") -> bool:
        if not isinstance(other, Precision):
            return NotImplemented
        return self.bits > other.bits

    def __ge__(self, other: "Precision") -> bool:
        if not isinstance(other, Precision):
            return NotImplemented
        return self.bits >= other.bits


_DTYPES: dict[Precision, np.dtype] = {
    Precision.HALF: np.dtype(np.float16),
    Precision.SINGLE: np.dtype(np.float32),
    Precision.DOUBLE: np.dtype(np.float64),
}

_BITS: dict[Precision, int] = {
    Precision.HALF: 16,
    Precision.SINGLE: 32,
    Precision.DOUBLE: 64,
}

_ALIASES: dict[str, Precision] = {
    "half": Precision.HALF,
    "fp16": Precision.HALF,
    "float16": Precision.HALF,
    "16": Precision.HALF,
    "single": Precision.SINGLE,
    "float": Precision.SINGLE,
    "fp32": Precision.SINGLE,
    "float32": Precision.SINGLE,
    "32": Precision.SINGLE,
    "double": Precision.DOUBLE,
    "fp64": Precision.DOUBLE,
    "float64": Precision.DOUBLE,
    "64": Precision.DOUBLE,
}


#: mantissa-field widths of the built-in IEEE formats (excl. hidden bit)
_MANTISSA_BITS: dict[Precision, int] = {
    Precision.HALF: 10,
    Precision.SINGLE: 23,
    Precision.DOUBLE: 52,
}

#: exponent widths paired with their storage precision and mantissa cap
_STORAGE_BY_EXPONENT: dict[int, Precision] = {
    8: Precision.SINGLE,
    11: Precision.DOUBLE,
}

_MIN_MANTISSA = 2

_FORMAT_RE = re.compile(r"^e(8|11)m([0-9]{1,2})(sr)?$")


class CustomFormat:
    """An emulated floating-point format of configurable mantissa width.

    ``e8m10`` is an 8-bit-exponent format whose values are *stored* in
    fp32 but carry only 10 explicit mantissa bits: every assignment into
    a variable of this format rounds the stored value to the nearest
    representable one (round-to-nearest-even on the truncated mantissa
    field, VPREC-style — the exponent range and subnormal behaviour of
    the storage format are kept).  An ``sr`` suffix (``e8m10sr``)
    selects stochastic rounding with a seeded, replayable RNG instead.

    Instances are interned: :func:`get_format` returns the same object
    for the same name, and pickling round-trips through the registry, so
    identity comparisons (as used by :class:`PrecisionConfig`'s
    canonicalisation) remain valid across processes.
    """

    __slots__ = ("name", "exponent_bits", "mantissa_bits", "stochastic")

    def __init__(self, exponent_bits: int, mantissa_bits: int, stochastic: bool) -> None:
        object.__setattr__(self, "exponent_bits", int(exponent_bits))
        object.__setattr__(self, "mantissa_bits", int(mantissa_bits))
        object.__setattr__(self, "stochastic", bool(stochastic))
        object.__setattr__(
            self,
            "name",
            f"e{exponent_bits}m{mantissa_bits}" + ("sr" if stochastic else ""),
        )

    def __setattr__(self, key, value):
        raise AttributeError(f"CustomFormat is immutable ({key!r})")

    @property
    def value(self) -> str:
        """The canonical name (mirrors :attr:`Precision.value`)."""
        return self.name

    @property
    def storage(self) -> Precision:
        """The built-in precision whose dtype physically holds values."""
        return _STORAGE_BY_EXPONENT[self.exponent_bits]

    @property
    def dtype(self) -> np.dtype:
        """The NumPy *storage* dtype (fp32 for e8, fp64 for e11)."""
        return _DTYPES[self.storage]

    @property
    def bits(self) -> int:
        """Modeled width in bits: sign + exponent + explicit mantissa."""
        return 1 + self.exponent_bits + self.mantissa_bits

    @property
    def bytes(self) -> int:
        """Modeled width rounded up to whole bytes."""
        return (self.bits + 7) // 8

    @property
    def shift(self) -> int:
        """Mantissa bits dropped relative to the storage format.  Zero
        means the format is storage-exact (``e8m23`` ≡ fp32): no
        rounding happens and runs are byte-identical to the built-in."""
        return _MANTISSA_BITS[self.storage] - self.mantissa_bits

    def __repr__(self) -> str:
        return f"CustomFormat({self.name!r})"

    def __reduce__(self):
        return (get_format, (self.name,))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CustomFormat):
            return self.name == other.name
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("CustomFormat", self.name))

    # Ordering against both CustomFormat and Precision.  Precision's
    # comparisons return NotImplemented for non-Precision operands, so
    # ``Precision.SINGLE < custom`` falls back to the reflected
    # operators defined here.
    def __lt__(self, other) -> bool:
        rank = _comparison_rank(other)
        if rank is None:
            return NotImplemented
        return _comparison_rank(self) < rank

    def __le__(self, other) -> bool:
        rank = _comparison_rank(other)
        if rank is None:
            return NotImplemented
        return _comparison_rank(self) <= rank

    def __gt__(self, other) -> bool:
        rank = _comparison_rank(other)
        if rank is None:
            return NotImplemented
        return _comparison_rank(self) > rank

    def __ge__(self, other) -> bool:
        rank = _comparison_rank(other)
        if rank is None:
            return NotImplemented
        return _comparison_rank(self) >= rank


#: anything the configuration machinery accepts as a precision level
PrecisionLike = Union[Precision, CustomFormat]

#: interned instances, keyed by canonical name
_FORMATS: dict[str, CustomFormat] = {}


def _comparison_rank(value) -> tuple[int, int] | None:
    """(modeled bits, mantissa bits) — the ordering key shared by the
    built-in and emulated formats."""
    if isinstance(value, Precision):
        return (_BITS[value], _MANTISSA_BITS[value])
    if isinstance(value, CustomFormat):
        return (value.bits, value.mantissa_bits)
    return None


def precision_rank(value: PrecisionLike) -> tuple[int, int, int]:
    """A deterministic total-order key over all precision levels.

    Built-in formats sort *before* an emulated format of equal width
    (``fp32`` before ``e8m23``) so mixed level lists stay stable."""
    if isinstance(value, Precision):
        return (_BITS[value], _MANTISSA_BITS[value], 0)
    return (value.bits, value.mantissa_bits, 1)


def mantissa_bits(value: PrecisionLike) -> int:
    """Explicit mantissa-field width of a precision level (excluding
    the hidden bit): 10/23/52 for the built-ins, ``m`` for ``e8m<m>`` /
    ``e11m<m>`` emulated formats."""
    if isinstance(value, Precision):
        return _MANTISSA_BITS[value]
    if isinstance(value, CustomFormat):
        return value.mantissa_bits
    raise TypeError(f"not a precision level: {value!r}")


def unit_roundoff(value: PrecisionLike) -> float:
    """Unit roundoff ``u = 2**-(m+1)`` of a precision level — the
    worst-case relative error of one round-to-nearest operation.  This
    is the symbolic knob the static error-bound model in
    :mod:`repro.typeforge.errorbound` prices configurations with."""
    return 2.0 ** -(mantissa_bits(value) + 1)


def format_names_hint() -> str:
    """Human-readable summary of every accepted precision spelling,
    used by unknown-precision error messages across the code base."""
    builtin = "/".join(p.value for p in Precision)
    return (
        f"a built-in precision ({builtin}, or aliases like fp16/fp32/fp64), "
        f"or an emulated format e8m<{_MIN_MANTISSA}..{_MANTISSA_BITS[Precision.SINGLE]}> / "
        f"e11m<{_MIN_MANTISSA}..{_MANTISSA_BITS[Precision.DOUBLE]}> "
        f"with an optional 'sr' suffix for stochastic rounding (e.g. 'e8m10sr')"
    )


def get_format(name: str) -> CustomFormat:
    """Return the interned :class:`CustomFormat` for ``name``.

    Accepts ``e8m<2..23>`` and ``e11m<2..52>`` with an optional ``sr``
    suffix; raises :class:`ValueError` for anything else.
    """
    key = str(name).strip().lower()
    cached = _FORMATS.get(key)
    if cached is not None:
        return cached
    match = _FORMAT_RE.match(key)
    if match is None:
        raise ValueError(f"unknown precision format {name!r}; expected {format_names_hint()}")
    exponent_bits = int(match.group(1))
    mantissa_bits = int(match.group(2))
    cap = _MANTISSA_BITS[_STORAGE_BY_EXPONENT[exponent_bits]]
    if not _MIN_MANTISSA <= mantissa_bits <= cap:
        raise ValueError(
            f"unknown precision format {name!r}: e{exponent_bits} mantissa width "
            f"must be in [{_MIN_MANTISSA}, {cap}], got {mantissa_bits}"
        )
    fmt = CustomFormat(exponent_bits, mantissa_bits, match.group(3) is not None)
    # setdefault keeps interning race-free: concurrent first lookups all
    # end up holding the one registered instance.
    return _FORMATS.setdefault(key, fmt)


def parse_precision(value) -> PrecisionLike:
    """Parse any precision spec — a :class:`Precision`, a
    :class:`CustomFormat`, a built-in alias (``"fp32"``, ``"double"``,
    ``"32"``) or an emulated-format name (``"e8m10"``, ``"e11m40sr"``)."""
    if isinstance(value, (Precision, CustomFormat)):
        return value
    key = str(value).strip().lower()
    builtin = _ALIASES.get(key)
    if builtin is not None:
        return builtin
    return get_format(key)


def _as_precision(value, where: str) -> PrecisionLike:
    """Coerce a user-facing precision spec — a :class:`Precision`, a
    :class:`CustomFormat`, or any name :func:`parse_precision`
    understands (``"fp32"``, ``"double"``, ``"e8m10"``) — to a
    precision level."""
    if isinstance(value, (str, Precision, CustomFormat)):
        return parse_precision(value)
    raise TypeError(
        f"precision for {where!r} must be a Precision, CustomFormat or a "
        f"precision name string, got {type(value).__name__}"
    )


class PrecisionConfig(Mapping[str, Precision]):
    """An immutable mapping from location names to precision levels.

    Locations not present in the mapping run at the *default* precision
    (double, matching the original all-double programs).  Instances are
    hashable so evaluators can cache results, and they serialise to the
    FloatSmith-style JSON interchange format.
    """

    __slots__ = ("_assignments", "_default", "_key", "_custom")

    def __init__(
        self,
        assignments: Mapping[str, PrecisionLike | str] | Iterable[tuple[str, PrecisionLike | str]] = (),
        default: PrecisionLike | str = Precision.DOUBLE,
    ) -> None:
        if not isinstance(default, (Precision, CustomFormat)):
            default = _as_precision(default, "default")
        items = dict(assignments)
        for location, precision in items.items():
            if not isinstance(precision, (Precision, CustomFormat)):
                items[location] = _as_precision(precision, location)
        # Assignments equal to the default are redundant; dropping them
        # makes equality and hashing canonical.  Identity comparison is
        # valid because Precision members and interned CustomFormats are
        # both singletons.
        self._assignments = {
            location: precision
            for location, precision in sorted(items.items())
            if precision is not default
        }
        self._default = default
        self._key = (tuple(self._assignments.items()), default)
        self._custom = isinstance(default, CustomFormat) or any(
            isinstance(p, CustomFormat) for p in self._assignments.values()
        )

    @property
    def default(self) -> PrecisionLike:
        """Precision used by locations without an explicit assignment."""
        return self._default

    def uses_custom_formats(self) -> bool:
        """True when any location (or the default) is an emulated
        :class:`CustomFormat` — the gate for the quantising runtime."""
        return self._custom

    def precision_of(self, location: str) -> PrecisionLike:
        """Precision of ``location`` (explicit or default)."""
        return self._assignments.get(location, self._default)

    def dtype_of(self, location: str) -> np.dtype:
        """NumPy dtype of ``location`` under this configuration."""
        return self.precision_of(location).dtype

    # -- Mapping protocol ------------------------------------------------
    def __getitem__(self, location: str) -> Precision:
        return self.precision_of(location)

    def __iter__(self) -> Iterator[str]:
        return iter(self._assignments)

    def __len__(self) -> int:
        return len(self._assignments)

    def __contains__(self, location: object) -> bool:
        return location in self._assignments

    # -- identity --------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PrecisionConfig):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v.value}" for k, v in self._assignments.items())
        return f"PrecisionConfig({{{body}}}, default={self._default.value})"

    # -- derivation ------------------------------------------------------
    def assign(self, locations: Iterable[str] | str, precision: PrecisionLike | str) -> "PrecisionConfig":
        """Return a new configuration with ``locations`` set to ``precision``."""
        if not isinstance(precision, (Precision, CustomFormat)):
            precision = _as_precision(precision, "precision")
        if isinstance(locations, str):
            locations = (locations,)
        merged = dict(self._assignments)
        for location in locations:
            merged[location] = precision
        return PrecisionConfig(merged, default=self._default)

    def without(self, locations: Iterable[str] | str) -> "PrecisionConfig":
        """Return a new configuration with ``locations`` reverted to default."""
        if isinstance(locations, str):
            locations = (locations,)
        drop = set(locations)
        kept = {k: v for k, v in self._assignments.items() if k not in drop}
        return PrecisionConfig(kept, default=self._default)

    def merge(self, other: "PrecisionConfig") -> "PrecisionConfig":
        """Union of two configurations (``other`` wins on conflicts)."""
        merged = dict(self._assignments)
        merged.update(other._assignments)
        return PrecisionConfig(merged, default=self._default)

    def lowered_locations(self) -> frozenset[str]:
        """Locations assigned a precision *below* the default."""
        return frozenset(
            loc for loc, prec in self._assignments.items() if prec < self._default
        )

    def is_baseline(self) -> bool:
        """True when every location runs at the default precision."""
        return not self._assignments

    # -- serialisation (FloatSmith JSON interchange) ----------------------
    def to_json_dict(self) -> dict:
        """Serialise to the FloatSmith-style JSON interchange layout."""
        return {
            "default": self._default.value,
            "actions": [
                {"location": location, "to_type": precision.value}
                for location, precision in self._assignments.items()
            ],
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping) -> "PrecisionConfig":
        """Inverse of :meth:`to_json_dict`."""
        try:
            default = parse_precision(payload.get("default", "double"))
            actions = payload["actions"]
            assignments = {
                action["location"]: parse_precision(action["to_type"])
                for action in actions
            }
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed configuration payload: {payload!r}") from exc
        return cls(assignments, default=default)

    def digest(self) -> str:
        """Stable short hash, used to seed per-configuration noise."""
        blob = json.dumps(self.to_json_dict(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:16]
