"""Search telemetry: evaluation counters and the JSON-lines trace.

The paper's harness runs thousands of configuration evaluations per
analysis; knowing where they went — fresh executions, in-memory cache
hits, persistent-cache replays, parallel batches — is what makes the
batch layer tunable.  :class:`EvalStats` is the counter block every
:class:`~repro.core.evaluator.ConfigurationEvaluator` maintains; it is
surfaced in ``SearchOutcome.metadata["eval_stats"]`` and in harness
reports.  :class:`TraceWriter` appends one JSON object per event to a
trace file, giving a replayable record of a search run.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, IO

__all__ = ["EvalStats", "TraceWriter"]


@dataclass
class EvalStats:
    """Counters describing where an evaluator's work went.

    ``evaluations`` counts trials that entered the log (EV);
    every one of them is either a ``fresh_evaluations`` (actually
    executed) or a ``persistent_hits`` (replayed from the on-disk
    cache).  ``memory_hits`` are repeats within one run — they cost
    nothing and never enter the trial log.  ``wall_seconds`` is *real*
    host time spent executing configurations (the quantity parallel
    executors shrink), as opposed to the simulated analysis clock.
    """

    evaluations: int = 0
    fresh_evaluations: int = 0
    memory_hits: int = 0
    persistent_hits: int = 0
    compile_errors: int = 0
    batches: int = 0
    batched_configs: int = 0
    prefetched_executions: int = 0
    wall_seconds: float = 0.0
    executor: str = "serial"
    workers: int = 1
    #: fault-tolerance incidents (see repro.core.batch.FaultPolicy):
    #: trials that blew their wall-clock budget, transient failures
    #: retried, worker pools killed/respawned, and work items
    #: re-dispatched after a pool died under them
    timeouts: int = 0
    retries: int = 0
    worker_restarts: int = 0
    redispatched: int = 0
    #: configurations rejected by the static error-bound certifier
    #: (see repro.typeforge.errorbound) without running — free skips
    #: that never enter the trial log's EV count.  Serialised only when
    #: nonzero so screening-off payloads stay byte-identical to
    #: releases that predate the counter.
    screened: int = 0
    #: trace-fusion counters (see repro.runtime.fuse): deltas of the
    #: process-global fuse.STATS attributable to this evaluator's
    #: in-process executions.  Deliberately NOT part of as_dict(): a
    #: resumed/replayed run performs zero fresh executions, so folding
    #: these into persisted payloads would break the bit-identical
    #: resume guarantee.  They are diagnostics, reported separately.
    fuse_regions_compiled: int = 0
    fuse_regions_loaded: int = 0
    fuse_region_replays: int = 0
    fuse_fused_ops: int = 0
    fuse_guard_misses: int = 0
    fuse_fallback_breaks: int = 0
    #: free-form labels (strategy name, program) attached by callers
    labels: dict[str, str] = field(default_factory=dict)

    @property
    def cache_hits(self) -> int:
        """All evaluations answered without executing the program."""
        return self.memory_hits + self.persistent_hits

    def as_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "evaluations": self.evaluations,
            "fresh_evaluations": self.fresh_evaluations,
            "memory_hits": self.memory_hits,
            "persistent_hits": self.persistent_hits,
            "cache_hits": self.cache_hits,
            "compile_errors": self.compile_errors,
            "batches": self.batches,
            "batched_configs": self.batched_configs,
            "prefetched_executions": self.prefetched_executions,
            "wall_seconds": round(self.wall_seconds, 6),
            "executor": self.executor,
            "workers": self.workers,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "worker_restarts": self.worker_restarts,
            "redispatched": self.redispatched,
        }
        if self.screened:
            payload["screened"] = self.screened
        if self.labels:
            payload["labels"] = dict(self.labels)
        return payload

    def fusion_summary(self) -> dict[str, int]:
        """The trace-fusion counter block (kept out of :meth:`as_dict`;
        see the field comments).  Empty when no fusion activity was
        observed, so callers can skip the report line entirely."""
        fields = (
            "fuse_regions_compiled", "fuse_regions_loaded",
            "fuse_region_replays", "fuse_fused_ops",
            "fuse_guard_misses", "fuse_fallback_breaks",
        )
        if not any(getattr(self, name) for name in fields):
            return {}
        return {name.removeprefix("fuse_"): getattr(self, name) for name in fields}

    def merge(self, other: "EvalStats") -> None:
        """Accumulate another evaluator's counters (harness totals)."""
        self.evaluations += other.evaluations
        self.fresh_evaluations += other.fresh_evaluations
        self.memory_hits += other.memory_hits
        self.persistent_hits += other.persistent_hits
        self.compile_errors += other.compile_errors
        self.batches += other.batches
        self.batched_configs += other.batched_configs
        self.prefetched_executions += other.prefetched_executions
        self.wall_seconds += other.wall_seconds
        self.timeouts += other.timeouts
        self.retries += other.retries
        self.worker_restarts += other.worker_restarts
        self.redispatched += other.redispatched
        self.screened += other.screened
        self.fuse_regions_compiled += other.fuse_regions_compiled
        self.fuse_regions_loaded += other.fuse_regions_loaded
        self.fuse_region_replays += other.fuse_region_replays
        self.fuse_fused_ops += other.fuse_fused_ops
        self.fuse_guard_misses += other.fuse_guard_misses
        self.fuse_fallback_breaks += other.fuse_fallback_breaks


class TraceWriter:
    """Append-only JSON-lines event log for one search/harness run.

    Each :meth:`emit` call writes one JSON object carrying the event
    kind, a monotonically increasing sequence number and a wall-clock
    timestamp.  The writer is thread-safe (batch executors may emit
    from worker callbacks) and flushes every line so a crashed run
    still leaves a usable trace.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: IO[str] = self.path.open("a")
        self._lock = threading.Lock()
        self._sequence = 0

    def emit(self, kind: str, **fields: Any) -> None:
        with self._lock:
            event = {"seq": self._sequence, "ts": round(time.time(), 3), "kind": kind}
            event.update(fields)
            self._sequence += 1
            self._handle.write(json.dumps(event, sort_keys=True, default=str) + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
