"""Crash-safe checkpoint/resume for grid search runs.

The paper's evaluation schedules the full (program x algorithm x
threshold) grid on a cluster with 24-hour per-analysis limits
(Section IV); a crash there loses one node's analysis, not the grid.
Our single-node :func:`~repro.harness.scheduler.run_grid` used to lose
*everything* in flight when the process died.  This module makes a
grid run durable:

* :class:`RunJournal` appends one JSON record per event — the run
  header, every fresh trial of every job, and every finished job — to
  ``<runs_dir>/<run-id>/journal.jsonl``.  Each append is a single
  ``write`` of one full line followed by ``flush`` + ``fsync``, so a
  crash can only ever lose (or tear) the *last* record, never corrupt
  an earlier one.
* :func:`load_run_state` parses a journal back into a
  :class:`RunState`, stopping at the first incomplete record.  A torn
  tail (the page the crash interrupted) is detected — by a missing
  trailing newline or an unparsable line — and dropped; resuming
  truncates the file back to the last complete record before
  appending, so the journal never accretes garbage.
* On resume, finished jobs are restored straight from their journaled
  :class:`~repro.harness.scheduler.JobResult` payloads, and in-flight
  jobs replay their journaled trials *through the evaluator* (the same
  replay path the persistent cache uses: identical simulated cost,
  identical EV increment, no program execution).  The search strategy
  then re-runs deterministically over the replayed prefix and
  continues fresh from the cut point, so a resumed grid produces
  bit-identical ``SearchOutcome``\\ s, tables and trial logs to an
  uninterrupted one.

The journal deliberately does *not* record anything derived (best-so-
far, budgets, strategy internals): strategies are deterministic
functions of the trial results, so the trial prefix is the whole
state.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.errors import MixPBenchError

__all__ = [
    "JOURNAL_VERSION", "JournalError", "JsonlJournal", "RunJournal",
    "RunState", "JournalTrialStore", "grid_fingerprint", "job_key",
    "load_run_state", "read_journal_records",
]

#: bump when the journal record schema changes; a mismatch refuses to
#: resume instead of silently mis-replaying
JOURNAL_VERSION = 1

#: default root for run journals, relative to the working directory
DEFAULT_RUNS_DIR = Path("results") / "runs"


class JournalError(MixPBenchError):
    """A journal cannot be (re)opened for the requested run."""


def grid_fingerprint(jobs: Sequence[Any]) -> str:
    """Stable hash of a job list.

    Folds in every field of every job, in order, so a resume against a
    *different* grid (changed thresholds, reordered programs, new
    executor settings) is rejected instead of replaying the wrong
    trials.
    """
    blob = json.dumps(
        [_job_payload(job) for job in jobs], sort_keys=True, default=str
    ).encode()
    return hashlib.sha256(blob).hexdigest()[:20]


def _job_payload(job: Any) -> dict:
    from dataclasses import asdict, is_dataclass

    if is_dataclass(job):
        return asdict(job)
    return dict(job)


def job_key(index: int, job: Any) -> str:
    """Journal identifier of one job: position plus human-readable label.

    A job whose label cannot be computed (say, an unknown algorithm
    name) still needs a stable key — its *failure* is journaled too —
    so fall back to the raw field values.
    """
    try:
        label = job.label() if hasattr(job, "label") else str(job)
    except Exception:  # noqa: BLE001 — key must always be derivable
        label = f"{job.program}/{job.algorithm}@{job.threshold:g}"
    return f"{index:04d}:{label}"


@dataclass
class RunState:
    """Everything a journal knows about one run.

    ``finished`` maps job keys to their journaled ``JobResult``
    payloads; ``trials`` maps in-flight job keys to an *ordered*
    ``{config digest: {"context": ..., "record": ...}}`` table of the
    fresh trials the crashed run completed.  ``valid_bytes`` is the
    offset of the last complete record — resuming truncates the file
    there — and ``torn_tail`` reports whether a crash left a partial
    record behind it.
    """

    run_id: str = ""
    meta: dict | None = None
    finished: dict[str, dict] = field(default_factory=dict)
    trials: dict[str, dict[str, dict]] = field(default_factory=dict)
    valid_bytes: int = 0
    torn_tail: bool = False

    @property
    def grid(self) -> str | None:
        return self.meta.get("grid") if self.meta else None

    def job_trials(self, key: str) -> dict[str, dict]:
        """The journaled trial table of one job (empty when unseen)."""
        return self.trials.get(key, {})


def read_journal_records(path: str | Path) -> tuple[list[dict], int, bool]:
    """Parse any fsync'd JSON-lines journal, tolerating a torn tail.

    Records are consumed in order up to the first incomplete one: a
    line that is not valid JSON, is missing its trailing newline, or
    does not carry a ``kind`` marks the crash point — everything from
    there on is ignored.  Returns ``(records, valid_bytes, torn_tail)``
    where ``valid_bytes`` is the offset of the last complete record (a
    resuming writer truncates the file there).  A mid-file torn record
    also fences off the records after it; with fsync'd single-line
    appends that can only be the tail.
    """
    path = Path(path)
    records: list[dict] = []
    if not path.exists():
        return records, 0, False
    data = path.read_bytes()
    offset = 0
    torn = False
    for raw_line in data.splitlines(keepends=True):
        if not raw_line.endswith(b"\n"):
            torn = True
            break
        try:
            record = json.loads(raw_line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            torn = True
            break
        if not isinstance(record, dict) or "kind" not in record:
            torn = True
            break
        records.append(record)
        offset += len(raw_line)
    if offset < len(data):
        torn = True
    return records, offset, torn


def load_run_state(path: str | Path) -> RunState:
    """Parse a grid-run journal back into a :class:`RunState`."""
    state = RunState()
    records, state.valid_bytes, state.torn_tail = read_journal_records(path)
    for record in records:
        _apply_record(state, record)
    return state


def _apply_record(state: RunState, record: dict) -> None:
    kind = record["kind"]
    if kind == "run":
        state.meta = record
        state.run_id = record.get("run_id", "")
    elif kind == "trial":
        table = state.trials.setdefault(record.get("job", ""), {})
        table[str(record.get("config"))] = {
            "context": record.get("context"),
            "record": record.get("record", {}),
        }
    elif kind == "job_done":
        key = record.get("job", "")
        state.finished[key] = record.get("result", {})
        state.trials.pop(key, None)
    # unknown kinds are forward-compatible no-ops


class JsonlJournal:
    """Append-only, fsync'd JSON-lines journal.

    The durable-logging substrate shared by :class:`RunJournal` (one
    grid run) and the service journal (:mod:`repro.service.queue`).
    Each :meth:`append` is a single ``write`` of one full line followed
    by ``flush`` + ``fsync``, so a crash can only ever lose or tear the
    *last* record; :func:`read_journal_records` drops the torn tail on
    the way back in.  Appends are thread-safe.

    ``truncate_at`` (the ``valid_bytes`` of a prior read) is applied
    before opening for append, so a resuming writer starts on a record
    boundary instead of accreting garbage after a torn record.
    """

    def __init__(self, path: str | Path, truncate_at: int | None = None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        if truncate_at is not None and self.path.exists():
            if self.path.stat().st_size > truncate_at:
                with self.path.open("r+b") as handle:
                    handle.truncate(truncate_at)
        self._handle = self.path.open("ab")

    def append(self, kind: str, **fields: Any) -> None:
        """Durably append one record: one write, one flush, one fsync."""
        record = {"kind": kind}
        record.update(fields)
        line = (json.dumps(record, sort_keys=True, default=str) + "\n").encode()
        with self._lock:
            self._handle.write(line)
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "JsonlJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class RunJournal(JsonlJournal):
    """Append-only, fsync'd journal of one grid run.

    Opening for a *fresh* run writes the header record; opening with
    ``resume=True`` loads the prior state, verifies the run is the
    same grid (fingerprint and journal version), and truncates any
    torn tail so subsequent appends start on a record boundary.
    Appends are thread-safe — grid workers journal concurrently.
    """

    def __init__(
        self,
        runs_dir: str | Path,
        run_id: str,
        jobs: Sequence[Any],
        resume: bool = False,
    ) -> None:
        if not run_id or any(sep in run_id for sep in ("/", "\\", "\0")):
            raise JournalError(f"invalid run id {run_id!r}")
        self.run_id = run_id
        self.directory = Path(runs_dir) / run_id
        path = self.directory / "journal.jsonl"
        fingerprint = grid_fingerprint(jobs)

        truncate_at = None
        if resume:
            if not path.exists():
                raise JournalError(
                    f"cannot resume run {run_id!r}: no journal at {path}"
                )
            self.state = load_run_state(path)
            self._check_resumable(fingerprint, path)
            if self.state.torn_tail:
                truncate_at = self.state.valid_bytes
        else:
            if path.exists() and path.stat().st_size > 0:
                raise JournalError(
                    f"run {run_id!r} already has a journal at {path}; "
                    "pass resume to continue it or pick a fresh run id"
                )
            self.state = RunState(run_id=run_id)

        super().__init__(path, truncate_at=truncate_at)
        if not resume:
            self.append(
                "run", run_id=run_id, version=JOURNAL_VERSION,
                grid=fingerprint, jobs=[job_key(i, j) for i, j in enumerate(jobs)],
            )

    def _check_resumable(self, fingerprint: str, path: Path) -> None:
        meta = self.state.meta
        if meta is None:
            raise JournalError(
                f"journal {path} has no run header; refusing to resume"
            )
        if meta.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"journal {path} has version {meta.get('version')!r}, "
                f"this code writes {JOURNAL_VERSION}; refusing to resume"
            )
        if meta.get("grid") != fingerprint:
            raise JournalError(
                f"run {self.run_id!r} journaled a different job grid "
                f"({meta.get('grid')} != {fingerprint}); refusing to resume"
            )

    def append_trial(
        self, key: str, context: str, config_digest: str, record: Mapping
    ) -> None:
        self.append(
            "trial", job=key, context=context, config=config_digest,
            record=dict(record),
        )

    def append_job_done(self, key: str, result_payload: Mapping) -> None:
        self.append("job_done", job=key, result=dict(result_payload))


class JournalTrialStore:
    """Evaluation-cache adapter backed by a run journal.

    Speaks the :class:`~repro.runtime.cache.EvaluationCache` protocol
    the evaluator already understands (``get``/``put``), so journaled
    trials replay through the exact code path persistent-cache hits do
    — same simulated cost, same EV increment, bit-identical trial
    records.  Fresh evaluations are journaled before being forwarded
    to the optional inner cache; replays consult the journal first,
    then the inner cache.
    """

    def __init__(
        self,
        journal: RunJournal,
        key: str,
        replay: Mapping[str, dict] | None = None,
        inner: Any | None = None,
    ) -> None:
        self._journal = journal
        self._key = key
        self._replay = dict(replay or {})
        self._inner = inner

    def get(self, program: str, context: str, config_digest: str) -> dict | None:
        entry = self._replay.get(config_digest)
        if entry is not None and entry.get("context") == context:
            return entry.get("record")
        if self._inner is not None:
            return self._inner.get(program, context, config_digest)
        return None

    def put(
        self, program: str, context: str, config_digest: str, record: Mapping
    ) -> None:
        self._journal.append_trial(self._key, context, config_digest, record)
        if self._inner is not None:
            self._inner.put(program, context, config_digest, record)
