"""The program abstraction the evaluator and search algorithms consume.

FloatSmith asks the user for "instructions on how to acquire, build,
and run the program as well as how to verify the output" — the
:class:`Program` protocol is that contract: anything exposing a search
space, an execute-under-configuration entry point, a quality spec and
a couple of timing knobs can be tuned by every search strategy in
:mod:`repro.search`.  The concrete implementation for suite benchmarks
lives in :mod:`repro.benchmarks.base`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.types import PrecisionConfig
from repro.core.variables import Granularity, SearchSpace
from repro.runtime.profiler import Profile
from repro.verify.quality import QualitySpec

__all__ = ["ExecutionResult", "Program"]


@dataclass
class ExecutionResult:
    """One execution of a program under a precision configuration."""

    output: np.ndarray
    profile: Profile
    modeled_seconds: float

    @property
    def has_nonfinite_output(self) -> bool:
        return not bool(np.all(np.isfinite(self.output)))


@runtime_checkable
class Program(Protocol):
    """What a tunable program must provide.

    Attributes
    ----------
    name:
        Unique program identifier (e.g. ``"lavamd"``).
    quality:
        Default quality metric + threshold for this program.
    runs_per_config:
        How many timed runs the evaluator averages (the paper uses 10,
        discarding the best and worst).
    nominal_seconds:
        Wall-clock seconds one double-precision run would plausibly
        take on the paper's testbed; used only to scale modeled time
        onto the simulated 24-hour analysis clock.
    compile_seconds:
        Simulated build time charged per evaluated configuration.
    """

    name: str
    quality: QualitySpec
    runs_per_config: int
    nominal_seconds: float
    compile_seconds: float

    def search_space(self, granularity: Granularity = Granularity.CLUSTER) -> SearchSpace:
        """The program's locations at the requested granularity."""
        ...

    def execute(self, config: PrecisionConfig) -> ExecutionResult:
        """Run the program under ``config`` and return its output,
        operation profile and modeled runtime."""
        ...
