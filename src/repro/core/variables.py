"""Program locations: variables, clusters, and search spaces.

The paper distinguishes two granularities at which the search algorithms
operate (Section II):

* **variables** — every floating-point declaration in the program
  (locals, parameters, dynamically allocated arrays);
* **clusters** — disjoint sets of variables that Typeforge's
  type-dependence analysis proves must share a base type for the
  program to compile.

A :class:`SearchSpace` exposes one of the two granularities as a list
of *locations*, each of which a search algorithm may independently set
to a precision level.  Configurations produced at cluster granularity
are always compilable; at variable granularity they may split a
cluster, which the evaluator rejects with a simulated ``CompileError``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.types import (
    CustomFormat,
    Precision,
    PrecisionConfig,
    PrecisionLike,
    parse_precision,
    precision_rank,
)

__all__ = ["VariableKind", "Variable", "Cluster", "Granularity", "SearchSpace"]


class VariableKind(enum.Enum):
    """What sort of declaration a variable came from."""

    ARRAY = "array"       # ws.array(...) — heap allocation / pointer
    SCALAR = "scalar"     # ws.scalar(...) — local scalar
    PARAM = "param"       # function parameter (array-bound or ws.param)


@dataclass(frozen=True)
class Variable:
    """A floating-point program location discovered by Typeforge.

    ``uid`` is the globally unique name used in precision
    configurations; for a local it is ``"function.name"``.
    """

    name: str
    kind: VariableKind
    function: str
    module: str = ""
    pointer: bool = False

    def __post_init__(self) -> None:
        if self.kind is VariableKind.ARRAY and not self.pointer:
            # Arrays are always pointer-typed; normalise rather than trust
            # the caller to pass both flags consistently.
            object.__setattr__(self, "pointer", True)

    @property
    def uid(self) -> str:
        return f"{self.function}.{self.name}"

    @property
    def is_pointer(self) -> bool:
        """Pointer-typed locations (arrays and array-bound parameters)
        are the ones whose binding unifies base types across
        functions."""
        return self.pointer

    def __str__(self) -> str:
        return self.uid


@dataclass(frozen=True)
class Cluster:
    """A set of variables that must share one base type.

    Clusters are the output of the type-dependence partitioning
    (paper Section II-C): the power set of clusters describes every
    configuration of the program that compiles.
    """

    cid: str
    members: frozenset[str]

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a cluster must contain at least one variable")

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self.members))

    def __contains__(self, uid: object) -> bool:
        return uid in self.members

    @property
    def is_singleton(self) -> bool:
        return len(self.members) == 1


class Granularity(enum.Enum):
    """Granularity at which a search strategy enumerates locations."""

    VARIABLE = "variable"
    CLUSTER = "cluster"


class SearchSpace:
    """The set of locations a search algorithm may transform.

    The space knows both granularities and can translate either kind of
    location choice into a concrete per-variable
    :class:`~repro.core.types.PrecisionConfig` for the evaluator.
    """

    def __init__(
        self,
        variables: Sequence[Variable],
        clusters: Sequence[Cluster],
        granularity: Granularity = Granularity.CLUSTER,
        levels: Sequence[PrecisionLike] = (Precision.SINGLE, Precision.DOUBLE),
        width_domains: Mapping[str, Sequence[PrecisionLike]] | None = None,
    ) -> None:
        self._variables = {v.uid: v for v in variables}
        if len(self._variables) != len(variables):
            raise ValueError("duplicate variable uids in search space")
        self._clusters = {c.cid: c for c in clusters}
        covered: set[str] = set()
        for cluster in clusters:
            unknown = cluster.members - self._variables.keys()
            if unknown:
                raise ValueError(f"cluster {cluster.cid} references unknown variables {sorted(unknown)}")
            overlap = cluster.members & covered
            if overlap:
                raise ValueError(f"clusters overlap on {sorted(overlap)}")
            covered |= cluster.members
        uncovered = self._variables.keys() - covered
        if uncovered:
            raise ValueError(f"variables not covered by any cluster: {sorted(uncovered)}")
        self.granularity = granularity
        self.levels = tuple(
            sorted({parse_precision(p) for p in levels}, key=precision_rank)
        )
        if Precision.DOUBLE not in self.levels:
            raise ValueError("the search space must include the default double precision")
        self._cluster_of = {
            uid: cluster.cid for cluster in clusters for uid in cluster.members
        }
        # Optional per-location precision domains (the arbitrary-width
        # extension): a location listed here draws its choices from its
        # own domain instead of the shared ``levels``.  Keys are
        # locations at the *active* granularity.
        self._width_domains: dict[str, tuple[PrecisionLike, ...]] = {}
        if width_domains:
            known = set(self.locations())
            for location, domain in width_domains.items():
                if location not in known:
                    raise ValueError(
                        f"width domain for unknown location {location!r} "
                        f"at {granularity.value} granularity"
                    )
                resolved = tuple(
                    sorted({parse_precision(p) for p in domain}, key=precision_rank)
                )
                if Precision.DOUBLE not in resolved:
                    raise ValueError(
                        f"width domain for {location!r} must include the "
                        "default double precision"
                    )
                self._width_domains[location] = resolved

    # -- introspection ----------------------------------------------------
    @property
    def variables(self) -> tuple[Variable, ...]:
        return tuple(self._variables.values())

    @property
    def clusters(self) -> tuple[Cluster, ...]:
        return tuple(self._clusters.values())

    @property
    def total_variables(self) -> int:
        """TV in the paper's Table II."""
        return len(self._variables)

    @property
    def total_clusters(self) -> int:
        """TC in the paper's Table II."""
        return len(self._clusters)

    def variable(self, uid: str) -> Variable:
        return self._variables[uid]

    def cluster(self, cid: str) -> Cluster:
        return self._clusters[cid]

    def cluster_of(self, uid: str) -> Cluster:
        """The cluster containing variable ``uid``."""
        return self._clusters[self._cluster_of[uid]]

    def locations(self) -> tuple[str, ...]:
        """The location identifiers at the active granularity, in a
        deterministic order."""
        if self.granularity is Granularity.CLUSTER:
            return tuple(sorted(self._clusters))
        return tuple(sorted(self._variables))

    def at(self, granularity: Granularity) -> "SearchSpace":
        """The same space viewed at another granularity."""
        if granularity is self.granularity:
            return self
        if self._width_domains:
            raise ValueError(
                "cannot change granularity with per-location width domains "
                "set; build the domains at the target granularity instead"
            )
        return SearchSpace(
            self.variables, self.clusters, granularity=granularity, levels=self.levels
        )

    def domain(self, location: str) -> tuple[PrecisionLike, ...]:
        """Precision choices available at ``location`` — its width
        domain when one was declared, the shared ``levels`` otherwise."""
        return self._width_domains.get(location, self.levels)

    @property
    def width_domains(self) -> Mapping[str, tuple[PrecisionLike, ...]]:
        return dict(self._width_domains)

    def with_width_domains(
        self, domains: Mapping[str, Sequence[PrecisionLike]]
    ) -> "SearchSpace":
        """This space with per-location precision domains attached."""
        return SearchSpace(
            self.variables,
            self.clusters,
            granularity=self.granularity,
            levels=self.levels,
            width_domains=domains,
        )

    def size(self) -> int:
        """Number of raw configurations: ``p ** loc`` (paper, Section II)
        — or, with per-location width domains, the product of the
        per-location domain sizes."""
        size = 1
        for location in self.locations():
            size *= len(self.domain(location))
        return size

    def restrict(
        self,
        *,
        freeze: Iterable[str] = (),
        merge: Iterable[tuple[str, str]] = (),
    ) -> "SearchSpace":
        """A reduced space: a strict subset of this space's configurations.

        ``freeze`` lists variable uids pinned at the default (double)
        precision; they disappear from the space entirely, so no search
        strategy spends trials on them.  Frozen variables must cover
        whole clusters — freezing part of a cluster would leave the
        remainder unable to lower without splitting the cluster.

        ``merge`` lists variable-uid pairs whose clusters must share a
        precision; their clusters are unified, so cluster-granularity
        searches see one location where they saw several.

        Every configuration expressible in the restricted space is also
        expressible here (frozen variables at double), with identical
        compile/verification behaviour — restriction never *adds*
        configurations, which is what makes pruning sound.
        """
        frozen = set(freeze)
        unknown = frozen - self._variables.keys()
        if unknown:
            raise ValueError(f"cannot freeze unknown variables: {sorted(unknown)}")
        for cluster in self._clusters.values():
            overlap = cluster.members & frozen
            if overlap and overlap != cluster.members:
                raise ValueError(
                    f"freeze must cover whole clusters; {cluster.cid} is "
                    f"only partially frozen ({sorted(overlap)})"
                )

        parent = {cid: cid for cid in self._clusters}

        def find(cid: str) -> str:
            while parent[cid] != cid:
                parent[cid] = parent[parent[cid]]
                cid = parent[cid]
            return cid

        for a, b in merge:
            for uid in (a, b):
                if uid not in self._variables:
                    raise ValueError(f"cannot merge unknown variable: {uid}")
            ra, rb = find(self._cluster_of[a]), find(self._cluster_of[b])
            if ra != rb:
                parent[rb] = ra

        groups: dict[str, set[str]] = {}
        for cid, cluster in self._clusters.items():
            groups.setdefault(find(cid), set()).update(cluster.members)

        for members in groups.values():
            overlap = members & frozen
            if overlap and overlap != members:
                raise ValueError(
                    "freeze must cover whole merged clusters; got a merge "
                    f"group only partially frozen ({sorted(overlap)})"
                )
        if self._width_domains:
            raise ValueError(
                "cannot restrict a space with per-location width domains; "
                "restrict first, then attach domains with with_width_domains()"
            )
        variables = [v for uid, v in self._variables.items() if uid not in frozen]
        clusters = [
            Cluster(min(members), frozenset(members))
            for members in groups.values()
            if not members & frozen
        ]
        return SearchSpace(
            variables, clusters, granularity=self.granularity, levels=self.levels
        )

    # -- configuration construction ---------------------------------------
    def config_from_choices(self, choices: Mapping[str, PrecisionLike]) -> PrecisionConfig:
        """Translate per-location choices into a per-variable config.

        At cluster granularity each choice fans out to every member of
        the cluster; at variable granularity choices apply directly
        (and may therefore produce non-compiling configurations).
        """
        assignments: dict[str, PrecisionLike] = {}
        for location, precision in choices.items():
            if self.granularity is Granularity.CLUSTER:
                try:
                    cluster = self._clusters[location]
                except KeyError:
                    raise KeyError(f"unknown cluster {location!r}") from None
                for uid in cluster.members:
                    assignments[uid] = precision
            else:
                if location not in self._variables:
                    raise KeyError(f"unknown variable {location!r}")
                assignments[location] = precision
        return PrecisionConfig(assignments)

    def uniform_config(self, precision: PrecisionLike | str) -> PrecisionConfig:
        """Every variable at ``precision`` (e.g. the all-single program).

        Accepts a :class:`Precision`, a :class:`CustomFormat`, or any
        name :func:`~repro.core.types.parse_precision` understands
        (``"fp32"``, ``"half"``, ``"e8m10"``, ``"e11m40sr"``).  Unknown
        names raise with the full list of valid built-in and emulated
        format names.
        """
        if not isinstance(precision, (Precision, CustomFormat)):
            precision = parse_precision(precision)
        return PrecisionConfig({uid: precision for uid in self._variables})

    def lower(self, locations: Iterable[str] | str, precision: PrecisionLike = Precision.SINGLE) -> PrecisionConfig:
        """Configuration with ``locations`` (at the active granularity)
        lowered to ``precision`` and everything else at default."""
        if isinstance(locations, str):
            locations = (locations,)
        return self.config_from_choices({loc: precision for loc in locations})

    def is_compilable(self, config: PrecisionConfig) -> bool:
        """True when no cluster is split across precision levels."""
        for cluster in self._clusters.values():
            precisions = {config.precision_of(uid) for uid in cluster.members}
            if len(precisions) > 1:
                return False
        return True

    def violated_clusters(self, config: PrecisionConfig) -> tuple[str, ...]:
        """Clusters whose members disagree on precision under ``config``."""
        bad = []
        for cid, cluster in sorted(self._clusters.items()):
            precisions = {config.precision_of(uid) for uid in cluster.members}
            if len(precisions) > 1:
                bad.append(cid)
        return tuple(bad)

    def lowered_location_set(self, config: PrecisionConfig) -> frozenset[str]:
        """Locations (at active granularity) fully lowered under ``config``."""
        lowered = []
        for location in self.locations():
            members = (
                self._clusters[location].members
                if self.granularity is Granularity.CLUSTER
                else (location,)
            )
            if all(config.precision_of(uid) < Precision.DOUBLE for uid in members):
                lowered.append(location)
        return frozenset(lowered)
