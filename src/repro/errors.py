"""Exception hierarchy for the HPC-MixPBench reproduction.

Every error raised by this package derives from :class:`MixPBenchError` so
that callers can catch the whole family with a single ``except`` clause.
"""

from __future__ import annotations


class MixPBenchError(Exception):
    """Base class for all errors raised by this package."""


class CompileError(MixPBenchError):
    """A precision configuration cannot be compiled.

    Raised (in simulation) when a configuration assigns different
    precisions to members of a single Typeforge cluster.  In the paper's
    C/C++ setting such configurations fail type checking; here the
    evaluator rejects them before running the benchmark, but the attempt
    still counts as an evaluated configuration, mirroring the wasted
    effort the paper attributes to variable-granularity searches.
    """


class VerificationError(MixPBenchError):
    """The verification library could not compare two outputs."""


class StyleError(MixPBenchError):
    """A benchmark module violates the constrained MPB coding style.

    The Typeforge-style static analysis only understands benchmark
    modules written in the documented style (see ``repro.typeforge``).

    Carries an optional source location so CLI diagnostics can point at
    the offending line (``file:line:col: message``); the location is
    prepended to ``str(error)`` when known.
    """

    def __init__(
        self,
        message: str,
        *,
        file: str | None = None,
        line: int | None = None,
        col: int | None = None,
    ) -> None:
        self.message = message
        self.file = file
        self.line = line
        self.col = col
        super().__init__(message)

    @property
    def location(self) -> str | None:
        """``file:line:col`` (or the known prefix of it), if any."""
        parts = [p for p in (self.file, self.line, self.col) if p is not None]
        if not parts:
            return None
        return ":".join(str(p) for p in parts)

    def __str__(self) -> str:
        location = self.location
        if location is None:
            return self.message
        return f"{location}: {self.message}"


class UnknownVariableError(MixPBenchError):
    """A precision configuration references a variable that the program
    does not declare."""


class SearchBudgetExceeded(MixPBenchError):
    """The simulated 24-hour analysis budget (or the evaluation-count
    ceiling) was exhausted before the search converged."""


class HarnessConfigError(MixPBenchError):
    """A YAML harness configuration file is missing required keys or
    contains values of the wrong type."""


class PluginError(MixPBenchError):
    """An analysis plugin failed to load or run."""


class BenchmarkNotFound(MixPBenchError):
    """No benchmark with the requested name is registered."""
