"""Extension experiment — the cluster-aware hierarchical redesign.

The paper's Section V: "the evaluation presented in this paper
provides sufficient motivation to redesign these strategies to take
clustering information into account to reduce the search space."
This experiment performs that redesign's evaluation: the original
variable-level hierarchical search (HR) against the cluster-aware one
(HRC) on every application at the paper's middle and strict
thresholds.

Expected shape: HRC never evaluates a non-compiling configuration, so
its EV drops sharply, and because whole clusters are its leaves it can
reach configurations HR structurally cannot (clusters that span
function boundaries), occasionally winning on speedup too.
"""

from __future__ import annotations

from repro.benchmarks.base import application_benchmarks
from repro.core.results import EvaluationStatus
from repro.experiments.context import ExperimentContext
from repro.harness.reporting import format_speedup, format_table, write_csv

__all__ = ["rows", "render", "run", "HEADERS", "THRESHOLDS"]

HEADERS = (
    "Application", "threshold",
    "EV(HR)", "wasted(HR)", "SU(HR)",
    "EV(HRC)", "wasted(HRC)", "SU(HRC)",
)

THRESHOLDS = (1e-6, 1e-8)


def _cells(ctx: ExperimentContext, program: str, threshold: float) -> list:
    row = []
    for algorithm in ("HR", "HRC"):
        outcome = ctx.outcome(program, algorithm, threshold)
        if outcome is None:
            row.extend(["-", "-", "-"])
            continue
        wasted = sum(
            1 for t in outcome.trials
            if t.status is EvaluationStatus.COMPILE_ERROR
        )
        speedup = (
            format_speedup(outcome.speedup)
            if outcome.found_solution and not outcome.timed_out else "-"
        )
        row.extend([outcome.evaluations, wasted, speedup])
    return row


def rows(ctx: ExperimentContext) -> list[list]:
    cells = [
        (program, algorithm, threshold)
        for threshold in THRESHOLDS
        for program in application_benchmarks()
        for algorithm in ("HR", "HRC")
    ]
    ctx.outcomes(cells)  # bulk-schedule
    out = []
    for threshold in THRESHOLDS:
        for program in application_benchmarks():
            out.append([program, f"{threshold:g}",
                        *_cells(ctx, program, threshold)])
    return out


def render(ctx: ExperimentContext) -> str:
    return format_table(
        HEADERS, rows(ctx),
        "Extension: variable-level HR vs cluster-aware HRC",
    )


def run(ctx: ExperimentContext, results_dir="results") -> str:
    text = render(ctx)
    write_csv(f"{results_dir}/ext_hrc.csv", HEADERS, rows(ctx))
    return text
