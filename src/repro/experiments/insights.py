"""Insights report — the paper's Section V, derived programmatically.

Instead of hand-writing conclusions, this experiment recomputes each of
the paper's stated insights directly from the application search grid
and reports whether the reproduction's data supports it.  The output
is the evidence table behind EXPERIMENTS.md's insights checklist.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass

from repro.benchmarks.base import application_benchmarks
from repro.core.results import EvaluationStatus
from repro.experiments.context import APP_ALGORITHMS, APP_THRESHOLDS, ExperimentContext
from repro.harness.reporting import format_table, write_csv

__all__ = ["Insight", "derive", "render", "run", "HEADERS"]

HEADERS = ("insight", "verdict", "evidence")


@dataclass(frozen=True)
class Insight:
    """One paper claim with the reproduction's verdict and evidence."""

    claim: str
    holds: bool
    evidence: str

    @property
    def verdict(self) -> str:
        return "HOLDS" if self.holds else "DIFFERS"


def _grid(ctx: ExperimentContext):
    ctx.application_grid()
    for program in application_benchmarks():
        for algorithm in APP_ALGORITHMS:
            for threshold in APP_THRESHOLDS:
                yield program, algorithm, threshold, ctx.outcome(
                    program, algorithm, threshold,
                )


def derive(ctx: ExperimentContext) -> list[Insight]:
    """Compute every Section V insight from the search grid."""
    insights = []

    # 1. Only DD and GA solve every cell.
    complete = {algorithm: True for algorithm in APP_ALGORITHMS}
    for _program, algorithm, _threshold, outcome in _grid(ctx):
        if outcome is None or outcome.timed_out or not outcome.found_solution:
            complete[algorithm] = False
    always = sorted(a for a, ok in complete.items() if ok)
    insights.append(Insight(
        "Only DD and GA identify a valid configuration for all "
        "applications and all thresholds",
        always == ["DD", "GA"],
        f"complete algorithms: {always}",
    ))

    # 2. GA's analysis effort is the most predictable (lowest EV spread).
    spreads = {}
    for algorithm in APP_ALGORITHMS:
        evs = [
            outcome.evaluations
            for _p, a, _t, outcome in _grid(ctx)
            if a == algorithm and outcome is not None
        ]
        spreads[algorithm] = statistics.pstdev(evs) if len(evs) > 1 else 0.0
    most_stable = min(spreads, key=spreads.get)
    insights.append(Insight(
        "GA's analysis time is the easiest to predict",
        most_stable == "GA",
        "EV stddev per algorithm: "
        + ", ".join(f"{a}={s:.1f}" for a, s in sorted(spreads.items())),
    ))

    # 3. DD typically provides the most speedup: pairwise against every
    #    other algorithm on the cells both completed, DD's mean speedup
    #    is at least as good (within measurement noise).
    def completed(program, algorithm, threshold):
        outcome = ctx.outcome(program, algorithm, threshold)
        if outcome is None or outcome.timed_out or not outcome.found_solution:
            return None
        return None if math.isnan(outcome.speedup) else outcome.speedup

    pairwise = {}
    for rival in APP_ALGORITHMS:
        if rival == "DD":
            continue
        dd_values, rival_values = [], []
        for program in application_benchmarks():
            for threshold in APP_THRESHOLDS:
                dd_speedup = completed(program, "DD", threshold)
                rival_speedup = completed(program, rival, threshold)
                if dd_speedup is None or rival_speedup is None:
                    continue
                dd_values.append(dd_speedup)
                rival_values.append(rival_speedup)
        pairwise[rival] = (
            statistics.mean(dd_values) - statistics.mean(rival_values)
            if dd_values else 0.0
        )
    dd_at_top = all(margin >= -0.02 for margin in pairwise.values())
    insights.append(Insight(
        "Delta debugging typically results in configurations providing "
        "the most speedup",
        dd_at_top,
        "DD's mean speedup margin on shared cells: "
        + ", ".join(f"vs {a}: {m:+.3f}" for a, m in sorted(pairwise.items())),
    ))

    # 4. DD's effort explodes as the threshold tightens.
    dd_by_threshold = {
        threshold: sum(
            ctx.outcome(program, "DD", threshold).evaluations
            for program in application_benchmarks()
            if ctx.outcome(program, "DD", threshold) is not None
        )
        for threshold in APP_THRESHOLDS
    }
    ordered = [dd_by_threshold[t] for t in sorted(APP_THRESHOLDS, reverse=True)]
    insights.append(Insight(
        "As the quality threshold gets stricter, DD explores many more "
        "configurations",
        ordered == sorted(ordered),
        "total DD evaluations at 1e-3/1e-6/1e-8: "
        + "/".join(str(v) for v in ordered),
    ))

    # 5. Variable-granularity searches waste effort on non-compiling
    #    configurations.
    wasted = {algorithm: 0 for algorithm in APP_ALGORITHMS}
    for _p, algorithm, _t, outcome in _grid(ctx):
        if outcome is None:
            continue
        wasted[algorithm] += sum(
            1 for t in outcome.trials
            if t.status is EvaluationStatus.COMPILE_ERROR
        )
    cluster_algs_clean = all(
        wasted[a] == 0 for a in ("CM", "DD", "GA")
    )
    insights.append(Insight(
        "Searching on variables without cluster information wastes "
        "evaluations on configurations that do not compile",
        cluster_algs_clean and wasted["HR"] + wasted["HC"] > 0,
        "compile-error evaluations: "
        + ", ".join(f"{a}={w}" for a, w in sorted(wasted.items())),
    ))

    # 6. Reducing double-precision variables does not guarantee speedup.
    slowdowns = [
        (program, algorithm, threshold, outcome.speedup)
        for program, algorithm, threshold, outcome in _grid(ctx)
        if outcome is not None and outcome.found_solution
        and not outcome.timed_out
        and not math.isnan(outcome.speedup) and outcome.speedup < 1.0
        and outcome.final.config.lowered_locations()
    ]
    insights.append(Insight(
        "Reducing the number of double-precision variables does not "
        "always improve execution time",
        len(slowdowns) > 0,
        f"{len(slowdowns)} found configurations measure slower than the "
        "original despite lowering variables",
    ))

    # 7. Hierarchical approaches work at relaxed thresholds, struggle
    #    at strict ones.
    hr_relaxed_instant = sum(
        1 for program in application_benchmarks()
        if (o := ctx.outcome(program, "HR", 1e-3)) is not None
        and o.found_solution and o.evaluations <= 2
    )
    hr_strict_effort = sum(
        ctx.outcome(program, "HR", 1e-8).evaluations
        for program in application_benchmarks()
        if ctx.outcome(program, "HR", 1e-8) is not None
    )
    insights.append(Insight(
        "Hierarchical approaches work well for relaxed thresholds but "
        "require many more steps as the threshold tightens",
        hr_relaxed_instant >= 4 and hr_strict_effort > 10 * hr_relaxed_instant,
        f"HR instant conversions at 1e-3: {hr_relaxed_instant}/7; "
        f"total HR evaluations at 1e-8: {hr_strict_effort}",
    ))

    return insights


def rows(ctx: ExperimentContext) -> list[list[str]]:
    return [[i.claim, i.verdict, i.evidence] for i in derive(ctx)]


def render(ctx: ExperimentContext) -> str:
    return format_table(
        HEADERS, rows(ctx),
        "Insights (paper Section V), derived from the search grid",
    )


def run(ctx: ExperimentContext, results_dir="results") -> str:
    text = render(ctx)
    write_csv(f"{results_dir}/insights.csv", HEADERS, rows(ctx))
    return text
