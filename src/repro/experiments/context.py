"""Shared experiment context: runs and caches search outcomes.

Table III, Table V, Figure 2 and Figure 3 all consume the same
(program × algorithm × threshold) search grid.  The context runs each
cell once, keeps it in memory, and persists it as FloatSmith-style
interchange JSON under ``results/searches/`` so repeated experiment
invocations (and the pytest benches) do not redo completed searches.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.benchmarks.base import application_benchmarks, kernel_benchmarks
from repro.core.results import SearchOutcome
from repro.harness.scheduler import JobResult, SearchJob, run_grid
from repro.search.registry import canonical_name, make_strategy

__all__ = [
    "ExperimentContext",
    "KERNEL_THRESHOLD", "APP_THRESHOLDS",
    "KERNEL_ALGORITHMS", "APP_ALGORITHMS",
]

#: the paper's kernel evaluation threshold (Section IV-B.1)
KERNEL_THRESHOLD = 1e-8
#: the paper's application quality bounds (Section IV-B.2)
APP_THRESHOLDS = (1e-3, 1e-6, 1e-8)
#: kernels are small enough for the exhaustive search
KERNEL_ALGORITHMS = ("CB", "CM", "DD", "HR", "HC", "GA")
#: the paper does not run CB on the applications
APP_ALGORITHMS = ("CM", "DD", "HR", "HC", "GA")


class ExperimentContext:
    """Runs search jobs on demand and caches their outcomes."""

    def __init__(
        self,
        results_dir: str | Path = "results",
        workers: int = 1,
        max_evaluations: int | None = None,
        time_limit_seconds: float = 24 * 3600.0,
        use_disk_cache: bool = True,
    ) -> None:
        self.results_dir = Path(results_dir)
        self.workers = workers
        self.max_evaluations = max_evaluations
        self.time_limit_seconds = time_limit_seconds
        self.use_disk_cache = use_disk_cache
        self._memory: dict[tuple[str, str, float], JobResult] = {}

    # -- cache plumbing -----------------------------------------------------
    def _key(self, program: str, algorithm: str, threshold: float):
        return (program, canonical_name(algorithm), float(threshold))

    @staticmethod
    def _strategy_fingerprint(algorithm: str) -> str:
        """Short digest of the strategy's parameters, so cached
        outcomes from an older strategy configuration are ignored
        instead of silently mixed with fresh ones."""
        description = make_strategy(algorithm).describe()
        blob = json.dumps(description, sort_keys=True, default=str).encode()
        return hashlib.sha256(blob).hexdigest()[:8]

    @staticmethod
    def _program_fingerprint(program: str) -> str:
        """Short digest of the benchmark's compute-module sources and
        inputs parameters: editing a benchmark invalidates its cached
        searches instead of silently replaying stale outcomes."""
        import inspect

        from repro.benchmarks.base import get_benchmark

        bench = get_benchmark(program)
        hasher = hashlib.sha256()
        for module in bench.modules():
            hasher.update(inspect.getsource(module).encode())
        hasher.update(repr(sorted(
            (k, str(v)) for k, v in bench.inputs().items()
            if isinstance(v, (int, float, str))
        )).encode())
        return hasher.hexdigest()[:8]

    def _cache_path(self, key) -> Path:
        program, algorithm, threshold = key
        fingerprint = self._strategy_fingerprint(algorithm)
        program_fp = self._program_fingerprint(program)
        return (
            self.results_dir / "searches"
            / f"{program}-{algorithm}-{threshold:g}-{fingerprint}-{program_fp}.json"
        )

    def _load_disk(self, key) -> JobResult | None:
        path = self._cache_path(key)
        if self.use_disk_cache and path.exists():
            outcome = SearchOutcome.load(path)
            job = SearchJob(program=key[0], algorithm=key[1], threshold=key[2])
            return JobResult(job=job, outcome=outcome)
        return None

    def _store(self, key, result: JobResult) -> None:
        self._memory[key] = result
        if self.use_disk_cache and result.ok:
            result.outcome.save(self._cache_path(key))

    # -- public API -----------------------------------------------------------
    def outcome(self, program: str, algorithm: str, threshold: float) -> SearchOutcome | None:
        """The search outcome for one grid cell (None if the job failed)."""
        results = self.outcomes([(program, algorithm, threshold)])
        return results[0].outcome

    def outcomes(self, cells) -> list[JobResult]:
        """Resolve many grid cells, scheduling the missing ones in bulk."""
        keys = [self._key(*cell) for cell in cells]
        missing = []
        for key in keys:
            if key in self._memory:
                continue
            cached = self._load_disk(key)
            if cached is not None:
                self._memory[key] = cached
            else:
                missing.append(key)
        if missing:
            jobs = [
                SearchJob(
                    program=program, algorithm=algorithm, threshold=threshold,
                    time_limit_seconds=self.time_limit_seconds,
                    max_evaluations=self.max_evaluations,
                )
                for (program, algorithm, threshold) in missing
            ]
            for key, result in zip(missing, run_grid(jobs, workers=self.workers)):
                self._store(key, result)
        return [self._memory[key] for key in keys]

    # -- canonical grids --------------------------------------------------------
    def kernel_grid(self) -> list[JobResult]:
        """Table III: every kernel × every algorithm at 1e-8."""
        cells = [
            (program, algorithm, KERNEL_THRESHOLD)
            for program in kernel_benchmarks()
            for algorithm in KERNEL_ALGORITHMS
        ]
        return self.outcomes(cells)

    def application_grid(self) -> list[JobResult]:
        """Table V: every application × 5 algorithms × 3 thresholds."""
        cells = [
            (program, algorithm, threshold)
            for threshold in APP_THRESHOLDS
            for program in application_benchmarks()
            for algorithm in APP_ALGORITHMS
        ]
        return self.outcomes(cells)
