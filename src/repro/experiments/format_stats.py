"""Emulated-format footprint statistics — ``--strategy BW`` vs the
best built-in-dtype configuration.

For a fixed set of programs this experiment runs two searches through
the ordinary :class:`~repro.core.evaluator.ConfigurationEvaluator`:

* a standard search over the built-in ``{fp16, fp32, fp64}`` levels
  (delta debugging, the suite's workhorse strategy), and
* the bit-width bisection strategy (``BW``) over the emulated
  ``e8m{2..23}`` width ladder (see docs/precision-formats.md), which
  binary-searches the minimal passing mantissa width per cluster.

Both final configurations are then re-executed and verified against
the same threshold, and the table compares their *modeled* peak
footprints — emulated formats store ``1 + 8 + m`` bits per element in
the machine model, so a cluster that bisection settles at ``e8m7`` or
below is strictly cheaper than fp16.  ``smaller`` records whether the
BW configuration beat the best standard configuration's footprint at
equal verified quality (both passing the same threshold).
"""

from __future__ import annotations

from repro.benchmarks.base import get_benchmark
from repro.core.evaluator import ConfigurationEvaluator
from repro.core.types import PrecisionConfig
from repro.harness.reporting import format_quality, format_table, write_csv
from repro.search.registry import make_strategy

__all__ = ["rows", "render", "run", "HEADERS", "PROGRAMS", "STANDARD_ALGORITHM"]

HEADERS = (
    "Program", "EV(std)", "EV(BW)", "KiB(std)", "KiB(BW)", "saved",
    "err(std)", "err(BW)", "passed", "smaller",
)

#: the standard-levels baseline each BW result is compared against
STANDARD_ALGORITHM = "DD"

#: representative programs: two analytic kernels, one solver, one
#: clustering app, one stencil — the same five the formats golden
#: suite pins search-space sizes and trial counts for
PROGRAMS = ("eos", "planckian", "blackscholes", "kmeans", "hpccg")


def _footprint(bench, config) -> int:
    """Modeled peak footprint of one verified re-execution."""
    return int(bench.execute(config).profile.peak_footprint)


def _verified_error(bench, config) -> float:
    baseline = bench.execute(PrecisionConfig())
    tuned = bench.execute(config)
    return bench.quality.measure(baseline.output, tuned.output)


def rows() -> list[list]:
    out = []
    for program in PROGRAMS:
        bench = get_benchmark(program)
        std = make_strategy(STANDARD_ALGORITHM).run(ConfigurationEvaluator(bench))
        bw = make_strategy("BW").run(ConfigurationEvaluator(bench))
        std_config = std.final.config if std.found_solution else PrecisionConfig()
        bw_config = bw.final.config if bw.found_solution else PrecisionConfig()
        std_bytes = _footprint(bench, std_config)
        bw_bytes = _footprint(bench, bw_config)
        std_err = _verified_error(bench, std_config)
        bw_err = _verified_error(bench, bw_config)
        threshold = bench.default_threshold
        passed = std_err <= threshold and bw_err <= threshold
        smaller = passed and bw_bytes < std_bytes
        saved = 1.0 - (bw_bytes / std_bytes) if std_bytes else 0.0
        out.append([
            program,
            std.evaluations, bw.evaluations,
            f"{std_bytes / 1024:.1f}", f"{bw_bytes / 1024:.1f}",
            f"{saved:.1%}",
            format_quality(std_err), format_quality(bw_err),
            "yes" if passed else "no",
            "yes" if smaller else "no",
        ])
    return out


def _render(table: list[list]) -> str:
    return format_table(
        HEADERS, table,
        "Emulated formats: BW bisection vs best {fp16,fp32,fp64} config",
    )


def render() -> str:
    return _render(rows())


def run(results_dir="results") -> str:
    table = rows()  # the searches run once; text and CSV share them
    write_csv(f"{results_dir}/format_stats.csv", HEADERS, table)
    return _render(table)
