"""Figure 2 — DD vs GA across applications and thresholds.

* Fig. 2a: application complexity (total clusters, x-axis) against the
  number of tested configurations (y-axis).  The paper's finding: DD's
  evaluations grow with cluster count and threshold strictness, GA
  stays flat.
* Fig. 2b: application complexity against the obtained speedup.  The
  paper's finding: DD's extra effort rarely buys more speed.

Figures are emitted as data series (CSV + text), one point per
(application, threshold).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchmarks.base import application_benchmarks, get_benchmark
from repro.experiments.context import APP_THRESHOLDS, ExperimentContext
from repro.harness.reporting import format_speedup, format_table, write_csv

__all__ = ["FigurePoint", "points", "render", "run", "HEADERS"]

HEADERS = ("application", "threshold", "clusters", "algorithm", "evaluations", "speedup")

_ALGORITHMS = ("DD", "GA")


@dataclass(frozen=True)
class FigurePoint:
    """One marker of the scatter plots."""

    application: str
    threshold: float
    clusters: int
    algorithm: str
    evaluations: int
    speedup: float


def points(ctx: ExperimentContext) -> list[FigurePoint]:
    ctx.application_grid()
    out = []
    for program in application_benchmarks():
        clusters = get_benchmark(program).report().total_clusters
        for threshold in APP_THRESHOLDS:
            for algorithm in _ALGORITHMS:
                outcome = ctx.outcome(program, algorithm, threshold)
                if outcome is None:
                    continue
                out.append(FigurePoint(
                    application=program,
                    threshold=threshold,
                    clusters=clusters,
                    algorithm=algorithm,
                    evaluations=outcome.evaluations,
                    speedup=outcome.speedup,
                ))
    return out


def rows(ctx: ExperimentContext) -> list[list]:
    return [
        [p.application, f"{p.threshold:g}", p.clusters, p.algorithm,
         p.evaluations, format_speedup(p.speedup)]
        for p in points(ctx)
    ]


def render(ctx: ExperimentContext) -> str:
    return format_table(
        HEADERS, rows(ctx),
        "Figure 2 data: clusters vs evaluations (2a) and vs speedup (2b), DD vs GA",
    )


def run(ctx: ExperimentContext, results_dir="results") -> str:
    text = render(ctx)
    write_csv(f"{results_dir}/fig2.csv", HEADERS, rows(ctx))
    return text
