"""Static-pruning statistics — Table II before/after ``--prune``.

Extends the paper's Table II with what the precision dataflow analyzer
(:mod:`repro.typeforge.dataflow` + :mod:`repro.typeforge.prune`) can
establish statically: how many variables/clusters survive pruning, how
many were frozen as output-irrelevant, and how many cluster merges the
must-equal constraints produced.  The TV/TC columns are byte-identical
to Table II — pruning is a separate, opt-in view, never a change to the
reproduced numbers.
"""

from __future__ import annotations

from repro.benchmarks.base import (
    application_benchmarks, get_benchmark, kernel_benchmarks,
)
from repro.harness.reporting import format_table, write_csv
from repro.typeforge.prune import prune_report

__all__ = ["rows", "render", "run"]

HEADERS = (
    "Name", "Category", "TV", "TC", "TV'", "TC'",
    "Locations", "Locations'", "Frozen", "Merged",
)


def rows() -> list[list]:
    out = []
    for category, names in (
        ("kernel", kernel_benchmarks()),
        ("application", application_benchmarks()),
    ):
        for name in names:
            report = get_benchmark(name).report()
            stats = prune_report(report).stats(report.search_space())
            out.append([
                name, category,
                stats["tv_before"], stats["tc_before"],
                stats["tv_after"], stats["tc_after"],
                stats["locations_before"], stats["locations_after"],
                len(stats["frozen"]), len(stats["merged"]),
            ])
    return out


def render() -> str:
    return format_table(
        HEADERS, rows(),
        "Static pruning: Table II search spaces before/after --prune",
    )


def run(results_dir="results") -> str:
    text = render()
    write_csv(f"{results_dir}/prune_stats.csv", HEADERS, rows())
    return text
