"""Table III — evaluation results of the kernel codes.

For every kernel and all six search algorithms at the strict 1e-8
threshold, reports the paper's three metrics: Quality (in 1e-9 units,
like the paper's column header), Evaluated Configurations (EV) and
Speedup (SU).
"""

from __future__ import annotations

import math

from repro.benchmarks.base import kernel_benchmarks
from repro.experiments.context import KERNEL_ALGORITHMS, KERNEL_THRESHOLD, ExperimentContext
from repro.harness.reporting import format_speedup, format_table, write_csv

__all__ = ["rows", "render", "run", "HEADERS"]

HEADERS = (
    "Application",
    *(f"Q({a})" for a in KERNEL_ALGORITHMS),
    *(f"EV({a})" for a in KERNEL_ALGORITHMS),
    *(f"SU({a})" for a in KERNEL_ALGORITHMS),
)


def _quality_nano(value: float) -> str:
    """Quality in the paper's 1e-9 units."""
    if value is None or math.isnan(value):
        return "-"
    if value == 0:
        return "0.0"
    return f"{value / 1e-9:.2f}"


def rows(ctx: ExperimentContext) -> list[list[str]]:
    ctx.kernel_grid()  # bulk-schedule everything first
    out = []
    for program in kernel_benchmarks():
        quality, evaluated, speedup = [], [], []
        for algorithm in KERNEL_ALGORITHMS:
            outcome = ctx.outcome(program, algorithm, KERNEL_THRESHOLD)
            if outcome is None or outcome.timed_out:
                quality.append("-")
                evaluated.append("-" if outcome is None else str(outcome.evaluations))
                speedup.append("-")
                continue
            quality.append(_quality_nano(outcome.error_value))
            evaluated.append(str(outcome.evaluations))
            speedup.append(format_speedup(outcome.speedup))
        out.append([program, *quality, *evaluated, *speedup])
    return out


def render(ctx: ExperimentContext) -> str:
    return format_table(
        HEADERS, rows(ctx),
        "Table III: kernel evaluation (quality in 1e-9 units, threshold 1e-8)",
    )


def run(ctx: ExperimentContext, results_dir="results") -> str:
    text = render(ctx)
    write_csv(f"{results_dir}/table3.csv", HEADERS, rows(ctx))
    return text
