"""Extension experiment — machine-model sensitivity.

The paper's numbers come from one Xeon; its insights are implicitly
claims about *that* machine.  Because our performance substrate is a
parametric model, we can ask which conclusions survive a hardware
change: the all-single conversion of every application is re-timed on
three modeled machines (the calibrated Xeon, a wider-vector CPU, and
an HBM accelerator with vectorised transcendentals).

Measured shape: LavaMD's headline speedup is a *cache* effect — on the
HBM machine, whose bandwidth dwarfs the working sets, it collapses
from 3.7x to 1.4x; every small-footprint program becomes launch-
overhead-bound there (the accelerator's 5 µs per-kernel cost is
dtype-blind), so Blackscholes gains nothing even though the HBM
machine's transcendentals *do* vectorise.  The paper's per-machine
caveat, quantified.
"""

from __future__ import annotations

from repro.benchmarks.base import application_benchmarks, get_benchmark
from repro.core.types import Precision, PrecisionConfig
from repro.harness.reporting import format_table, write_csv
from repro.runtime.machine import MACHINE_PRESETS

__all__ = ["rows", "render", "run", "HEADERS"]

HEADERS = ("Application", *(f"SU({name})" for name in MACHINE_PRESETS))


def rows() -> list[list[str]]:
    out = []
    for program in application_benchmarks():
        row = [program]
        for machine in MACHINE_PRESETS.values():
            bench = get_benchmark(program, machine=machine)
            baseline = bench.execute(PrecisionConfig())
            single = bench.execute_manual(Precision.SINGLE)
            row.append(f"{baseline.modeled_seconds / single.modeled_seconds:.2f}")
        out.append(row)
    return out


def render() -> str:
    return format_table(
        HEADERS, rows(),
        "Extension: all-single conversion speedup across modeled machines",
    )


def run(results_dir="results") -> str:
    text = render()
    write_csv(f"{results_dir}/ext_machines.csv", HEADERS, rows())
    return text
