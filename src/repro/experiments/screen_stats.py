"""Certified-screening statistics — unscreened vs ``--screen``.

For a fixed set of (program, algorithm) pairs this experiment runs the
same search twice through the ordinary
:class:`~repro.core.evaluator.ConfigurationEvaluator`: once plain
(byte-identical to the paper-reproduction runs) and once with the
static error-bound certificate
(:func:`repro.typeforge.errorbound.certify_benchmark`) attached as a
screening filter.  The table reports evaluation counts and best
verified errors side by side; ``skipped`` is how many configurations
the certificate rejected without running.  Screening is sound by
construction — it only skips configurations whose certified error
*lower bound* already violates the threshold, never accepts one — so
the ``equal`` column must read ``yes`` on every row.
"""

from __future__ import annotations

import math

from repro.benchmarks.base import get_benchmark
from repro.core.evaluator import ConfigurationEvaluator
from repro.harness.reporting import format_quality, format_table, write_csv
from repro.search.registry import make_strategy
from repro.typeforge.errorbound import certify_benchmark

__all__ = ["rows", "render", "run", "HEADERS", "PAIRS"]

HEADERS = (
    "Program", "Algorithm", "EV", "EV(screen)", "saved", "skipped",
    "err", "err(screen)", "equal",
)

#: the comparison matrix: the bit-width bisection (where the
#: certificate both screens doomed widths and seeds the bisection
#: ladder) plus the hierarchical and delta-debugging searches at their
#: default fp32-target thresholds (where screening stays quiet — the
#: rows double as a no-regression check)
PAIRS = (
    ("hpccg", "BW"),
    ("kmeans", "BW"),
    ("blackscholes", "BW"),
    ("lavamd", "BW"),
    ("hpccg", "HR"),
    ("blackscholes", "HR"),
    ("lavamd", "DD"),
)


def _search(program: str, algorithm: str, screened: bool):
    bench = get_benchmark(program)
    screen = None
    screen_info = None
    if screened:
        _, screen = certify_benchmark(bench)
        screen_info = screen.info()
    evaluator = ConfigurationEvaluator(
        bench, screen=screen, screen_info=screen_info,
    )
    outcome = make_strategy(algorithm).run(evaluator)
    return outcome, evaluator.stats.screened


def rows() -> list[list]:
    out = []
    for program, algorithm in PAIRS:
        plain, _ = _search(program, algorithm, screened=False)
        screened, skipped = _search(program, algorithm, screened=True)
        err = plain.error_value
        err_screen = screened.error_value
        equal = (err == err_screen) or (math.isnan(err) and math.isnan(err_screen))
        out.append([
            program, algorithm,
            plain.evaluations, screened.evaluations,
            plain.evaluations - screened.evaluations, skipped,
            format_quality(err), format_quality(err_screen),
            "yes" if equal else "no",
        ])
    return out


def _render(table: list[list]) -> str:
    return format_table(
        HEADERS, table,
        "Certified screening: evaluations plain vs --screen",
    )


def render() -> str:
    return _render(rows())


def run(results_dir="results") -> str:
    table = rows()  # the searches run once; text and CSV share them
    write_csv(f"{results_dir}/screen_stats.csv", HEADERS, table)
    return _render(table)
