"""Table II — Total Variables (TV) and Total Clusters (TC) per program.

Regenerates the paper's Typeforge complexity table by running the
type-dependence analysis over every benchmark in the suite.
"""

from __future__ import annotations

from repro.benchmarks.base import (
    application_benchmarks, get_benchmark, kernel_benchmarks,
)
from repro.harness.reporting import format_table, write_csv

__all__ = ["rows", "render", "run", "PAPER_VALUES"]

HEADERS = ("Name", "Category", "TV", "TC")

#: the paper's Table II, for side-by-side comparison in EXPERIMENTS.md
PAPER_VALUES = {
    "banded-lin-eq": (2, 1), "diff-predictor": (5, 1), "eos": (7, 2),
    "gen-lin-recur": (4, 1), "hydro-1d": (6, 2), "iccg": (2, 1),
    "innerprod": (3, 2), "int-predict": (9, 2), "planckian": (6, 2),
    "tridiag": (3, 1),
    "blackscholes": (59, 50), "cfd": (195, 25), "hotspot": (36, 22),
    "hpccg": (54, 27), "kmeans": (26, 15), "lavamd": (47, 11),
    "srad": (29, 14),
}


def rows() -> list[list]:
    out = []
    for name in kernel_benchmarks():
        report = get_benchmark(name).report()
        out.append([name, "kernel", report.total_variables, report.total_clusters])
    for name in application_benchmarks():
        report = get_benchmark(name).report()
        out.append([name, "application", report.total_variables, report.total_clusters])
    return out


def render() -> str:
    return format_table(
        HEADERS, rows(),
        "Table II: variables (TV) and clusters (TC) identified by Typeforge",
    )


def run(results_dir="results") -> str:
    text = render()
    write_csv(f"{results_dir}/table2.csv", HEADERS, rows())
    return text
