"""Extension experiment — half-precision as the target level.

The paper scopes its evaluation to two levels ("we also currently
focus on two precision levels: double and single") while noting that
the search machinery is generic over ``p`` levels and that
accelerators increasingly provide fp16.  This experiment exercises
that third level three ways: delta debugging lowering to single, to
half, and the progressive precision ladder (double → single → half,
``repro.search.ladder``), all at a threshold loose enough for half
precision to be plausible (1e-3).

Expected shape: half roughly doubles the modeled arithmetic rate again
for cheap-op kernels, but its 1e-3-epsilon arithmetic and 65504 range
disqualify kernels with long accumulations or large magnitudes — the
search then converts less (or nothing), so fp16's extra throughput is
only realisable for short, well-scaled computations.
"""

from __future__ import annotations

from repro.benchmarks.base import get_benchmark, kernel_benchmarks
from repro.core.evaluator import ConfigurationEvaluator
from repro.core.types import Precision
from repro.harness.reporting import (
    format_quality, format_speedup, format_table, write_csv,
)
from repro.search.delta_debug import DeltaDebugSearch
from repro.search.ladder import PrecisionLadderSearch
from repro.verify.quality import QualitySpec

__all__ = ["rows", "render", "run", "HEADERS", "THRESHOLD"]

HEADERS = (
    "Kernel",
    "SU(single)", "AC(single)", "lowered(single)",
    "SU(half)", "AC(half)", "lowered(half)",
    "SU(ladder)", "AC(ladder)", "levels(ladder)",
)

#: loose bound: half precision's epsilon is ~9.8e-4
THRESHOLD = 1e-3


def _tune(program: str, target: Precision) -> tuple[str, str, int]:
    bench = get_benchmark(program)
    evaluator = ConfigurationEvaluator(
        bench, quality=QualitySpec(bench.metric, THRESHOLD),
    )
    strategy = DeltaDebugSearch()
    strategy.target_precision = target
    outcome = strategy.run(evaluator)
    if not outcome.found_solution:
        return "-", "-", 0
    return (
        format_speedup(outcome.speedup),
        format_quality(outcome.error_value),
        len(outcome.final.config.lowered_locations()),
    )


def _tune_ladder(program: str) -> tuple[str, str, str]:
    bench = get_benchmark(program)
    evaluator = ConfigurationEvaluator(
        bench, quality=QualitySpec(bench.metric, THRESHOLD),
    )
    outcome = PrecisionLadderSearch().run(evaluator)
    if not outcome.found_solution:
        return "-", "-", "-"
    levels = "+".join(sorted(
        {p.value for p in outcome.final.config.values()},
        key=lambda v: Precision.from_name(v).bits,
    )) or "double"
    return (
        format_speedup(outcome.speedup),
        format_quality(outcome.error_value),
        levels,
    )


def rows() -> list[list[str]]:
    out = []
    for program in kernel_benchmarks():
        single = _tune(program, Precision.SINGLE)
        half = _tune(program, Precision.HALF)
        ladder = _tune_ladder(program)
        out.append([program, single[0], single[1], single[2],
                    half[0], half[1], half[2],
                    ladder[0], ladder[1], ladder[2]])
    return out


def render() -> str:
    return format_table(
        HEADERS, rows(),
        f"Extension: DD targeting single vs half precision (threshold {THRESHOLD:g})",
    )


def run(results_dir="results") -> str:
    text = render()
    write_csv(f"{results_dir}/ext_half.csv", HEADERS, rows())
    return text
