"""Paper-vs-measured comparison report.

Joins the transcribed published numbers (:mod:`paper_data`) with the
reproduction's measurements and reports, per artifact, whether the
*shape* holds — the reproduction's acceptance criterion ("who wins, by
roughly what factor, where crossovers fall"), since absolute numbers
come from different machines (a Xeon vs our roofline model).

Checks performed:

* Table II — kernel TV/TC equality; application clustering-strength
  ordering (Blackscholes weakest, CFD strongest).
* Table III — per-kernel DD speedup within a factor band of the
  paper's; zero-quality rows match.
* Table IV — speedup rank agreement across the applications
  (Spearman), plus the categorical rows (SRAD NaN, K-means 0).
"""

from __future__ import annotations

import math

from repro.benchmarks.base import (
    application_benchmarks, get_benchmark, kernel_benchmarks,
)
from repro.core.evaluator import measured_seconds
from repro.core.types import Precision, PrecisionConfig
from repro.experiments import paper_data
from repro.experiments.context import KERNEL_THRESHOLD, ExperimentContext
from repro.harness.reporting import format_table, write_csv
from repro.verify.metrics import get_metric

__all__ = ["rows", "render", "run", "spearman", "HEADERS"]

HEADERS = ("artifact", "check", "paper", "measured", "verdict")


def spearman(xs: list[float], ys: list[float]) -> float:
    """Spearman rank correlation (no scipy dependency needed)."""
    def ranks(values):
        order = sorted(range(len(values)), key=lambda i: values[i])
        out = [0.0] * len(values)
        for rank, index in enumerate(order):
            out[index] = float(rank)
        return out

    rx, ry = ranks(xs), ranks(ys)
    n = len(xs)
    if n < 2:
        return 1.0
    mean = (n - 1) / 2.0
    cov = sum((a - mean) * (b - mean) for a, b in zip(rx, ry))
    var = sum((a - mean) ** 2 for a in rx)
    return cov / var if var else 1.0


def _measured_table4() -> dict[str, tuple[float, float]]:
    out = {}
    for name in application_benchmarks():
        bench = get_benchmark(name)
        baseline = bench.execute(PrecisionConfig())
        single = bench.execute_manual(Precision.SINGLE)
        loss = get_metric(bench.metric)(baseline.output, single.output)
        base_t = measured_seconds(
            baseline.modeled_seconds, "baseline:" + PrecisionConfig().digest(),
            bench.runs_per_config,
        )
        config = bench.search_space().uniform_config(Precision.SINGLE)
        single_t = measured_seconds(
            single.modeled_seconds, "manual:" + config.digest(),
            bench.runs_per_config,
        )
        out[name] = (base_t / single_t, loss)
    return out


def rows(ctx: ExperimentContext) -> list[list[str]]:
    out: list[list[str]] = []

    # -- Table II ---------------------------------------------------------
    kernel_exact = True
    for name in kernel_benchmarks():
        report = get_benchmark(name).report()
        measured = (report.total_variables, report.total_clusters)
        if measured != paper_data.TABLE2[name]:
            kernel_exact = False
    out.append([
        "Table II", "kernel TV/TC match the paper exactly",
        "10/10 rows", "10/10 rows" if kernel_exact else "mismatch",
        "PASS" if kernel_exact else "FAIL",
    ])

    ratios = {}
    for name in application_benchmarks():
        report = get_benchmark(name).report()
        ratios[name] = report.total_clusters / report.total_variables
    paper_ratios = {
        name: tc / tv
        for name, (tv, tc) in paper_data.TABLE2.items()
        if name in ratios
    }
    ordering_holds = (
        max(ratios, key=ratios.get) == max(paper_ratios, key=paper_ratios.get)
        and min(ratios, key=ratios.get) == min(paper_ratios, key=paper_ratios.get)
    )
    out.append([
        "Table II", "weakest/strongest clustering apps",
        f"{max(paper_ratios, key=paper_ratios.get)}/"
        f"{min(paper_ratios, key=paper_ratios.get)}",
        f"{max(ratios, key=ratios.get)}/{min(ratios, key=ratios.get)}",
        "PASS" if ordering_holds else "FAIL",
    ])

    # -- Table III --------------------------------------------------------
    ctx.kernel_grid()
    within_band = 0
    total = 0
    zero_rows_match = True
    for name in kernel_benchmarks():
        outcome = ctx.outcome(name, "DD", KERNEL_THRESHOLD)
        paper_su = paper_data.TABLE3_SU[name][2]
        if paper_su is None or outcome is None:
            continue
        total += 1
        if outcome.speedup <= paper_su * 1.6 + 0.2 and \
                outcome.speedup >= paper_su / 1.6 - 0.2:
            within_band += 1
        paper_zero = paper_data.TABLE3_QUALITY[name][2] == 0.0
        measured_zero = outcome.error_value == 0.0
        if paper_zero != measured_zero:
            zero_rows_match = False
    out.append([
        "Table III", "DD speedups within a 1.6x band of the paper",
        f"{total} kernels", f"{within_band}/{total} within band",
        "PASS" if within_band >= total - 1 else "FAIL",
    ])
    out.append([
        "Table III", "zero-error kernels coincide",
        "5 exact rows", "match" if zero_rows_match else "mismatch",
        "PASS" if zero_rows_match else "FAIL",
    ])

    # -- Table IV ---------------------------------------------------------
    measured4 = _measured_table4()
    names = sorted(measured4)
    rho = spearman(
        [paper_data.TABLE4[name][0] for name in names],
        [measured4[name][0] for name in names],
    )
    out.append([
        "Table IV", "application speedup rank agreement (Spearman)",
        "1.00", f"{rho:.2f}", "PASS" if rho >= 0.6 else "FAIL",
    ])
    srad_nan = math.isnan(measured4["srad"][1]) and \
        math.isnan(paper_data.TABLE4["srad"][2])
    out.append([
        "Table IV", "SRAD single-precision output destroyed",
        "NaN", "NaN" if srad_nan else f"{measured4['srad'][1]:.1e}",
        "PASS" if srad_nan else "FAIL",
    ])
    kmeans_zero = measured4["kmeans"][1] == 0.0
    out.append([
        "Table IV", "K-means misclassification rate",
        "0", "0" if kmeans_zero else f"{measured4['kmeans'][1]:.2e}",
        "PASS" if kmeans_zero else "FAIL",
    ])
    lavamd_top = max(measured4, key=lambda n: measured4[n][0]) == "lavamd"
    out.append([
        "Table IV", "LavaMD has the largest conversion speedup",
        "2.66 (max)", f"{measured4['lavamd'][0]:.2f} "
        f"({'max' if lavamd_top else 'not max'})",
        "PASS" if lavamd_top else "FAIL",
    ])
    return out


def render(ctx: ExperimentContext) -> str:
    return format_table(
        HEADERS, rows(ctx), "Paper-vs-measured shape comparison",
    )


def run(ctx: ExperimentContext, results_dir="results") -> str:
    text = render(ctx)
    write_csv(f"{results_dir}/compare.csv", HEADERS, rows(ctx))
    return text
