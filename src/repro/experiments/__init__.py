"""Experiments: regenerate every table and figure of the paper.

========  =====================================================
Artifact  Content
========  =====================================================
table1    kernel inventory (paper Table I)
table2    TV/TC Typeforge complexity (paper Table II)
table3    kernel evaluation, 6 algorithms @ 1e-8 (paper Table III)
table4    manual all-single conversion (paper Table IV)
table5    application evaluation @ 1e-3/1e-6/1e-8 (paper Table V)
fig2      DD vs GA: clusters vs EV / speedup (paper Fig. 2a+2b)
fig3      speedup vs tested configurations (paper Fig. 3)
========  =====================================================
"""

from repro.experiments.context import (
    APP_ALGORITHMS,
    APP_THRESHOLDS,
    KERNEL_ALGORITHMS,
    KERNEL_THRESHOLD,
    ExperimentContext,
)

__all__ = [
    "ExperimentContext",
    "KERNEL_THRESHOLD", "APP_THRESHOLDS",
    "KERNEL_ALGORITHMS", "APP_ALGORITHMS",
]
