"""Shadow-guided search statistics — unguided vs ``--order shadow``.

For a fixed set of (program, algorithm) pairs this experiment runs the
same search twice through the ordinary
:class:`~repro.core.evaluator.ConfigurationEvaluator`: once unguided
(byte-identical to the paper-reproduction runs) and once with the
location ordering of a single shadow-sensitivity run
(:func:`repro.shadow.report.shadow_guidance`) attached.  The table
reports the evaluation counts and best verified errors side by side;
``saved`` is the number of evaluations the one extra instrumented run
bought.  The guided search never accepts a configuration the evaluator
did not verify — guidance only reorders what gets tried first.
"""

from __future__ import annotations

import math

from repro.benchmarks.base import get_benchmark
from repro.core.evaluator import ConfigurationEvaluator
from repro.harness.reporting import format_quality, format_table, write_csv
from repro.search.registry import make_strategy
from repro.shadow import shadow_guidance

__all__ = ["rows", "render", "run", "HEADERS", "PAIRS"]

HEADERS = (
    "Program", "Algorithm", "EV", "EV(shadow)", "saved",
    "err", "err(shadow)", "equal",
)

#: the comparison matrix: delta-debugging where sensitive-first
#: ordering shortens the ddmin shrink, the hierarchical searches
#: (variable-level HR and cluster-aware HRC) whose sibling order the
#: shadow scores rearrange
PAIRS = (
    ("eos", "DD"),
    ("planckian", "DD"),
    ("hpccg", "HR"),
    ("lavamd", "HR"),
    ("blackscholes", "HR"),
    ("hpccg", "HRC"),
    ("blackscholes", "HRC"),
)


def _search(program: str, algorithm: str, guided: bool):
    bench = get_benchmark(program)
    location_order = None
    shadow_info = None
    if guided:
        location_order, shadow_info = shadow_guidance(bench)
    evaluator = ConfigurationEvaluator(
        bench, location_order=location_order, shadow_info=shadow_info,
    )
    return make_strategy(algorithm).run(evaluator)


def rows() -> list[list]:
    out = []
    for program, algorithm in PAIRS:
        unguided = _search(program, algorithm, guided=False)
        guided = _search(program, algorithm, guided=True)
        err = unguided.error_value
        err_shadow = guided.error_value
        equal = (err == err_shadow) or (math.isnan(err) and math.isnan(err_shadow))
        out.append([
            program, algorithm,
            unguided.evaluations, guided.evaluations,
            unguided.evaluations - guided.evaluations,
            format_quality(err), format_quality(err_shadow),
            "yes" if equal else "no",
        ])
    return out


def _render(table: list[list]) -> str:
    return format_table(
        HEADERS, table,
        "Shadow guidance: evaluations unguided vs --order shadow",
    )


def render() -> str:
    return _render(rows())


def run(results_dir="results") -> str:
    table = rows()  # the searches run once; text and CSV share them
    write_csv(f"{results_dir}/shadow_stats.csv", HEADERS, table)
    return _render(table)
