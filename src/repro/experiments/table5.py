"""Table V — application evaluation at thresholds 1e-3 / 1e-6 / 1e-8.

One sub-table per threshold with the paper's columns: Speedup,
Evaluated Configs and Quality for CM, DD, HR, HC and GA.  Cells render
as ``-`` when the algorithm produced no result within the simulated
24-hour budget (the paper's empty gray boxes).
"""

from __future__ import annotations

from repro.benchmarks.base import application_benchmarks
from repro.experiments.context import APP_ALGORITHMS, APP_THRESHOLDS, ExperimentContext
from repro.harness.reporting import (
    format_quality, format_speedup, format_table, write_csv,
)

__all__ = ["rows_for_threshold", "render", "run", "HEADERS"]

HEADERS = (
    "Application",
    *(f"SU({a})" for a in APP_ALGORITHMS),
    *(f"EV({a})" for a in APP_ALGORITHMS),
    *(f"Q({a})" for a in APP_ALGORITHMS),
)


def rows_for_threshold(ctx: ExperimentContext, threshold: float) -> list[list[str]]:
    ctx.application_grid()  # bulk-schedule the full grid first
    out = []
    for program in application_benchmarks():
        speedup, evaluated, quality = [], [], []
        for algorithm in APP_ALGORITHMS:
            outcome = ctx.outcome(program, algorithm, threshold)
            if outcome is None or outcome.timed_out or not outcome.found_solution:
                # the paper's gray cell: no result within 24 hours (or
                # the search converged to nothing convertible)
                timed_out = outcome is not None and outcome.timed_out
                speedup.append("-")
                evaluated.append("-" if timed_out or outcome is None
                                 else str(outcome.evaluations))
                quality.append("-")
                continue
            speedup.append(format_speedup(outcome.speedup))
            evaluated.append(str(outcome.evaluations))
            quality.append(format_quality(outcome.error_value))
        out.append([program, *speedup, *evaluated, *quality])
    return out


def render(ctx: ExperimentContext) -> str:
    parts = []
    for threshold in APP_THRESHOLDS:
        parts.append(format_table(
            HEADERS, rows_for_threshold(ctx, threshold),
            f"Table V (threshold {threshold:g}): application evaluation",
        ))
    return "\n\n".join(parts)


def run(ctx: ExperimentContext, results_dir="results") -> str:
    text = render(ctx)
    for threshold in APP_THRESHOLDS:
        write_csv(
            f"{results_dir}/table5-{threshold:g}.csv",
            HEADERS, rows_for_threshold(ctx, threshold),
        )
    return text
