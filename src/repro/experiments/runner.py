"""Experiment runner: the ``mixpbench-experiments`` entry point.

Regenerates the paper's evaluation artifacts::

    mixpbench-experiments table1            # kernel inventory
    mixpbench-experiments table2            # TV/TC per program
    mixpbench-experiments table3            # kernel search evaluation
    mixpbench-experiments table4            # manual all-single conversion
    mixpbench-experiments table5            # app searches at 3 thresholds
    mixpbench-experiments fig2 fig3         # figure data series
    mixpbench-experiments prune-stats       # Table II before/after --prune
    mixpbench-experiments shadow-stats      # unguided vs --order shadow
    mixpbench-experiments screen-stats      # plain vs --screen certificates
    mixpbench-experiments format-stats      # BW bisection vs built-in dtypes
    mixpbench-experiments ext-half ext-hrc  # extensions beyond the paper
    mixpbench-experiments all               # everything

Search-driven experiments cache per-cell outcomes as JSON under
``results/searches/``; delete that directory to force fresh runs.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    compare, ext_convergence, ext_half, ext_hrc, ext_machines,
    fig2, fig3, format_stats, insights, prune_stats, screen_stats,
    shadow_stats, table1, table2, table3, table4, table5,
)
from repro.experiments.context import ExperimentContext

__all__ = ["main", "run_experiment", "EXPERIMENTS"]

EXPERIMENTS = (
    "table1", "table2", "table3", "table4", "table5", "fig2", "fig3",
    "insights", "compare", "prune-stats", "shadow-stats", "screen-stats",
    "format-stats",
    "ext-half", "ext-hrc", "ext-machines", "ext-convergence",
)


def run_experiment(name: str, ctx: ExperimentContext, results_dir: str) -> str:
    """Run one named experiment and return its rendered text."""
    if name == "table1":
        return table1.run(results_dir)
    if name == "table2":
        return table2.run(results_dir)
    if name == "table3":
        return table3.run(ctx, results_dir)
    if name == "table4":
        return table4.run(results_dir)
    if name == "table5":
        return table5.run(ctx, results_dir)
    if name == "fig2":
        return fig2.run(ctx, results_dir)
    if name == "fig3":
        return fig3.run(ctx, results_dir)
    if name == "insights":
        return insights.run(ctx, results_dir)
    if name == "compare":
        return compare.run(ctx, results_dir)
    if name == "prune-stats":
        return prune_stats.run(results_dir)
    if name == "shadow-stats":
        return shadow_stats.run(results_dir)
    if name == "screen-stats":
        return screen_stats.run(results_dir)
    if name == "format-stats":
        return format_stats.run(results_dir)
    if name == "ext-half":
        return ext_half.run(results_dir)
    if name == "ext-hrc":
        return ext_hrc.run(ctx, results_dir)
    if name == "ext-machines":
        return ext_machines.run(results_dir)
    if name == "ext-convergence":
        return ext_convergence.run(ctx, results_dir)
    raise ValueError(f"unknown experiment {name!r}; choose from {EXPERIMENTS}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mixpbench-experiments",
        description="Regenerate the paper's tables and figures",
    )
    parser.add_argument(
        "experiments", nargs="+",
        help=f"any of {EXPERIMENTS} or 'all'",
    )
    parser.add_argument("--results-dir", default="results")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--max-evaluations", type=int, default=None,
        help="cap EV per search (smoke runs); the 24h budget still applies",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the on-disk search cache",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    names = list(args.experiments)
    if "all" in names:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; choose from {EXPERIMENTS}", file=sys.stderr)
        return 2

    ctx = ExperimentContext(
        results_dir=args.results_dir,
        workers=args.workers,
        max_evaluations=args.max_evaluations,
        use_disk_cache=not args.no_cache,
    )
    for name in names:
        started = time.time()
        text = run_experiment(name, ctx, args.results_dir)
        print(text)
        print(f"[{name}: {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
