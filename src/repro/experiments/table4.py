"""Table IV — application speedup and quality loss at full single
precision.

"To determine these metrics, we manually changed all applications into
their corresponding single precision versions and we compare the
execution time and the quality with the original double-precision
version."  The manual conversion also rewrites what no tool can touch
(HotSpot's double literal), via each benchmark's ``manual_inputs``
hook.
"""

from __future__ import annotations

from repro.benchmarks.base import application_benchmarks, get_benchmark
from repro.core.evaluator import measured_seconds
from repro.core.types import Precision, PrecisionConfig
from repro.harness.reporting import format_quality, format_table, write_csv
from repro.verify.metrics import get_metric

__all__ = ["rows", "render", "run", "HEADERS"]

HEADERS = ("Application", "Speed Up", "Quality Metric", "Quality Loss")


def rows() -> list[list[str]]:
    out = []
    for name in application_benchmarks():
        bench = get_benchmark(name)
        baseline = bench.execute(PrecisionConfig())
        single = bench.execute_manual(Precision.SINGLE)
        loss = get_metric(bench.metric)(baseline.output, single.output)
        base_t = measured_seconds(
            baseline.modeled_seconds, "baseline:" + PrecisionConfig().digest(),
            bench.runs_per_config,
        )
        single_config = bench.search_space().uniform_config(Precision.SINGLE)
        single_t = measured_seconds(
            single.modeled_seconds, "manual:" + single_config.digest(),
            bench.runs_per_config,
        )
        out.append([
            name,
            f"{base_t / single_t:.2f}",
            bench.metric,
            format_quality(loss),
        ])
    return out


def render() -> str:
    return format_table(
        HEADERS, rows(),
        "Table IV: speedup and quality loss of manual all-single conversion",
    )


def run(results_dir="results") -> str:
    text = render()
    write_csv(f"{results_dir}/table4.csv", HEADERS, rows())
    return text
