"""The paper's published evaluation numbers, as structured data.

Transcribed from the IISWC 2020 tables so that the reproduction can be
compared against the original *programmatically* (see
:mod:`repro.experiments.compare`).  ``None`` marks cells that are
unreadable in the available copy of the paper.

Units follow the paper: Table III qualities are in 1e-9; speedups are
ratios; Table IV quality loss is in the benchmark's own metric.
"""

from __future__ import annotations

import math

__all__ = [
    "ALGORITHMS", "TABLE2", "TABLE3_QUALITY", "TABLE3_EV", "TABLE3_SU",
    "TABLE4",
]

ALGORITHMS = ("CB", "CM", "DD", "HR", "HC", "GA")

#: Table II — Total Variables, Total Clusters
TABLE2: dict[str, tuple[int, int]] = {
    "banded-lin-eq": (2, 1), "diff-predictor": (5, 1), "eos": (7, 2),
    "gen-lin-recur": (4, 1), "hydro-1d": (6, 2), "iccg": (2, 1),
    "innerprod": (3, 2), "int-predict": (9, 2), "planckian": (6, 2),
    "tridiag": (3, 1),
    "blackscholes": (59, 50), "cfd": (195, 25), "hotspot": (36, 22),
    "hpccg": (54, 27), "kmeans": (26, 15), "lavamd": (47, 11),
    "srad": (29, 14),
}

#: Table III — found-configuration quality, 1e-9 units, CB/CM/DD/HR/HC/GA
TABLE3_QUALITY: dict[str, tuple] = {
    "banded-lin-eq": (9.94, 9.94, 9.94, 9.94, 9.94, 9.94),
    "diff-predictor": (9.94, 9.94, 9.94, 9.94, 9.94, 9.94),
    "eos": (0.0, 0.0, 0.0, 1.13, 1.13, 0.0),
    "gen-lin-recur": (0.0, 0.0, 0.0, 6.39, 6.39, 0.0),
    "hydro-1d": (2.71, 2.71, 2.71, 2.71, 2.71, 2.71),
    "iccg": (9.94, 9.94, 9.94, 9.94, 9.94, 9.94),
    "innerprod": (0.0, 0.0, 0.0, 0.0, 0.0, 0.0),
    "int-predict": (1.74, 1.74, 1.74, 1.74, 0.24, 1.74),
    "planckian": (0.0, 0.0, 0.0, 6.37, 6.37, 0.0),
    "tridiag": (0.0, 0.0, 0.0, 6.42, 6.42, 0.0),
}

#: Table III — evaluated configurations
TABLE3_EV: dict[str, tuple] = {
    "banded-lin-eq": (1, 1, 1, 1, 1, 2),
    "diff-predictor": (1, 1, 1, 1, 1, 2),
    "eos": (2, 2, 2, 12, 9, 4),
    "gen-lin-recur": (1, 1, 1, 7, 6, 2),
    "hydro-1d": (2, 3, 2, 1, 1, 4),
    "iccg": (1, 1, 1, 1, 1, 2),
    "innerprod": (2, 2, 2, 5, 5, 4),
    "int-predict": (2, 2, 2, 110, 11, 3),
    "planckian": (2, 2, 2, 23, 8, 4),
    "tridiag": (1, 1, 1, 8, 5, 2),
}

#: Table III — speedups (None where the scan is unreadable)
TABLE3_SU: dict[str, tuple] = {
    "banded-lin-eq": (4.45, 4.46, 4.52, 4.53, 4.47, 4.45),
    "diff-predictor": (1.6, 1.6, 1.6, 1.6, 1.6, 1.6),
    "eos": (0.99, 1.0, 1.0, 0.98, 1.0, 1.0),
    "gen-lin-recur": (0.98, 1.01, 1.01, 0.92, 0.91, 1.0),
    "hydro-1d": (1.7, 1.74, 1.74, 1.74, 1.74, 1.69),
    "iccg": (1.9, 1.9, 1.89, 1.91, 1.89, 1.91),
    "innerprod": (1.01, 1.01, 1.01, 1.01, 1.01, 1.01),
    "int-predict": (1.49, 1.51, 1.48, 1.51, None, None),
    "planckian": (1.0, 0.99, 1.0, 1.02, 1.0, 0.99),
    "tridiag": (0.99, 1.0, 0.99, 1.02, 1.01, 1.0),
}

#: Table IV — manual all-single conversion: (speedup, metric, loss)
TABLE4: dict[str, tuple] = {
    "blackscholes": (1.04, "MAE", 4.10e-6),
    "cfd": (1.38, "MAE", 1.10e-7),
    "hotspot": (1.78, "MAE", 3.08e-10),
    "hpccg": (1.00, "MAE", 2.0e-6),
    "kmeans": (0.96, "MCR", 0.0),
    "lavamd": (2.66, "MAE", 3.38e-4),
    "srad": (1.48, "MAE", math.nan),
}
