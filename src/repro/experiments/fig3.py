"""Figure 3 — speedup vs. number of tested configurations.

One point per completed (application, algorithm, threshold) search,
plus the paper's headline histogram: "Most of the tested
configurations resulted in a speedup between 1.0 - 1.2.  A limited
number of scenarios were able to produce higher speedups."
"""

from __future__ import annotations

import math

from repro.experiments.context import ExperimentContext
from repro.harness.reporting import format_speedup, format_table, write_csv

__all__ = ["rows", "histogram", "render", "run", "HEADERS"]

HEADERS = ("application", "algorithm", "threshold", "evaluations", "speedup")

_BINS = ((0.0, 1.0), (1.0, 1.2), (1.2, 1.6), (1.6, 2.0), (2.0, math.inf))


def rows(ctx: ExperimentContext) -> list[list]:
    out = []
    for result in ctx.application_grid():
        outcome = result.outcome
        if outcome is None or outcome.timed_out or not outcome.found_solution:
            continue
        out.append([
            outcome.program, outcome.strategy, f"{outcome.threshold:g}",
            outcome.evaluations, format_speedup(outcome.speedup),
        ])
    return out


def histogram(ctx: ExperimentContext) -> dict[str, int]:
    """Completed searches bucketed by achieved speedup."""
    counts = {f"{lo:g}-{hi:g}": 0 for lo, hi in _BINS}
    for result in ctx.application_grid():
        outcome = result.outcome
        if outcome is None or outcome.timed_out or not outcome.found_solution:
            continue
        su = outcome.speedup
        if math.isnan(su):
            continue
        for lo, hi in _BINS:
            if lo <= su < hi:
                counts[f"{lo:g}-{hi:g}"] += 1
                break
    return counts


def render(ctx: ExperimentContext) -> str:
    table = format_table(
        HEADERS, rows(ctx),
        "Figure 3 data: speedup vs tested configurations (all completed searches)",
    )
    hist = histogram(ctx)
    hist_table = format_table(
        ("speedup bin", "searches"),
        [[k, v] for k, v in hist.items()],
        "Figure 3 summary: speedup distribution",
    )
    return table + "\n\n" + hist_table


def run(ctx: ExperimentContext, results_dir="results") -> str:
    text = render(ctx)
    write_csv(f"{results_dir}/fig3.csv", HEADERS, rows(ctx))
    return text
