"""Extension experiment — anytime behaviour of DD vs GA.

The paper compares DD and GA by their *final* configurations (Fig. 2)
and correlates speedup with total evaluations (Fig. 3).  The trial
logs allow a sharper question: how much of the final speedup has each
algorithm banked after k evaluations?  This experiment emits the
best-so-far convergence series for the DD/GA pair on each application
at the strict threshold, plus the scalar anytime score (mean
best-so-far over the run).

Measured shape: GA's immigrant-seeded population finds *something*
early, so its anytime score often beats DD's on hostile programs even
when DD's final configuration is faster — quantifying the paper's
"DD requires more time" remark.
"""

from __future__ import annotations

from repro.analysis.convergence import area_under_curve, convergence_curve
from repro.benchmarks.base import application_benchmarks
from repro.experiments.context import ExperimentContext
from repro.harness.reporting import format_table, write_csv

__all__ = ["rows", "series", "render", "run", "HEADERS", "THRESHOLD"]

HEADERS = (
    "Application",
    "EV(DD)", "final SU(DD)", "anytime(DD)",
    "EV(GA)", "final SU(GA)", "anytime(GA)",
)

SERIES_HEADERS = ("application", "algorithm", "evaluation", "best_speedup")

THRESHOLD = 1e-8


def rows(ctx: ExperimentContext) -> list[list[str]]:
    out = []
    for program in application_benchmarks():
        row = [program]
        for algorithm in ("DD", "GA"):
            outcome = ctx.outcome(program, algorithm, THRESHOLD)
            if outcome is None or not outcome.found_solution:
                row.extend(["-", "-", "-"])
                continue
            row.extend([
                outcome.evaluations,
                f"{outcome.speedup:.2f}",
                f"{area_under_curve(outcome):.3f}",
            ])
        out.append(row)
    return out


def series(ctx: ExperimentContext) -> list[list]:
    """The full convergence curves, flattened for plotting."""
    out = []
    for program in application_benchmarks():
        for algorithm in ("DD", "GA"):
            outcome = ctx.outcome(program, algorithm, THRESHOLD)
            if outcome is None:
                continue
            for point in convergence_curve(outcome):
                out.append([
                    program, algorithm, point.evaluations,
                    f"{point.best_speedup:.4f}",
                ])
    return out


def render(ctx: ExperimentContext) -> str:
    return format_table(
        HEADERS, rows(ctx),
        f"Extension: anytime performance of DD vs GA (threshold {THRESHOLD:g})",
    )


def run(ctx: ExperimentContext, results_dir="results") -> str:
    text = render(ctx)
    write_csv(f"{results_dir}/ext_convergence.csv", HEADERS, rows(ctx))
    write_csv(
        f"{results_dir}/ext_convergence_series.csv",
        SERIES_HEADERS, series(ctx),
    )
    return text
