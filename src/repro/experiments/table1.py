"""Table I — kernels included in HPC-MixPBench."""

from __future__ import annotations

from repro.benchmarks.base import get_benchmark, kernel_benchmarks
from repro.harness.reporting import format_table, write_csv

__all__ = ["rows", "render", "run"]

HEADERS = ("Name", "Description")


def rows() -> list[list[str]]:
    return [
        [name, get_benchmark(name).description]
        for name in kernel_benchmarks()
    ]


def render() -> str:
    return format_table(HEADERS, rows(), "Table I: kernels included in HPC-MixPBench")


def run(results_dir="results") -> str:
    text = render()
    write_csv(f"{results_dir}/table1.csv", HEADERS, rows())
    return text
