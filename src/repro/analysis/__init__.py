"""Analysis of search results: convergence, comparison, export.

Post-processing for the interchange JSON the searches produce —
everything downstream of the harness that is about *understanding*
outcomes rather than producing them.
"""

from repro.analysis.comparison import (
    OutcomeDelta,
    compare_outcomes,
    rank_outcomes,
    summarize_many,
)
from repro.analysis.convergence import (
    ConvergencePoint,
    EffortSummary,
    area_under_curve,
    convergence_curve,
    effort_summary,
    time_to_first_solution,
)
from repro.analysis.export import (
    load_outcomes,
    outcomes_to_csv,
    trials_to_csv,
)

__all__ = [
    "ConvergencePoint", "convergence_curve", "time_to_first_solution",
    "EffortSummary", "effort_summary", "area_under_curve",
    "OutcomeDelta", "compare_outcomes", "rank_outcomes", "summarize_many",
    "trials_to_csv", "outcomes_to_csv", "load_outcomes",
]
