"""Export trial logs and outcome collections to CSV.

The interchange JSON keeps everything; these helpers flatten it for
spreadsheet/plotting consumers.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.results import SearchOutcome
from repro.harness.reporting import write_csv

__all__ = ["trials_to_csv", "outcomes_to_csv", "load_outcomes"]

TRIAL_HEADERS = (
    "index", "status", "error_value", "speedup",
    "modeled_seconds", "analysis_seconds", "lowered_locations",
)

OUTCOME_HEADERS = (
    "program", "strategy", "threshold", "found", "timed_out",
    "evaluations", "analysis_hours", "speedup", "error_value",
)


def trials_to_csv(outcome: SearchOutcome, path: str | Path) -> Path:
    """One row per evaluated configuration of a single search."""
    rows = [
        [
            trial.index,
            trial.status.value,
            trial.error_value,
            trial.speedup,
            trial.modeled_seconds,
            trial.analysis_seconds,
            ";".join(sorted(trial.config.lowered_locations())),
        ]
        for trial in outcome.trials
    ]
    return write_csv(path, TRIAL_HEADERS, rows)


def outcomes_to_csv(outcomes: list[SearchOutcome], path: str | Path) -> Path:
    """One row per search outcome (the Table V flattening)."""
    rows = [
        [
            outcome.program,
            outcome.strategy,
            outcome.threshold,
            outcome.found_solution,
            outcome.timed_out,
            outcome.evaluations,
            outcome.analysis_seconds / 3600.0,
            outcome.speedup,
            outcome.error_value,
        ]
        for outcome in outcomes
    ]
    return write_csv(path, OUTCOME_HEADERS, rows)


def load_outcomes(directory: str | Path) -> list[SearchOutcome]:
    """Load every interchange-JSON outcome under ``directory``
    (e.g. ``results/searches``), sorted by (program, strategy,
    threshold) for deterministic downstream tables."""
    directory = Path(directory)
    outcomes = [
        SearchOutcome.load(path)
        for path in sorted(directory.glob("*.json"))
    ]
    outcomes.sort(key=lambda o: (o.program, o.strategy, o.threshold))
    return outcomes
