"""Convergence analysis of search trial logs.

A :class:`~repro.core.results.SearchOutcome` carries the full trial
log; these helpers turn it into the quantities people actually plot:
best-speedup-so-far curves, time-to-first-solution, and effort
summaries broken down by evaluation status.  The paper's Figure 3
correlates final speedup with total configurations; a convergence
curve shows the *path* — how much of the final speedup each algorithm
had banked after k evaluations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.results import EvaluationStatus, SearchOutcome

__all__ = [
    "ConvergencePoint", "convergence_curve", "time_to_first_solution",
    "EffortSummary", "effort_summary", "area_under_curve",
]


@dataclass(frozen=True)
class ConvergencePoint:
    """Best verified speedup available after ``evaluations`` trials."""

    evaluations: int
    analysis_seconds: float
    best_speedup: float


def convergence_curve(outcome: SearchOutcome) -> list[ConvergencePoint]:
    """Best-passing-speedup-so-far after each evaluated configuration.

    Points before the first passing trial carry ``best_speedup = 1.0``
    — the unchanged program is always available, so a search that has
    found nothing yet still "has" speedup 1.
    """
    points: list[ConvergencePoint] = []
    best = 1.0
    elapsed = 0.0
    for index, trial in enumerate(outcome.trials, start=1):
        elapsed += trial.analysis_seconds
        if trial.passed and not math.isnan(trial.speedup):
            best = max(best, trial.speedup)
        points.append(ConvergencePoint(index, elapsed, best))
    return points


def time_to_first_solution(outcome: SearchOutcome) -> tuple[int, float] | None:
    """(evaluations, simulated seconds) until the first passing trial,
    or None when the search never found one."""
    elapsed = 0.0
    for index, trial in enumerate(outcome.trials, start=1):
        elapsed += trial.analysis_seconds
        if trial.passed:
            return index, elapsed
    return None


def area_under_curve(outcome: SearchOutcome) -> float:
    """Mean best-speedup-so-far over the trial sequence.

    A scalar "anytime performance" figure: higher means the search
    banked speedup earlier.  1.0 for a search that never improves on
    the original program.
    """
    curve = convergence_curve(outcome)
    if not curve:
        return 1.0
    return sum(p.best_speedup for p in curve) / len(curve)


@dataclass(frozen=True)
class EffortSummary:
    """Where a search's evaluations (and simulated hours) went."""

    evaluations: int
    passed: int
    failed_quality: int
    compile_errors: int
    runtime_errors: int
    analysis_hours: float
    wasted_fraction: float

    def __str__(self) -> str:
        return (
            f"{self.evaluations} evaluations "
            f"({self.passed} passed, {self.failed_quality} failed quality, "
            f"{self.compile_errors} compile errors, "
            f"{self.runtime_errors} runtime errors) "
            f"in {self.analysis_hours:.2f} simulated hours; "
            f"{self.wasted_fraction:.0%} wasted on invalid configurations"
        )


def effort_summary(outcome: SearchOutcome) -> EffortSummary:
    """Breakdown of an outcome's trial log by evaluation status."""
    counts = {status: 0 for status in EvaluationStatus}
    for trial in outcome.trials:
        counts[trial.status] += 1
    evaluations = len(outcome.trials)
    invalid = (
        counts[EvaluationStatus.COMPILE_ERROR]
        + counts[EvaluationStatus.RUNTIME_ERROR]
    )
    return EffortSummary(
        evaluations=evaluations,
        passed=counts[EvaluationStatus.PASSED],
        failed_quality=counts[EvaluationStatus.FAILED_QUALITY],
        compile_errors=counts[EvaluationStatus.COMPILE_ERROR],
        runtime_errors=counts[EvaluationStatus.RUNTIME_ERROR],
        analysis_hours=outcome.analysis_seconds / 3600.0,
        wasted_fraction=invalid / evaluations if evaluations else 0.0,
    )
