"""Head-to-head comparison of search outcomes.

Given outcomes from different algorithms on the same program and
threshold, rank them the way the paper's discussion does: solution
quality first (did it find anything?), then speedup, then effort.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.convergence import area_under_curve, effort_summary
from repro.core.results import SearchOutcome

__all__ = ["OutcomeDelta", "compare_outcomes", "rank_outcomes"]


@dataclass(frozen=True)
class OutcomeDelta:
    """How outcome ``b`` differs from outcome ``a``."""

    strategy_a: str
    strategy_b: str
    speedup_delta: float        # b - a (NaN if either found nothing)
    evaluations_delta: int      # b - a
    hours_delta: float          # b - a
    same_configuration: bool

    def __str__(self) -> str:
        speedup = (
            f"{self.speedup_delta:+.3f}x"
            if not math.isnan(self.speedup_delta) else "n/a"
        )
        return (
            f"{self.strategy_b} vs {self.strategy_a}: "
            f"speedup {speedup}, "
            f"evaluations {self.evaluations_delta:+d}, "
            f"analysis {self.hours_delta:+.2f}h, "
            f"{'same' if self.same_configuration else 'different'} configuration"
        )


def compare_outcomes(a: SearchOutcome, b: SearchOutcome) -> OutcomeDelta:
    """Pairwise delta between two outcomes of the same search problem."""
    if (a.program, a.threshold) != (b.program, b.threshold):
        raise ValueError(
            "outcomes target different problems: "
            f"{a.program}@{a.threshold:g} vs {b.program}@{b.threshold:g}"
        )
    if a.found_solution and b.found_solution:
        speedup_delta = b.speedup - a.speedup
        same = a.final.config == b.final.config
    else:
        speedup_delta = float("nan")
        same = False
    return OutcomeDelta(
        strategy_a=a.strategy,
        strategy_b=b.strategy,
        speedup_delta=speedup_delta,
        evaluations_delta=b.evaluations - a.evaluations,
        hours_delta=(b.analysis_seconds - a.analysis_seconds) / 3600.0,
        same_configuration=same,
    )


def rank_outcomes(outcomes: list[SearchOutcome]) -> list[SearchOutcome]:
    """Order outcomes best-first.

    Sort key: found a solution (timeouts and empty results last), then
    speedup (descending), then anytime performance, then effort
    (fewer evaluations first).
    """
    def key(outcome: SearchOutcome):
        found = outcome.found_solution and not outcome.timed_out
        speedup = outcome.speedup if found else float("-inf")
        if math.isnan(speedup):
            speedup = float("-inf")
        return (
            not found,                      # False sorts first
            -speedup,
            -area_under_curve(outcome),
            outcome.evaluations,
        )

    return sorted(outcomes, key=key)


def summarize_many(outcomes: list[SearchOutcome]) -> list[str]:
    """One human line per outcome, ranked best-first."""
    lines = []
    for outcome in rank_outcomes(outcomes):
        status = (
            "timeout" if outcome.timed_out
            else "ok" if outcome.found_solution else "none"
        )
        speedup = (
            f"{outcome.speedup:.2f}x" if outcome.found_solution else "-"
        )
        summary = effort_summary(outcome)
        lines.append(
            f"{outcome.strategy:28s} {status:8s} SU={speedup:>7s}  {summary}"
        )
    return lines
