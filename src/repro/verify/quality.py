"""Quality specifications: a metric plus an acceptance threshold.

A :class:`QualitySpec` is the user-provided verification routine of the
paper's workflow: given the reference (all-double) output and a
candidate output, it computes the configured error metric and decides
whether the candidate passes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.verify.metrics import get_metric, lower_is_better

__all__ = ["QualitySpec", "QualityResult"]


@dataclass(frozen=True)
class QualityResult:
    """Outcome of one verification: the measured error and the verdict."""

    metric: str
    value: float
    threshold: float
    passed: bool

    def __str__(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return f"{self.metric}={self.value:.3e} (threshold {self.threshold:.0e}): {verdict}"


@dataclass(frozen=True)
class QualitySpec:
    """A named metric and the acceptance threshold applied to it.

    For error metrics (MAE, RMSE, MSE, MCR) a candidate passes when the
    measured value is ``<= threshold``; for higher-is-better metrics
    (R²) it passes when ``>= threshold``.  Non-finite measurements
    never pass.
    """

    metric: str = "MAE"
    threshold: float = 1e-6

    def __post_init__(self) -> None:
        get_metric(self.metric)  # validate eagerly

    def measure(self, reference: Any, candidate: Any) -> float:
        """The raw metric value (may be NaN)."""
        return get_metric(self.metric)(reference, candidate)

    def check(self, reference: Any, candidate: Any) -> QualityResult:
        """Measure and apply the threshold."""
        value = self.measure(reference, candidate)
        if math.isnan(value):
            passed = False
        elif lower_is_better(self.metric):
            passed = value <= self.threshold
        else:
            passed = value >= self.threshold
        return QualityResult(self.metric.upper(), value, self.threshold, passed)

    def with_threshold(self, threshold: float) -> "QualitySpec":
        """The same metric at a different threshold (used for the
        paper's 1e-3 / 1e-6 / 1e-8 sweeps)."""
        return QualitySpec(self.metric, threshold)
