"""Verification library: error metrics and quality thresholds."""

from repro.verify.metrics import (
    available_metrics, get_metric, lower_is_better, mae, mcr, mse,
    r_squared, register_metric, rmse,
)
from repro.verify.quality import QualityResult, QualitySpec

__all__ = [
    "mae", "mse", "rmse", "r_squared", "mcr",
    "register_metric", "get_metric", "available_metrics", "lower_is_better",
    "QualitySpec", "QualityResult",
]
