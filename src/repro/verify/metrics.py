"""Verification library: error metrics comparing exact vs. approximate runs.

Implements the metrics the paper's verification library provides
(Section III-A.b): Mean Absolute Error (MAE), Root Mean Square Error
(RMSE), Mean Square Error (MSE), coefficient of determination (R²) and
Misclassification Rate (MCR), behind a registry so new metrics can be
plugged in — the paper's "single point for providing verification
extensions".

All metrics treat non-finite values in the approximate output as a
total quality loss: the result is ``nan``, which fails every threshold
(this is how the paper's SRAD row reports ``NaN``).
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.errors import VerificationError
from repro.runtime.mparray import unwrap

__all__ = [
    "mae", "rmse", "mse", "r_squared", "mcr", "max_abs_error", "mre",
    "relative_divergence",
    "register_metric", "get_metric", "available_metrics",
    "lower_is_better",
]

MetricFn = Callable[[np.ndarray, np.ndarray], float]

_F64_NUM = np.dtype(np.float64).num
_INF = float("inf")


def _as_pair(reference: Any, candidate: Any) -> tuple[np.ndarray, np.ndarray]:
    ref = np.asarray(unwrap(reference), dtype=np.float64).ravel()
    cand = np.asarray(unwrap(candidate), dtype=np.float64).ravel()
    if ref.shape != cand.shape:
        raise VerificationError(
            f"output shapes differ: reference {ref.shape} vs candidate {cand.shape}"
        )
    if ref.size == 0:
        raise VerificationError("cannot compare empty outputs")
    return ref, cand


def mae(reference: Any, candidate: Any) -> float:
    """Mean Absolute Error. NaN if the candidate has non-finite values."""
    ref, cand = _as_pair(reference, candidate)
    if not np.all(np.isfinite(cand)):
        return float("nan")
    return float(np.mean(np.abs(ref - cand)))


def mse(reference: Any, candidate: Any) -> float:
    """Mean Square Error."""
    ref, cand = _as_pair(reference, candidate)
    if not np.all(np.isfinite(cand)):
        return float("nan")
    # errstate: a finite-but-huge candidate squares past the fp64
    # range; the result is a clean inf (which fails every threshold),
    # not a warning.
    with np.errstate(over="ignore"):
        diff = ref - cand
        return float(np.mean(diff * diff))


def rmse(reference: Any, candidate: Any) -> float:
    """Root Mean Square Error — penalises large errors more than MAE,
    which is why the paper recommends it when large excursions in
    continuous outputs must be avoided."""
    return float(np.sqrt(mse(reference, candidate)))


def r_squared(reference: Any, candidate: Any) -> float:
    """Coefficient of determination of candidate vs. reference.

    1.0 means a perfect match; values fall toward (or below) zero as
    the approximation degrades.  Note this metric is
    *higher-is-better*, unlike the error metrics.
    """
    ref, cand = _as_pair(reference, candidate)
    if not np.all(np.isfinite(cand)):
        return float("nan")
    with np.errstate(over="ignore"):
        ss_res = float(np.sum((ref - cand) ** 2))
        ss_tot = float(np.sum((ref - np.mean(ref)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else float("-inf")
    return 1.0 - ss_res / ss_tot


def mcr(reference: Any, candidate: Any) -> float:
    """Misclassification Rate: fraction of discrete labels that differ.

    Used by K-means, whose output is a cluster assignment rather than a
    continuous field.
    """
    ref, cand = _as_pair(reference, candidate)
    if not np.all(np.isfinite(cand)):
        return float("nan")
    return float(np.mean(np.rint(ref) != np.rint(cand)))


def max_abs_error(reference: Any, candidate: Any) -> float:
    """Maximum absolute error (L-infinity) — extension metric: the
    tightest pointwise guarantee, useful when a single bad cell (a hot
    spot, an option price) must stay bounded."""
    ref, cand = _as_pair(reference, candidate)
    if not np.all(np.isfinite(cand)):
        return float("nan")
    return float(np.max(np.abs(ref - cand)))


def mre(reference: Any, candidate: Any) -> float:
    """Mean Relative Error — extension metric: scale-free comparison
    for outputs spanning decades.

    Positions where the reference is (sub)normal-zero fall back to the
    absolute error instead of dividing by an epsilon floor, so a zero
    reference cell cannot blow the mean up to 1e300.
    """
    ref, cand = _as_pair(reference, candidate)
    if not np.all(np.isfinite(cand)):
        return float("nan")
    with np.errstate(all="ignore"):
        diff = np.abs(ref - cand)
        scale = np.abs(ref)
        rel = np.where(scale < 1e-300, diff, diff / np.maximum(scale, 1e-300))
        return float(np.mean(rel))


def _relative_divergence_core(ref: np.ndarray, cand: np.ndarray) -> float:
    """Worst-case symmetric relative divergence of two same-shape
    arrays (no shape/emptiness validation — the shadow engine calls
    this on every propagated operation).

    Hardened for low-precision shadow values, which overflow and
    produce NaN/inf readily:

    * positions where the *reference* is non-finite carry no
      information and are ignored;
    * a finite reference against a non-finite candidate is an infinite
      divergence;
    * the denominator ``max(|ref|, |cand|)`` is only applied where the
      difference is non-zero, so it is provably positive there — a
      zero-against-zero cell contributes exactly 0, never 0/0.

    The all-finite fast path below computes the same maximum without
    boolean fancy-indexing.  It is taken only when the reference is
    already fp64 and the candidate a float of at most 64 bits, where
    the slow path's fp64 casts are value-exact, so mixed-precision
    arithmetic (fp64 - fp16 promotes each element exactly) produces
    bit-identical quotients; ``np.fmax.reduce`` then ignores the NaNs
    that 0/0 cells contribute (a zero difference never exceeds a
    positive maximum, and ``mx > 0`` guarantees one exists).
    """
    with np.errstate(all="ignore"):
        rd = getattr(ref, "dtype", None)
        cd = getattr(cand, "dtype", None)
        if (
            rd is not None
            and rd.num == _F64_NUM
            and cd is not None
            and cd.kind == "f"
            and cd.itemsize <= 8
        ):
            diff = np.subtract(ref, cand)
            if type(diff) is not np.ndarray:
                # 0-d / scalar operands: plain IEEE-754 double math is
                # the same arithmetic NumPy would do, minus ~10 ufunc
                # dispatches (scalar accumulator chains hit this on
                # every op)
                r = float(ref)
                c = float(cand)
                if r != r or r in (_INF, -_INF):
                    return 0.0  # non-finite reference: no information
                if c != c or c in (_INF, -_INF):
                    return _INF
                d = abs(r - c)
                if d == 0.0:
                    return 0.0
                return d / max(abs(r), abs(c))
            if diff.size == 0:
                return 0.0
            np.abs(diff, out=diff)
            mx = float(diff.max())
            if mx == 0.0:
                return 0.0
            if mx < _INF:  # NaN/inf anywhere falls through
                denom = np.abs(ref)
                np.maximum(denom, np.abs(cand), out=denom)
                np.divide(diff, denom, out=diff)
                return float(np.fmax.reduce(diff, axis=None))
        ref = np.asarray(ref, dtype=np.float64)
        cand = np.asarray(cand, dtype=np.float64)
        ref_ok = np.isfinite(ref)
        if not ref_ok.all():
            if not ref_ok.any():
                return 0.0
            ref = ref[ref_ok]
            cand = cand[ref_ok]
        if not np.isfinite(cand).all():
            return float("inf")
        diff = np.abs(ref - cand)
        nonzero = diff > 0.0
        if not nonzero.any():
            return 0.0
        diff = diff[nonzero]
        denom = np.maximum(np.abs(ref[nonzero]), np.abs(cand[nonzero]))
        return float(np.max(diff / denom))


def relative_divergence(reference: Any, candidate: Any) -> float:
    """Worst-case symmetric relative divergence,
    ``max |ref - cand| / max(|ref|, |cand|)`` — extension metric and
    the error measure of the shadow-value engine (:mod:`repro.shadow`).

    Bounded in [0, 1] for same-signed values and at most 2 for finite
    inputs; ``inf`` when a finite reference meets a NaN/inf candidate.
    Unlike the other metrics it tolerates non-finite *reference*
    positions (they are ignored) because shadow analysis compares
    intermediate values, not just the verified final output.
    """
    ref, cand = _as_pair(reference, candidate)
    return _relative_divergence_core(ref, cand)


_METRICS: dict[str, MetricFn] = {}
_HIGHER_IS_BETTER: set[str] = set()


def register_metric(name: str, fn: MetricFn, higher_is_better: bool = False) -> None:
    """Add a metric to the verification registry.

    ``name`` is case-insensitive.  Registering an existing name
    replaces it, so users can override the built-ins.
    """
    key = name.strip().upper()
    if not key:
        raise ValueError("metric name must be non-empty")
    _METRICS[key] = fn
    if higher_is_better:
        _HIGHER_IS_BETTER.add(key)
    else:
        _HIGHER_IS_BETTER.discard(key)


def get_metric(name: str) -> MetricFn:
    """Look up a metric by (case-insensitive) name."""
    key = name.strip().upper()
    try:
        return _METRICS[key]
    except KeyError:
        raise VerificationError(
            f"unknown quality metric {name!r}; available: {sorted(_METRICS)}"
        ) from None


def lower_is_better(name: str) -> bool:
    """Direction of a metric: True for error metrics, False for R²."""
    key = name.strip().upper()
    if key not in _METRICS:
        raise VerificationError(f"unknown quality metric {name!r}")
    return key not in _HIGHER_IS_BETTER


def available_metrics() -> tuple[str, ...]:
    return tuple(sorted(_METRICS))


register_metric("MAE", mae)
register_metric("MSE", mse)
register_metric("RMSE", rmse)
register_metric("R2", r_squared, higher_is_better=True)
register_metric("MCR", mcr)
# Extension metrics beyond the paper's five:
register_metric("LINF", max_abs_error)
register_metric("MRE", mre)
register_metric("RELDIV", relative_divergence)
