"""Verification library: error metrics comparing exact vs. approximate runs.

Implements the metrics the paper's verification library provides
(Section III-A.b): Mean Absolute Error (MAE), Root Mean Square Error
(RMSE), Mean Square Error (MSE), coefficient of determination (R²) and
Misclassification Rate (MCR), behind a registry so new metrics can be
plugged in — the paper's "single point for providing verification
extensions".

All metrics treat non-finite values in the approximate output as a
total quality loss: the result is ``nan``, which fails every threshold
(this is how the paper's SRAD row reports ``NaN``).
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.errors import VerificationError
from repro.runtime.mparray import unwrap

__all__ = [
    "mae", "rmse", "mse", "r_squared", "mcr", "max_abs_error", "mre",
    "register_metric", "get_metric", "available_metrics",
    "lower_is_better",
]

MetricFn = Callable[[np.ndarray, np.ndarray], float]


def _as_pair(reference: Any, candidate: Any) -> tuple[np.ndarray, np.ndarray]:
    ref = np.asarray(unwrap(reference), dtype=np.float64).ravel()
    cand = np.asarray(unwrap(candidate), dtype=np.float64).ravel()
    if ref.shape != cand.shape:
        raise VerificationError(
            f"output shapes differ: reference {ref.shape} vs candidate {cand.shape}"
        )
    if ref.size == 0:
        raise VerificationError("cannot compare empty outputs")
    return ref, cand


def mae(reference: Any, candidate: Any) -> float:
    """Mean Absolute Error. NaN if the candidate has non-finite values."""
    ref, cand = _as_pair(reference, candidate)
    if not np.all(np.isfinite(cand)):
        return float("nan")
    return float(np.mean(np.abs(ref - cand)))


def mse(reference: Any, candidate: Any) -> float:
    """Mean Square Error."""
    ref, cand = _as_pair(reference, candidate)
    if not np.all(np.isfinite(cand)):
        return float("nan")
    diff = ref - cand
    return float(np.mean(diff * diff))


def rmse(reference: Any, candidate: Any) -> float:
    """Root Mean Square Error — penalises large errors more than MAE,
    which is why the paper recommends it when large excursions in
    continuous outputs must be avoided."""
    return float(np.sqrt(mse(reference, candidate)))


def r_squared(reference: Any, candidate: Any) -> float:
    """Coefficient of determination of candidate vs. reference.

    1.0 means a perfect match; values fall toward (or below) zero as
    the approximation degrades.  Note this metric is
    *higher-is-better*, unlike the error metrics.
    """
    ref, cand = _as_pair(reference, candidate)
    if not np.all(np.isfinite(cand)):
        return float("nan")
    ss_res = float(np.sum((ref - cand) ** 2))
    ss_tot = float(np.sum((ref - np.mean(ref)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else float("-inf")
    return 1.0 - ss_res / ss_tot


def mcr(reference: Any, candidate: Any) -> float:
    """Misclassification Rate: fraction of discrete labels that differ.

    Used by K-means, whose output is a cluster assignment rather than a
    continuous field.
    """
    ref, cand = _as_pair(reference, candidate)
    if not np.all(np.isfinite(cand)):
        return float("nan")
    return float(np.mean(np.rint(ref) != np.rint(cand)))


def max_abs_error(reference: Any, candidate: Any) -> float:
    """Maximum absolute error (L-infinity) — extension metric: the
    tightest pointwise guarantee, useful when a single bad cell (a hot
    spot, an option price) must stay bounded."""
    ref, cand = _as_pair(reference, candidate)
    if not np.all(np.isfinite(cand)):
        return float("nan")
    return float(np.max(np.abs(ref - cand)))


def mre(reference: Any, candidate: Any) -> float:
    """Mean Relative Error — extension metric: scale-free comparison
    for outputs spanning decades (epsilon-guarded near zero)."""
    ref, cand = _as_pair(reference, candidate)
    if not np.all(np.isfinite(cand)):
        return float("nan")
    scale = np.maximum(np.abs(ref), 1e-300)
    return float(np.mean(np.abs(ref - cand) / scale))


_METRICS: dict[str, MetricFn] = {}
_HIGHER_IS_BETTER: set[str] = set()


def register_metric(name: str, fn: MetricFn, higher_is_better: bool = False) -> None:
    """Add a metric to the verification registry.

    ``name`` is case-insensitive.  Registering an existing name
    replaces it, so users can override the built-ins.
    """
    key = name.strip().upper()
    if not key:
        raise ValueError("metric name must be non-empty")
    _METRICS[key] = fn
    if higher_is_better:
        _HIGHER_IS_BETTER.add(key)
    else:
        _HIGHER_IS_BETTER.discard(key)


def get_metric(name: str) -> MetricFn:
    """Look up a metric by (case-insensitive) name."""
    key = name.strip().upper()
    try:
        return _METRICS[key]
    except KeyError:
        raise VerificationError(
            f"unknown quality metric {name!r}; available: {sorted(_METRICS)}"
        ) from None


def lower_is_better(name: str) -> bool:
    """Direction of a metric: True for error metrics, False for R²."""
    key = name.strip().upper()
    if key not in _METRICS:
        raise VerificationError(f"unknown quality metric {name!r}")
    return key not in _HIGHER_IS_BETTER


def available_metrics() -> tuple[str, ...]:
    return tuple(sorted(_METRICS))


register_metric("MAE", mae)
register_metric("MSE", mse)
register_metric("RMSE", rmse)
register_metric("R2", r_squared, higher_is_better=True)
register_metric("MCR", mcr)
# Extension metrics beyond the paper's five:
register_metric("LINF", max_abs_error)
register_metric("MRE", mre)
