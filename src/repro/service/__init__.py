"""Search-as-a-service: a sharded, multi-tenant grid daemon.

The service promotes ``mixpbench grid`` from a one-shot CLI into a
long-running system (``mixpbench serve`` / ``submit`` / ``status`` /
``attach`` / ``cancel``):

* :mod:`repro.service.spec` — the submittable :class:`GridSpec` and
  the ledger's :class:`JobRecord`;
* :mod:`repro.service.queue` — the durable on-disk queue: an fsync'd
  service journal plus the state-directory layout;
* :mod:`repro.service.scheduler` — the :class:`Scheduler`: per-tenant
  quotas, shard dispatch over a work-stealing queue, worker-crash
  redispatch, cancellation, drains, and crash recovery;
* :mod:`repro.service.client` — the daemon-free client half (spool
  submission handshake, read-only status, streaming attach).

See ``docs/service.md`` for the architecture walkthrough.
"""

from repro.service.client import (
    ATTACH_EXIT_CODES, ServiceError, attach, job_status, request_cancel,
    results_path, service_status, submit_request,
)
from repro.service.queue import (
    SERVICE_JOURNAL_VERSION, ServiceJournal, ServiceState,
    load_service_state, state_paths,
)
from repro.service.scheduler import (
    QuotaExceeded, Scheduler, SchedulerHooks, ServiceDraining, UnknownJob,
)
from repro.service.spec import (
    JOB_STATES, TERMINAL_STATES, GridSpec, JobRecord, SpecError,
)

__all__ = [
    "ATTACH_EXIT_CODES", "GridSpec", "JOB_STATES", "JobRecord",
    "QuotaExceeded", "SERVICE_JOURNAL_VERSION", "Scheduler",
    "SchedulerHooks", "ServiceDraining", "ServiceError", "ServiceJournal",
    "ServiceState", "SpecError", "TERMINAL_STATES", "UnknownJob",
    "attach", "job_status", "load_service_state", "request_cancel",
    "results_path", "service_status", "state_paths", "submit_request",
]
