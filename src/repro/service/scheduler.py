"""The search service scheduler: sharded, multi-tenant grid execution.

``mixpbench grid`` runs one grid and exits; the :class:`Scheduler`
turns the same machinery into a long-running service.  Submitted
:class:`~repro.service.spec.GridSpec`\\ s are journaled durably
(:mod:`repro.service.queue`), expanded into their
:class:`~repro.harness.scheduler.SearchJob` shards, and dispatched to
N worker threads over a :class:`~repro.core.batch.WorkStealingQueue`
— each worker drains its own job's lane for locality and steals from
the deepest backlog when idle.  Every shard executes through
:func:`repro.harness.scheduler.run_shard` with

* the job's own :class:`~repro.core.checkpoint.RunJournal`, so every
  completed trial is fsync'd and a crashed shard (or a SIGKILL'd
  service) resumes bit-identically; and
* the service's *shared* :class:`~repro.runtime.cache.EvaluationCache`,
  so overlapping submissions from different tenants replay each
  other's evaluations instead of recomputing them — the cross-tenant
  dedupe the cache-hit counters in job stats surface.

Fault handling at this layer mirrors the executor layer below it: a
worker that dies mid-shard (any exception escaping the shard,
including hook failures) has its shard *redispatched* up to
``shard_retries`` times, replaying the trials the dead attempt already
journaled; exhausting the budget records a ``WorkerCrash`` shard
error, never a lost job.
"""

from __future__ import annotations

import json
import os
import threading
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.core.batch import WorkStealingQueue
from repro.core.checkpoint import RunJournal, job_key, load_run_state
from repro.errors import MixPBenchError
from repro.harness.scheduler import JobResult, SearchJob, run_shard
from repro.runtime.cache import EvaluationCache
from repro.runtime.fuse import set_fuse_cache_dir
from repro.service.queue import ServiceJournal, state_paths
from repro.service.spec import GridSpec, JobRecord

__all__ = [
    "QuotaExceeded", "ServiceDraining", "Scheduler", "SchedulerHooks",
    "UnknownJob",
]


class QuotaExceeded(MixPBenchError):
    """A tenant is at its active-job quota."""


class ServiceDraining(MixPBenchError):
    """The service is draining and no longer accepts submissions."""


class UnknownJob(MixPBenchError):
    """No job with the requested identifier exists."""


@dataclass
class SchedulerHooks:
    """Optional instrumentation callbacks, invoked from worker threads.

    ``shard_started(job_id, key)`` fires before a shard executes and
    ``shard_finished(job_id, key, result)`` after; an exception raised
    by either is treated exactly like a worker crash (the shard is
    redispatched), which is also what makes them the deterministic
    crash-injection seam the fault tests use.
    """

    shard_started: Callable[[str, str], None] | None = None
    shard_finished: Callable[[str, str, JobResult], None] | None = None


class _ActiveJob:
    """Scheduler-side bookkeeping for one submitted job."""

    def __init__(
        self,
        record: JobRecord,
        shards: list[SearchJob],
        journal: RunJournal,
    ) -> None:
        self.record = record
        self.shards = shards
        self.keys = [job_key(index, shard) for index, shard in enumerate(shards)]
        self.journal = journal
        self.results: list[JobResult | None] = [None] * len(shards)
        self.restored: set[int] = set()
        self.in_flight = 0
        self.redispatched = 0
        self.cancel_requested = False
        self.finalized = False

    @property
    def unfinished(self) -> int:
        return sum(1 for result in self.results if result is None)


class Scheduler:
    """Accepts, shards, executes and accounts multi-tenant search jobs.

    Parameters
    ----------
    state_dir:
        Root of the durable service state (ledger, shared cache, per-job
        run journals, results, spool).  Reopening a directory recovers
        it: terminal jobs are kept as history, queued/running jobs are
        re-enqueued and resume from their journals.
    workers:
        Worker threads draining the shard queue (work stealing).
    quota:
        Per-tenant ceiling on *active* (queued + running) jobs; the
        quota protects the queue, not history — finished jobs don't
        count.
    shard_retries:
        How many times a shard whose worker crashed is redispatched
        before it is recorded as a ``WorkerCrash`` error.
    hooks:
        Optional :class:`SchedulerHooks` instrumentation.
    """

    def __init__(
        self,
        state_dir: str | Path,
        workers: int = 2,
        quota: int = 8,
        shard_retries: int = 2,
        hooks: SchedulerHooks | None = None,
    ) -> None:
        self.paths = state_paths(state_dir)
        for name in ("root", "cache", "fuse", "runs", "jobs", "spool"):
            self.paths[name].mkdir(parents=True, exist_ok=True)
        # Compiled trace-fusion regions are shared across every shard
        # and every tenant (keyed by content digest, so collisions are
        # impossible): one worker's compilation warms all the others,
        # including across service restarts.
        set_fuse_cache_dir(self.paths["fuse"])
        self.workers = max(1, int(workers))
        self.quota = max(1, int(quota))
        self.shard_retries = max(0, int(shard_retries))
        self.hooks = hooks if hooks is not None else SchedulerHooks()
        self.cache = EvaluationCache(self.paths["cache"])

        self._journal = ServiceJournal(self.paths["root"])
        self._sequence = self._journal.state.sequence
        self._lock = threading.RLock()
        self._idle = threading.Condition(self._lock)
        self._queue = WorkStealingQueue()
        self._active: dict[str, _ActiveJob] = {}
        self._records: dict[str, JobRecord] = dict(self._journal.state.jobs)
        self._threads: list[threading.Thread] = []
        self._draining = False
        self._stopped = False
        self._recover()

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        with self._lock:
            if self._threads:
                return
            self._threads = [
                threading.Thread(
                    target=self._worker_loop, name=f"mixpbench-svc-{i}", daemon=True,
                )
                for i in range(self.workers)
            ]
        for thread in self._threads:
            thread.start()

    def stop(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the service.

        ``drain=True`` stops accepting submissions, lets every queued
        and running shard finish, then stops the workers.  With
        ``drain=False`` workers stop after their current shard; the
        journals make the abandoned jobs resumable on the next start.
        """
        with self._lock:
            self._draining = True
        if drain and self._threads:  # nobody drains a never-started queue
            self.wait_idle(timeout=timeout)
        with self._lock:
            self._stopped = True
        self._queue.close()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []
        self._journal.close()

    def drain(self) -> None:
        """Stop accepting new submissions; keep executing what's queued."""
        with self._lock:
            self._draining = True

    # -- submission / control --------------------------------------------

    def submit(self, spec: GridSpec, tenant: str = "default") -> str:
        """Durably accept one job; returns its identifier.

        The submit record is fsync'd to the service journal *before*
        this returns — an accepted job survives any crash after the
        acknowledgement.
        """
        tenant = _check_tenant(tenant)
        with self._lock:
            if self._draining:
                raise ServiceDraining(
                    "the service is draining and accepts no new jobs"
                )
            active = [
                record for record in self._records.values()
                if record.tenant == tenant and not record.terminal
            ]
            if len(active) >= self.quota:
                raise QuotaExceeded(
                    f"tenant {tenant!r} already has {len(active)} active "
                    f"job(s), the quota; wait for one to finish or cancel it"
                )
            self._sequence += 1
            job_id = f"job-{self._sequence:04d}-{spec.digest()[:8]}"
            record = JobRecord(job_id=job_id, tenant=tenant, spec=spec)
            self._journal.append_submit(record, self._sequence)
            self._records[job_id] = record
            self._enqueue(record, resume=False)
        self._progress(job_id, "state", state="queued", tenant=tenant,
                       label=spec.label(), shards=spec.shards)
        return job_id

    def cancel(self, job_id: str) -> str:
        """Cancel a job; returns its resulting state.

        A queued job cancels immediately.  A running job stops at the
        next shard boundary: unstarted shards are dropped, in-flight
        shards finish (their trials stay journaled and cached).
        Cancelling a terminal job is a no-op returning its state.
        """
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise UnknownJob(f"no such job: {job_id!r}")
            if record.terminal:
                return record.state
            active = self._active.get(job_id)
            if active is None:  # accepted but lost its runtime state?
                self._set_state(record, "cancelled")
                return "cancelled"
            active.cancel_requested = True
            self._queue.drop_lane(job_id)
            if active.in_flight == 0:
                self._finalize(active)
            return self._records[job_id].state

    def status(self, job_id: str | None = None) -> dict:
        """A JSON-able snapshot of one job or the whole service."""
        with self._lock:
            if job_id is not None:
                record = self._records.get(job_id)
                if record is None:
                    raise UnknownJob(f"no such job: {job_id!r}")
                return {"job": self._job_status(record)}
            return {
                "jobs": [
                    self._job_status(record)
                    for record in self._records.values()
                ],
                "workers": self.workers,
                "quota": self.quota,
                "draining": self._draining,
                "cache": {
                    "hits": self.cache.hits,
                    "misses": self.cache.misses,
                    "writes": self.cache.writes,
                },
            }

    def _job_status(self, record: JobRecord) -> dict:
        active = self._active.get(record.job_id)
        done = 0
        total = record.spec.shards
        if active is not None:
            done = total - active.unfinished
        elif record.terminal:
            done = int(record.stats.get("shards_done", 0))
        return {
            "job_id": record.job_id,
            "tenant": record.tenant,
            "state": record.state,
            "label": record.spec.label(),
            "shards": total,
            "shards_finished": done,
            "error": record.error,
            "stats": dict(record.stats),
        }

    # -- waiting ----------------------------------------------------------

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no job is queued or running."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while any(not r.terminal for r in self._records.values()):
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
        return True

    def wait_job(self, job_id: str, timeout: float | None = None) -> str:
        """Block until one job reaches a terminal state; returns it."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while True:
                record = self._records.get(job_id)
                if record is None:
                    raise UnknownJob(f"no such job: {job_id!r}")
                if record.terminal:
                    return record.state
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return record.state
                self._idle.wait(remaining)

    # -- serve loop -------------------------------------------------------

    def serve(
        self,
        poll_seconds: float = 0.1,
        idle_exit_seconds: float | None = None,
    ) -> None:
        """Run the daemon loop: ingest spool submissions until stopped.

        The loop exits when ``<state_dir>/stop`` appears (graceful
        drain) or, with ``idle_exit_seconds``, after that long with no
        active jobs and an empty spool — the self-terminating mode CI
        uses.  A PID file is kept at ``<state_dir>/serve.pid`` while
        the loop runs.
        """
        stop_file = self.paths["root"] / "stop"
        pid_file = self.paths["root"] / "serve.pid"
        pid_file.write_text(str(os.getpid()) + "\n")
        self.start()
        idle_since: float | None = None
        try:
            while True:
                ingested = self.poll_spool()
                with self._lock:
                    busy = any(not r.terminal for r in self._records.values())
                if stop_file.exists():
                    break
                if ingested or busy:
                    idle_since = None
                elif idle_exit_seconds is not None:
                    now = time.monotonic()
                    if idle_since is None:
                        idle_since = now
                    elif now - idle_since >= idle_exit_seconds:
                        break
                time.sleep(poll_seconds)
        finally:
            self.stop(drain=True)
            pid_file.unlink(missing_ok=True)
            stop_file.unlink(missing_ok=True)

    def poll_spool(self) -> int:
        """Ingest pending spool requests (submit/cancel); returns how many."""
        handled = 0
        for request in sorted(self.paths["spool"].glob("*.json")):
            if request.name.endswith(".ack.json"):
                continue
            try:
                payload = json.loads(request.read_text())
            except (OSError, json.JSONDecodeError):
                continue  # mid-write; the atomic rename hasn't landed yet
            ack: dict
            try:
                if request.name.endswith(".cancel.json"):
                    state = self.cancel(payload.get("job_id", ""))
                    ack = {"ok": True, "state": state}
                else:
                    spec = GridSpec.from_json_dict(payload.get("spec", {}))
                    job_id = self.submit(spec, payload.get("tenant", "default"))
                    ack = {"ok": True, "job_id": job_id}
            except MixPBenchError as error:
                ack = {"ok": False, "error": str(error)}
            ack_path = request.with_name(request.stem + ".ack.json")
            tmp = ack_path.with_suffix(".tmp")
            tmp.write_text(json.dumps(ack, sort_keys=True))
            tmp.replace(ack_path)
            request.unlink(missing_ok=True)
            handled += 1
        return handled

    # -- internals --------------------------------------------------------

    def _recover(self) -> None:
        """Re-enqueue every non-terminal job from the reopened ledger."""
        for record in self._records.values():
            if record.terminal:
                continue
            with self._lock:
                if record.state == "running":
                    # back to the queue; the run journal replays its trials
                    self._set_state(record, "queued")
                self._enqueue(record, resume=True)

    def _enqueue(self, record: JobRecord, resume: bool) -> None:
        shards = record.spec.jobs()
        journal_path = (
            self.paths["runs"] / record.job_id / "journal.jsonl"
        )
        journal = RunJournal(
            self.paths["runs"], record.job_id, shards,
            resume=resume and journal_path.exists(),
        )
        active = _ActiveJob(record, shards, journal)
        state = getattr(journal, "state", None)
        pushed = 0
        for index, key in enumerate(active.keys):
            payload = state.finished.get(key) if state is not None else None
            if payload is not None:
                restored = JobResult.from_json_dict(payload, shards[index])
                restored.resumed = True
                active.results[index] = restored
                active.restored.add(index)
            else:
                self._queue.push(record.job_id, index)
                pushed += 1
        self._active[record.job_id] = active
        if pushed == 0:
            # every shard was journaled as done before the crash;
            # nothing to execute, only the terminal transition was lost
            self._finalize(active)

    def _worker_loop(self) -> None:
        affinity: str | None = None
        while True:
            popped = self._queue.pop(preferred=affinity, timeout=0.2)
            if popped is None:
                with self._lock:
                    if self._stopped:
                        return
                continue
            lane, index = popped
            affinity = lane
            self._run_one(lane, index)

    def _run_one(self, job_id: str, index: int) -> None:
        with self._lock:
            active = self._active.get(job_id)
            if active is None:
                return
            if active.cancel_requested:
                if active.in_flight == 0:
                    self._finalize(active)
                return
            record = active.record
            if record.state == "queued":
                self._set_state(record, "running")
                self._progress(job_id, "state", state="running")
            active.in_flight += 1
            shard = active.shards[index]
            key = active.keys[index]
            journal = active.journal
            replay = (
                journal.state.job_trials(key)
                if getattr(journal, "state", None) is not None else None
            )

        attempts = 0
        while True:
            try:
                if self.hooks.shard_started is not None:
                    self.hooks.shard_started(job_id, key)
                result = run_shard(
                    shard, journal=journal, key=key, replay=replay,
                    cache=self.cache,
                )
                if self.hooks.shard_finished is not None:
                    self.hooks.shard_finished(job_id, key, result)
                break
            except Exception:  # noqa: BLE001 — the worker "crashed"
                if attempts >= self.shard_retries:
                    result = JobResult(
                        job=shard, error=traceback.format_exc(),
                        error_kind="WorkerCrash",
                    )
                    break
                attempts += 1
                with self._lock:
                    active.redispatched += 1
                # replay what the dead attempt already journaled, so the
                # redispatched shard resumes instead of recomputing
                replay = load_run_state(journal.path).job_trials(key)

        self._progress(
            job_id, "shard", shard=shard.label(),
            status="ok" if result.ok else f"error:{result.error_kind}",
            evaluations=result.outcome.evaluations if result.ok else None,
        )
        with self._lock:
            active.results[index] = result
            active.in_flight -= 1
            done = (
                active.in_flight == 0
                if active.cancel_requested else active.unfinished == 0
            )
            if done:
                self._finalize(active)

    def _finalize(self, active: _ActiveJob) -> None:
        """Terminal transition: stats, results.json, journal, ledger.

        Caller holds the scheduler lock.
        """
        if active.finalized:
            return
        active.finalized = True
        record = active.record
        results = [result for result in active.results if result is not None]
        stats = _aggregate_stats(active)
        if active.cancel_requested:
            state = "cancelled"
        elif any(not result.ok for result in results):
            state = "failed"
        else:
            state = "done"
        error = None
        if state == "failed":
            kinds = sorted({
                result.error_kind or "unknown"
                for result in results if not result.ok
            })
            error = f"{len([r for r in results if not r.ok])} shard(s) failed: " \
                    + ", ".join(kinds)
        if state != "cancelled":
            job_dir = self.paths["jobs"] / record.job_id
            job_dir.mkdir(parents=True, exist_ok=True)
            # byte-for-byte the payload `mixpbench grid` saves for the
            # same spec (the attach/grid equivalence contract)
            (job_dir / "results.json").write_text(json.dumps(
                [result.to_json_dict() for result in results],
                indent=2, sort_keys=True,
            ))
        active.journal.close()
        self._set_state(record, state, error=error, stats=stats)
        self._active.pop(record.job_id, None)
        self._progress(record.job_id, "state", state=state, stats=stats)

    def _set_state(
        self,
        record: JobRecord,
        state: str,
        error: str | None = None,
        stats: dict | None = None,
    ) -> None:
        record.state = state
        if error is not None:
            record.error = error
        if stats is not None:
            record.stats = dict(stats)
        self._journal.append_state(record.job_id, state, error=error, stats=stats)
        if state in ("done", "failed", "cancelled"):
            self._idle.notify_all()

    def _progress(self, job_id: str, kind: str, **fields) -> None:
        """Advisory per-job event stream for ``mixpbench attach``."""
        job_dir = self.paths["jobs"] / job_id
        try:
            job_dir.mkdir(parents=True, exist_ok=True)
            event = {"kind": kind, "ts": round(time.time(), 3)}
            event.update(fields)
            with (job_dir / "progress.jsonl").open("a") as handle:
                handle.write(json.dumps(event, sort_keys=True, default=str) + "\n")
        except OSError:
            pass  # progress is best-effort; the journal is the ledger


def _aggregate_stats(active: _ActiveJob) -> dict:
    stats = {
        "shards": len(active.shards),
        "shards_done": sum(1 for r in active.results if r is not None and r.ok),
        "shards_failed": sum(
            1 for r in active.results if r is not None and not r.ok
        ),
        "shards_restored": len(active.restored),
        "redispatched_shards": active.redispatched,
        "evaluations": 0,
        "fresh_evaluations": 0,
        "persistent_hits": 0,
        "cache_hits": 0,
    }
    for result in active.results:
        if result is None or result.outcome is None:
            continue
        eval_stats = result.outcome.metadata.get("eval_stats") or {}
        for field in (
            "evaluations", "fresh_evaluations", "persistent_hits", "cache_hits",
        ):
            stats[field] += int(eval_stats.get(field, 0))
    return stats


def _check_tenant(tenant: str) -> str:
    tenant = (tenant or "").strip()
    if not tenant or not all(c.isalnum() or c in "-_." for c in tenant):
        raise MixPBenchError(
            f"invalid tenant {tenant!r}: use letters, digits, '-', '_', '.'"
        )
    return tenant
