"""Job specifications and records for the search service.

A *grid spec* is the client-side description of one search job: the
(program × algorithm × threshold) cross product plus the execution
options ``mixpbench grid`` takes.  It is deliberately the same shape
:func:`repro.harness.scheduler.grid_jobs` expands, so a submitted job
and a direct ``mixpbench grid`` of the same spec run the *same*
:class:`~repro.harness.scheduler.SearchJob` shards and produce
byte-identical outcomes (modulo the ``eval_stats`` telemetry block,
which records wall time and executor identity).

A *job record* is the service-side ledger entry: who submitted what,
and where it is in the ``queued → running → done/failed/cancelled``
lifecycle.  Both serialise to plain JSON for the service journal.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.core.batch import EXECUTOR_NAMES
from repro.errors import MixPBenchError
from repro.harness.scheduler import SearchJob, grid_jobs

__all__ = [
    "JOB_STATES", "TERMINAL_STATES", "GridSpec", "JobRecord", "SpecError",
]

#: the full job lifecycle; the first three are live, the rest terminal
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = ("done", "failed", "cancelled")

_DEFAULT_TIME_LIMIT = 24 * 3600.0


class SpecError(MixPBenchError):
    """A submitted grid spec is malformed."""


@dataclass(frozen=True)
class GridSpec:
    """One submittable search job: a grid plus its execution options.

    The shared evaluation cache is *not* part of the spec — the service
    owns it (every tenant's evaluations route through one store, which
    is what makes overlapping submissions dedupe); a direct
    ``mixpbench grid`` chooses its own.
    """

    programs: tuple[str, ...]
    algorithms: tuple[str, ...]
    thresholds: tuple[float, ...]
    max_evaluations: int | None = None
    time_limit_seconds: float = _DEFAULT_TIME_LIMIT
    executor: str = "serial"
    executor_workers: int | None = None
    trial_timeout: float | None = None
    max_retries: int = 0
    prune: bool = False
    shadow: bool = False
    #: trace-fusion fast path toggle (bit-identical either way; a
    #: submission with ``fuse=False`` runs its shards interpreted)
    fuse: bool = True
    #: store-rounding mode for emulated formats ("nearest" or
    #: "stochastic"); only the bit-width bisection strategy consumes it
    rounding: str = "nearest"
    #: skip configurations whose statically certified error bound
    #: violates the threshold (sound: skips only, never accepts)
    screen: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "programs", tuple(self.programs))
        object.__setattr__(self, "algorithms", tuple(self.algorithms))
        object.__setattr__(
            self, "thresholds", tuple(float(t) for t in self.thresholds)
        )
        if not self.programs or not self.algorithms or not self.thresholds:
            raise SpecError(
                "a grid spec needs at least one program, algorithm and threshold"
            )
        if self.executor not in EXECUTOR_NAMES:
            raise SpecError(
                f"unknown executor {self.executor!r}; "
                f"choose one of {EXECUTOR_NAMES}"
            )
        if self.rounding not in ("nearest", "stochastic"):
            raise SpecError(
                f"unknown rounding mode {self.rounding!r}; "
                "choose 'nearest' or 'stochastic'"
            )

    def jobs(self, cache_dir: str | None = None) -> list[SearchJob]:
        """Expand into the shards a scheduler dispatches."""
        return grid_jobs(
            self.programs, self.algorithms, self.thresholds,
            time_limit_seconds=self.time_limit_seconds,
            max_evaluations=self.max_evaluations,
            executor=self.executor,
            executor_workers=self.executor_workers,
            cache_dir=cache_dir,
            trial_timeout=self.trial_timeout,
            max_retries=self.max_retries,
            prune=self.prune,
            shadow=self.shadow,
            fuse=self.fuse,
            rounding=self.rounding,
            screen=self.screen,
        )

    @property
    def shards(self) -> int:
        return len(self.programs) * len(self.algorithms) * len(self.thresholds)

    def digest(self) -> str:
        """Stable content hash of the spec (used in job identifiers)."""
        blob = json.dumps(self.to_json_dict(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:12]

    def label(self) -> str:
        programs = ",".join(self.programs)
        algorithms = ",".join(self.algorithms)
        thresholds = ",".join(f"{t:g}" for t in self.thresholds)
        return f"{programs} x {algorithms} @ {thresholds}"

    def to_json_dict(self) -> dict:
        return {
            "programs": list(self.programs),
            "algorithms": list(self.algorithms),
            "thresholds": list(self.thresholds),
            "max_evaluations": self.max_evaluations,
            "time_limit_seconds": self.time_limit_seconds,
            "executor": self.executor,
            "executor_workers": self.executor_workers,
            "trial_timeout": self.trial_timeout,
            "max_retries": self.max_retries,
            "prune": self.prune,
            "shadow": self.shadow,
            "fuse": self.fuse,
            # Only serialised when set: specs that never touch emulated
            # formats keep their pre-format JSON shape, so their content
            # digests (and therefore job identifiers) are unchanged.
            **({"rounding": self.rounding} if self.rounding != "nearest" else {}),
            **({"screen": True} if self.screen else {}),
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping) -> "GridSpec":
        if not isinstance(payload, Mapping):
            raise SpecError(f"grid spec must be an object, got {type(payload).__name__}")
        known = {
            "programs", "algorithms", "thresholds", "max_evaluations",
            "time_limit_seconds", "executor", "executor_workers",
            "trial_timeout", "max_retries", "prune", "shadow", "fuse",
            "rounding", "screen",
        }
        unknown = set(payload) - known
        if unknown:
            raise SpecError(f"unknown grid spec field(s): {sorted(unknown)}")
        try:
            return cls(
                programs=tuple(payload["programs"]),
                algorithms=tuple(payload["algorithms"]),
                thresholds=tuple(payload["thresholds"]),
                max_evaluations=payload.get("max_evaluations"),
                time_limit_seconds=float(
                    payload.get("time_limit_seconds", _DEFAULT_TIME_LIMIT)
                ),
                executor=payload.get("executor", "serial"),
                executor_workers=payload.get("executor_workers"),
                trial_timeout=payload.get("trial_timeout"),
                max_retries=int(payload.get("max_retries", 0)),
                prune=bool(payload.get("prune", False)),
                shadow=bool(payload.get("shadow", False)),
                fuse=bool(payload.get("fuse", True)),
                rounding=payload.get("rounding", "nearest"),
                screen=bool(payload.get("screen", False)),
            )
        except KeyError as missing:
            raise SpecError(f"grid spec is missing {missing.args[0]!r}") from None


@dataclass
class JobRecord:
    """The service ledger's view of one submitted job."""

    job_id: str
    tenant: str
    spec: GridSpec
    state: str = "queued"
    error: str | None = None
    #: aggregate outcome statistics, filled at the terminal transition
    #: (shard counts, evaluations, shared-cache hits, redispatches)
    stats: dict = field(default_factory=dict)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def with_state(self, state: str) -> "JobRecord":
        return replace(self, state=state)

    def to_json_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "spec": self.spec.to_json_dict(),
            "state": self.state,
            "error": self.error,
            "stats": dict(self.stats),
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping) -> "JobRecord":
        return cls(
            job_id=payload["job_id"],
            tenant=payload.get("tenant", "default"),
            spec=GridSpec.from_json_dict(payload["spec"]),
            state=payload.get("state", "queued"),
            error=payload.get("error"),
            stats=dict(payload.get("stats", {})),
        )
