"""Durable on-disk job queue: the service's own crash-safe ledger.

Layout of a service state directory::

    <state_dir>/
        service.jsonl          # this module: the job ledger
        cache/                 # shared EvaluationCache (cross-tenant dedupe)
        runs/<job_id>/         # per-job RunJournal (trial-level resume)
            journal.jsonl
        jobs/<job_id>/
            results.json       # same payload `mixpbench grid` writes
            progress.jsonl     # event stream `mixpbench attach` tails
        spool/                 # client → daemon submission handshake

The ledger journal records two kinds of events — ``submit`` (the full
:class:`~repro.service.spec.JobRecord` including its spec) and
``state`` (a lifecycle transition, with aggregate stats at terminal
transitions) — using the same fsync'd single-line append discipline as
the grid :class:`~repro.core.checkpoint.RunJournal`.  A SIGKILL'd
service therefore loses at most the torn last line; on restart
:func:`load_service_state` rebuilds the ledger, the torn tail is
truncated, and every non-terminal job is re-enqueued (running jobs
resume trial-by-trial through their own run journals).
"""

from __future__ import annotations

from pathlib import Path

from repro.core.checkpoint import JournalError, JsonlJournal, read_journal_records
from repro.service.spec import JobRecord

__all__ = [
    "SERVICE_JOURNAL_VERSION", "ServiceJournal", "ServiceState",
    "load_service_state", "state_paths",
]

#: bump when the ledger record schema changes; a mismatch refuses to
#: reopen the state directory instead of silently mis-reading it
SERVICE_JOURNAL_VERSION = 1


def state_paths(state_dir: str | Path) -> dict[str, Path]:
    """The canonical layout of one service state directory."""
    root = Path(state_dir)
    return {
        "root": root,
        "journal": root / "service.jsonl",
        "cache": root / "cache",
        "fuse": root / "fuse",
        "runs": root / "runs",
        "jobs": root / "jobs",
        "spool": root / "spool",
    }


class ServiceState:
    """Everything the ledger knows: job records, in submission order."""

    def __init__(self) -> None:
        self.jobs: dict[str, JobRecord] = {}
        self.sequence = 0
        self.valid_bytes = 0
        self.torn_tail = False
        self.version: int | None = None

    def active(self, tenant: str | None = None) -> list[JobRecord]:
        """Non-terminal jobs, optionally restricted to one tenant."""
        return [
            record for record in self.jobs.values()
            if not record.terminal and (tenant is None or record.tenant == tenant)
        ]


def load_service_state(path: str | Path) -> ServiceState:
    """Rebuild the ledger from the journal, tolerating a torn tail."""
    state = ServiceState()
    records, state.valid_bytes, state.torn_tail = read_journal_records(path)
    for record in records:
        kind = record["kind"]
        if kind == "service":
            state.version = record.get("version")
        elif kind == "submit":
            job = JobRecord.from_json_dict(record.get("job", {}))
            state.jobs[job.job_id] = job
            state.sequence = max(state.sequence, int(record.get("sequence", 0)))
        elif kind == "state":
            job = state.jobs.get(record.get("job_id", ""))
            if job is not None:
                job.state = record.get("state", job.state)
                job.error = record.get("error", job.error)
                if record.get("stats"):
                    job.stats = dict(record["stats"])
        # unknown kinds are forward-compatible no-ops
    return state


class ServiceJournal(JsonlJournal):
    """The fsync'd job ledger of one service state directory.

    Opening an existing directory verifies the journal version and
    truncates any torn tail; a fresh directory gets a header record.
    The loaded :class:`ServiceState` is exposed as ``state`` so the
    scheduler can re-enqueue survivors.
    """

    def __init__(self, state_dir: str | Path) -> None:
        path = state_paths(state_dir)["journal"]
        self.state = load_service_state(path)
        if path.exists() and self.state.version is None and self.state.jobs:
            raise JournalError(
                f"service journal {path} has records but no header; "
                "refusing to reopen"
            )
        if (
            self.state.version is not None
            and self.state.version != SERVICE_JOURNAL_VERSION
        ):
            raise JournalError(
                f"service journal {path} has version {self.state.version!r}, "
                f"this code writes {SERVICE_JOURNAL_VERSION}; refusing to reopen"
            )
        truncate_at = self.state.valid_bytes if self.state.torn_tail else None
        super().__init__(path, truncate_at=truncate_at)
        if self.state.version is None:
            self.append("service", version=SERVICE_JOURNAL_VERSION)
            self.state.version = SERVICE_JOURNAL_VERSION

    def append_submit(self, record: JobRecord, sequence: int) -> None:
        self.append("submit", job=record.to_json_dict(), sequence=sequence)

    def append_state(
        self,
        job_id: str,
        state: str,
        error: str | None = None,
        stats: dict | None = None,
    ) -> None:
        fields: dict = {"job_id": job_id, "state": state}
        if error is not None:
            fields["error"] = error
        if stats:
            fields["stats"] = dict(stats)
        self.append("state", **fields)
