"""Client side of the service: submit, status, attach, cancel.

The client and the daemon share nothing but the state directory.  The
submission handshake is a spool protocol — the client atomically drops
``spool/<token>.json`` (write-to-temp, rename), the daemon ingests it
and answers with ``spool/<token>.ack.json`` carrying either the
assigned job id or a rejection (quota, draining, malformed spec).
Everything else is read-only: ``status`` rebuilds the ledger from the
fsync'd service journal, ``attach`` tails the job's advisory
``progress.jsonl`` and polls the ledger for the terminal state.  A
client therefore never needs the daemon alive to *inspect* state —
only to get new work accepted.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from pathlib import Path
from typing import Callable

from repro.core.checkpoint import load_run_state
from repro.errors import MixPBenchError
from repro.service.queue import load_service_state, state_paths
from repro.service.spec import GridSpec

__all__ = [
    "ServiceError", "submit_request", "service_status", "job_status",
    "attach", "request_cancel", "results_path", "ATTACH_EXIT_CODES",
]

#: `mixpbench attach` exit codes, one per terminal state
ATTACH_EXIT_CODES = {"done": 0, "failed": 1, "cancelled": 3}


class ServiceError(MixPBenchError):
    """The service rejected a request or cannot be reached."""


def submit_request(
    state_dir: str | Path,
    spec: GridSpec,
    tenant: str = "default",
    timeout: float = 30.0,
    poll_seconds: float = 0.05,
) -> str:
    """Submit a spec through the spool; returns the assigned job id.

    Raises :class:`ServiceError` when the daemon rejects the job or
    does not acknowledge within ``timeout`` (usually: nothing is
    serving this state directory).
    """
    paths = state_paths(state_dir)
    paths["spool"].mkdir(parents=True, exist_ok=True)
    token = uuid.uuid4().hex
    request = paths["spool"] / f"{token}.json"
    ack_path = paths["spool"] / f"{token}.ack.json"
    payload = {"tenant": tenant, "spec": spec.to_json_dict()}
    tmp = request.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True))
    tmp.replace(request)

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if ack_path.exists():
            try:
                ack = json.loads(ack_path.read_text())
            except (OSError, json.JSONDecodeError):
                time.sleep(poll_seconds)
                continue
            ack_path.unlink(missing_ok=True)
            if ack.get("ok"):
                return ack["job_id"]
            raise ServiceError(f"submission rejected: {ack.get('error')}")
        time.sleep(poll_seconds)
    request.unlink(missing_ok=True)
    raise ServiceError(
        f"no acknowledgement after {timeout:g}s — is `mixpbench serve` "
        f"running on {paths['root']}?"
    )


def service_status(state_dir: str | Path) -> dict:
    """Ledger snapshot of every job (read-only; daemon not required)."""
    paths = state_paths(state_dir)
    state = load_service_state(paths["journal"])
    jobs = []
    for record in state.jobs.values():
        jobs.append(_job_payload(paths, record))
    pid_file = paths["root"] / "serve.pid"
    serving = None
    if pid_file.exists():
        try:
            pid = int(pid_file.read_text().strip())
            os.kill(pid, 0)  # liveness probe, no signal delivered
            serving = pid
        except (ValueError, ProcessLookupError, PermissionError):
            serving = None
    return {"jobs": jobs, "serving_pid": serving}


def job_status(state_dir: str | Path, job_id: str) -> dict:
    """Ledger snapshot of one job."""
    paths = state_paths(state_dir)
    state = load_service_state(paths["journal"])
    record = state.jobs.get(job_id)
    if record is None:
        raise ServiceError(f"no such job: {job_id!r}")
    return _job_payload(paths, record)


def _job_payload(paths: dict[str, Path], record) -> dict:
    total = record.spec.shards
    if record.terminal:
        finished = int(record.stats.get("shards_done", 0)
                       + record.stats.get("shards_failed", 0))
    else:
        # live progress comes from the job's own run journal
        run_journal = paths["runs"] / record.job_id / "journal.jsonl"
        finished = len(load_run_state(run_journal).finished)
    return {
        "job_id": record.job_id,
        "tenant": record.tenant,
        "state": record.state,
        "label": record.spec.label(),
        "shards": total,
        "shards_finished": finished,
        "error": record.error,
        "stats": dict(record.stats),
    }


def results_path(state_dir: str | Path, job_id: str) -> Path:
    return state_paths(state_dir)["jobs"] / job_id / "results.json"


def attach(
    state_dir: str | Path,
    job_id: str,
    stream: Callable[[str], None] | None = None,
    poll_seconds: float = 0.2,
    timeout: float | None = None,
) -> str:
    """Follow a job to its terminal state; returns that state.

    Progress events appended by the scheduler are forwarded to
    ``stream`` (one formatted line per event) as they appear, so an
    attached client sees shards finish live.  Raises
    :class:`ServiceError` on an unknown job or on timeout.
    """
    paths = state_paths(state_dir)
    progress = paths["jobs"] / job_id / "progress.jsonl"
    offset = 0
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        offset = _drain_progress(progress, offset, stream)
        state = load_service_state(paths["journal"])
        record = state.jobs.get(job_id)
        if record is None:
            raise ServiceError(f"no such job: {job_id!r}")
        if record.terminal:
            _drain_progress(progress, offset, stream)
            return record.state
        if deadline is not None and time.monotonic() >= deadline:
            raise ServiceError(
                f"job {job_id} still {record.state} after {timeout:g}s"
            )
        time.sleep(poll_seconds)


def _drain_progress(
    path: Path, offset: int, stream: Callable[[str], None] | None
) -> int:
    if stream is None or not path.exists():
        return offset
    data = path.read_bytes()
    for raw_line in data[offset:].splitlines(keepends=True):
        if not raw_line.endswith(b"\n"):
            break  # mid-append; pick it up on the next poll
        try:
            event = json.loads(raw_line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            offset += len(raw_line)
            continue
        stream(_format_event(event))
        offset += len(raw_line)
    return offset


def _format_event(event: dict) -> str:
    kind = event.get("kind")
    if kind == "state":
        extra = ""
        stats = event.get("stats") or {}
        if stats:
            extra = (
                f"  (shards {stats.get('shards_done', 0)}/{stats.get('shards', 0)}"
                f", EV {stats.get('evaluations', 0)}"
                f", shared-cache hits {stats.get('persistent_hits', 0)})"
            )
        return f"state: {event.get('state')}{extra}"
    if kind == "shard":
        evaluations = event.get("evaluations")
        suffix = f", EV {evaluations}" if evaluations is not None else ""
        return f"shard {event.get('shard')}: {event.get('status')}{suffix}"
    return json.dumps(event, sort_keys=True)


def request_cancel(state_dir: str | Path, job_id: str) -> None:
    """Ask the serving daemon to cancel a job (via the control spool).

    Cancellation is delivered through a ``cancel`` spool request the
    daemon ingests on its next poll; this returns once the request is
    dropped, not once the job is cancelled — follow up with
    :func:`job_status` or :func:`attach`.
    """
    paths = state_paths(state_dir)
    paths["spool"].mkdir(parents=True, exist_ok=True)
    token = uuid.uuid4().hex
    request = paths["spool"] / f"{token}.cancel.json"
    tmp = request.with_suffix(".tmp")
    tmp.write_text(json.dumps({"job_id": job_id}, sort_keys=True))
    tmp.replace(request)
