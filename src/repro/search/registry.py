"""Search strategy registry: paper abbreviations → factories.

The evaluation tables use two-letter abbreviations (Section IV):
CB, CM, DD, HR, HC, GA.  Full names are accepted too.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import MixPBenchError
from repro.search.base import SearchStrategy
from repro.search.bitwidth import BitWidthSearch
from repro.search.combinational import CombinationalSearch
from repro.search.compositional import CompositionalSearch
from repro.search.delta_debug import DeltaDebugSearch
from repro.search.genetic import GeneticSearch
from repro.search.hier_cluster import ClusterHierarchicalSearch
from repro.search.ladder import PrecisionLadderSearch
from repro.search.hier_comp import HierarchicalCompositionalSearch
from repro.search.hierarchical import HierarchicalSearch
from repro.search.random_search import RandomSearch

__all__ = [
    "make_strategy", "available_strategies", "register_strategy",
    "strategy_kwargs", "ALGORITHM_ORDER",
]

#: column order used by the paper's tables
ALGORITHM_ORDER = ("CB", "CM", "DD", "HR", "HC", "GA")

_FACTORIES: dict[str, Callable[..., SearchStrategy]] = {}
_CANONICAL: dict[str, str] = {}


def register_strategy(factory: Callable[..., SearchStrategy], *names: str) -> None:
    """Register a strategy factory under one or more names."""
    if not names:
        raise ValueError("at least one name is required")
    canonical = names[0].upper()
    for name in names:
        key = name.strip().lower()
        _FACTORIES[key] = factory
        _CANONICAL[key] = canonical


def make_strategy(name: str, **kwargs) -> SearchStrategy:
    """Instantiate a strategy by abbreviation or full name."""
    key = name.strip().lower()
    try:
        factory = _FACTORIES[key]
    except KeyError:
        raise MixPBenchError(
            f"unknown search strategy {name!r}; available: "
            f"{sorted(set(_CANONICAL.values()))}"
        ) from None
    return factory(**kwargs)


def canonical_name(name: str) -> str:
    """Paper abbreviation for a strategy name."""
    key = name.strip().lower()
    if key not in _CANONICAL:
        raise MixPBenchError(f"unknown search strategy {name!r}")
    return _CANONICAL[key]


def available_strategies() -> tuple[str, ...]:
    return ALGORITHM_ORDER


def strategy_kwargs(name: str, *, rounding: str | None = None) -> dict:
    """Factory kwargs for options only some strategies understand.

    ``rounding`` selects the emulated-format store-rounding mode and is
    meaningful only to the bit-width bisection search; for every other
    strategy the option is dropped so mixed grids
    (``--algorithms DD BW --rounding stochastic``) stay runnable.
    """
    kwargs: dict = {}
    if rounding is not None and canonical_name(name) == "BW":
        kwargs["rounding"] = rounding
    return kwargs


register_strategy(CombinationalSearch, "CB", "combinational")
register_strategy(CompositionalSearch, "CM", "compositional")
register_strategy(DeltaDebugSearch, "DD", "delta-debugging", "ddebug", "delta_debug")
register_strategy(HierarchicalSearch, "HR", "hierarchical")
register_strategy(
    HierarchicalCompositionalSearch,
    "HC", "hierarchical-compositional", "hier-comp",
)
register_strategy(GeneticSearch, "GA", "genetic", "genetic-algorithm")
# Extension (not in the paper's evaluation): the cluster-aware
# hierarchical redesign the paper's Section V calls for.
register_strategy(ClusterHierarchicalSearch, "HRC", "hierarchical-clustered")
register_strategy(RandomSearch, "RS", "random", "random-search")
register_strategy(PrecisionLadderSearch, "LD", "precision-ladder", "ladder")
# Extension: per-cluster mantissa-width bisection over the emulated
# arbitrary-precision formats (e8m*/e11m*).
register_strategy(BitWidthSearch, "BW", "bisect", "bitwidth", "bitwidth-bisection")
