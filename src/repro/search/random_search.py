"""Random search (RS) — the standard baseline (extension).

Not one of the paper's six algorithms, but the baseline any search
comparison should include: sample configurations uniformly over subset
densities for a fixed budget and keep the best passing one.  GA must
beat this to justify its machinery; in our grid it generally does,
because selection reuses information random sampling throws away.
"""

from __future__ import annotations

import numpy as np

from repro.core.evaluator import ConfigurationEvaluator
from repro.core.types import PrecisionConfig
from repro.search.base import SearchStrategy

__all__ = ["RandomSearch"]


class RandomSearch(SearchStrategy):
    """Uniform random sampling of lowered subsets."""

    strategy_name = "random"

    def __init__(self, budget: int = 30, seed: int = 2020) -> None:
        if budget < 1:
            raise ValueError("budget must be positive")
        self.budget = budget
        self.seed = seed

    def describe(self) -> dict:
        info = super().describe()
        info.update(budget=self.budget, seed=self.seed)
        return info

    def _search(self, evaluator: ConfigurationEvaluator) -> PrecisionConfig | None:
        space = self.space(evaluator)
        locations = space.locations()
        n = len(locations)
        rng = np.random.default_rng(self.seed)

        best: PrecisionConfig | None = None
        best_speedup = float("-inf")
        attempts = 0
        while attempts < self.budget:
            # density-stratified sampling: otherwise nearly every draw
            # lowers ~n/2 locations and the sparse/dense extremes are
            # never seen
            density = rng.uniform(0.0, 1.0)
            mask = rng.random(n) < density
            if not mask.any():
                continue
            attempts += 1
            lowered = [loc for loc, bit in zip(locations, mask) if bit]
            trial = evaluator.evaluate(self._lower(space, lowered))
            if trial.passed and trial.speedup > best_speedup:
                best = trial.config
                best_speedup = trial.speedup
        return best
