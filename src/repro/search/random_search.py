"""Random search (RS) — the standard baseline (extension).

Not one of the paper's six algorithms, but the baseline any search
comparison should include: sample configurations uniformly over subset
densities for a fixed budget and keep the best passing one.  GA must
beat this to justify its machinery; in our grid it generally does,
because selection reuses information random sampling throws away.
"""

from __future__ import annotations

import numpy as np

from repro.core.batch import DEFAULT_BATCH_SIZE, chunked
from repro.core.evaluator import ConfigurationEvaluator
from repro.core.types import PrecisionConfig
from repro.search.base import SearchStrategy

__all__ = ["RandomSearch"]


class RandomSearch(SearchStrategy):
    """Uniform random sampling of lowered subsets."""

    strategy_name = "random"

    def __init__(
        self, budget: int = 30, seed: int = 2020,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if budget < 1:
            raise ValueError("budget must be positive")
        self.budget = budget
        self.seed = seed
        self.batch_size = batch_size

    def describe(self) -> dict:
        info = super().describe()
        info.update(budget=self.budget, seed=self.seed)
        return info

    def _search(self, evaluator: ConfigurationEvaluator) -> PrecisionConfig | None:
        space = self.space(evaluator)
        locations = space.locations()
        n = len(locations)
        rng = np.random.default_rng(self.seed)

        # The rng stream is independent of evaluation results, so the
        # whole sample can be drawn up front (the exact draws the
        # serial loop would make) and evaluated in batches.
        samples: list[PrecisionConfig] = []
        while len(samples) < self.budget:
            # density-stratified sampling: otherwise nearly every draw
            # lowers ~n/2 locations and the sparse/dense extremes are
            # never seen
            density = rng.uniform(0.0, 1.0)
            mask = rng.random(n) < density
            if not mask.any():
                continue
            lowered = [loc for loc, bit in zip(locations, mask) if bit]
            samples.append(self._lower(space, lowered))

        best: PrecisionConfig | None = None
        best_speedup = float("-inf")
        for chunk in chunked(samples, self.batch_size):
            for trial in evaluator.evaluate_many(chunk):
                if trial.passed and trial.speedup > best_speedup:
                    best = trial.config
                    best_speedup = trial.speedup
        return best
