"""Program-structure hierarchy shared by the HR and HC strategies.

CRAFT's hierarchical searches walk the program's structural tree —
application → modules → functions → individual variables — instead of
the flat location list.  The tree is built from the metadata Typeforge
attaches to every variable (its declaring function and module).

Hierarchical searches operate at *variable* granularity: the paper
notes they cannot incorporate cluster information "without breaking
the notion of hierarchy", which is why they waste evaluations on
non-compiling configurations and sometimes converge to suboptimal
solutions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.variables import SearchSpace

__all__ = ["HierarchyNode", "build_hierarchy", "order_children"]


@dataclass
class HierarchyNode:
    """One structural component: a named set of variable uids."""

    label: str
    variables: frozenset[str]
    children: list["HierarchyNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def __len__(self) -> int:
        return len(self.variables)

    def walk(self):
        """Pre-order traversal."""
        yield self
        for child in self.children:
            yield from child.walk()


def order_children(nodes: list, score_fn) -> list:
    """Sort sibling nodes least-sensitive-first by ``score_fn``.

    Converting the big insensitive groups early is what saves guided
    HR/HRC evaluations; ties (and a ``None`` score function) keep the
    label order, so an absent ordering leaves the tree unchanged.
    """
    if score_fn is None:
        return nodes
    return sorted(nodes, key=lambda n: (score_fn(n.variables), n.label))


def build_hierarchy(space: SearchSpace, order=None) -> HierarchyNode:
    """Application → module → function → variable tree for a program.

    Single-child levels are collapsed (a one-module program goes
    straight from the root to its functions) so the search does not
    waste an evaluation re-testing an identical variable set.  An
    optional shadow ``order`` arranges siblings at every level so the
    least sensitive components are visited first.
    """
    score_fn = None if order is None else order.score_of
    variables = space.variables
    root = HierarchyNode("<application>", frozenset(v.uid for v in variables))

    by_module: dict[str, list] = {}
    for var in variables:
        by_module.setdefault(var.module, []).append(var)

    module_nodes = []
    for module, module_vars in sorted(by_module.items()):
        module_node = HierarchyNode(
            f"module:{module}", frozenset(v.uid for v in module_vars)
        )
        by_function: dict[str, list] = {}
        for var in module_vars:
            by_function.setdefault(var.function, []).append(var)
        for function, fn_vars in sorted(by_function.items()):
            fn_node = HierarchyNode(
                f"function:{function}", frozenset(v.uid for v in fn_vars)
            )
            if len(fn_vars) > 1:
                fn_node.children = order_children([
                    HierarchyNode(f"variable:{v.uid}", frozenset({v.uid}))
                    for v in sorted(fn_vars, key=lambda v: v.uid)
                ], score_fn)
            module_node.children.append(fn_node)
        module_node.children = order_children(module_node.children, score_fn)
        if len(module_node.children) == 1 and module_node.children[0].variables == module_node.variables:
            module_node = module_node.children[0]
        module_nodes.append(module_node)

    module_nodes = order_children(module_nodes, score_fn)
    if len(module_nodes) == 1 and module_nodes[0].variables == root.variables:
        root.children = module_nodes[0].children
    else:
        root.children = module_nodes
    return root
