"""Delta-debugging (DD) search — the Precimonious strategy.

"Use a modified binary search on the list of program variables or
clusters.  It terminates when it has reached a local minimum in which
it cannot convert any more variables" (paper Section II-B).

The implementation frames the problem the way Precimonious does: find
a *minimal* set H of locations that must stay in high precision so
that lowering everything else passes verification.  It first tries
H = ∅ (the whole program in low precision) — which is why DD
"terminates immediately due to its initial criteria" at relaxed
thresholds in the paper's Table V — and otherwise runs the classic
ddmin partition-refinement loop over the location list, evaluating
complements and subsets at increasing granularity until H is
1-minimal.  Stricter thresholds force finer partitions and many more
evaluated configurations, reproducing the paper's observation that
DD's EV explodes (e.g. 2 → 200 on Blackscholes) as the quality bound
tightens.
"""

from __future__ import annotations

from repro.core.evaluator import ConfigurationEvaluator
from repro.core.results import TrialRecord
from repro.core.types import PrecisionConfig
from repro.search.base import SearchStrategy

__all__ = ["DeltaDebugSearch"]


class DeltaDebugSearch(SearchStrategy):
    """Precimonious-style delta debugging over the location list."""

    strategy_name = "delta-debugging"

    def _search(self, evaluator: ConfigurationEvaluator) -> PrecisionConfig | None:
        space = self.space(evaluator)
        all_locations = list(self.ordered_locations(evaluator, space))
        # Partition refinement walks the list in this order, so a
        # sensitivity ordering makes the early chunks the sensitive
        # ones — exactly the sets ddmin wants to isolate first.
        index = {loc: i for i, loc in enumerate(all_locations)}

        def passes(high: frozenset[str]) -> TrialRecord:
            lowered = [loc for loc in all_locations if loc not in high]
            if not lowered:
                # Keeping everything in high precision is the original
                # program: trivially passing, speedup 1.
                return None
            return evaluator.evaluate(self._lower(space, lowered))

        # Initial criterion: the all-low configuration.
        trial = passes(frozenset())
        if trial is not None and trial.passed:
            return trial.config

        high = self._ddmin(frozenset(all_locations), passes, index)
        lowered = [loc for loc in all_locations if loc not in high]
        if not lowered:
            return None  # local minimum keeps everything in double
        final = evaluator.evaluate(self._lower(space, lowered))
        return final.config if final.passed else None

    @staticmethod
    def _ddmin(high: frozenset, passes, index=None) -> frozenset:
        """Classic ddmin: shrink ``high`` while `lower(all - high)`
        keeps passing, until 1-minimal.  ``index`` fixes the member
        enumeration order; with the canonical sorted location list it
        degenerates to ``sorted(high)``, keeping the unguided search
        byte-identical."""
        chunks = 2
        while len(high) >= 1:
            members = sorted(high) if index is None else sorted(high, key=index.__getitem__)
            size = max(1, len(members) // chunks)
            partitions = [
                frozenset(members[i:i + size]) for i in range(0, len(members), size)
            ]
            reduced = False
            # Try each partition alone as the new high set.
            for part in partitions:
                if part == high:
                    continue
                trial = passes(part)
                if trial is not None and trial.passed:
                    high = part
                    chunks = 2
                    reduced = True
                    break
            if reduced:
                continue
            # Try each complement.
            if len(partitions) > 2:
                for part in partitions:
                    complement = high - part
                    if not complement or complement == high:
                        continue
                    trial = passes(complement)
                    if trial is not None and trial.passed:
                        high = complement
                        chunks = max(chunks - 1, 2)
                        reduced = True
                        break
            if reduced:
                continue
            if chunks >= len(high):
                break  # 1-minimal
            chunks = min(len(high), chunks * 2)
        return high
