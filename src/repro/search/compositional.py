"""Compositional (CM) search.

"Replace each variable or cluster individually, then repeatedly
combine passing configurations ...  The search terminates when there
are no compositions left" (paper Section II-B).

Stage 1 evaluates every location on its own.  Stage 2 keeps a pool of
passing lowered-sets and repeatedly unions pairs from the pool,
evaluating each new union; passing unions join the pool and generate
further compositions.  On programs with many independent passing
locations the pool grows combinatorially — this is the strategy the
paper reports timing out on several applications (the empty gray
cells of Table V), and the simulated 24-hour budget reproduces that.
"""

from __future__ import annotations

from repro.core.evaluator import ConfigurationEvaluator
from repro.core.types import PrecisionConfig
from repro.search.base import SearchStrategy

__all__ = ["CompositionalSearch"]


class CompositionalSearch(SearchStrategy):
    """Individual evaluation followed by iterative composition."""

    strategy_name = "compositional"

    def __init__(self, use_union_heuristic: bool = True) -> None:
        """``use_union_heuristic`` enables the maximal-union shortcut;
        disabling it reverts to pure pairwise composition (exposed for
        the ablation benchmarks)."""
        self.use_union_heuristic = use_union_heuristic

    def describe(self) -> dict:
        info = super().describe()
        info["use_union_heuristic"] = self.use_union_heuristic
        return info

    def _search(self, evaluator: ConfigurationEvaluator) -> PrecisionConfig | None:
        space = self.space(evaluator)
        # Most-sensitive-first under a shadow ordering: the sensitive
        # singletons fail fast and drop out of the composition pool
        # early; unguided, this is the canonical location order.
        locations = self.ordered_locations(evaluator, space)

        passing: list[frozenset[str]] = []
        best: PrecisionConfig | None = None
        best_speedup = float("-inf")

        def consider(lowered: frozenset[str]) -> bool:
            nonlocal best, best_speedup
            trial = evaluator.evaluate(self._lower(space, lowered))
            if trial.passed and trial.speedup > best_speedup:
                best = trial.config
                best_speedup = trial.speedup
            return trial.passed

        for location in locations:
            lowered = frozenset({location})
            if consider(lowered):
                passing.append(lowered)

        # Heuristic stage ("heuristics are used to reduce the number of
        # configurations"): try the maximal composition — the union of
        # every passing individual — first.  If it passes, every other
        # composition is one of its subsets and the search is done.
        if self.use_union_heuristic and len(passing) > 1:
            maximal = frozenset().union(*passing)
            if consider(maximal):
                return best

        # Otherwise compose passing sets pairwise until no new passing
        # union appears.  `tried` prevents re-evaluating the same union
        # via different pairings.
        tried: set[frozenset[str]] = set(passing)
        frontier = list(passing)
        while frontier:
            new_frontier: list[frozenset[str]] = []
            for candidate in frontier:
                for other in passing:
                    union = candidate | other
                    if union == candidate or union == other or union in tried:
                        continue
                    tried.add(union)
                    if consider(union):
                        new_frontier.append(union)
            passing.extend(new_frontier)
            frontier = new_frontier
        return best
