"""Genetic algorithm (GA) search — the strategy the paper adds to CRAFT.

"GA starts with a population of random configurations, where a
configuration is an array of bits that represents the precision of the
program variables ...  the fittest individual is the one that gives
the best performance while satisfying the error criteria ...  The
algorithm terminates when a maximum number of generations have been
created or when the best-fit individual of the population doesn't
change for several iterations" (paper Section II-B).

The genome is one bit per cluster (1 = lowered).  Fitness is the
measured speedup for passing configurations and a sub-unity penalty
for failing ones, so selection pressure points at fast *valid*
configurations.  The small iteration ceiling mirrors the paper's
setting ("we significantly decrease the search time of GA by providing
a small number of maximum iterations"), which both bounds EV — making
GA's analysis time the easiest to predict — and occasionally makes it
miss the optimum, as the paper observes on Hotspot.
"""

from __future__ import annotations

import numpy as np

from repro.core.evaluator import ConfigurationEvaluator
from repro.core.results import TrialRecord
from repro.core.types import PrecisionConfig
from repro.search.base import SearchStrategy

__all__ = ["GeneticSearch"]


class GeneticSearch(SearchStrategy):
    """Evolutionary search over cluster bit-strings."""

    strategy_name = "genetic"

    def __init__(
        self,
        population_size: int = 6,
        max_generations: int = 10,
        stagnation_limit: int = 4,
        crossover_rate: float = 0.9,
        mutation_scale: float = 1.0,
        seed: int = 2020,
    ) -> None:
        if population_size < 2:
            raise ValueError("population_size must be at least 2")
        self.population_size = population_size
        self.max_generations = max_generations
        self.stagnation_limit = stagnation_limit
        self.crossover_rate = crossover_rate
        self.mutation_scale = mutation_scale
        self.seed = seed

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            population_size=self.population_size,
            max_generations=self.max_generations,
            stagnation_limit=self.stagnation_limit,
            seed=self.seed,
        )
        return info

    def _search(self, evaluator: ConfigurationEvaluator) -> PrecisionConfig | None:
        space = self.space(evaluator)
        locations = space.locations()
        n = len(locations)
        rng = np.random.default_rng(self.seed)
        # Shadow guidance reshapes the *seeding* only: genome layout,
        # crossover and mutation are untouched, so the unguided run is
        # byte-identical to the order-free code path.
        order = getattr(evaluator, "location_order", None)
        asc: list[int] | None = None
        if order is not None:
            position = {loc: i for i, loc in enumerate(locations)}
            ranked = order.arrange(locations, space)  # most sensitive first
            asc = [position[loc] for loc in reversed(ranked)]

        def to_config(genome: np.ndarray) -> PrecisionConfig:
            lowered = [loc for loc, bit in zip(locations, genome) if bit]
            if not lowered:
                return PrecisionConfig()
            return self._lower(space, lowered)

        threshold = evaluator.quality.threshold

        def fitness(trial: TrialRecord | None) -> float:
            if trial is None:
                return 0.6  # the unchanged program: valid, no gain
            if trial.passed:
                return max(trial.speedup, 0.7)
            # Graded penalty: failing individuals score by how close
            # their error is to the threshold, giving selection a
            # gradient toward the valid region (without it, fragile
            # programs leave the whole population equally unfit and
            # evolution stalls).
            error = trial.error_value
            if error != error:  # NaN output: worst possible
                return 0.01
            return 0.5 * threshold / (threshold + error)

        def evaluate_genome(genome: np.ndarray) -> tuple[float, TrialRecord | None]:
            if not genome.any():
                return fitness(None), None
            trial = evaluator.evaluate(to_config(genome))
            return fitness(trial), trial

        def evaluate_population(genomes) -> list[tuple[float, TrialRecord | None]]:
            # A generation is embarrassingly parallel: fan the raw
            # executions out first, then score serially (the replayed
            # bookkeeping keeps the trial log identical to one-by-one
            # evaluation).
            evaluator.prefetch(
                to_config(genome) for genome in genomes if genome.any()
            )
            return [evaluate_genome(genome) for genome in genomes]

        # Random initial population with graded density plus a few
        # random singletons: sparse individuals are far more likely to
        # be valid on fragile programs, dense ones capture wholesale
        # conversions — together they give evolution a foothold at both
        # ends of the search space.
        # A shuffled stream of singleton genomes: initial seeds and the
        # per-generation random immigrants draw from it without
        # replacement, so the minimal end of the space is sampled
        # systematically rather than with collisions.
        # Guided, the stream serves least-sensitive singletons first
        # (the ones most likely to pass); unguided it stays random.
        singleton_stream = iter(
            asc if asc is not None else (rng.permutation(n) if n else [])
        )

        def next_singleton() -> np.ndarray | None:
            index = next(singleton_stream, None)
            if index is None:
                return None
            genome = np.zeros(n, dtype=bool)
            genome[index] = True
            return genome

        population = []
        for i in range(self.population_size):
            genome = None
            if i % 2 == 0:
                genome = next_singleton()
            if genome is None:
                if asc is not None:
                    # Density genomes become least-sensitive prefixes:
                    # the k most conversion-tolerant locations.
                    k = int(round(n * (i + 1) / (self.population_size + 1)))
                    genome = np.zeros(n, dtype=bool)
                    genome[asc[:k]] = True
                else:
                    genome = rng.random(n) < (i + 1) / (self.population_size + 1)
            population.append(genome)
        scored = evaluate_population(population)

        best_trial: TrialRecord | None = None
        best_passing_fitness = float("-inf")
        best_seen_fitness = float("-inf")
        stagnant = 0
        for _generation in range(self.max_generations):
            generation_best = max(fit for fit, _trial in scored)
            for (fit, trial) in scored:
                if trial is not None and trial.passed and fit > best_passing_fitness:
                    best_passing_fitness = fit
                    best_trial = trial
            # Stagnation tracks the best-fit individual overall (the
            # paper's criterion), so a population still climbing the
            # failing-fitness gradient keeps evolving.
            if generation_best > best_seen_fitness + 1e-9:
                best_seen_fitness = generation_best
                stagnant = 0
            else:
                stagnant += 1
            if stagnant >= self.stagnation_limit:
                break

            population = self._next_generation(
                population, scored, rng, n, next_singleton,
            )
            scored = evaluate_population(population)

        # Final sweep over the last generation.
        for (fit, trial) in scored:
            if trial is not None and trial.passed and fit > best_passing_fitness:
                best_passing_fitness = fit
                best_trial = trial
        return best_trial.config if best_trial is not None else None

    def _next_generation(self, population, scored, rng, n, next_singleton):
        """Tournament selection, uniform crossover, bit-flip mutation,
        plus one random-immigrant singleton per generation (a standard
        diversity device that keeps the minimal end of the space
        sampled when the population drifts dense)."""
        fitnesses = np.array([fit for fit, _trial in scored])

        def tournament() -> np.ndarray:
            i, j = rng.integers(0, len(population), size=2)
            return population[i] if fitnesses[i] >= fitnesses[j] else population[j]

        # Elitism: carry the fittest individual over unchanged.
        elite = population[int(np.argmax(fitnesses))]
        offspring = [elite.copy()]
        if self.population_size > 2:
            immigrant = next_singleton()
            if immigrant is not None:
                offspring.append(immigrant)
        mutation_rate = min(0.5, self.mutation_scale / max(n, 1))
        while len(offspring) < self.population_size:
            mother, father = tournament(), tournament()
            if rng.random() < self.crossover_rate:
                mask = rng.random(n) < 0.5
                child = np.where(mask, mother, father)
            else:
                child = mother.copy()
            flip = rng.random(n) < mutation_rate
            child = np.logical_xor(child, flip)
            offspring.append(child)
        return offspring
