"""Bit-width bisection search (BW) — arbitrary-mantissa extension.

The paper's search strategies choose between the three hardware
precisions.  With emulated formats (``e8m<2..23>`` / ``e11m<2..52>``,
see :mod:`repro.core.types`) the per-location decision becomes *how
many mantissa bits* a location needs, and the natural algorithm is a
binary search over the width axis:

1. Walk the locations at cluster granularity, most sensitive first
   when a shadow ordering is attached (``--order shadow``), in the
   canonical sorted order otherwise.
2. For each location, first try the widest emulated width (``e8m23``,
   numerically identical to fp32 storage).  If even that fails
   verification the location stays at double — the same "high set"
   outcome delta debugging reaches, paid with one trial.
3. Otherwise bisect the mantissa width downward: the invariant is that
   ``hi`` always verifies, so ``log2`` trials find the minimal passing
   width for the location, with every trial carrying the widths
   already fixed for earlier locations (greedy composition, so the
   final configuration is exactly the last passing trial).

The result is a per-location minimal-width configuration whose modeled
footprint is usually well below the best all-{fp16,fp32,fp64}
configuration at the same verified quality bound (see
``results/format_stats.csv``).
"""

from __future__ import annotations

import math

from repro.core.evaluator import ConfigurationEvaluator
from repro.core.types import CustomFormat, PrecisionConfig, PrecisionLike, get_format
from repro.core.variables import Granularity, SearchSpace
from repro.errors import MixPBenchError
from repro.search.base import SearchStrategy

__all__ = ["BitWidthSearch", "emulated_domain"]

#: mantissa bits of the storage type backing each emulated exponent width
_STORAGE_MANTISSA = {8: 23, 11: 52}

ROUNDING_MODES = ("nearest", "stochastic")


def emulated_domain(
    exponent_bits: int = 8,
    min_mantissa: int = 2,
    rounding: str = "nearest",
) -> tuple[PrecisionLike, ...]:
    """The width domain BW searches for one location: every emulated
    mantissa width from ``min_mantissa`` up to the storage width, plus
    the double fallback (widest last)."""
    from repro.core.types import Precision

    if exponent_bits not in _STORAGE_MANTISSA:
        raise MixPBenchError(
            f"unsupported exponent width e{exponent_bits}; emulated formats "
            "store in fp32 (e8) or fp64 (e11)"
        )
    if rounding not in ROUNDING_MODES:
        raise MixPBenchError(
            f"unknown rounding mode {rounding!r}; choose from {ROUNDING_MODES}"
        )
    cap = _STORAGE_MANTISSA[exponent_bits]
    if not min_mantissa <= cap:
        raise MixPBenchError(
            f"min_mantissa {min_mantissa} exceeds the e{exponent_bits} "
            f"storage mantissa ({cap} bits)"
        )
    suffix = "sr" if rounding == "stochastic" else ""
    formats: list[PrecisionLike] = [
        get_format(f"e{exponent_bits}m{m}{suffix}")
        for m in range(min_mantissa, cap + 1)
    ]
    formats.append(Precision.DOUBLE)
    return tuple(formats)


class BitWidthSearch(SearchStrategy):
    """Greedy per-cluster binary search over emulated mantissa widths."""

    strategy_name = "bitwidth-bisection"
    granularity = Granularity.CLUSTER

    def __init__(
        self,
        exponent_bits: int = 8,
        min_mantissa: int = 2,
        rounding: str = "nearest",
    ) -> None:
        # emulated_domain validates all three parameters up front, so a
        # bad CLI flag fails before any trial is spent.
        emulated_domain(exponent_bits, min_mantissa, rounding)
        self.exponent_bits = int(exponent_bits)
        self.min_mantissa = int(min_mantissa)
        self.rounding = rounding
        self._suffix = "sr" if rounding == "stochastic" else ""
        self._cap = _STORAGE_MANTISSA[self.exponent_bits]
        self._seeded = 0

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            exponent_bits=self.exponent_bits,
            min_mantissa=self.min_mantissa,
            rounding=self.rounding,
        )
        # Only present when width seeding actually fired, so unguided
        # outcomes stay byte-identical to releases without seeding.
        if self._seeded:
            info["seeded_locations"] = self._seeded
        return info

    def _format(self, mantissa: int) -> CustomFormat:
        return get_format(f"e{self.exponent_bits}m{mantissa}{self._suffix}")

    def domain(self) -> tuple[PrecisionLike, ...]:
        """The per-location width domain this search enumerates."""
        return emulated_domain(self.exponent_bits, self.min_mantissa, self.rounding)

    def _seed_weight(
        self, evaluator: ConfigurationEvaluator, space: SearchSpace, location: str
    ) -> float | None:
        """The location's fp32-anchored error weight, from whichever
        guidance source is attached: the static certificate when
        screening is active, else the shadow marginals when ``--order
        shadow`` is.  ``None`` (no source) keeps the bisection ladder
        byte-identical to the unseeded behaviour."""
        if space.granularity is Granularity.CLUSTER:
            members = space.cluster(location).members
        else:
            members = (location,)
        screen = getattr(evaluator, "screen", None)
        if screen is not None:
            return screen.seed_weight(members)
        order = getattr(evaluator, "location_order", None)
        scores = getattr(order, "scores", None)
        anchor = getattr(order, "predicted_error", None)
        if not scores or anchor is None or not math.isfinite(anchor) or anchor < 0:
            return None
        if anchor == 0.0:
            # The shadow run predicts no error at all at fp32: widths
            # don't matter, so guess the minimum first (still verified).
            return 0.0
        total = sum(v for v in scores.values() if math.isfinite(v) and v > 0)
        if total <= 0:
            return None
        mass = sum(max(scores.get(uid, 0.0), 0.0) for uid in members)
        return (mass / total) * anchor

    def _seed_mantissa(self, weight: float, threshold: float) -> int:
        """Smallest mantissa width whose first-order predicted error
        stays at the threshold: solve ``weight * 2**(23 - m) <= t``
        (the weight is anchored at fp32's 23 explicit bits), clamped to
        the search range."""
        if weight <= 0.0:
            return self.min_mantissa
        if threshold <= 0.0 or not math.isfinite(threshold):
            return self._cap
        needed = math.ceil(23 - math.log2(threshold / weight))
        return max(self.min_mantissa, min(self._cap, needed))

    def _search(self, evaluator: ConfigurationEvaluator) -> PrecisionConfig | None:
        space = self.space(evaluator)
        # Attach the width domains so the outcome's search-space
        # accounting (and the golden size pins) reflect the widened
        # per-location choice set.
        space = space.with_width_domains(
            {loc: self.domain() for loc in space.locations()}
        )
        choices: dict[str, PrecisionLike] = {}
        threshold = evaluator.quality.threshold

        def trial_with(location: str, mantissa: int):
            candidate = dict(choices)
            candidate[location] = self._format(mantissa)
            return evaluator.evaluate(space.config_from_choices(candidate))

        for location in self.ordered_locations(evaluator, space):
            # Feasibility probe at the widest (storage-exact) width.
            widest = trial_with(location, self._cap)
            if not widest.passed:
                continue  # stays at double
            lo, hi = self.min_mantissa, self._cap

            # Guess-and-verify seeding: probe the predicted minimal
            # width first.  When the prediction is right the location
            # settles in two probes instead of the full log2 ladder;
            # when it is off, the probes narrow the bisection range, so
            # the invariant (hi always verifies, everything below lo
            # failed) — and with it the final width — is unchanged.
            weight = self._seed_weight(evaluator, space, location)
            if weight is not None:
                guess = self._seed_mantissa(weight, threshold)
                if lo <= guess < hi:
                    self._seeded += 1
                    if trial_with(location, guess).passed:
                        hi = guess
                        if guess > lo:
                            if trial_with(location, guess - 1).passed:
                                hi = guess - 1
                            else:
                                lo = guess
                    else:
                        lo = guess + 1

            while lo < hi:
                mid = (lo + hi) // 2
                if trial_with(location, mid).passed:
                    hi = mid
                else:
                    lo = mid + 1
            choices[location] = self._format(hi)

        if not choices:
            return None
        # Greedy composition: every trial carried the widths already
        # fixed, so the final configuration is exactly the last passing
        # trial for the last lowered location — already evaluated.
        return space.config_from_choices(choices)
