"""Hierarchical-compositional (HC) search.

"Integrates the hierarchical and compositional approaches, using the
former to identify program components amenable to replacement and then
using the latter to combine these individual components ...  The
search terminates when all passing configurations have been composed
of other passing configurations" (paper Section II-B).

Phase 1 walks the structural tree evaluating each component *in
isolation* (no accumulation): a passing component becomes an atom and
its subtree is pruned; a failing component is refined into children.
Phase 2 runs the compositional pool over the atoms.  Like HR this
operates on variables, so isolated components regularly split clusters
and burn evaluations on compile errors.
"""

from __future__ import annotations

from repro.core.evaluator import ConfigurationEvaluator
from repro.core.types import PrecisionConfig
from repro.core.variables import Granularity
from repro.search.base import SearchStrategy
from repro.search.hierarchy import HierarchyNode, build_hierarchy

__all__ = ["HierarchicalCompositionalSearch"]


class HierarchicalCompositionalSearch(SearchStrategy):
    """Hierarchical component discovery + compositional combination."""

    strategy_name = "hierarchical-compositional"
    granularity = Granularity.VARIABLE

    def _search(self, evaluator: ConfigurationEvaluator) -> PrecisionConfig | None:
        space = self.space(evaluator)
        root = build_hierarchy(space)

        best: PrecisionConfig | None = None
        best_speedup = float("-inf")

        def consider(lowered: frozenset[str]) -> bool:
            nonlocal best, best_speedup
            trial = evaluator.evaluate(self._lower(space, sorted(lowered)))
            if trial.passed and trial.speedup > best_speedup:
                best = trial.config
                best_speedup = trial.speedup
            return trial.passed

        # Phase 1 — hierarchical discovery of passing components.
        components: list[frozenset[str]] = []

        def discover(node: HierarchyNode) -> None:
            if consider(node.variables):
                components.append(node.variables)
                return
            for child in node.children:
                discover(child)

        discover(root)

        # Phase 2 — compositional combination of the components,
        # with the same maximal-union heuristic as CM.
        if len(components) > 1:
            maximal = frozenset().union(*components)
            if consider(maximal):
                return best

        tried: set[frozenset[str]] = set(components)
        passing = list(components)
        frontier = list(components)
        while frontier:
            new_frontier: list[frozenset[str]] = []
            for candidate in frontier:
                for other in passing:
                    union = candidate | other
                    if union == candidate or union == other or union in tried:
                        continue
                    tried.add(union)
                    if consider(union):
                        new_frontier.append(union)
            passing.extend(new_frontier)
            frontier = new_frontier
        return best
