"""Precision-ladder search (LD) — progressive multi-level lowering
(extension).

The paper's machinery is generic over ``p`` precision levels but its
evaluation stops at two.  This strategy exercises the third level the
way practitioners do on fp16-capable hardware: *progressively*.

1. Run delta debugging lowering locations double → single; call the
   surviving lowered set S.
2. Run delta debugging again, only over S, lowering single → half
   (locations outside S stay double, locations in S not chosen for
   half stay single).

The result is a genuine three-level configuration that is never more
aggressive than what verification allows at each rung — safer than
lowering straight to half, faster than staying at single where fp16's
error is tolerable.
"""

from __future__ import annotations

from repro.core.evaluator import ConfigurationEvaluator
from repro.core.results import TrialRecord
from repro.core.types import Precision, PrecisionConfig
from repro.search.base import SearchStrategy
from repro.search.delta_debug import DeltaDebugSearch

__all__ = ["PrecisionLadderSearch"]


class PrecisionLadderSearch(SearchStrategy):
    """DD to single, then DD over the survivors to half."""

    strategy_name = "precision-ladder"

    def _search(self, evaluator: ConfigurationEvaluator) -> PrecisionConfig | None:
        space = self.space(evaluator)

        # Rung 1 — classic delta debugging down to single precision.
        single_stage = DeltaDebugSearch()
        single_config = single_stage._search(evaluator)
        if single_config is None:
            return None
        lowered = sorted(space.lowered_location_set(single_config))
        if not lowered:
            return single_config

        # Rung 2 — ddmin over the single-precision survivors, pushing
        # a subset further down to half.
        def passes(high: frozenset[str]) -> TrialRecord | None:
            to_half = [loc for loc in lowered if loc not in high]
            if not to_half:
                return None
            choices = {loc: Precision.SINGLE for loc in lowered}
            choices.update({loc: Precision.HALF for loc in to_half})
            return evaluator.evaluate(space.config_from_choices(choices))

        trial = passes(frozenset())
        if trial is not None and trial.passed:
            best_half = trial.config
        else:
            high = DeltaDebugSearch._ddmin(frozenset(lowered), passes)
            to_half = [loc for loc in lowered if loc not in high]
            if not to_half:
                return single_config
            choices = {loc: Precision.SINGLE for loc in lowered}
            choices.update({loc: Precision.HALF for loc in to_half})
            final = evaluator.evaluate(space.config_from_choices(choices))
            best_half = final.config if final.passed else None

        if best_half is None:
            return single_config

        # Keep whichever rung actually measured faster.
        single_trial = next(
            (t for t in evaluator.trials if t.config == single_config), None,
        )
        half_trial = next(
            (t for t in evaluator.trials if t.config == best_half), None,
        )
        if single_trial and half_trial and single_trial.speedup > half_trial.speedup:
            return single_config
        return best_half
