"""Hierarchical (HR) search.

"Use program structure information (e.g., modules or functions) to
search for larger groups of variables that can be replaced, falling
back to lower-level components and eventually to individual variables
if necessary" (paper Section II-B).

The search accumulates conversions: a structural group that passes
(on top of everything already converted) is kept wholesale; a failing
group is refined into its children.  The descent repeats until a full
pass converts nothing new — interactions between groups mean a
variable that failed earlier can succeed later, which inflates the
evaluation count exactly as the paper's Table III shows for HR.

Because the walk ignores clusters, many candidate configurations split
a Typeforge cluster and die with a simulated compile error — the
wasted effort the paper calls out in its evaluation.
"""

from __future__ import annotations

from repro.core.evaluator import ConfigurationEvaluator
from repro.core.types import PrecisionConfig
from repro.core.variables import Granularity
from repro.search.base import SearchStrategy
from repro.search.hierarchy import HierarchyNode, build_hierarchy

__all__ = ["HierarchicalSearch"]


class HierarchicalSearch(SearchStrategy):
    """Structural descent with accumulation, at variable granularity."""

    strategy_name = "hierarchical"
    granularity = Granularity.VARIABLE

    def __init__(self, max_passes: int = 4) -> None:
        self.max_passes = max_passes

    def describe(self) -> dict:
        info = super().describe()
        info["max_passes"] = self.max_passes
        return info

    def _search(self, evaluator: ConfigurationEvaluator) -> PrecisionConfig | None:
        space = self.space(evaluator)
        root = build_hierarchy(space, order=getattr(evaluator, "location_order", None))
        converted: set[str] = set()

        def try_group(group: frozenset[str]) -> bool:
            candidate = converted | group
            trial = evaluator.evaluate(self._lower(space, sorted(candidate)))
            return trial.passed

        def prefetch_children(node: HierarchyNode) -> None:
            # Speculate on the refinement level: each sibling's
            # candidate (assuming the ones before it fail) can execute
            # in parallel.  A sibling that *does* pass invalidates the
            # speculation for the ones after it — their staged results
            # simply go unused; trial order and accounting are
            # untouched because only the serial walk records trials.
            if len(node.children) < 2:
                return
            evaluator.prefetch(
                self._lower(space, sorted(converted | pending))
                for child in node.children
                if (pending := child.variables - converted)
            )

        def visit(node: HierarchyNode) -> None:
            pending = node.variables - converted
            if not pending:
                return
            if try_group(pending):
                converted.update(pending)
                return
            prefetch_children(node)
            for child in node.children:
                visit(child)

        for _ in range(self.max_passes):
            before = len(converted)
            visit(root)
            if len(converted) == before:
                break

        if not converted:
            return None
        final = evaluator.evaluate(self._lower(space, sorted(converted)))
        return final.config if final.passed else None
