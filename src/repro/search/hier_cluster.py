"""Cluster-aware hierarchical (HRC) search — the paper's proposed redesign.

The paper's evaluation ends with an explicit call to action: "the
current implementations of hierarchical approaches in CRAFT do not
take into account clusters ...  the evaluation presented in this paper
provides sufficient motivation to redesign these strategies to take
clustering information into account to reduce the search space"
(Section V).  This module implements that redesign.

The structural tree is rebuilt over *clusters* instead of variables:
each cluster is attached to the module/function where most of its
members are declared (clusters may legitimately cross function
boundaries — that was the original obstacle — so "home" is the
majority vote).  The descent then proceeds exactly like HR, but every
candidate configuration is cluster-complete by construction: no
simulated compile errors, no wasted evaluations, and the fallback
leaves are whole clusters rather than un-compilable single variables.

Registered as ``HRC`` / ``hierarchical-clustered``.
"""

from __future__ import annotations

from repro.core.evaluator import ConfigurationEvaluator
from repro.core.types import PrecisionConfig
from repro.core.variables import Granularity, SearchSpace
from repro.search.base import SearchStrategy
from repro.search.hierarchy import HierarchyNode, order_children

__all__ = ["ClusterHierarchicalSearch", "build_cluster_hierarchy"]


def build_cluster_hierarchy(space: SearchSpace, order=None) -> HierarchyNode:
    """Application → module → function → cluster tree.

    Node ``variables`` hold *cluster ids* (the locations of a
    cluster-granularity space); a cluster lives under the function
    that declares the majority of its members.  An optional shadow
    ``order`` arranges siblings least-sensitive-first (a group scores
    as its worst member cluster, a cluster as its worst member uid).
    """
    score_fn = None
    if order is not None:
        cid_scores = {
            cluster.cid: order.score_of(cluster.members)
            for cluster in space.clusters
        }
        def score_fn(cids):
            return max(cid_scores[cid] for cid in cids)
    variables = {v.uid: v for v in space.variables}
    placements: dict[tuple[str, str], list[str]] = {}
    for cluster in space.clusters:
        votes: dict[tuple[str, str], int] = {}
        for uid in cluster.members:
            var = variables[uid]
            key = (var.module, var.function)
            votes[key] = votes.get(key, 0) + 1
        home = max(sorted(votes), key=lambda key: votes[key])
        placements.setdefault(home, []).append(cluster.cid)

    root = HierarchyNode("<application>", frozenset(
        cluster.cid for cluster in space.clusters
    ))
    by_module: dict[str, dict[str, list[str]]] = {}
    for (module, function), cids in placements.items():
        by_module.setdefault(module, {})[function] = sorted(cids)

    module_nodes = []
    for module, functions in sorted(by_module.items()):
        module_members = frozenset(
            cid for cids in functions.values() for cid in cids
        )
        module_node = HierarchyNode(f"module:{module}", module_members)
        for function, cids in sorted(functions.items()):
            fn_node = HierarchyNode(f"function:{function}", frozenset(cids))
            if len(cids) > 1:
                fn_node.children = order_children([
                    HierarchyNode(f"cluster:{cid}", frozenset({cid}))
                    for cid in cids
                ], score_fn)
            module_node.children.append(fn_node)
        module_node.children = order_children(module_node.children, score_fn)
        if len(module_node.children) == 1 and \
                module_node.children[0].variables == module_node.variables:
            module_node = module_node.children[0]
        module_nodes.append(module_node)

    module_nodes = order_children(module_nodes, score_fn)
    if len(module_nodes) == 1 and module_nodes[0].variables == root.variables:
        root.children = module_nodes[0].children
    else:
        root.children = module_nodes
    return root


class ClusterHierarchicalSearch(SearchStrategy):
    """HR's structural descent, at cluster granularity."""

    strategy_name = "hierarchical-clustered"
    granularity = Granularity.CLUSTER

    def __init__(self, max_passes: int = 4) -> None:
        self.max_passes = max_passes

    def describe(self) -> dict:
        info = super().describe()
        info["max_passes"] = self.max_passes
        return info

    def _search(self, evaluator: ConfigurationEvaluator) -> PrecisionConfig | None:
        space = self.space(evaluator)
        root = build_cluster_hierarchy(
            space, order=getattr(evaluator, "location_order", None)
        )
        converted: set[str] = set()

        def try_group(group: frozenset[str]) -> bool:
            candidate = converted | group
            trial = evaluator.evaluate(self._lower(space, sorted(candidate)))
            return trial.passed

        def prefetch_children(node: HierarchyNode) -> None:
            # Same speculative sibling batch as HR (see hierarchical.py):
            # staged executions are consumed by the serial walk, so the
            # trial log is identical to the unbatched descent.
            if len(node.children) < 2:
                return
            evaluator.prefetch(
                self._lower(space, sorted(converted | pending))
                for child in node.children
                if (pending := child.variables - converted)
            )

        def visit(node: HierarchyNode) -> None:
            pending = node.variables - converted
            if not pending:
                return
            if try_group(pending):
                converted.update(pending)
                return
            prefetch_children(node)
            for child in node.children:
                visit(child)

        for _ in range(self.max_passes):
            before = len(converted)
            visit(root)
            if len(converted) == before:
                break

        if not converted:
            return None
        final = evaluator.evaluate(self._lower(space, sorted(converted)))
        return final.config if final.passed else None
