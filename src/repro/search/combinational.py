"""Combinational (CB) search: exhaustive enumeration.

"Try all combinations of variables or clusters: the brute-force or
exhaustive search approach" (paper Section II-B).  Only tractable for
the kernels, whose clustered search spaces have 1–2 locations; the
paper (and our harness) does not run CB on the applications.

Configurations are enumerated most-aggressive-first (most locations
lowered), and the best *passing* configuration by speedup wins.

With ``levels`` the enumeration covers the paper's full ``p ** loc``
search space (Section II: "each of these locations could be
transformed to use up to p precision levels"): every assignment of
every level to every location, not just the two-level subsets.
"""

from __future__ import annotations

from itertools import combinations, product

from repro.core.batch import DEFAULT_BATCH_SIZE, chunked
from repro.core.evaluator import ConfigurationEvaluator
from repro.core.types import Precision, PrecisionConfig
from repro.search.base import SearchStrategy

__all__ = ["CombinationalSearch"]


class CombinationalSearch(SearchStrategy):
    """Exhaustive search over all non-trivial subsets of locations."""

    strategy_name = "combinational"

    def __init__(
        self,
        max_locations: int = 24,
        levels: tuple[Precision, ...] | None = None,
        max_configurations: int = 4096,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        """``max_locations`` guards against accidentally launching an
        intractable 2^n enumeration; the budget would stop it anyway,
        but failing fast is kinder.  Passing ``levels`` (e.g.
        ``(Precision.HALF, Precision.SINGLE, Precision.DOUBLE)``)
        switches to the full multi-level ``p ** loc`` enumeration,
        bounded by ``max_configurations``.  The enumeration is consumed
        in ``batch_size`` chunks through the evaluator's batch API, so
        a parallel executor can overlap the independent executions."""
        self.max_locations = max_locations
        self.levels = tuple(levels) if levels else None
        self.max_configurations = max_configurations
        self.batch_size = batch_size

    def _best_of(self, evaluator: ConfigurationEvaluator, configs):
        """Chunked evaluation of an enumeration stream, keeping the
        fastest passing configuration (first wins ties, like the
        serial loop did)."""
        best: PrecisionConfig | None = None
        best_speedup = float("-inf")
        for chunk in chunked(configs, self.batch_size):
            for trial in evaluator.evaluate_many(chunk):
                if trial.passed and trial.speedup > best_speedup:
                    best = trial.config
                    best_speedup = trial.speedup
        return best

    def describe(self) -> dict:
        info = super().describe()
        info["max_locations"] = self.max_locations
        if self.levels:
            info["levels"] = [p.value for p in self.levels]
        return info

    def _search(self, evaluator: ConfigurationEvaluator) -> PrecisionConfig | None:
        space = self.space(evaluator)
        locations = space.locations()
        if len(locations) > self.max_locations:
            raise ValueError(
                f"combinational search over {len(locations)} locations is "
                f"intractable (limit {self.max_locations}); use another strategy"
            )
        if self.levels:
            return self._search_multilevel(evaluator, space, locations)

        configs = (
            self._lower(space, subset)
            for size in range(len(locations), 0, -1)
            for subset in combinations(locations, size)
        )
        return self._best_of(evaluator, configs)

    def _search_multilevel(self, evaluator, space, locations) -> PrecisionConfig | None:
        """The full p**loc enumeration of the paper's Section II."""
        levels = sorted(set(self.levels) | {Precision.DOUBLE},
                        key=lambda p: p.bits)
        count = len(levels) ** len(locations)
        if count > self.max_configurations:
            raise ValueError(
                f"multi-level enumeration of {count} configurations exceeds "
                f"the {self.max_configurations} ceiling"
            )
        assignments = sorted(
            product(levels, repeat=len(locations)),
            key=lambda combo: sum(p.bits for p in combo),  # aggressive first
        )
        configs = (
            space.config_from_choices(dict(zip(locations, combo)))
            for combo in assignments
            if not all(p is Precision.DOUBLE for p in combo)  # skip unchanged
        )
        return self._best_of(evaluator, configs)
