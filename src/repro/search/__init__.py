"""Mixed-precision search algorithms (CRAFT strategies + GA).

Six strategies, matching the paper's Section II-B:

======================  ====  ===========  =======================
Strategy                Abbr  Granularity  Module
======================  ====  ===========  =======================
Combinational           CB    clusters     ``combinational``
Compositional           CM    clusters     ``compositional``
Delta debugging         DD    clusters     ``delta_debug``
Hierarchical            HR    variables    ``hierarchical``
Hierarchical-comp.      HC    variables    ``hier_comp``
Genetic algorithm       GA    clusters     ``genetic``
======================  ====  ===========  =======================

Extension strategies beyond the paper: ``HRC`` (``hier_cluster``),
the cluster-aware hierarchical redesign the paper's Section V
motivates; ``RS`` (``random_search``), the uniform-sampling baseline;
and ``LD`` (``ladder``), progressive double→single→half lowering.
"""

from repro.search.base import SearchStrategy
from repro.search.combinational import CombinationalSearch
from repro.search.compositional import CompositionalSearch
from repro.search.delta_debug import DeltaDebugSearch
from repro.search.genetic import GeneticSearch
from repro.search.hier_cluster import ClusterHierarchicalSearch, build_cluster_hierarchy
from repro.search.ladder import PrecisionLadderSearch
from repro.search.hier_comp import HierarchicalCompositionalSearch
from repro.search.hierarchical import HierarchicalSearch
from repro.search.hierarchy import HierarchyNode, build_hierarchy
from repro.search.random_search import RandomSearch
from repro.search.registry import (
    ALGORITHM_ORDER,
    available_strategies,
    canonical_name,
    make_strategy,
    register_strategy,
)

__all__ = [
    "SearchStrategy",
    "CombinationalSearch",
    "CompositionalSearch",
    "DeltaDebugSearch",
    "HierarchicalSearch",
    "HierarchicalCompositionalSearch",
    "ClusterHierarchicalSearch",
    "RandomSearch",
    "PrecisionLadderSearch",
    "build_cluster_hierarchy",
    "GeneticSearch",
    "HierarchyNode",
    "build_hierarchy",
    "make_strategy",
    "register_strategy",
    "available_strategies",
    "canonical_name",
    "ALGORITHM_ORDER",
]
