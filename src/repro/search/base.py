"""Search strategy framework (the CRAFT generic search analogue).

A :class:`SearchStrategy` enumerates precision configurations through a
:class:`~repro.core.evaluator.ConfigurationEvaluator` and returns a
:class:`~repro.core.results.SearchOutcome`.  The base class handles the
cross-cutting concerns: catching the simulated 24-hour budget
exhaustion (the paper's gray cells), collecting the trial log, and
resolving the strategy's final configuration into the reported
Speedup (SU), Evaluated Configurations (EV) and Accuracy (AC) metrics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.evaluator import ConfigurationEvaluator
from repro.core.results import SearchOutcome, TrialRecord
from repro.core.types import Precision, PrecisionConfig
from repro.core.variables import Granularity, SearchSpace
from repro.errors import SearchBudgetExceeded

__all__ = ["SearchStrategy"]


class SearchStrategy(ABC):
    """Base class for mixed-precision search algorithms.

    Subclasses define :attr:`strategy_name`, :attr:`granularity`
    (clusters for CB/CM/DD/GA, variables for HR/HC — see DESIGN.md)
    and implement :meth:`_search`, returning the configuration the
    algorithm settles on (or ``None`` when it found nothing).
    """

    strategy_name: str = ""
    #: granularity the strategy enumerates locations at
    granularity: Granularity = Granularity.CLUSTER
    #: the precision level the strategy lowers locations to
    target_precision: Precision = Precision.SINGLE

    def run(self, evaluator: ConfigurationEvaluator) -> SearchOutcome:
        """Run the search to completion or budget exhaustion."""
        timed_out = False
        final_config: PrecisionConfig | None = None
        try:
            final_config = self._search(evaluator)
        except SearchBudgetExceeded:
            timed_out = True

        final = self._resolve_final(evaluator, final_config, timed_out)
        metadata = self.describe()
        # Telemetry rides along in metadata: counters only, so two runs
        # of the same search stay comparable by stripping this one key.
        evaluator.stats.labels.setdefault("strategy", self.strategy_name)
        evaluator.stats.labels.setdefault("program", evaluator.program.name)
        metadata["eval_stats"] = evaluator.stats.as_dict()
        if evaluator.prune_info is not None:
            metadata["prune"] = dict(evaluator.prune_info)
        shadow_info = getattr(evaluator, "shadow_info", None)
        if shadow_info is not None:
            metadata["shadow"] = dict(shadow_info)
        screen_info = getattr(evaluator, "screen_info", None)
        if screen_info is not None:
            info = dict(screen_info)
            info["screened"] = evaluator.stats.screened
            metadata["screen"] = info
        return SearchOutcome(
            strategy=self.strategy_name,
            program=evaluator.program.name,
            threshold=evaluator.quality.threshold,
            final=final,
            evaluations=evaluator.evaluations,
            analysis_seconds=evaluator.analysis_seconds,
            timed_out=timed_out,
            trials=list(evaluator.trials),
            metadata=metadata,
        )

    def describe(self) -> dict:
        """Strategy parameters worth recording in the outcome."""
        return {
            "granularity": self.granularity.value,
            "target_precision": self.target_precision.value,
        }

    def space(self, evaluator: ConfigurationEvaluator) -> SearchSpace:
        return evaluator.space(self.granularity)

    def ordered_locations(
        self, evaluator: ConfigurationEvaluator, space: SearchSpace
    ) -> tuple[str, ...]:
        """The space's locations, most sensitive first when a shadow
        ordering is attached to the evaluator; the canonical sorted
        order (byte-identical to unguided behaviour) otherwise."""
        order = getattr(evaluator, "location_order", None)
        locations = space.locations()
        if order is None:
            return locations
        return order.arrange(locations, space)

    # -- helpers shared by concrete strategies ---------------------------------
    def _lower(self, space: SearchSpace, locations) -> PrecisionConfig:
        return space.lower(locations, self.target_precision)

    def _resolve_final(
        self,
        evaluator: ConfigurationEvaluator,
        final_config: PrecisionConfig | None,
        timed_out: bool,
    ) -> TrialRecord | None:
        """Map the strategy's chosen configuration to its trial record.

        A search that timed out reports no solution (the paper leaves
        those cells empty).  A strategy that converged without naming a
        configuration falls back to the best passing trial it saw.
        """
        if timed_out:
            return None
        if final_config is not None:
            for trial in reversed(evaluator.trials):
                if trial.config == final_config:
                    return trial if trial.passed else evaluator.best_passing()
        return evaluator.best_passing()

    @abstractmethod
    def _search(self, evaluator: ConfigurationEvaluator) -> PrecisionConfig | None:
        """Run the algorithm; return the configuration it converged to."""
