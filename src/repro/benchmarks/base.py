"""Benchmark framework: base classes and the suite registry.

A benchmark binds together everything the paper's harness needs to know
about one program (Section III): the precision-configurable code (an
MPB-style module), how to generate its inputs, which quality metric
verifies its output, and the timing parameters used by the simulated
analysis clock.

Concrete benchmarks subclass :class:`KernelBenchmark` (randomly
initialised, no I/O — the paper's Table I codes) or
:class:`ApplicationBenchmark` (proxy/mini apps, possibly file-driven)
and register themselves with :func:`register_benchmark`.
"""

from __future__ import annotations

import importlib
import os
import tempfile
import threading
from abc import ABC, abstractmethod
from pathlib import Path
from types import ModuleType
from typing import Any, Callable, Iterable

import numpy as np

from repro.core.program import ExecutionResult
from repro.core.types import PrecisionConfig
from repro.core.variables import Granularity, SearchSpace
from repro.errors import BenchmarkNotFound
from repro.runtime.machine import DEFAULT_MACHINE, MachineModel
from repro.runtime.memory import Workspace
from repro.runtime.mparray import unwrap
from repro.runtime.rngcache import RNGReplayCache
from repro.typeforge import TypeforgeReport, analyze
from repro.verify.quality import QualitySpec

__all__ = [
    "Benchmark", "KernelBenchmark", "ApplicationBenchmark",
    "register_benchmark", "get_benchmark", "available_benchmarks",
    "kernel_benchmarks", "application_benchmarks", "collect_output",
    "clear_process_caches",
]


def collect_output(result: Any) -> np.ndarray:
    """Flatten a benchmark's return value into one float64 vector.

    Benchmarks may return a single array or a tuple of arrays (e.g.
    LavaMD returns positions and velocities); verification metrics
    compare the concatenation.
    """
    parts = result if isinstance(result, tuple) else (result,)
    flat = [np.asarray(unwrap(p), dtype=np.float64).ravel() for p in parts]
    return np.concatenate(flat) if len(flat) > 1 else flat[0]


class Benchmark(ABC):
    """A precision-configurable program of the suite.

    Class attributes configure identity and timing; subclasses
    implement :meth:`setup` (deterministic input generation) and point
    at their MPB-style compute module via :attr:`module_name` and
    :attr:`entry`.
    """

    #: unique suite-wide identifier, e.g. ``"hydro-1d"``
    name: str = ""
    #: one-line description (paper Table I / Section III-B)
    description: str = ""
    #: ``"kernel"`` or ``"application"``
    category: str = "kernel"
    #: dotted module path of the MPB-style compute code
    module_name: str = ""
    #: additional module paths for multi-module applications
    extra_module_names: tuple[str, ...] = ()
    #: entry function name inside :attr:`module_name`
    entry: str = "kernel"
    #: quality metric used to verify this benchmark
    metric: str = "MAE"
    #: default acceptance threshold
    default_threshold: float = 1e-6
    #: paper methodology: 10 timed runs per configuration
    runs_per_config: int = 10
    #: plausible per-run wall seconds on the paper's testbed (scales
    #: modeled time onto the simulated 24-hour analysis clock)
    nominal_seconds: float = 2.0
    #: simulated build time per configuration
    compile_seconds: float = 10.0
    #: seed for deterministic input generation
    seed: int = 20200901

    def __init__(self, machine: MachineModel = DEFAULT_MACHINE) -> None:
        if not self.name or not self.module_name:
            raise TypeError(
                f"{type(self).__name__} must define class attributes "
                "'name' and 'module_name'"
            )
        self.machine = machine
        self._report: TypeforgeReport | None = None
        self._inputs: dict[str, Any] | None = None
        self._state: dict | None = None
        self._entry: Callable | None = None

    def inputs_fingerprint(self) -> tuple:
        """Key identifying one deterministic input set.

        Everything that changes what :meth:`setup` produces is folded
        in: the concrete benchmark class, the input seed, and the data
        directory root (``MIXPBENCH_DATA``) that file-driven
        applications write their generated inputs under.  Executions
        sharing a fingerprint share inputs and the recorded RNG draw
        stream; changing any component gives a cold cache entry, never
        a stale replay.
        """
        cls = type(self)
        return (
            f"{cls.__module__}.{cls.__qualname__}",
            self.name,
            self.seed,
            os.environ.get("MIXPBENCH_DATA", ""),
        )

    def _shared_state(self) -> dict:
        """Per-process cache slot for this fingerprint (inputs, report,
        RNG replay stream) shared across benchmark instances."""
        state = self._state
        if state is None:
            key = self.inputs_fingerprint()
            state = _PROCESS_STATE.get(key)
            if state is None:
                state = _PROCESS_STATE[key] = {"rng": RNGReplayCache()}
            self._state = state
        return state

    # -- to implement -------------------------------------------------------
    @abstractmethod
    def setup(self) -> dict[str, Any]:
        """Generate the benchmark's inputs, deterministically.

        Returned mapping is passed to the entry function as keyword
        arguments (after ``ws``).  May write input files for
        applications that exercise the typed-I/O runtime API.
        """

    # -- derived machinery ----------------------------------------------------
    @property
    def quality(self) -> QualitySpec:
        return QualitySpec(self.metric, self.default_threshold)

    def modules(self) -> list[ModuleType]:
        names = (self.module_name, *self.extra_module_names)
        return [importlib.import_module(n) for n in names]

    def report(self) -> TypeforgeReport:
        """Typeforge analysis of this benchmark (cached per process —
        the analysis is a pure function of the benchmark's modules)."""
        if self._report is None:
            state = self._shared_state()
            report = state.get("report")
            if report is None:
                report = state["report"] = analyze(
                    self.modules(), entry=self.entry, program=self.name
                )
            self._report = report
        return self._report

    def search_space(self, granularity: Granularity = Granularity.CLUSTER) -> SearchSpace:
        return self.report().search_space(granularity)

    def inputs(self) -> dict[str, Any]:
        """Deterministic inputs, generated once per process.

        :meth:`setup` output is precision-agnostic (plain fp64 arrays,
        sizes, file paths) and a pure function of the inputs
        fingerprint, so fresh benchmark instances — one per trial in
        the harness's fresh-execution path — share a single generation
        instead of re-rolling RNG state and rewriting input files.
        """
        if self._inputs is None:
            state = self._shared_state()
            inputs = state.get("inputs")
            if inputs is None:
                inputs = state["inputs"] = self.setup()
            self._inputs = inputs
        return self._inputs

    def data_dir(self) -> Path:
        """Directory for generated input files (the paper's benchmarks
        ship binary inputs; ours are generated deterministically).
        Override location with ``MIXPBENCH_DATA``."""
        root = os.environ.get("MIXPBENCH_DATA")
        base = Path(root) if root else Path(tempfile.gettempdir()) / "hpc-mixpbench"
        path = base / self.name
        path.mkdir(parents=True, exist_ok=True)
        return path

    def entry_point(self) -> Callable:
        entry = self._entry
        if entry is None:
            entry = self._entry = getattr(
                importlib.import_module(self.module_name), self.entry
            )
        return entry

    def execute(
        self,
        config: PrecisionConfig,
        inputs: dict[str, Any] | None = None,
    ) -> ExecutionResult:
        """Run under ``config``: same inputs, same seed, only the
        precision assignment differs between executions."""
        report = self._report if self._report is not None else self.report()
        ws = Workspace(
            config,
            name_map=report.name_map,
            seed=self.seed,
            rng_cache=self._shared_state()["rng"],
        )
        raw = self.entry_point()(ws, **(inputs if inputs is not None else self.inputs()))
        output = collect_output(raw)
        return ExecutionResult(
            output=output,
            profile=ws.profile,
            modeled_seconds=self.machine.time(ws.profile),
        )

    def manual_inputs(self, precision) -> dict[str, Any]:
        """Inputs for the paper's Table IV *manual* whole-program
        conversion.  A human rewriting the source also converts what no
        tool can touch (e.g. literals); benchmarks with such elements
        override this hook."""
        return self.inputs()

    def execute_manual(self, precision) -> ExecutionResult:
        """Run the manual uniform-precision version (Table IV)."""
        config = self.search_space().uniform_config(precision)
        return self.execute(config, inputs=self.manual_inputs(precision))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class KernelBenchmark(Benchmark):
    """Table-I style kernel: no I/O, randomly initialised inputs."""

    category = "kernel"
    nominal_seconds = 2.0
    compile_seconds = 10.0
    default_threshold = 1e-8


class ApplicationBenchmark(Benchmark):
    """Proxy/mini application (PARSEC, Rodinia, Mantevo origins)."""

    category = "application"
    nominal_seconds = 5.0
    compile_seconds = 20.0
    default_threshold = 1e-6


#: per-process shared state: inputs fingerprint -> {"inputs", "report",
#: "rng"}.  See :meth:`Benchmark.inputs_fingerprint` for the
#: invalidation rule.
_PROCESS_STATE: dict[tuple, dict] = {}


def clear_process_caches() -> None:
    """Drop all per-process benchmark state (tests, long-lived servers)."""
    _PROCESS_STATE.clear()


_REGISTRY: dict[str, type[Benchmark]] = {}


def register_benchmark(cls: type[Benchmark]) -> type[Benchmark]:
    """Class decorator adding a benchmark to the suite registry."""
    if not cls.name:
        raise TypeError(f"{cls.__name__} has no name; cannot register")
    if cls.name in _REGISTRY:
        raise ValueError(f"benchmark {cls.name!r} registered twice")
    _REGISTRY[cls.name] = cls
    return cls


def get_benchmark(name: str, machine: MachineModel = DEFAULT_MACHINE) -> Benchmark:
    """Instantiate a registered benchmark by name."""
    _ensure_suite_loaded()
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise BenchmarkNotFound(
            f"no benchmark named {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(machine=machine)


def available_benchmarks() -> tuple[str, ...]:
    _ensure_suite_loaded()
    return tuple(sorted(_REGISTRY))


def kernel_benchmarks() -> tuple[str, ...]:
    _ensure_suite_loaded()
    return tuple(sorted(n for n, c in _REGISTRY.items() if c.category == "kernel"))


def application_benchmarks() -> tuple[str, ...]:
    _ensure_suite_loaded()
    return tuple(sorted(n for n, c in _REGISTRY.items() if c.category == "application"))


def _iter_registered() -> Iterable[type[Benchmark]]:
    _ensure_suite_loaded()
    return _REGISTRY.values()


_SUITE_MODULES = (
    "repro.benchmarks.kernels",
    "repro.benchmarks.apps",
)
_loaded = False
_load_lock = threading.Lock()


def _ensure_suite_loaded() -> None:
    """Import the suite packages so their @register_benchmark run.

    Thread-safe: concurrent first callers (e.g. service scheduler
    workers racing through their first ``get_benchmark``) serialise on
    the lock, and the loaded flag only flips once every registration
    has run — no caller can observe a half-populated registry.
    """
    global _loaded
    if _loaded:
        return
    with _load_lock:
        if _loaded:
            return
        for module in _SUITE_MODULES:
            importlib.import_module(module)
        _loaded = True
