"""HPCCG primitive operations: SpMV, dot products, vector updates.

Separated from the driver module the way the Mantevo mini-app splits
``HPC_sparsemv.cpp`` / ``ddot.cpp`` / ``waxpby.cpp`` from ``main.cpp``
— which also gives the hierarchical searches a real module level to
descend through.

The sparse matrix-vector product gathers ``x`` through the column
index array; indices are 32-bit integers whose cost is independent of
the floating-point configuration, which is why HPCCG shows essentially
no speedup from precision lowering (paper Table IV: 1.00x).
"""

from __future__ import annotations

import numpy as np


def sparsemv(ws, va, xv, yv, cols, row_start):
    """CSR sparse matrix-vector product: yv = A @ xv."""
    gathered = xv[cols]
    products = va * gathered
    yv[:] = np.add.reduceat(products, row_start)


def ddot(ws, xa, ya):
    """Dot product of two vectors, accumulated in its own precision."""
    result = ws.scalar("result", np.dot(xa, ya))
    return result


def waxpby(ws, alpha_w, wx, beta_w, wy, wout):
    """wout = alpha·wx + beta·wy (the HPCCG vector update)."""
    alpha_w = ws.param("alpha_w", alpha_w)
    beta_w = ws.param("beta_w", beta_w)
    wout[:] = alpha_w * wx + beta_w * wy
