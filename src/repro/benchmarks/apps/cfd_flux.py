"""CFD flux computations (the euler3d compute kernels).

Split from the solver driver the way Rodinia's euler3d separates the
flux kernels — and to give the hierarchical searches a module level.

All helpers receive the conserved-variable arrays as parameters, which
is exactly the program structure the paper analyses for CFD: "most
functions in the program use parameter array pointers ... the
clustering algorithm [groups] all these parameters into the same base
type, thereby generating a small number of clusters".  The helpers
also declare their intermediate fields (velocities, flux
contributions), mirroring euler3d's ``float3 velocity``,
``flux_contribution_momentum_*`` locals — which is what gives CFD the
largest variable count in the suite.
"""

from __future__ import annotations

import numpy as np

GAMMA = 1.4


def compute_velocity(ws, mom_v, dens_v):
    """One velocity component u_i = m_i / rho."""
    velocity = ws.array("velocity", init=mom_v / dens_v)
    return velocity


def compute_speed_sqd(ws, vx_s, vy_s, vz_s):
    """|u|² from the velocity components."""
    speed_sqd = ws.array("speed_sqd", init=vx_s * vx_s + vy_s * vy_s + vz_s * vz_s)
    return speed_sqd


def compute_pressure(ws, dens_p, en, spd2):
    """Ideal-gas pressure p = (γ-1)(E - ½ρ|u|²)."""
    pressure = ws.array("pressure", init=(GAMMA - 1.0) * (en - 0.5 * dens_p * spd2))
    return pressure


def compute_speed_of_sound(ws, dens_s, prs):
    """a = sqrt(γ p / ρ)."""
    sos = ws.array("sos", init=np.sqrt(GAMMA * prs / dens_s))
    return sos


def compute_step_factor(ws, spd2_f, sos_f, cfl):
    """Local time step Δt = CFL / (|u| + a)."""
    cfl = ws.param("cfl", cfl)
    step_factor = ws.array("step_factor", init=cfl / (np.sqrt(spd2_f) + sos_f))
    return step_factor


def compute_flux_contribution(ws, dens_fc, vel_fc, prs_fc):
    """Per-cell flux contributions: mass, momentum and energy terms
    carried by one velocity component (euler3d's
    ``compute_flux_contribution``)."""
    fc_density = ws.array("fc_density", init=dens_fc * vel_fc)
    fc_momentum = ws.array("fc_momentum", init=fc_density * vel_fc + prs_fc)
    fc_energy = ws.array("fc_energy", init=vel_fc * prs_fc)
    return fc_density, fc_momentum, fc_energy


def compute_flux_edge(ws, state, nbr_state, prs_e, nbr_prs, weight):
    """Upwind-ish edge flux between a cell and one neighbour copy."""
    weight = ws.param("weight", weight)
    flux_edge = ws.array("flux_edge", init=weight * (nbr_state - state) + 0.5 * (prs_e + nbr_prs))
    return flux_edge
