"""LavaMD: particle potential/relocation in a 3D lattice (Rodinia).

Particles interact with neighbours inside a cutoff radius; the Rodinia
code partitions space into boxes and sweeps each home box against its
26 neighbours.  Here the box sweep is expressed as a *lattice shift*
sweep: for each neighbour offset the full particle arrays are
re-streamed and the pairwise kernel (dot products + ``exp`` potential)
accumulates forces — same arithmetic, same memory behaviour: every
offset re-reads every particle array.

The particle state is sized so the double-precision working set spills
out of the modeled last-level cache while the single-precision one
fits.  Lowering the arrays therefore shrinks the cache-miss traffic —
"lowering the precision of an array can change the cache behavior of
the application, resulting in large speedups" — giving LavaMD the
suite's largest conversion gain (paper Table IV: 2.66x) at an accuracy
cost of ~1e-4, the suite's largest (3.38e-4 in the paper).

Verification: MAE over particle positions and accumulated forces —
the paper applies MAE to location and velocity, and the force error
dominates exactly as the paper's large 3.38e-4 quality loss suggests.
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks.base import ApplicationBenchmark, register_benchmark


def interaction(ws, hx, hy, hz, hq, gx, gy, gz, gq, ox, oy, oz, alpha):
    """Force of one neighbour-shifted particle set on the home set.

    ``(ox, oy, oz)`` is the lattice offset of the neighbour copy;
    returns the three force components the caller accumulates.
    """
    alpha = ws.param("alpha", alpha)
    rx = ws.array("rx", init=gx - hx + ox)
    ry = ws.array("ry", init=gy - hy + oy)
    rz = ws.array("rz", init=gz - hz + oz)
    r2 = ws.array("r2", init=rx * rx + ry * ry + rz * rz + 0.5)
    u2 = ws.array("u2", init=alpha * alpha * r2)
    vij = ws.array("vij", init=np.exp(-u2))
    fs = ws.array("fs", init=2.0 * (gq * hq) * vij / r2)
    return fs * rx, fs * ry, fs * rz


def advance(ws, pos, vel):
    """Integrate one component: position follows its velocity."""
    pos[:] = pos + 0.001 * vel


def run(ws, n, offsets, steps, alpha_value):
    """Sweep all neighbour offsets, accumulate forces, relocate."""
    px = ws.array("px", init=ws.rng.random(n))
    py = ws.array("py", init=ws.rng.random(n))
    pz = ws.array("pz", init=ws.rng.random(n))
    qv = ws.array("qv", init=30.0 * ws.rng.random(n) - 15.0)
    fx = ws.array("fx", n)
    fy = ws.array("fy", n)
    fz = ws.array("fz", n)
    vx = ws.array("vx", n)    # velocities (verified alongside positions)
    vy = ws.array("vy", n)
    vz = ws.array("vz", n)

    for _ in range(steps):
        for (ox, oy, oz) in offsets:
            shift = ox + 3 * oy + 9 * oz
            gx = np.roll(px, shift)
            gy = np.roll(py, shift)
            gz = np.roll(pz, shift)
            gq = np.roll(qv, shift)
            dfx, dfy, dfz = interaction(
                ws, px, py, pz, qv, gx, gy, gz, gq,
                0.1 * ox, 0.1 * oy, 0.1 * oz, alpha_value,
            )
            fx[:] = fx + dfx
            fy[:] = fy + dfy
            fz[:] = fz + dfz
        vx[:] = vx + 0.5 * fx
        vy[:] = vy + 0.5 * fy
        vz[:] = vz + 0.5 * fz
        advance(ws, px, vx)
        advance(ws, py, vy)
        advance(ws, pz, vz)
    return px, py, pz, vx, vy, vz


@register_benchmark
class Lavamd(ApplicationBenchmark):
    """lavamd: N-body particle interactions within a cutoff (Rodinia)."""

    name = "lavamd"
    description = "Particle potential and relocation in a 3D box lattice"
    module_name = "repro.benchmarks.apps.lavamd"
    entry = "run"
    metric = "MAE"
    nominal_seconds = 80.0
    compile_seconds = 20.0

    def setup(self):
        # 13 half-shell neighbour offsets (Newton's third law covers
        # the other 13); the particle state (positions, charges,
        # forces, velocities + interaction scratch) totals ~20 MB in
        # double precision — outside the 12 MB LLC — and ~10 MB in
        # single, comfortably inside.
        offsets = [
            (1, 0, 0), (0, 1, 0), (0, 0, 1),
            (1, 1, 0), (1, 0, 1), (0, 1, 1),
            (1, -1, 0), (1, 0, -1), (0, 1, -1),
            (1, 1, 1), (1, 1, -1), (1, -1, 1), (-1, 1, 1),
        ]
        return {"n": 150_000, "offsets": offsets, "steps": 2, "alpha_value": 0.5}
