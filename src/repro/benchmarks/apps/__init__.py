"""The seven HPC-MixPBench proxy applications (paper Section III-B)."""

from repro.benchmarks.apps import (  # noqa: F401  (registration side effects)
    blackscholes,
    cfd,
    hotspot,
    hpccg,
    kmeans,
    lavamd,
    srad,
)
