"""HotSpot: thermal simulation of a processor floor plan (Rodinia).

Iteratively solves the heat-dissipation differential equations on a 2D
grid: each cell's next temperature follows from its neighbours, its
power dissipation, and the ambient sink.  State is held as the
*normalised deviation* from ambient (the output the verification
compares), and the solver ping-pongs between two temperature grids.

One term of the stencil multiplies by the module-level ``AMB_COUPLING``
constant, which is a ``numpy.float64`` — the analogue of a C double
literal.  Typeforge does not refactor literals (paper Section IV-B), so
in single-precision configurations that term still promotes to double
and drags casts behind it, capping HotSpot's speedup below the ideal
2x — the paper measures 1.78x manual and ~1.7x tool-found.

Verification: MAE over the final temperature field (paper Table IV:
quality loss 3.08e-10, i.e. HotSpot converts wholesale even at the
strictest 1e-8 threshold).
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks.base import ApplicationBenchmark, register_benchmark

#: C double literal in the stencil — deliberately *not* a workspace
#: variable, so no search algorithm can demote it (paper Section IV-B).
AMB_COUPLING = np.float64(0.0037109375)


def single_iteration(ws, t_in, t_out, p, amb, cap_1, rx_1, ry_1, rz_1):
    """One explicit time step of the thermal solver."""
    cap_1 = ws.param("cap_1", cap_1)
    rx_1 = ws.param("rx_1", rx_1)
    ry_1 = ws.param("ry_1", ry_1)
    rz_1 = ws.param("rz_1", rz_1)
    mid = t_in[1:-1, 1:-1]
    horizontal = (t_in[1:-1, :-2] + t_in[1:-1, 2:] - 2.0 * mid) * rx_1
    vertical = (t_in[:-2, 1:-1] + t_in[2:, 1:-1] - 2.0 * mid) * ry_1
    t_out[1:-1, 1:-1] = mid + cap_1 * (p[1:-1, 1:-1] + horizontal + vertical)
    # The ambient sink term multiplies a double literal: in a single-
    # precision configuration it promotes to double and the store back
    # into t_out pays the cast the paper attributes to literals.
    t_out[1:-1, 1:-1] = t_out[1:-1, 1:-1] + cap_1 * rz_1 * (amb - mid)
    t_out[0, :] = t_in[0, :]
    t_out[-1, :] = t_in[-1, :]
    t_out[:, 0] = t_in[:, 0]
    t_out[:, -1] = t_in[:, -1]


def run(ws, rows, cols, iterations, amb_literal):
    """Simulate heat dissipation and return the final temperatures.

    ``amb_literal`` carries the ambient coupling constant with the
    dtype of a source-code literal (double, unless the Table IV manual
    conversion overrides it); it is external configuration, not a
    searchable workspace variable.
    """
    t_chip = ws.scalar("t_chip", 0.5)
    chip_height = ws.scalar("chip_height", 16.0)
    chip_width = ws.scalar("chip_width", 16.0)
    spec_heat = ws.scalar("spec_heat", 0.5)
    k_si = ws.scalar("k_si", 1.0)
    factor_chip = ws.scalar("factor_chip", 0.5)

    grid_height = ws.scalar("grid_height", chip_height / rows)
    grid_width = ws.scalar("grid_width", chip_width / cols)
    cap = ws.scalar("cap", factor_chip * spec_heat * t_chip)
    rx = ws.scalar("rx", grid_width / (2.0 * k_si * t_chip * grid_height))
    ry = ws.scalar("ry", grid_height / (2.0 * k_si * t_chip * grid_width))
    rz = ws.scalar("rz", t_chip * 1.6 / (grid_height * grid_width))
    step = ws.scalar("step", 0.025)

    temp = ws.array("temp", init=0.004 + 0.002 * ws.rng.random((rows, cols)))
    power = ws.array("power", init=0.0001 * ws.rng.random((rows, cols)))
    temp_out = ws.array("temp_out", init=temp)

    for _ in range(iterations):
        single_iteration(ws, temp, temp_out, power, amb_literal,
                         step / cap, 1.0 / rx, 1.0 / ry, 1.0 / rz)
        temp, temp_out = temp_out, temp
    result = ws.array("result", init=temp)
    return result


@register_benchmark
class Hotspot(ApplicationBenchmark):
    """hotspot: processor thermal simulation (Rodinia)."""

    name = "hotspot"
    description = "Heat dissipation on an architectural floor plan"
    module_name = "repro.benchmarks.apps.hotspot"
    entry = "run"
    metric = "MAE"
    nominal_seconds = 30.0
    compile_seconds = 20.0

    def setup(self):
        return {
            "rows": 448, "cols": 448, "iterations": 8,
            "amb_literal": AMB_COUPLING,
        }

    def manual_inputs(self, precision):
        """The paper's Table IV conversion is *manual*, so it rewrites
        the double literal too — unlike any tool-driven search."""
        inputs = dict(self.inputs())
        inputs["amb_literal"] = precision.dtype.type(AMB_COUPLING)
        return inputs
