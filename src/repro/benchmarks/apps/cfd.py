"""CFD: unstructured-grid finite-volume Euler solver (Rodinia euler3d).

Advances the compressible Euler equations on an unstructured mesh:
every cell carries conserved variables (density, 3-component momentum,
energy), and each iteration gathers neighbour states through the
mesh's integer connectivity arrays, evaluates edge fluxes from the
per-cell flux contributions, and applies a local-time-step update.

Program structure mirrors the Rodinia code: the conserved-variable
arrays are passed as parameters to every flux helper in ``cfd_flux``,
so the type-dependence analysis folds states, neighbour copies,
pressures, velocities and fluxes into a small number of large clusters
— CFD is the paper's showcase for clustering ("CFD can take advantage
of clustering to reduce the search space considerably", Table II:
TV=195, TC=25), and it carries the suite's largest variable count.

The connectivity gathers are integer-indexed and latency-bound
(independent of floating precision), while the flux arithmetic halves
in cost: the paper measures an all-single speedup of 1.38x at a
quality loss of 1.1e-7 (MAE over density, momentum and energy).
"""

from __future__ import annotations

from repro.benchmarks.apps.cfd_flux import (
    compute_flux_contribution,
    compute_flux_edge,
    compute_pressure,
    compute_speed_of_sound,
    compute_speed_sqd,
    compute_step_factor,
    compute_velocity,
)
from repro.benchmarks.base import ApplicationBenchmark, register_benchmark

import numpy as np


def flux_sweep(ws, dens_w, mx_w, my_w, mz_w, en_w, prs_w,
               fd, fmx, fmy, fmz, fen, fc_d, fc_m, fc_e, neighbors):
    """Accumulate edge fluxes from every neighbour of every cell."""
    fd[:] = 0.0
    fmx[:] = 0.0
    fmy[:] = 0.0
    fmz[:] = 0.0
    fen[:] = 0.0
    weight = 0.25
    for nb in neighbors:
        nbr_dens = dens_w[nb]
        nbr_mx = mx_w[nb]
        nbr_my = my_w[nb]
        nbr_mz = mz_w[nb]
        nbr_en = en_w[nb]
        nbr_prs = prs_w[nb]
        fe1 = compute_flux_edge(ws, dens_w, nbr_dens, prs_w, nbr_prs, weight)
        fd[:] = fd + fe1 + 0.03125 * fc_d
        fe2 = compute_flux_edge(ws, mx_w, nbr_mx, prs_w, nbr_prs, weight)
        fmx[:] = fmx + fe2 + 0.125 * (nbr_prs - prs_w) + 0.03125 * fc_m
        fe3 = compute_flux_edge(ws, my_w, nbr_my, prs_w, nbr_prs, weight)
        fmy[:] = fmy + fe3 - 0.125 * (nbr_prs - prs_w)
        fe4 = compute_flux_edge(ws, mz_w, nbr_mz, prs_w, nbr_prs, weight)
        fmz[:] = fmz + fe4 - 0.0625 * (nbr_prs - prs_w)
        fe5 = compute_flux_edge(ws, en_w, nbr_en, prs_w, nbr_prs, weight)
        fen[:] = fen + fe5 + 0.0625 * (nbr_prs + prs_w) * (nbr_mx - mx_w) \
            + 0.03125 * fc_e


def time_step(ws, state_t, old_state, flux_t, sf_t):
    """Explicit update: state = old + Δt · flux."""
    state_t[:] = old_state + 0.2 * sf_t * flux_t


def run(ws, nel, iterations, neighbors, cfl_value):
    """Advance the solution and return the conserved variables."""
    density = ws.array("density", init=1.0 + 0.1 * ws.rng.random(nel))
    momx = ws.array("momx", init=0.1 * ws.rng.random(nel) - 0.05)
    momy = ws.array("momy", init=0.1 * ws.rng.random(nel) - 0.05)
    momz = ws.array("momz", init=0.1 * ws.rng.random(nel) - 0.05)
    energy = ws.array("energy", init=2.5 + 0.1 * ws.rng.random(nel))
    old_density = ws.array("old_density", nel)
    old_momx = ws.array("old_momx", nel)
    old_momy = ws.array("old_momy", nel)
    old_momz = ws.array("old_momz", nel)
    old_energy = ws.array("old_energy", nel)
    flux_d = ws.array("flux_d", nel)
    flux_mx = ws.array("flux_mx", nel)
    flux_my = ws.array("flux_my", nel)
    flux_mz = ws.array("flux_mz", nel)
    flux_en = ws.array("flux_en", nel)

    for _ in range(iterations):
        old_density[:] = density
        old_momx[:] = momx
        old_momy[:] = momy
        old_momz[:] = momz
        old_energy[:] = energy
        vx = compute_velocity(ws, momx, density)
        vy = compute_velocity(ws, momy, density)
        vz = compute_velocity(ws, momz, density)
        spd2 = compute_speed_sqd(ws, vx, vy, vz)
        prs = compute_pressure(ws, density, energy, spd2)
        sos = compute_speed_of_sound(ws, density, prs)
        sf = compute_step_factor(ws, spd2, sos, cfl_value)
        fc_d, fc_m, fc_e = compute_flux_contribution(ws, density, vx, prs)
        flux_sweep(ws, density, momx, momy, momz, energy, prs,
                   flux_d, flux_mx, flux_my, flux_mz, flux_en,
                   fc_d, fc_m, fc_e, neighbors)
        time_step(ws, density, old_density, flux_d, sf)
        time_step(ws, momx, old_momx, flux_mx, sf)
        time_step(ws, momy, old_momy, flux_my, sf)
        time_step(ws, momz, old_momz, flux_mz, sf)
        time_step(ws, energy, old_energy, flux_en, sf)
    return density, momx, momy, momz, energy


@register_benchmark
class Cfd(ApplicationBenchmark):
    """cfd: unstructured finite-volume Euler solver (Rodinia)."""

    name = "cfd"
    description = "3D Euler equations on an unstructured grid"
    module_name = "repro.benchmarks.apps.cfd"
    extra_module_names = ("repro.benchmarks.apps.cfd_flux",)
    entry = "run"
    metric = "MAE"
    nominal_seconds = 60.0
    compile_seconds = 25.0

    def setup(self):
        nel = 40_000
        rng = np.random.default_rng(self.seed + 4)
        neighbors = [
            rng.permutation(nel).astype(np.int32) for _ in range(4)
        ]
        return {
            "nel": nel, "iterations": 3,
            "neighbors": neighbors, "cfl_value": 0.4,
        }
