"""Blackscholes: European option pricing (PARSEC origin).

Prices a portfolio of European options analytically by solving the
Black-Scholes PDE closed form.  The code follows the PARSEC kernel
``BlkSchlsEqEuroNoDiv``: a long chain of *scalar* intermediate values
per option (vectorised here across the portfolio, one declared array
per C scalar) plus the CNDF polynomial approximation.

Because almost every intermediate is a scalar-style declaration that
only ever receives expression assignments, the type-dependence
analysis cannot merge them: Blackscholes has the weakest clustering in
the suite (paper Table II: TV=59, TC=50) — "with Blackscholes ...
clustering does not significantly reduce the search space".

Verification: MAE over the option prices.  Transcendentals (log, exp,
CNDF's exp) dominate the modeled runtime and cost the same in single
precision, so the all-single speedup is marginal (paper Table IV:
1.04x).
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks.base import ApplicationBenchmark, register_benchmark


def cndf(ws, inputx):
    """Cumulative normal distribution (Abramowitz–Stegun polynomial)."""
    inv_sqrt_2pi = ws.scalar("inv_sqrt_2pi", 0.39894228040143270286)
    a1 = ws.scalar("a1", 0.319381530)
    a2 = ws.scalar("a2", -0.356563782)
    a3 = ws.scalar("a3", 1.781477937)
    a4 = ws.scalar("a4", -1.821255978)
    a5 = ws.scalar("a5", 1.330274429)
    kcoef = ws.scalar("kcoef", 0.2316419)

    sign = ws.array("sign", init=np.sign(inputx))
    xinput = ws.array("xinput", init=abs(inputx))
    expvalues = ws.array("expvalues", init=np.exp(-0.5 * xinput * xinput))
    xnprimeofx = ws.array("xnprimeofx", init=expvalues * inv_sqrt_2pi)
    xk2 = ws.array("xk2", init=1.0 / (1.0 + kcoef * xinput))
    xk2_2 = ws.array("xk2_2", init=xk2 * xk2)
    xk2_3 = ws.array("xk2_3", init=xk2_2 * xk2)
    xk2_4 = ws.array("xk2_4", init=xk2_3 * xk2)
    xk2_5 = ws.array("xk2_5", init=xk2_4 * xk2)
    xlocal_1 = ws.array("xlocal_1", init=xk2 * a1)
    xlocal_2 = ws.array("xlocal_2", init=xk2_2 * a2 + xk2_3 * a3)
    xlocal_3 = ws.array("xlocal_3", init=xk2_4 * a4 + xk2_5 * a5)
    xlocal = ws.array("xlocal", init=1.0 - (xlocal_1 + xlocal_2 + xlocal_3) * xnprimeofx)
    result = ws.array("result", init=0.5 + sign * (xlocal - 0.5))
    return result


def black_scholes(ws, sptprice, strike, rate, volatility, otime, otype):
    """Closed-form Black-Scholes price for every option in the batch."""
    xstockprice = ws.array("xstockprice", init=sptprice)
    xstrikeprice = ws.array("xstrikeprice", init=strike)
    xriskfreerate = ws.array("xriskfreerate", init=rate)
    xvolatility = ws.array("xvolatility", init=volatility)
    xtime = ws.array("xtime", init=otime)
    xsqrttime = ws.array("xsqrttime", init=np.sqrt(xtime))
    xlogterm = ws.array("xlogterm", init=np.log(xstockprice / xstrikeprice))
    xpowerterm = ws.array("xpowerterm", init=0.5 * xvolatility * xvolatility)
    xd1_num = ws.array("xd1_num", init=(xriskfreerate + xpowerterm) * xtime + xlogterm)
    xden = ws.array("xden", init=xvolatility * xsqrttime)
    xd1 = ws.array("xd1", init=xd1_num / xden)
    xd2 = ws.array("xd2", init=xd1 - xden)
    nofxd1 = cndf(ws, xd1)
    nofxd2 = cndf(ws, xd2)
    futurevalue = ws.array(
        "futurevalue",
        init=xstrikeprice * np.exp(-(xriskfreerate * xtime)),
    )
    call1 = ws.array("call1", init=xstockprice * nofxd1)
    call2 = ws.array("call2", init=futurevalue * nofxd2)
    negnofxd1 = ws.array("negnofxd1", init=1.0 - nofxd1)
    negnofxd2 = ws.array("negnofxd2", init=1.0 - nofxd2)
    put1 = ws.array("put1", init=futurevalue * negnofxd2)
    put2 = ws.array("put2", init=xstockprice * negnofxd1)
    price = ws.array("price", init=otype * (put1 - put2) + (1.0 - otype) * (call1 - call2))
    return price


def run(ws, n):
    """Price the whole portfolio and return the prices."""
    sptprice = ws.array("sptprice", init=25.0 + 75.0 * ws.rng.random(n))
    strike = ws.array("strike", init=20.0 + 80.0 * ws.rng.random(n))
    rate = ws.array("rate", init=0.02 + 0.08 * ws.rng.random(n))
    volatility = ws.array("volatility", init=0.1 + 0.4 * ws.rng.random(n))
    otime = ws.array("otime", init=0.25 + 3.75 * ws.rng.random(n))
    otype = ws.array("otype", init=(ws.rng.random(n) < 0.5).astype(np.float64))
    prices = black_scholes(ws, sptprice, strike, rate, volatility, otime, otype)
    return prices


@register_benchmark
class Blackscholes(ApplicationBenchmark):
    """blackscholes: analytic European option pricing (PARSEC)."""

    name = "blackscholes"
    description = "European option pricing via the Black-Scholes PDE"
    module_name = "repro.benchmarks.apps.blackscholes"
    entry = "run"
    metric = "MAE"
    nominal_seconds = 30.0
    compile_seconds = 20.0

    def setup(self):
        return {"n": 4_000}
