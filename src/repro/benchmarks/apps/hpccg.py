"""HPCCG: preconditioned conjugate-gradient mini-app (Mantevo origin).

Solves a symmetric positive-definite sparse system arising from a
27-point-stencil-like PDE discretisation with plain conjugate
gradients.  The matrix lives in CSR format; its integer index arrays
are untouched by precision configurations, and the x-gather in the
SpMV is latency-bound, so lowering the floating data barely moves the
runtime (paper Table IV: speedup 1.00, quality loss 2.0e-6).

The CG vectors flow through the SpMV/ddot/waxpby helpers in
``hpccg_ops``, whose parameters unify them into a few large clusters —
strong clustering, like the paper's Table II row (TV=54, TC=27).

Verification: MAE over the returned solution vector.
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks.apps.hpccg_ops import ddot, sparsemv, waxpby
from repro.benchmarks.base import ApplicationBenchmark, register_benchmark


def cg_solve(ws, vals, b, x, r, p, ap, cols, row_start, max_iter):
    """Unpreconditioned CG iteration (the HPCCG main loop)."""
    waxpby(ws, 1.0, b, 0.0, b, r)        # r = b  (x starts at zero)
    waxpby(ws, 1.0, r, 0.0, r, p)        # p = r
    rtrans = ddot(ws, r, r)
    for _ in range(max_iter):
        sparsemv(ws, vals, p, ap, cols, row_start)
        ptap = ddot(ws, p, ap)
        alpha = ws.scalar("alpha", rtrans / ptap)
        waxpby(ws, 1.0, x, alpha, p, x)  # x += alpha p
        waxpby(ws, 1.0, r, -alpha, ap, r)  # r -= alpha Ap
        oldtrans = ws.scalar("oldtrans", rtrans)
        rtrans = ddot(ws, r, r)
        beta = ws.scalar("beta", rtrans / oldtrans)
        waxpby(ws, 1.0, r, beta, p, p)   # p = r + beta p
    return x


def run(ws, n, nnz_per_row, max_iter, cols, row_start):
    """Build the system, run CG, return the solution vector."""
    nnz = n * nnz_per_row
    offdiag = 0.5 / nnz_per_row
    raw = -offdiag * ws.rng.random(nnz)
    raw[::nnz_per_row] = 4.0          # dominant diagonal (first in row)
    vals = ws.array("vals", init=raw)
    b = ws.array("b", init=200.0 * ws.rng.random(n))
    x = ws.array("x", n)
    r = ws.array("r", n)
    p = ws.array("p", n)
    ap = ws.array("ap", n)
    x = cg_solve(ws, vals, b, x, r, p, ap, cols, row_start, max_iter)
    return x


@register_benchmark
class Hpccg(ApplicationBenchmark):
    """hpccg: conjugate-gradient PDE solver (Mantevo)."""

    name = "hpccg"
    description = "Preconditioned conjugate gradient linear solver"
    module_name = "repro.benchmarks.apps.hpccg"
    extra_module_names = ("repro.benchmarks.apps.hpccg_ops",)
    entry = "run"
    metric = "MAE"
    nominal_seconds = 40.0
    compile_seconds = 20.0

    def setup(self):
        n, nnz_per_row = 16_384, 8
        rng = np.random.default_rng(self.seed + 1)
        # Diagonal first, then random off-diagonal neighbours: the
        # pattern of a stencil matrix flattened to CSR.
        cols = np.empty(n * nnz_per_row, dtype=np.int32)
        for i in range(nnz_per_row):
            if i == 0:
                cols[::nnz_per_row] = np.arange(n, dtype=np.int32)
            else:
                cols[i::nnz_per_row] = rng.integers(0, n, n, dtype=np.int32)
        row_start = np.arange(0, n * nnz_per_row, nnz_per_row, dtype=np.int32)
        return {
            "n": n,
            "nnz_per_row": nnz_per_row,
            "max_iter": 12,
            "cols": cols,
            "row_start": row_start,
        }
