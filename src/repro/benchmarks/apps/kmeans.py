"""K-means clustering (Rodinia origin).

Lloyd's algorithm over a feature matrix read from a binary input file
(the paper's ``kdd_bin``), exercising the runtime library's typed I/O:
the file stores doubles, ``mp_fread`` converts to whatever precision
the configuration assigns to the feature array (paper Listing 3).

The point/assignment loop is processed in small chunks the way the
Rodinia C code iterates point-by-point, so per-iteration loop overhead
— which no precision change removes — dominates the modeled runtime.
Together with the integer label arrays this reproduces the paper's
K-means observation: full single precision preserves the output
exactly (MCR 0) and yields no speedup (Table IV: 0.96x).

Verification: Misclassification Rate (MCR) over the final assignment.
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks.base import ApplicationBenchmark, register_benchmark
from repro.runtime.io import mp_fread, write_typed


def euclid_dist_2(ws, pt, cents):
    """Squared Euclidean distance from each point to each centroid."""
    diff = ws.array("diff", init=pt[:, None, :] - cents[None, :, :])
    dist = ws.array("dist", init=(diff * diff).sum(axis=2))
    return dist


def find_nearest_point(ws, pt2, cents2):
    """Index of the nearest centroid for each point in the chunk."""
    dist2 = euclid_dist_2(ws, pt2, cents2)
    min_dist = ws.array("min_dist", init=np.min(dist2, axis=1))
    rmse_val = ws.scalar("rmse_val", np.sqrt(np.mean(min_dist)))
    return np.argmin(dist2, axis=1), rmse_val


def update_centroids(ws, feats_u, cents_u, labels, k):
    """Recompute each centroid as the mean of its member points."""
    partial = ws.array("partial", init=np.zeros_like(cents_u))
    for j in range(k):
        members = feats_u[labels == j]
        count = len(members)
        if count > 0:
            inv_count = ws.scalar("inv_count", 1.0 / count)
            partial[j, :] = members.sum(axis=0) * inv_count
    cents_u[:, :] = partial


def kmeans_clustering(ws, feats, centroids, n, k, iterations, chunk_size):
    """The Lloyd iteration: assign chunks, then update centroids."""
    labels = np.zeros(n, dtype=np.int32)
    delta = ws.scalar("delta", 0.0)
    for _ in range(iterations):
        moved = 0
        for lo in range(0, n, chunk_size):
            chunk = feats[lo:lo + chunk_size]
            nearest, rmse_val = find_nearest_point(ws, chunk, centroids)
            moved += int(np.count_nonzero(nearest.data != labels[lo:lo + chunk_size]))
            labels[lo:lo + chunk_size] = nearest.data
        update_centroids(ws, feats, centroids, labels, k)
        delta_frac = ws.scalar("delta_frac", moved / n)
        delta = delta_frac
        if delta < 0.001:
            break
    return labels


def run(ws, path, n, d, k, iterations, chunk_size):
    """Cluster the input points; return the final labels."""
    feats = mp_fread(ws, "feats", path, shape=(n, d))
    centroids = ws.array("centroids", init=feats[:k])
    labels = kmeans_clustering(ws, feats, centroids, n, k, iterations, chunk_size)
    return labels.astype(np.float64)


@register_benchmark
class Kmeans(ApplicationBenchmark):
    """kmeans: data-mining clustering (Rodinia)."""

    name = "kmeans"
    description = "K-means clustering of a feature dataset"
    module_name = "repro.benchmarks.apps.kmeans"
    entry = "run"
    metric = "MCR"
    default_threshold = 1e-6
    nominal_seconds = 20.0
    compile_seconds = 20.0

    def setup(self):
        n, d, k = 4_096, 16, 5
        rng = np.random.default_rng(self.seed + 2)
        # Well-separated Gaussian blobs: the assignment is robust to
        # single-precision rounding, so MCR stays exactly 0.
        centers = rng.uniform(-40.0, 40.0, size=(k, d))
        labels = rng.integers(0, k, n)
        points = centers[labels] + rng.standard_normal((n, d))
        path = self.data_dir() / "kdd_bin"
        write_typed(path, points)
        return {
            "path": path, "n": n, "d": d, "k": k,
            "iterations": 4, "chunk_size": 64,
        }
