"""SRAD: Speckle Reducing Anisotropic Diffusion (Rodinia origin).

Removes locally-correlated noise (speckle) from ultrasonic/radar
imagery by iterating a PDE-based diffusion.  The raw radar image is
read from a binary file, then *exponentially extracted* — the Rodinia
preprocessing ``J = exp(I/scale)``.  The raw intensities run up to
~12,000, so the extracted values reach ``exp(90)`` ≈ 1.2e39: finite in
double precision, but **overflowing single precision to infinity**,
after which the normalisation divides inf/inf and floods the output
with NaN.

This is the paper's SRAD story (Table IV: speedup 1.48, quality NaN —
"the output quality is completely destroyed ... the application
outputs NaN"), so every search algorithm must leave the image cluster
in double precision and can only convert the side arrays, yielding no
real speedup at any threshold (Table V).

Verification: MAE over the normalised corrected image.
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks.base import ApplicationBenchmark, register_benchmark
from repro.runtime.io import mp_fread, write_typed


def extract_image(ws, img, inv_scale):
    """Rodinia preprocessing: J = exp(I / scale) — the overflow site."""
    inv_scale = ws.param("inv_scale", inv_scale)
    # Overflowing to inf in single precision is the *intended* paper
    # behaviour (Table IV: "outputs NaN"), not an error condition;
    # suppress the RuntimeWarning instead of letting every low-precision
    # trial spam the log.
    with np.errstate(over="ignore"):
        img[:, :] = np.exp(img * inv_scale)


def diffusion_coefficient(ws, jc, dn, ds, dw, de, q0sqr):
    """The SRAD conduction coefficient c = f(∇J, ∇²J, q0²)."""
    q0sqr = ws.param("q0sqr", q0sqr)
    # den can legitimately hit zero (l2 = -4) and, in low precision,
    # the extracted image is inf: divide-by-zero / invalid operands are
    # part of the algorithm here, and the subsequent clamp to [0, 1]
    # absorbs them.  Silence the spurious RuntimeWarnings.
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        g2 = ws.array("g2", init=(dn * dn + ds * ds + dw * dw + de * de) / (jc * jc))
        l2 = ws.array("l2", init=(dn + ds + dw + de) / jc)
        num = ws.array("num", init=0.5 * g2 - 0.0625 * (l2 * l2))
        den = ws.array("den", init=1.0 + 0.25 * l2)
        qsqr = ws.array("qsqr", init=num / (den * den))
        cden = ws.array("cden", init=(qsqr - q0sqr) / (q0sqr * (1.0 + q0sqr)))
        c = ws.array("c", init=1.0 / (1.0 + cden))
        c[:, :] = np.minimum(np.maximum(c, 0.0), 1.0)
    return c


def srad_iteration(ws, image, lam, q0sqr_i):
    """One diffusion step over the full image."""
    lam = ws.param("lam", lam)
    jc = image[1:-1, 1:-1]
    dn = ws.array("dn", init=image[:-2, 1:-1] - jc)
    ds = ws.array("ds", init=image[2:, 1:-1] - jc)
    dw = ws.array("dw", init=image[1:-1, :-2] - jc)
    de = ws.array("de", init=image[1:-1, 2:] - jc)
    c = diffusion_coefficient(ws, jc, dn, ds, dw, de, q0sqr_i)
    # Rodinia applies per-direction coefficients: the north/west terms
    # use the local c, the south/east terms the neighbour's.
    cn = ws.array("cn", init=c)
    cs = ws.array("cs", init=np.roll(c, -1, axis=0))
    cw = ws.array("cw", init=c)
    ce = ws.array("ce", init=np.roll(c, -1, axis=1))
    divergence = ws.array(
        "divergence", init=cn * dn + cs * ds + cw * dw + ce * de,
    )
    image[1:-1, 1:-1] = jc + 0.25 * lam * divergence


def run(ws, path, rows, cols, iterations, lam_value):
    """Denoise the radar image; return the normalised result."""
    image = mp_fread(ws, "image", path, shape=(rows, cols))
    extract_image(ws, image, 1.0 / 135.0)
    # Same deal as diffusion_coefficient: with an inf-saturated image
    # (the single-precision paper scenario) the ROI statistics and the
    # final normalisation produce inf/inf — expected, not warnings.
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        for _ in range(iterations):
            roi = image[8:40, 8:40]
            roi_mean = np.mean(roi)
            roi_var = np.mean(roi * roi) - roi_mean * roi_mean
            q0sqr_roi = ws.scalar("q0sqr_roi", roi_var / (roi_mean * roi_mean))
            q0sqr = q0sqr_roi
            srad_iteration(ws, image, lam_value, q0sqr)
        normalized = ws.array("normalized", init=image / np.max(image))
    return normalized


@register_benchmark
class Srad(ApplicationBenchmark):
    """srad: speckle-reducing anisotropic diffusion (Rodinia)."""

    name = "srad"
    description = "Speckle-reducing anisotropic diffusion imaging"
    module_name = "repro.benchmarks.apps.srad"
    entry = "run"
    metric = "MAE"
    nominal_seconds = 30.0
    compile_seconds = 20.0

    def setup(self):
        rows, cols = 256, 256
        rng = np.random.default_rng(self.seed + 3)
        # Raw radar intensities up to ~12,100: exp(I/135) overflows
        # single precision (exp(89.6) > FLT_MAX) but not double.
        raw = rng.uniform(0.0, 12_100.0, size=(rows, cols))
        path = self.data_dir() / "radar_image.bin"
        write_typed(path, raw)
        return {
            "path": path, "rows": rows, "cols": cols,
            "iterations": 4, "lam_value": 0.25,
        }
