"""HPC-MixPBench benchmark suite: 10 kernels + 7 proxy applications."""

from repro.benchmarks.base import (
    ApplicationBenchmark,
    Benchmark,
    KernelBenchmark,
    application_benchmarks,
    available_benchmarks,
    get_benchmark,
    kernel_benchmarks,
    register_benchmark,
)

__all__ = [
    "Benchmark", "KernelBenchmark", "ApplicationBenchmark",
    "register_benchmark", "get_benchmark", "available_benchmarks",
    "kernel_benchmarks", "application_benchmarks",
]
