"""Banded linear systems solution kernel.

An iterative banded solver that relaxes a tridiagonal-band system with
ping-pong buffers.  The two state arrays ``x`` and ``v`` are swapped
each sweep — the C pointer-swap idiom — so Typeforge places them in a
single cluster: TV=2, TC=1 (paper Table II).

The arrays are sized so the double-precision working set spills out of
the modeled last-level cache while the single-precision one fits; this
is the cache-residency effect that gives the kernel its outsized
speedup in the paper's Table III (≈4.5x, far above the 2x SIMD bound).
"""

from __future__ import annotations

from repro.benchmarks.base import KernelBenchmark, register_benchmark


def kernel(ws, n, sweeps):
    """Relax a banded system ``A·u = b`` with Jacobi sweeps.

    The band coefficients are compile-time literals (Python floats act
    as weakly-typed C literals under NEP-50), so the only floating
    state is the ping-pong solution pair.
    """
    x = ws.array("x", init=0.1 * ws.rng.standard_normal(n))
    v = ws.array("v", n)
    for _ in range(sweeps):
        v[1:-1] = 0.2475 * (x[:-2] + x[2:]) + 0.005 * x[1:-1]
        v[0] = 0.2475 * x[1]
        v[-1] = 0.2475 * x[-2]
        x, v = v, x
    return x


@register_benchmark
class BandedLinEq(KernelBenchmark):
    """banded-lin-eq: banded linear systems solution (TV=2, TC=1)."""

    name = "banded-lin-eq"
    description = "Banded linear systems solution"
    module_name = "repro.benchmarks.kernels.banded_lin_eq"
    entry = "kernel"
    nominal_seconds = 4.0

    def setup(self):
        # 2 arrays x 900k doubles = 14.4 MB: past the 12 MB modeled LLC
        # in double precision, inside it (7.2 MB) in single.
        return {"n": 900_000, "sweeps": 4}
