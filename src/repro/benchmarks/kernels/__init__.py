"""The ten HPC-MixPBench kernels (paper Table I)."""

from repro.benchmarks.kernels import (  # noqa: F401  (registration side effects)
    banded_lin_eq,
    diff_predictor,
    eos,
    gen_lin_recur,
    hydro_1d,
    iccg,
    innerprod,
    int_predict,
    planckian,
    tridiag,
)
