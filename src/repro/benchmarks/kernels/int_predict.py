"""Integrate predictor kernel (Livermore loop 10 structure).

Four state tables flow through a chain of three helpers (predict →
correct → advance) whose shared parameters unify them into one
seven-entity cluster; the weight table and its helper parameter form a
second cluster: TV=9, TC=2 (paper Table II).
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks.base import KernelBenchmark, register_benchmark


def predict(ws, s1):
    """Predictor stage: extrapolate from the previous differences."""
    s1[1:] = s1[1:] + 0.5 * (s1[1:] - s1[:-1])


def correct(ws, s2):
    """Corrector stage: pull the state back toward its mean."""
    s2[:-1] = 0.75 * s2[:-1] + 0.25 * s2[1:]


def advance(ws, s3):
    """Advance stage: damped time step."""
    s3[:] = s3 * 0.9375


def apply_weights(ws, w):
    """Normalise the integration weights in place."""
    w[:] = w * 0.1


def kernel(ws, n, steps):
    """Integrate predictor over four coupled state tables."""
    px = ws.array("px", init=0.0078125 * ws.rng.standard_normal(n))
    cx = ws.array("cx", init=0.0078125 * ws.rng.standard_normal(n))
    ex = ws.array("ex", init=0.0078125 * ws.rng.standard_normal(n))
    gx = ws.array("gx", init=0.0078125 * ws.rng.standard_normal(n))
    wts = ws.array("wts", init=np.array([1.0, 2.0, 3.0, 4.0]))
    apply_weights(ws, wts)
    for _ in range(steps):
        predict(ws, px)
        predict(ws, cx)
        correct(ws, cx)
        correct(ws, ex)
        advance(ws, ex)
        advance(ws, gx)
        px[:] = px + wts[0] * cx + wts[1] * ex + wts[2] * gx
    return px


@register_benchmark
class IntPredict(KernelBenchmark):
    """int-predict: integrate predictors (TV=9, TC=2)."""

    name = "int-predict"
    description = "Integrate predictors"
    module_name = "repro.benchmarks.kernels.int_predict"
    entry = "kernel"
    nominal_seconds = 2.0

    def setup(self):
        return {"n": 50_000, "steps": 3}
