"""Incomplete Cholesky conjugate gradient fragment (Livermore loop 2).

The classic ICCG excerpt halves the active vector length each level,
reading from one buffer and writing the other, then swapping — so the
two buffers form a single cluster: TV=2, TC=1 (paper Table II).
"""

from __future__ import annotations

from repro.benchmarks.base import KernelBenchmark, register_benchmark


def kernel(ws, n, passes):
    """ICCG reduction sweeps over a ping-pong vector pair."""
    x = ws.array("x", init=0.125 * ws.rng.standard_normal(n))
    v = ws.array("v", n)
    for _ in range(passes):
        m = n
        while m > 256:
            half = m // 2
            v[:half] = x[:m:2] - 0.4375 * (x[1:m:2] + x[:m:2])
            x, v = v, x
            m = half
        x[:n] = x[:n] * 0.96875
    return x


@register_benchmark
class Iccg(KernelBenchmark):
    """iccg: incomplete Cholesky conjugate gradient (TV=2, TC=1)."""

    name = "iccg"
    description = "Incomplete Cholesky conjugate gradient"
    module_name = "repro.benchmarks.kernels.iccg"
    entry = "kernel"
    nominal_seconds = 2.0

    def setup(self):
        return {"n": 131_072, "passes": 4}
