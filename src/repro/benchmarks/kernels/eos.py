"""Equation-of-state fragment kernel (Livermore loop 7 structure).

Four field arrays flow through two shared helpers (one six-entity
cluster) and the polynomial coefficient table is a function-local
singleton: TV=7, TC=2 (paper Table II).

The fields carry O(1) noise, so converting the field cluster to single
precision breaks the strict 1e-8 kernel threshold; the coefficient
table is dyadic, so converting it alone is numerically *exact*.  The
cluster-level searches therefore settle on the coefficient-only
configuration with quality 0.0 and no speedup — matching the paper's
Table III row — while the variable-level hierarchical searches burn
additional evaluations on non-compiling single-field configurations
before finding the same local solution.
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks.base import KernelBenchmark, register_benchmark


def normalize(ws, field):
    """Shift a field toward the reference state (shared by all fields)."""
    field[:] = field - 0.0625


def smooth(ws, part):
    """Neighbour smoothing applied to the primary state field."""
    part[1:-1] = 0.25 * (part[:-2] + part[2:]) + 0.5 * part[1:-1]


def kernel(ws, n, steps):
    """Equation-of-state update: x = f(u, z, y; q, r, t)."""
    u = ws.array("u", init=ws.rng.standard_normal(n + 8))
    z = ws.array("z", init=ws.rng.standard_normal(n))
    y = ws.array("y", init=ws.rng.standard_normal(n))
    x = ws.array("x", n)
    coef = ws.array("coef", init=np.array([0.5, 0.25, 0.125]))
    normalize(ws, u)
    normalize(ws, z)
    normalize(ws, y)
    normalize(ws, x)
    smooth(ws, u)
    q = coef[0]
    r = coef[1]
    t = coef[2]
    for _ in range(steps):
        x[:] = u[:n] + r * (z + r * y) + t * (
            u[3:n + 3] + r * (u[2:n + 2] + r * u[1:n + 1])
            + t * (u[6:n + 6] + q * (u[5:n + 5] + q * u[4:n + 4]))
        )
    return x


@register_benchmark
class Eos(KernelBenchmark):
    """eos: equation of state fragment (TV=7, TC=2)."""

    name = "eos"
    description = "Equation of state fragment"
    module_name = "repro.benchmarks.kernels.eos"
    entry = "kernel"
    nominal_seconds = 1.0

    def setup(self):
        return {"n": 2_000, "steps": 2}
