"""Difference predictor kernel.

Computes chained forward differences of three state tables and blends
them into a predictor, the structure of the Livermore difference
predictor loop.  All three tables flow through the same two helper
functions, so their base types are unified with the helpers'
parameters into a single cluster: TV=5, TC=1 (paper Table II).
"""

from __future__ import annotations

from repro.benchmarks.base import KernelBenchmark, register_benchmark


def forward_diff(ws, series):
    """In-place first forward difference, damped to keep values small."""
    series[:-1] = 0.5 * (series[1:] - series[:-1])
    series[-1] = 0.5 * series[-1]


def blend(ws, table):
    """Blend each entry with its neighbour (predictor smoothing)."""
    table[1:] = table[1:] + 0.25 * table[:-1]


def kernel(ws, n, order):
    """Difference predictor over three state tables."""
    px = ws.array("px", init=0.125 * ws.rng.standard_normal(n))
    cx = ws.array("cx", init=0.125 * ws.rng.standard_normal(n))
    ex = ws.array("ex", init=0.125 * ws.rng.standard_normal(n))
    for _ in range(order):
        forward_diff(ws, px)
        forward_diff(ws, cx)
        forward_diff(ws, ex)
        blend(ws, px)
        blend(ws, cx)
        blend(ws, ex)
    px[:] = px + 0.5 * cx + 0.25 * ex
    return px


@register_benchmark
class DiffPredictor(KernelBenchmark):
    """diff-predictor: difference predictor (TV=5, TC=1)."""

    name = "diff-predictor"
    description = "Difference predictor"
    module_name = "repro.benchmarks.kernels.diff_predictor"
    entry = "kernel"
    nominal_seconds = 2.0

    def setup(self):
        return {"n": 400_000, "order": 4}
