"""Inner product kernel.

A chunked dot product with a typed accumulator.  The operand arrays
may alias (the self-product fast path assigns ``x = z``, the C pointer
assignment), which places them in one cluster; the accumulator is a
scalar in its own singleton: TV=3, TC=2 (paper Table II).

Operands are small dyadic integers, so every precision configuration
produces an exact result (quality 0.0, as in the paper's Table III),
and the chunked loop makes per-call overhead dominate — no
configuration gains a real speedup (SU ≈ 1.0).
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks.base import KernelBenchmark, register_benchmark


def kernel(ws, n, chunks, self_product):
    """Chunked inner product q = Σ x[k]·z[k]."""
    z = ws.array("z", init=ws.rng.integers(-6, 7, n).astype(np.float64))
    x = ws.array("x", init=ws.rng.integers(-6, 7, n).astype(np.float64))
    if self_product:
        x = z
    q = ws.scalar("q", 0.0)
    step = n // chunks
    for c in range(chunks):
        lo = c * step
        q = q + np.dot(x[lo:lo + step], z[lo:lo + step])
    return np.asarray([q])


@register_benchmark
class InnerProd(KernelBenchmark):
    """innerprod: inner product (TV=3, TC=2)."""

    name = "innerprod"
    description = "Inner product"
    module_name = "repro.benchmarks.kernels.innerprod"
    entry = "kernel"
    nominal_seconds = 0.5

    def setup(self):
        return {"n": 8_192, "chunks": 32, "self_product": False}
