"""1-D hydrodynamics fragment kernel (Livermore loop 1 structure).

``x[k] = q + y[k] * (r * z[k+10] + t * z[k+11])`` — the state pair
(x, y) shares the halo-exchange helper, and the source field z shares
the scaling helper with the coefficient table: TV=6, TC=2
(paper Table II: {x, y, u} and {z, coef, c}).
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks.base import KernelBenchmark, register_benchmark


def halo(ws, u):
    """Periodic boundary exchange on a state field."""
    u[0] = u[-2]
    u[-1] = u[1]


def scale_field(ws, c):
    """Uniform damping applied to source terms and coefficients."""
    c[:] = c * 0.5


def kernel(ws, n, steps):
    """Hydrodynamics fragment sweep."""
    y = ws.array("y", init=0.25 * ws.rng.standard_normal(n + 2))
    z = ws.array("z", init=0.25 * ws.rng.standard_normal(n + 12))
    x = ws.array("x", n + 2)
    coef = ws.array("coef", init=np.array([0.0625, 0.21, 0.37]))
    scale_field(ws, z)
    scale_field(ws, coef)
    q = coef[0]
    r = coef[1]
    t = coef[2]
    for _ in range(steps):
        halo(ws, y)
        x[1:-1] = q + y[1:-1] * (r * z[10:n + 10] + t * z[11:n + 11])
        halo(ws, x)
        y[1:-1] = 0.5 * (x[1:-1] + y[1:-1])
    return x


@register_benchmark
class Hydro1D(KernelBenchmark):
    """hydro-1d: hydrodynamics fragment (TV=6, TC=2)."""

    name = "hydro-1d"
    description = "Hydrodynamics fragment"
    module_name = "repro.benchmarks.kernels.hydro_1d"
    entry = "kernel"
    nominal_seconds = 2.0

    def setup(self):
        return {"n": 60_000, "steps": 5}
