"""Tridiagonal linear systems solution kernel.

A cyclic-reduction style tridiagonal elimination whose forward and
backward sweeps run through the same helper, unifying the two vectors
with the helper parameter: TV=3, TC=1 (paper Table II).

Dyadic inputs keep the elimination exact in single precision (quality
0.0 in the paper's Table III) and the short vectors leave no room for
speedup (SU ≈ 1.0).
"""

from __future__ import annotations

from repro.benchmarks.base import KernelBenchmark, register_benchmark


def sweep(ws, vec):
    """One damped elimination sweep over a vector."""
    vec[1:] = vec[1:] - 0.5 * vec[:-1]


def kernel(ws, n, passes):
    """Tridiagonal solve: forward elimination + back substitution."""
    y = ws.array("y", init=ws.rng.integers(-8, 9, n) / 16.0)
    x = ws.array("x", n)
    for _ in range(passes):
        sweep(ws, y)
        x[:] = y * 0.5
        sweep(ws, x)
    return x


@register_benchmark
class Tridiag(KernelBenchmark):
    """tridiag: tridiagonal linear systems solution (TV=3, TC=1)."""

    name = "tridiag"
    description = "Tridiagonal linear systems solution"
    module_name = "repro.benchmarks.kernels.tridiag"
    entry = "kernel"
    nominal_seconds = 0.5

    def setup(self):
        return {"n": 2_048, "passes": 2}
