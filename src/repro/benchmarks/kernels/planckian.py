"""Planckian distribution kernel (Livermore loop 13 structure).

``w[k] = x[k] / (exp(u[k]/v[k]) - 1)`` with the classic ``expmax``
overflow guard.  All four field arrays pass through the same radiance
helper (one five-entity cluster) and the guard is a scalar singleton:
TV=6, TC=2 (paper Table II).

The transcendental dominates the modeled runtime and libm costs the
same in either precision, so no configuration speeds this kernel up;
moreover single-precision ``exp`` perturbs the output above the strict
1e-8 kernel threshold, so — as in the paper — the searches fall back
to configurations that change nothing numerically (quality 0.0).
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks.base import KernelBenchmark, register_benchmark


def radiate(ws, field):
    """Shared pre-scaling of all radiance fields."""
    field[:] = field * 0.5


def kernel(ws, n, steps):
    """Planckian distribution evaluation."""
    u = ws.array("u", init=2.0 + ws.rng.random(n))
    v = ws.array("v", init=1.0 + ws.rng.random(n))
    x = ws.array("x", init=2.0 + 2.0 * ws.rng.random(n))
    w = ws.array("w", n)
    expmax = ws.scalar("expmax", 20.0)
    radiate(ws, u)
    radiate(ws, v)
    radiate(ws, x)
    radiate(ws, w)
    for _ in range(steps):
        y = np.minimum(expmax, u / v)
        w[:] = x / (np.exp(y) - 1.0)
    return w


@register_benchmark
class Planckian(KernelBenchmark):
    """planckian: Planckian distribution (TV=6, TC=2)."""

    name = "planckian"
    description = "Planckian distribution"
    module_name = "repro.benchmarks.kernels.planckian"
    entry = "kernel"
    nominal_seconds = 1.0

    def setup(self):
        return {"n": 20_000, "steps": 2}
