"""General linear recurrence equation kernel.

Solves a prefix-sum style linear recurrence with ping-pong state
buffers; both buffers additionally pass through the recurrence and
rescaling helpers, so all four entities share one cluster: TV=4, TC=1
(paper Table II).

Inputs are dyadic rationals with small magnitude, so the recurrence is
*exact* in single precision — every configuration verifies with zero
error, reproducing the paper's 0.0 quality entries for this kernel.
"""

from __future__ import annotations

from repro.benchmarks.base import KernelBenchmark, register_benchmark


def recurrence(ws, w):
    """One doubling step of the linear recurrence s[i] += s[i - k]."""
    half = len(w) // 2
    w[half:] = w[half:] + w[:half]


def rescale(ws, v):
    """Damp the running state to keep magnitudes bounded (dyadic)."""
    v[:] = v * 0.5


def kernel(ws, n, levels):
    """General linear recurrence via recursive doubling."""
    sa = ws.array("sa", init=ws.rng.integers(-8, 9, n) / 16.0)
    sb = ws.array("sb", n)
    for _ in range(levels):
        recurrence(ws, sa)
        rescale(ws, sa)
        sb[:] = sa
        sa, sb = sb, sa
    return sa


@register_benchmark
class GenLinRecur(KernelBenchmark):
    """gen-lin-recur: general linear recurrence equation (TV=4, TC=1)."""

    name = "gen-lin-recur"
    description = "General linear recurrence equation"
    module_name = "repro.benchmarks.kernels.gen_lin_recur"
    entry = "kernel"
    nominal_seconds = 1.0

    def setup(self):
        return {"n": 4_096, "levels": 4}
