"""Inter-procedural forward dataflow over MPB scan facts.

The Typeforge pass in :mod:`repro.typeforge.dependence` answers *which
variables must share a type*; this module answers three further
questions that a purely dynamic search otherwise burns trials on:

* **output-reachability** — does a variable's value flow into the
  program's verified output (the entry function's return value) or an
  ``mp_fwrite`` sink?  Variables that never do cannot change the
  verified error; the prune pass freezes them at the default precision.
* **must-equal constraints** — accumulator feedback loops
  (``s = s + ...`` inside a loop) and in-place array update chains
  (``x[i] = f(x, y)`` inside a loop) couple operand precisions so
  tightly that exploring them independently wastes trials; the prune
  pass merges their clusters.
* **hazard sites** — source locations where mixed-precision
  configurations can go numerically wrong: narrowing stores,
  mixed-cluster binops, accumulation loops, cancellation-prone
  subtractions, tight-tolerance comparisons.  Each carries an MPB2xx
  rule code and a ``file:line`` location for ``mixpbench lint``.

The analysis is a conservative forward value-flow over *slots*
(function-local names): assignment and store facts flow right-to-left,
aliases flow both ways (shared storage), call bindings flow into callee
parameters (and back out through bare-name arguments, which share
storage), and tuple returns bind positionally to tuple-unpacking
callers.  Calls to functions outside the scanned modules (NumPy,
builtins) are treated as pass-through: everything read in the argument
list may flow into the call's targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.typeforge.astscan import FunctionScan, ModuleScan, Slot
from repro.typeforge.dependence import DependenceResult, solve

__all__ = [
    "MustEqual", "HazardSite", "DataflowResult", "analyze_dataflow",
    "HAZARD_RULES", "FACT_RULES",
]

#: MPB1xx — dataflow facts surfaced as informational lint findings
FACT_RULES = {
    "MPB101": "variable never flows into verified output (freeze candidate)",
    "MPB102": "accumulator feedback loop couples operand precisions (merge candidate)",
    "MPB103": "in-place update chain couples array precisions (merge candidate)",
}

#: MPB2xx — hazard sites surfaced as lint warnings
HAZARD_RULES = {
    "MPB201": "narrowing store: RHS reads a different precision cluster",
    "MPB202": "binary operation mixes operands from different precision clusters",
    "MPB203": "reduction/accumulation loop: rounding error grows with trip count",
    "MPB204": "subtraction of same-kind operands is cancellation-prone",
    "MPB205": "comparison against a tight tolerance is precision-sensitive",
}

#: comparisons against literals at or below this magnitude are flagged
TIGHT_TOLERANCE = 1e-3


@dataclass(frozen=True)
class MustEqual:
    """Two variables whose precisions the prune pass couples."""

    a: str          # variable uid
    b: str          # variable uid
    rule: str       # "MPB102" | "MPB103"
    function: str
    file: str | None = None
    line: int = 0
    col: int = 0

    def describe(self) -> str:
        return f"{self.rule}: {self.a} ~ {self.b} ({FACT_RULES[self.rule]})"


@dataclass(frozen=True)
class HazardSite:
    """One potential mixed-precision hazard, tagged with a rule code."""

    rule: str
    message: str
    function: str
    module: str
    file: str | None = None
    line: int = 0
    col: int = 0
    names: tuple[str, ...] = ()   # variable uids involved

    def location(self) -> str:
        base = self.file or self.module
        return f"{base}:{self.line}:{self.col}"


@dataclass
class DataflowResult:
    """Everything the forward dataflow analysis learned."""

    entry: str | None
    dependence: DependenceResult
    #: forward value-flow edges between slots
    edges: dict[Slot, set[Slot]] = field(default_factory=dict)
    #: direct output sinks (entry returns, mp_fwrite arguments)
    sinks: frozenset[Slot] = frozenset()
    #: slots whose value can flow into a sink
    reachable_slots: frozenset[Slot] = frozenset()
    #: variable uids that can influence the verified output
    output_relevant: frozenset[str] = frozenset()
    #: variable uids that provably cannot (freeze candidates)
    output_irrelevant: frozenset[str] = frozenset()
    must_equal: tuple[MustEqual, ...] = ()
    hazards: tuple[HazardSite, ...] = ()

    def reaches_output(self, uid: str) -> bool:
        """Does variable ``uid``'s value flow into the verified output?"""
        if uid not in {v.uid for v in self.dependence.variables}:
            raise KeyError(f"unknown variable: {uid}")
        return uid in self.output_relevant

    def summary(self) -> dict:
        return {
            "entry": self.entry,
            "sinks": len(self.sinks),
            "reachable_slots": len(self.reachable_slots),
            "output_relevant": sorted(self.output_relevant),
            "output_irrelevant": sorted(self.output_irrelevant),
            "must_equal": [m.describe() for m in self.must_equal],
            "hazards": len(self.hazards),
        }


def analyze_dataflow(
    scans: Iterable[ModuleScan],
    entry: str | None = None,
    dependence: DependenceResult | None = None,
) -> DataflowResult:
    """Run the forward dataflow analysis over scanned modules."""
    scans = list(scans)
    functions: dict[str, FunctionScan] = {}
    for scan in scans:
        functions.update(scan.functions)
    if dependence is None:
        dependence = solve(scans, entry=entry)

    uid_of_slot = {slot: uid for uid, slot in dependence.slot_of_variable.items()}
    cluster_of = {
        uid: cluster.cid
        for cluster in dependence.clusters
        for uid in cluster.members
    }
    variables = {v.uid: v for v in dependence.variables}

    edges = _build_edges(functions)
    sinks = _collect_sinks(functions, entry)
    reachable = _reverse_reachability(edges, sinks)

    relevant = frozenset(
        uid for slot, uid in uid_of_slot.items() if slot in reachable
    )
    irrelevant = frozenset(variables) - relevant

    must_equal = _must_equal_constraints(
        functions, uid_of_slot, cluster_of, variables
    )
    hazards = _hazard_sites(functions, uid_of_slot, cluster_of, variables)

    return DataflowResult(
        entry=entry,
        dependence=dependence,
        edges=edges,
        sinks=frozenset(sinks),
        reachable_slots=frozenset(reachable),
        output_relevant=relevant,
        output_irrelevant=irrelevant,
        must_equal=must_equal,
        hazards=hazards,
    )


# -- graph construction ---------------------------------------------------

def _build_edges(functions: Mapping[str, FunctionScan]) -> dict[Slot, set[Slot]]:
    edges: dict[Slot, set[Slot]] = {}

    def add(a: Slot, b: Slot) -> None:
        edges.setdefault(a, set()).add(b)

    for fn in functions.values():
        here = fn.name
        for flow in fn.flows:
            for target in flow.targets:
                t_slot = Slot(here, target)
                for source in flow.sources:
                    add(Slot(here, source), t_slot)
                if flow.augmented:
                    add(t_slot, t_slot)
        for alias in fn.aliases:
            add(alias.source, alias.target)
            add(alias.target, alias.source)
        for cf in fn.callflows:
            callee = functions.get(cf.callee)
            targets = tuple(Slot(here, t) for t in cf.targets)
            if callee is None:
                # pass-through: an unscanned callable (NumPy, builtins)
                # may propagate anything it reads into its result
                for reads in cf.arg_reads:
                    for read in reads:
                        for t_slot in targets:
                            add(Slot(here, read), t_slot)
                continue
            for position, reads in enumerate(cf.arg_reads):
                if position >= len(callee.params):
                    continue
                param = Slot(cf.callee, callee.params[position])
                for read in reads:
                    add(Slot(here, read), param)
                bare = cf.arg_names[position]
                if bare is not None:
                    # a bare-name argument shares storage with the
                    # parameter: callee writes flow back to the caller
                    add(param, Slot(here, bare))
            for ret in callee.return_flows:
                if len(ret) == len(targets) and targets:
                    pairs = zip(ret, targets)
                else:
                    pairs = ((reads, t) for reads in ret for t in targets)
                for reads, t_slot in pairs:
                    for read in reads:
                        add(Slot(cf.callee, read), t_slot)
    return edges


def _collect_sinks(
    functions: Mapping[str, FunctionScan], entry: str | None
) -> set[Slot]:
    sinks: set[Slot] = set()
    if entry is not None and entry in functions:
        returning = [functions[entry]]
    else:
        # without a known entry every return is conservatively a sink
        returning = list(functions.values())
    for fn in returning:
        sinks.update(Slot(fn.name, name) for name in fn.return_reads)
    for fn in functions.values():
        for out in fn.outputs:
            sinks.update(Slot(fn.name, name) for name in out.sources)
    return sinks


def _reverse_reachability(
    edges: Mapping[Slot, set[Slot]], sinks: set[Slot]
) -> set[Slot]:
    """Slots whose value can flow into a sink (sinks included)."""
    reverse: dict[Slot, list[Slot]] = {}
    for source, targets in edges.items():
        for target in targets:
            reverse.setdefault(target, []).append(source)
    reached: set[Slot] = set()
    frontier = list(sinks)
    while frontier:
        slot = frontier.pop()
        if slot in reached:
            continue
        reached.add(slot)
        frontier.extend(reverse.get(slot, ()))
    return reached


# -- must-equal constraints ------------------------------------------------

def _must_equal_constraints(
    functions: Mapping[str, FunctionScan],
    uid_of_slot: Mapping[Slot, str],
    cluster_of: Mapping[str, str],
    variables: Mapping[str, object],
) -> tuple[MustEqual, ...]:
    out: list[MustEqual] = []
    seen: set[tuple[str, str, str]] = set()

    def emit(a_uid: str, b_uid: str, rule: str, fn: FunctionScan, line: int, col: int) -> None:
        key = (rule, *sorted((a_uid, b_uid)))
        if key in seen:
            return
        seen.add(key)
        out.append(MustEqual(
            a=a_uid, b=b_uid, rule=rule, function=fn.name,
            file=fn.path, line=line, col=col,
        ))

    for fn in functions.values():
        for flow in fn.flows:
            if not flow.in_loop or len(flow.targets) != 1:
                continue
            target = flow.targets[0]
            feedback = flow.augmented or target in flow.sources
            if not feedback:
                continue
            t_uid = uid_of_slot.get(Slot(fn.name, target))
            if t_uid is None:
                continue
            t_var = variables[t_uid]
            for source in flow.sources:
                if source == target:
                    continue
                s_uid = uid_of_slot.get(Slot(fn.name, source))
                if s_uid is None:
                    continue
                s_var = variables[s_uid]
                if cluster_of[t_uid] == cluster_of[s_uid]:
                    continue  # already unified by the dependence pass
                if not flow.store and not t_var.is_pointer:
                    # scalar accumulator: s = s + f(operands); the
                    # accumulated rounding error tracks the operand
                    # precision, so searching them separately wastes
                    # trials
                    emit(t_uid, s_uid, "MPB102", fn, flow.line, flow.col)
                elif flow.store and t_var.is_pointer and s_var.is_pointer:
                    # in-place array update chain: x[i] = f(x, y)
                    emit(t_uid, s_uid, "MPB103", fn, flow.line, flow.col)
    return tuple(out)


# -- hazard sites ----------------------------------------------------------

def _hazard_sites(
    functions: Mapping[str, FunctionScan],
    uid_of_slot: Mapping[Slot, str],
    cluster_of: Mapping[str, str],
    variables: Mapping[str, object],
) -> tuple[HazardSite, ...]:
    out: list[HazardSite] = []
    seen: set[tuple] = set()

    def uid(fn: FunctionScan, name: str) -> str | None:
        return uid_of_slot.get(Slot(fn.name, name))

    def uids(fn: FunctionScan, names: Iterable[str]) -> list[str]:
        return [u for n in names if (u := uid(fn, n)) is not None]

    def emit(rule: str, message: str, fn: FunctionScan, line: int, col: int,
             names: Iterable[str]) -> None:
        involved = tuple(sorted(set(names)))
        key = (rule, fn.path or fn.module, line, involved)
        if key in seen:
            return
        seen.add(key)
        out.append(HazardSite(
            rule=rule, message=message, function=fn.name, module=fn.module,
            file=fn.path, line=line, col=col, names=involved,
        ))

    for fn in functions.values():
        for flow in fn.flows:
            targets = uids(fn, flow.targets)
            sources = uids(fn, flow.sources)
            if flow.store and targets:
                t_cluster = cluster_of[targets[0]]
                foreign = [s for s in sources if cluster_of[s] != t_cluster]
                if foreign:
                    emit(
                        "MPB201",
                        f"store into {targets[0]!r} reads "
                        f"{', '.join(repr(s) for s in foreign)} from a different "
                        "precision cluster; the value may be narrowed under "
                        "mixed configurations",
                        fn, flow.line, flow.col, targets + foreign,
                    )
            if flow.in_loop and len(flow.targets) == 1 and targets:
                if flow.augmented or flow.targets[0] in flow.sources:
                    emit(
                        "MPB203",
                        f"{targets[0]!r} accumulates across loop iterations; "
                        "rounding error grows with the trip count",
                        fn, flow.line, flow.col, targets,
                    )
        for binop in fn.binops:
            left = uids(fn, binop.left)
            right = uids(fn, binop.right)
            if binop.op == "-" and left and right:
                emit(
                    "MPB204",
                    f"subtraction of {', '.join(repr(u) for u in left)} and "
                    f"{', '.join(repr(u) for u in right)} is cancellation-prone "
                    "when operands are close in magnitude",
                    fn, binop.line, binop.col, left + right,
                )
            if left and right:
                clusters = {cluster_of[u] for u in left + right}
                if len(clusters) > 1:
                    emit(
                        "MPB202",
                        f"operands of {binop.op!r} span {len(clusters)} precision "
                        "clusters; a mixed configuration implies an implicit cast "
                        "here",
                        fn, binop.line, binop.col, left + right,
                    )
        for compare in fn.compares:
            involved = uids(fn, compare.names)
            if not involved:
                continue
            tolerance = compare.tolerance
            if tolerance is not None and 0.0 < tolerance <= TIGHT_TOLERANCE:
                emit(
                    "MPB205",
                    f"comparison of {', '.join(repr(u) for u in involved)} "
                    f"against tolerance {tolerance:g} can flip under reduced "
                    "precision",
                    fn, compare.line, compare.col, involved,
                )
    out.sort(key=lambda h: (h.file or h.module, h.line, h.col, h.rule))
    return tuple(out)
