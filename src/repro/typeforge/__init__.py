"""Typeforge analogue: type-dependence analysis and clustering for
benchmark modules written in the constrained MPB style."""

from repro.typeforge.astscan import scan_module, scan_source
from repro.typeforge.clusters import TypeforgeReport, analyze, analyze_sources
from repro.typeforge.dependence import DependenceEdge, DependenceResult, UnionFind, solve

__all__ = [
    "scan_module", "scan_source", "solve",
    "UnionFind", "DependenceEdge", "DependenceResult",
    "TypeforgeReport", "analyze", "analyze_sources",
]
