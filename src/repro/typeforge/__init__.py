"""Typeforge analogue: type-dependence analysis, clustering, forward
dataflow, hazard linting, static search-space pruning, and certified
rounding-error bounds for benchmark modules written in the constrained
MPB style."""

from repro.typeforge.astscan import scan_module, scan_source
from repro.typeforge.clusters import TypeforgeReport, analyze, analyze_sources
from repro.typeforge.dataflow import (
    DataflowResult,
    HazardSite,
    MustEqual,
    analyze_dataflow,
)
from repro.typeforge.dependence import DependenceEdge, DependenceResult, UnionFind, solve
from repro.typeforge.errorbound import (
    BOUND_RULES,
    CertifiedBound,
    ErrorBoundModel,
    SiteAmplification,
    analyze_error_bounds,
    calibrate_bound,
    certify_benchmark,
)
from repro.typeforge.lint import LintFinding, LintReport, lint_benchmark, lint_sources
from repro.typeforge.prune import PruneResult, prune_report, prune_space

__all__ = [
    "scan_module", "scan_source", "solve",
    "UnionFind", "DependenceEdge", "DependenceResult",
    "TypeforgeReport", "analyze", "analyze_sources",
    "DataflowResult", "HazardSite", "MustEqual", "analyze_dataflow",
    "PruneResult", "prune_report", "prune_space",
    "LintFinding", "LintReport", "lint_benchmark", "lint_sources",
    "BOUND_RULES", "ErrorBoundModel", "SiteAmplification",
    "CertifiedBound", "analyze_error_bounds", "calibrate_bound",
    "certify_benchmark",
]
