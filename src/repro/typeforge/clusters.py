"""Public Typeforge API: analyse benchmark modules into a report.

:func:`analyze` is what FloatSmith calls first for a program: it runs
the scanner and the dependence solver and returns a
:class:`TypeforgeReport` carrying the variable inventory (TV), the
cluster partition (TC), the bare-name→uid map the runtime needs, and a
ready-made :class:`~repro.core.variables.SearchSpace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import ModuleType

from repro.core.variables import Cluster, Granularity, SearchSpace, Variable
from repro.typeforge.astscan import ModuleScan, scan_module, scan_source
from repro.typeforge.dependence import DependenceResult, solve

__all__ = ["TypeforgeReport", "analyze", "analyze_sources"]


@dataclass(frozen=True)
class TypeforgeReport:
    """Result of the type-dependence analysis of one program."""

    program: str
    variables: tuple[Variable, ...]
    clusters: tuple[Cluster, ...]
    name_map: dict[str, str] = field(hash=False)
    dependence: DependenceResult | None = field(
        default=None, hash=False, compare=False, repr=False,
    )
    scans: tuple[ModuleScan, ...] = field(
        default=(), hash=False, compare=False, repr=False,
    )
    entry: str | None = field(default=None, hash=False, compare=False)

    @property
    def total_variables(self) -> int:
        """TV — the paper's Table II first metric."""
        return len(self.variables)

    @property
    def total_clusters(self) -> int:
        """TC — the paper's Table II second metric."""
        return len(self.clusters)

    def search_space(self, granularity: Granularity = Granularity.CLUSTER) -> SearchSpace:
        """A search space over this program's locations."""
        return SearchSpace(self.variables, self.clusters, granularity=granularity)

    def functions(self) -> tuple[str, ...]:
        """Functions containing at least one variable (HR hierarchy)."""
        return tuple(sorted({v.function for v in self.variables}))

    def modules(self) -> tuple[str, ...]:
        """Modules containing at least one variable (HR hierarchy)."""
        return tuple(sorted({v.module for v in self.variables}))

    def variables_in_function(self, function: str) -> tuple[Variable, ...]:
        return tuple(v for v in self.variables if v.function == function)

    def variables_in_module(self, module: str) -> tuple[Variable, ...]:
        return tuple(v for v in self.variables if v.module == module)

    def explain(self, uid_a: str, uid_b: str) -> list[str] | None:
        """Why must ``uid_a`` and ``uid_b`` share a base type?

        Returns the shortest chain of dependence facts connecting the
        two variables (empty list if they are the same entity), or
        ``None`` when they are independent (different clusters).
        """
        if self.dependence is None:
            raise ValueError("this report carries no dependence provenance")
        return self.dependence.explain(uid_a, uid_b)

    def summary(self) -> dict:
        return {
            "program": self.program,
            "total_variables": self.total_variables,
            "total_clusters": self.total_clusters,
            "clusters": {c.cid: sorted(c.members) for c in self.clusters},
        }


def analyze(
    modules: ModuleType | list[ModuleType],
    entry: str | None = None,
    program: str = "",
) -> TypeforgeReport:
    """Analyse one or more live benchmark modules."""
    if isinstance(modules, ModuleType):
        modules = [modules]
    scans = [scan_module(m) for m in modules]
    result = solve(scans, entry=entry)
    name = program or modules[0].__name__.rsplit(".", 1)[-1]
    return TypeforgeReport(
        program=name,
        variables=tuple(result.variables),
        clusters=tuple(result.clusters),
        name_map=dict(result.name_map),
        dependence=result,
        scans=tuple(scans),
        entry=entry,
    )


def analyze_sources(
    sources: dict[str, str],
    entry: str | None = None,
    program: str = "",
) -> TypeforgeReport:
    """Analyse raw source texts, keyed by module name (for tests and
    user-supplied programs that are not importable modules)."""
    scans = [scan_source(src, name) for name, src in sources.items()]
    result = solve(scans, entry=entry)
    return TypeforgeReport(
        program=program or next(iter(sources)),
        variables=tuple(result.variables),
        clusters=tuple(result.clusters),
        name_map=dict(result.name_map),
        dependence=result,
        scans=tuple(scans),
        entry=entry,
    )
