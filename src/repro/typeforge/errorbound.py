"""Static first-order rounding-error bounds over MPB dataflow facts.

The search strategies in :mod:`repro.search` pay a full instrumented
trial to learn that a candidate configuration was hopeless.  This
module prices configurations *statically*: a single analysis of the
scanned program produces, for every variable, an **amplification
factor** — how strongly one unit of rounding error introduced at that
variable's stores can show up at the verified output — and the
resulting per-sink worst-case error bound is a symbolic function of
each location's unit roundoff.  One model therefore prices every
configuration in the space, including the whole emulated ``e8m*`` /
``e11m*`` width ladder, for free.

The model is the classic first-order one: every store into a variable
held at precision ``p`` introduces at most ``u(p) = 2**-(m+1)``
relative error; that error is carried along the forward value-flow
edges of :func:`repro.typeforge.dataflow.analyze_dataflow` and
multiplied by per-site weights on the way:

* a reduction/accumulation store (the MPB203 pattern) contributes once
  per loop iteration, so it multiplies by the trip count ``N`` — exact
  when a recorded :class:`~repro.runtime.profiler.Profile` bounds the
  iteration count, the symbolic default :data:`DEFAULT_TRIP_COUNT`
  otherwise;
* a store fed by a subtraction (the MPB204 cancellation pattern)
  multiplies by :data:`CANCELLATION_FACTOR`, the stand-in for the
  unbounded relative blow-up cancellation can cause.

Amplifications are propagated sink-to-source with a finalize-once
max-product traversal, so feedback cycles contribute their weight once
instead of diverging, and saturate at :data:`AMPLIFICATION_CAP`.

Static amplifications alone are unitless and wildly conservative.
:func:`calibrate_bound` anchors them against one measured shadow run
(:mod:`repro.shadow.report`): each statically output-reachable
variable receives the share of the *measured* uniform-fp32 error that
its shadow marginal accounts for, and a :class:`CertifiedBound` then
prices a configuration in metric units.  The certified *lower* bound
divides that estimate by a safety factor (default
:data:`DEFAULT_SAFETY`) so model bias can only make screening less
aggressive, never unsound:

* **soundness contract** — ``lower(config) > threshold`` is the only
  statement screening acts on, and it may only *skip* a configuration
  (treat it as failing), never accept one.  A configuration whose
  bound is below the threshold is evaluated normally.  With screening
  disabled, behaviour is byte-identical; with it enabled, a search
  reaches the same verified error while spending fewer trials.

The MPB3xx lint rules rendered by ``mixpbench lint`` come from the
same model: see :data:`BOUND_RULES`.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.typeforge.astscan import FunctionScan, ModuleScan, Slot
from repro.typeforge.dataflow import DataflowResult, analyze_dataflow
from repro.typeforge.dependence import DependenceResult

__all__ = [
    "BOUND_RULES",
    "CANCELLATION_FACTOR",
    "DEFAULT_SAFETY",
    "DEFAULT_TRIP_COUNT",
    "CertifiedBound",
    "ErrorBoundModel",
    "SiteAmplification",
    "analyze_error_bounds",
    "calibrate_bound",
    "certify_benchmark",
]

#: MPB3xx — error-bound findings surfaced through ``mixpbench lint``
BOUND_RULES = {
    "MPB301": "site dominates the certified error bound",
    "MPB302": "reduction trip count is not trace-bounded",
    "MPB303": "bound blow-up through cancellation",
}

#: symbolic trip count assumed for reductions when no recorded trace
#: bounds the real iteration count
DEFAULT_TRIP_COUNT = 1024

#: first-order stand-in for the relative blow-up of a cancellation-fed
#: store (subtraction of close operands has unbounded condition number;
#: a fixed factor keeps the bound finite and the ordering meaningful)
CANCELLATION_FACTOR = 8.0

#: amplification saturation value — feedback cycles stop here
AMPLIFICATION_CAP = 2.0 ** 40

#: MPB303 fires when a cancellation site amplifies by at least this
BLOWUP_THRESHOLD = 64.0

#: divisor between the calibrated error estimate and the *certified*
#: lower bound used for screening.  Probing the suite showed the
#: proportional-share model overestimating single-variable errors by
#: up to ~60x (hpccg's ``vals``); 128 keeps a 2x margin beyond the
#: worst observed bias, so rejects stay sound in practice while tight
#: thresholds and narrow emulated widths still screen usefully.
DEFAULT_SAFETY = 128.0

#: reference unit roundoff — fp32, the calibration precision; the
#: certified bound scales a measured fp32 anchor by u(p)/U_REF
U_REF = 2.0 ** -24


def _excess_roundoff(precision) -> float:
    """Unit roundoff of ``precision`` in excess of the fp64 reference
    the quality metrics compare against (so an all-double configuration
    prices to exactly zero)."""
    from repro.core.types import Precision, unit_roundoff

    return max(0.0, unit_roundoff(precision) - unit_roundoff(Precision.DOUBLE))


@dataclass(frozen=True)
class SiteAmplification:
    """One source site the bound model attributes amplification to."""

    rule: str               # "MPB301" | "MPB302" | "MPB303"
    message: str
    function: str
    module: str
    file: str | None = None
    line: int = 0
    col: int = 0
    names: tuple[str, ...] = ()   # variable uids involved
    factor: float = 1.0           # amplification contributed by the site

    def location(self) -> str:
        base = self.file or self.module
        return f"{base}:{self.line}:{self.col}"


@dataclass
class ErrorBoundModel:
    """The static half of the certifier: per-variable amplifications.

    ``terms`` maps a variable uid to its amplification factor ``A``;
    the first-order output error bound of a configuration is
    ``sum(A[uid] * u(precision_of(uid)))`` in relative units.
    """

    entry: str | None
    trip_count: int
    #: True when ``trip_count`` came from a recorded trace (profile)
    #: rather than the symbolic default
    trip_bounded: bool
    terms: dict[str, float] = field(default_factory=dict)
    sites: tuple[SiteAmplification, ...] = ()

    def amplification(self, uid: str) -> float:
        """Amplification factor of one variable (0 when the variable
        provably cannot influence the verified output)."""
        return self.terms.get(uid, 0.0)

    def bound(self, config) -> float:
        """First-order relative error bound of a configuration.

        Prices every location at its assigned precision; locations
        without a term (output-irrelevant) contribute nothing, and the
        fp64 default contributes zero by construction.
        """
        total = 0.0
        for uid, amplification in self.terms.items():
            total += amplification * _excess_roundoff(config.precision_of(uid))
        return total

    def dominating(self) -> tuple[str, float] | None:
        """The (uid, amplification) pair that dominates the bound."""
        if not self.terms:
            return None
        uid = max(self.terms, key=lambda u: (self.terms[u], u))
        return uid, self.terms[uid]

    def summary(self) -> dict:
        dom = self.dominating()
        return {
            "entry": self.entry,
            "trip_count": self.trip_count,
            "trip_bounded": self.trip_bounded,
            "terms": len(self.terms),
            "dominating": list(dom) if dom else None,
            "sites": {
                rule: sum(1 for s in self.sites if s.rule == rule)
                for rule in sorted(BOUND_RULES)
            },
        }

    def to_json_dict(self) -> dict:
        return {
            "entry": self.entry,
            "trip_count": self.trip_count,
            "trip_bounded": self.trip_bounded,
            "terms": {uid: self.terms[uid] for uid in sorted(self.terms)},
            "sites": [
                {
                    "rule": s.rule, "message": s.message,
                    "function": s.function, "module": s.module,
                    "file": s.file, "line": s.line, "col": s.col,
                    "names": list(s.names), "factor": s.factor,
                }
                for s in self.sites
            ],
        }


def _profile_trip_bound(profile) -> int | None:
    """A trace-derived upper bound on any reduction trip count: every
    loop iteration performs at least one recorded element-operation, so
    the total recorded count bounds every loop's trips."""
    if profile is None:
        return None
    try:
        total = sum(profile.ops.values())
    except AttributeError:
        return None
    if not total or not math.isfinite(total):
        return None
    return max(1, int(total))


def analyze_error_bounds(
    scans: Iterable[ModuleScan],
    entry: str | None = None,
    *,
    dependence: DependenceResult | None = None,
    dataflow: DataflowResult | None = None,
    profile=None,
    trip_count: int | None = None,
) -> ErrorBoundModel:
    """Build the static error-bound model for scanned modules.

    ``trip_count`` (or a recorded ``profile``) bounds the reduction
    loop factor exactly; without either the symbolic
    :data:`DEFAULT_TRIP_COUNT` is assumed and every reduction site is
    flagged MPB302.
    """
    scans = list(scans)
    if dataflow is None:
        dataflow = analyze_dataflow(scans, entry=entry, dependence=dependence)
    dependence = dataflow.dependence

    functions: dict[str, FunctionScan] = {}
    for scan in scans:
        functions.update(scan.functions)

    bounded = True
    if trip_count is None:
        trip_count = _profile_trip_bound(profile)
        if trip_count is None:
            trip_count = DEFAULT_TRIP_COUNT
            bounded = False
    trips = max(1, int(trip_count))

    # -- per-slot store-site weights --------------------------------------
    # A slot's weight is the amplification one store into it applies to
    # the incoming error: xN for accumulation stores, xC for stores fed
    # by a subtraction.  Both factors are idempotent per slot (nested
    # repeats of the same pattern are not distinguishable statically).
    reduction_sites: dict[Slot, tuple[FunctionScan, int, int]] = {}
    cancel_sites: dict[Slot, tuple[FunctionScan, int, int]] = {}
    for fn in functions.values():
        sub_lines = {binop.line for binop in fn.binops if binop.op == "-"}
        for flow in fn.flows:
            for target in flow.targets:
                slot = Slot(fn.name, target)
                is_reduction = (
                    flow.in_loop
                    and len(flow.targets) == 1
                    and (flow.augmented or target in flow.sources)
                )
                if is_reduction and slot not in reduction_sites:
                    reduction_sites[slot] = (fn, flow.line, flow.col)
                if flow.line in sub_lines and slot not in cancel_sites:
                    cancel_sites[slot] = (fn, flow.line, flow.col)

    def weight_into(slot: Slot) -> float:
        weight = 1.0
        if slot in reduction_sites:
            weight *= trips
        if slot in cancel_sites:
            weight *= CANCELLATION_FACTOR
        return weight

    # -- sink-to-source max-product propagation ---------------------------
    # downstream[s] = largest product of store weights along a value
    # path from s to a sink (1 at the sinks themselves).  Finalize-once
    # keeps feedback cycles from multiplying their own weight forever:
    # each slot contributes once per path, and everything saturates at
    # AMPLIFICATION_CAP.
    reverse: dict[Slot, list[Slot]] = {}
    for source, targets in dataflow.edges.items():
        for target in targets:
            reverse.setdefault(target, []).append(source)

    downstream: dict[Slot, float] = {}
    # Heap entries carry (function, name) instead of the Slot itself so
    # tie-breaking stays deterministic and comparable.
    heap: list[tuple[float, str, str]] = [
        (-1.0, sink.function, sink.name) for sink in dataflow.sinks
    ]
    heapq.heapify(heap)
    while heap:
        negative, fn_name, var_name = heapq.heappop(heap)
        slot = Slot(fn_name, var_name)
        if slot in downstream:
            continue
        factor = -negative
        downstream[slot] = factor
        amplified = min(AMPLIFICATION_CAP, weight_into(slot) * factor)
        for predecessor in reverse.get(slot, ()):
            if predecessor not in downstream:
                heapq.heappush(
                    heap, (-amplified, predecessor.function, predecessor.name)
                )

    # -- per-variable terms ----------------------------------------------
    # The rounding error of a variable is introduced at its own stores,
    # so its amplification is its slot's own store weight times the
    # best downstream chain from there.
    terms: dict[str, float] = {}
    for uid, slot in dependence.slot_of_variable.items():
        factor = downstream.get(slot, 0.0)
        if factor <= 0.0:
            continue
        terms[uid] = min(AMPLIFICATION_CAP, weight_into(slot) * factor)

    uid_of_slot = {slot: uid for uid, slot in dependence.slot_of_variable.items()}

    # -- findings ---------------------------------------------------------
    sites: list[SiteAmplification] = []

    def site_factor(slot: Slot) -> float:
        return min(AMPLIFICATION_CAP, weight_into(slot) * downstream.get(slot, 0.0))

    def slot_order(item):
        slot = item[0]
        return (slot.function, slot.name)

    if not bounded:
        for slot, (fn, line, col) in sorted(reduction_sites.items(), key=slot_order):
            if downstream.get(slot, 0.0) <= 0.0:
                continue  # cannot reach the output; prices to nothing
            uid = uid_of_slot.get(slot)
            sites.append(SiteAmplification(
                rule="MPB302",
                message=(
                    f"reduction into {slot.name!r} has no trace-bounded trip "
                    f"count; the bound assumes N={trips} iterations "
                    "(record a trace to tighten it)"
                ),
                function=fn.name, module=fn.module, file=fn.path,
                line=line, col=col,
                names=(uid,) if uid else (),
                factor=float(trips),
            ))

    for slot, (fn, line, col) in sorted(cancel_sites.items(), key=slot_order):
        factor = site_factor(slot)
        if factor < BLOWUP_THRESHOLD:
            continue
        uid = uid_of_slot.get(slot)
        sites.append(SiteAmplification(
            rule="MPB303",
            message=(
                f"cancellation feeding {slot.name!r} blows the error bound "
                f"up by x{factor:g}; operands close in magnitude make the "
                "true amplification unbounded"
            ),
            function=fn.name, module=fn.module, file=fn.path,
            line=line, col=col,
            names=(uid,) if uid else (),
            factor=factor,
        ))

    dom = max(terms, key=lambda u: (terms[u], u)) if terms else None
    if dom is not None:
        slot = dependence.slot_of_variable[dom]
        fn = functions.get(slot.function)
        declarations = {
            decl.slot: decl
            for f in functions.values()
            for decl in f.declarations
        }
        decl = declarations.get(slot)
        sites.append(SiteAmplification(
            rule="MPB301",
            message=(
                f"{dom!r} dominates the certified error bound "
                f"(amplification x{terms[dom]:g}); its width decides "
                "whether a configuration can be screened"
            ),
            function=slot.function,
            module=fn.module if fn else "",
            file=fn.path if fn else None,
            line=getattr(decl, "line", 0),
            col=getattr(decl, "col", 0),
            names=(dom,),
            factor=terms[dom],
        ))

    sites.sort(key=lambda s: (s.file or s.module, s.line, s.col, s.rule))
    return ErrorBoundModel(
        entry=dataflow.entry,
        trip_count=trips,
        trip_bounded=bounded,
        terms=terms,
        sites=tuple(sites),
    )


@dataclass(frozen=True)
class CertifiedBound:
    """A calibrated, screen-ready error bound for one program.

    ``weights`` carries, per variable uid, the share of the measured
    anchor error (the shadow run's uniform-fp32 quality metric) the
    variable accounts for — in *metric units at fp32*.  A
    configuration's predicted error scales each weight by
    ``u(p)/u(fp32)``; the certified lower bound divides the total by
    ``safety``.  Empty weights (no measured anchor, or a metric that
    stayed exact) make the certificate inert: it never rejects.
    """

    program: str
    weights: Mapping[str, float] = field(default_factory=dict)
    #: measured anchor: the shadow run's uniform-fp32 metric value
    anchor: float = 0.0
    safety: float = DEFAULT_SAFETY
    precision: str = "single"

    def predict(self, config) -> float:
        """Best-estimate error of a configuration in metric units."""
        total = 0.0
        for uid, weight in self.weights.items():
            total += weight * (_excess_roundoff(config.precision_of(uid)) / U_REF)
        return total

    def lower(self, config) -> float:
        """The certified lower bound screening compares to the
        threshold (the prediction discounted by the safety factor)."""
        return self.predict(config) / self.safety

    def rejects(self, config, threshold: float) -> bool:
        """True when the certificate proves the configuration cannot
        verify at ``threshold`` — the one statement screening acts on."""
        if threshold < 0 or not math.isfinite(threshold):
            return False
        lowered = self.lower(config)
        return math.isfinite(lowered) and lowered > threshold

    def seed_weight(self, uids: Iterable[str]) -> float:
        """Combined fp32-anchored weight of a location's member
        variables — what BW's width seeding solves against."""
        return sum(self.weights.get(uid, 0.0) for uid in uids)

    def info(self) -> dict:
        """Compact provenance for ``SearchOutcome.metadata``."""
        ranked = sorted(self.weights, key=lambda u: (-self.weights[u], u))
        return {
            "program": self.program,
            "precision": self.precision,
            "safety": self.safety,
            "anchor": self.anchor if math.isfinite(self.anchor) else repr(self.anchor),
            "terms": len(self.weights),
            "top": [[uid, self.weights[uid]] for uid in ranked[:5]],
        }

    def to_json_dict(self) -> dict:
        return {
            "program": self.program,
            "precision": self.precision,
            "safety": self.safety,
            "anchor": self.anchor if math.isfinite(self.anchor) else repr(self.anchor),
            "weights": {uid: self.weights[uid] for uid in sorted(self.weights)},
        }


def calibrate_bound(
    model: ErrorBoundModel,
    report,
    precision: str = "single",
    safety: float = DEFAULT_SAFETY,
) -> CertifiedBound:
    """Anchor a static model against one measured shadow run.

    ``report`` is a :class:`~repro.shadow.report.SensitivityReport`.
    Each variable with a nonzero static amplification receives the
    share of the measured uniform-``precision`` error that its shadow
    marginal accounts for.  Dropping statically-irrelevant variables
    and normalising by the *full* marginal mass can only lower the
    bound — both keep the certificate on the sound side.
    """
    marginals = report.marginal_scores(precision)
    total = sum(v for v in marginals.values() if math.isfinite(v) and v > 0)
    anchor = report.predicted_error.get(precision)
    if anchor is None or not math.isfinite(anchor) or anchor <= 0 or total <= 0:
        return CertifiedBound(
            program=report.program, weights={}, anchor=float(anchor or 0.0),
            safety=safety, precision=precision,
        )
    weights = {
        uid: (value / total) * anchor
        for uid, value in sorted(marginals.items())
        if math.isfinite(value) and value > 0 and model.amplification(uid) > 0
    }
    return CertifiedBound(
        program=report.program, weights=weights, anchor=float(anchor),
        safety=safety, precision=precision,
    )


def certify_benchmark(
    benchmark,
    safety: float = DEFAULT_SAFETY,
    trip_count: int | None = None,
) -> tuple[ErrorBoundModel, CertifiedBound]:
    """Static model + calibrated certificate for one benchmark.

    This is the ``(model, certificate)`` pair behind ``mixpbench
    certify`` and the ``--screen`` search flag; the shadow run it
    calibrates against is the same deterministic analysis ``--order
    shadow`` uses.
    """
    from repro.shadow.report import run_shadow_analysis

    report = benchmark.report()
    model = analyze_error_bounds(
        report.scans,
        entry=report.entry,
        dependence=report.dependence,
        trip_count=trip_count,
    )
    sensitivity = run_shadow_analysis(benchmark)
    certificate = calibrate_bound(model, sensitivity, safety=safety)
    return model, certificate
