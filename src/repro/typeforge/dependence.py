"""Type-dependence solving: from scanned facts to variables and clusters.

Implements the paper's Section II-C analysis: an entity ``x`` is
type-dependent on ``y`` iff changing ``y``'s type may force ``x``'s
type to change to keep the program type-correct.  For pointer-typed
entities (arrays and array-bound parameters) the dependence relation is
symmetric and transitive, so its closure partitions the pointer
variables into disjoint *clusters*; scalar entities can always be
reconciled with a cast, so each scalar forms a singleton cluster —
exactly the partitioning of the paper's Listing 1 example
(``{arr, input}, {val, inout}, {scale}, {ratio}, {res}``).

The solver works on *slots* (function-local names).  Edges come from

* aliasing assignments (``a = b``),
* call-site argument/parameter bindings,
* return-value bindings (``x = g(...)``),

and array-ness propagates along the same edges from ``ws.array``
declarations and subscript uses, which is how parameters are discovered
to be pointer-typed without any annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.variables import Cluster, Variable, VariableKind
from repro.errors import StyleError
from repro.typeforge.astscan import FunctionScan, ModuleScan, Slot

__all__ = ["UnionFind", "DependenceEdge", "DependenceResult", "solve"]


class UnionFind:
    """Disjoint-set forest over hashable items (path halving + rank)."""

    def __init__(self) -> None:
        self._parent: dict = {}
        self._rank: dict = {}

    def add(self, item) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def find(self, item):
        self.add(item)
        parent = self._parent
        while parent[item] != item:
            parent[item] = parent[parent[item]]
            item = parent[item]
        return item

    def union(self, a, b) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1

    def groups(self) -> dict:
        """Map of representative → sorted member list."""
        out: dict = {}
        for item in self._parent:
            out.setdefault(self.find(item), []).append(item)
        return {rep: sorted(members, key=str) for rep, members in out.items()}

    def __contains__(self, item) -> bool:
        return item in self._parent


@dataclass(frozen=True)
class DependenceEdge:
    """One type-dependence fact, with provenance for explanations."""

    source: Slot
    target: Slot
    kind: str  # "alias" | "call-binding" | "return-binding"

    def describe(self) -> str:
        labels = {
            "alias": "aliasing assignment",
            "call-binding": "argument/parameter binding",
            "return-binding": "return-value binding",
        }
        return labels.get(self.kind, self.kind)


@dataclass
class DependenceResult:
    """Output of the dependence solver."""

    variables: list[Variable] = field(default_factory=list)
    clusters: list[Cluster] = field(default_factory=list)
    name_map: dict[str, str] = field(default_factory=dict)
    edges: list[DependenceEdge] = field(default_factory=list)
    slot_of_variable: dict[str, Slot] = field(default_factory=dict)

    def explain(self, uid_a: str, uid_b: str) -> list[str] | None:
        """A human-readable chain of dependence facts connecting two
        variables, or None when no chain exists (different clusters).

        This answers the question Typeforge users actually ask: *why*
        does changing one variable force the other to change?
        """
        start = self.slot_of_variable.get(uid_a)
        goal = self.slot_of_variable.get(uid_b)
        if start is None or goal is None:
            raise KeyError(f"unknown variable: {uid_a if start is None else uid_b}")
        if start == goal:
            return []
        # Two entities force each other's type only when they share a
        # cluster: scalars can be *connected* by a binding edge yet
        # remain independent, because a scalar binding is a legal cast.
        if not any(uid_a in c and uid_b in c for c in self.clusters):
            return None

        adjacency: dict[Slot, list[tuple[Slot, DependenceEdge]]] = {}
        for edge in self.edges:
            adjacency.setdefault(edge.source, []).append((edge.target, edge))
            adjacency.setdefault(edge.target, []).append((edge.source, edge))

        # breadth-first search for the shortest explanation
        frontier = [start]
        parents: dict[Slot, tuple[Slot, DependenceEdge]] = {start: (start, None)}
        while frontier:
            new_frontier = []
            for slot in frontier:
                for neighbour, edge in adjacency.get(slot, ()):
                    if neighbour in parents:
                        continue
                    parents[neighbour] = (slot, edge)
                    if neighbour == goal:
                        return self._render_path(parents, start, goal)
                    new_frontier.append(neighbour)
            frontier = new_frontier
        return None

    @staticmethod
    def _render_path(parents, start: Slot, goal: Slot) -> list[str]:
        steps = []
        cursor = goal
        while cursor != start:
            previous, edge = parents[cursor]
            steps.append(f"{previous} --[{edge.describe()}]--> {cursor}")
            cursor = previous
        steps.reverse()
        return steps


def solve(scans: Iterable[ModuleScan], entry: str | None = None) -> DependenceResult:
    """Run the type-dependence analysis over scanned modules.

    ``entry`` names the program's entry function; its parameters carry
    externally supplied raw data (not precision-configurable), so they
    are excluded from variable discovery.
    """
    functions: dict[str, FunctionScan] = {}
    for scan in scans:
        for name, fn in scan.functions.items():
            if name in functions:
                raise StyleError(
                    f"function {name!r} defined in more than one module "
                    f"({functions[name].module} and {fn.module})",
                    file=fn.path, line=fn.lineno,
                )
            functions[name] = fn

    edge_records = _collect_edges(functions)
    edges = [(edge.source, edge.target) for edge in edge_records]
    array_slots = _propagate_arrayness(functions, edges)

    variables, slot_var = _make_variables(functions, array_slots, entry)
    _check_scalar_consistency(functions, array_slots)

    # Union slots across every dependence edge; pointer variables that
    # land in one slot-component must share a base type.
    components = UnionFind()
    for slot in slot_var:
        components.add(slot)
    for a, b in edges:
        components.add(a)
        components.add(b)
        components.union(a, b)

    pointer_groups: dict = {}
    for slot, var in slot_var.items():
        if var.is_pointer:
            pointer_groups.setdefault(components.find(slot), set()).add(var.uid)

    clusters: list[Cluster] = []
    clustered: set[str] = set()
    for members in pointer_groups.values():
        cid = min(members)
        clusters.append(Cluster(cid, frozenset(members)))
        clustered |= members
    for var in variables:
        if var.uid not in clustered:
            clusters.append(Cluster(var.uid, frozenset({var.uid})))
    clusters.sort(key=lambda c: c.cid)

    name_map = _build_name_map(functions, variables)
    variables.sort(key=lambda v: v.uid)
    return DependenceResult(
        variables=variables,
        clusters=clusters,
        name_map=name_map,
        edges=edge_records,
        slot_of_variable={
            var.uid: slot for slot, var in slot_var.items()
        },
    )


def _collect_edges(functions: dict[str, FunctionScan]) -> list[DependenceEdge]:
    edges: list[DependenceEdge] = []
    for fn in functions.values():
        for alias in fn.aliases:
            edges.append(DependenceEdge(alias.target, alias.source, "alias"))
        for callee_name, args in fn.callsites:
            callee = functions.get(callee_name)
            if callee is None:
                continue
            for arg_name, position in args:
                if arg_name is None or position >= len(callee.params):
                    continue
                edges.append(DependenceEdge(
                    Slot(fn.name, arg_name),
                    Slot(callee_name, callee.params[position]),
                    "call-binding",
                ))
        for target, callee_name in fn.call_targets:
            callee = functions.get(callee_name)
            if callee is None:
                continue
            for returned in callee.returns:
                edges.append(DependenceEdge(
                    Slot(fn.name, target),
                    Slot(callee_name, returned),
                    "return-binding",
                ))
    return edges


def _propagate_arrayness(
    functions: dict[str, FunctionScan], edges: list[tuple[Slot, Slot]]
) -> set[Slot]:
    """Fixpoint: which slots hold arrays (pointer-typed entities)."""
    adjacency: dict[Slot, list[Slot]] = {}
    for a, b in edges:
        adjacency.setdefault(a, []).append(b)
        adjacency.setdefault(b, []).append(a)

    worklist: list[Slot] = []
    for fn in functions.values():
        for decl in fn.declarations:
            if decl.decl_kind == "array":
                worklist.append(decl.slot)
        for name in fn.subscripted:
            worklist.append(Slot(fn.name, name))

    array_slots: set[Slot] = set()
    while worklist:
        slot = worklist.pop()
        if slot in array_slots:
            continue
        array_slots.add(slot)
        worklist.extend(adjacency.get(slot, ()))
    return array_slots


def _make_variables(
    functions: dict[str, FunctionScan],
    array_slots: set[Slot],
    entry: str | None,
) -> tuple[list[Variable], dict[Slot, Variable]]:
    variables: list[Variable] = []
    slot_var: dict[Slot, Variable] = {}

    def add(slot: Slot, var: Variable) -> None:
        variables.append(var)
        slot_var[slot] = var

    for fn in functions.values():
        declared_params = set()
        for decl in fn.declarations:
            kind = {
                "array": VariableKind.ARRAY,
                "scalar": VariableKind.SCALAR,
                "param": VariableKind.PARAM,
            }[decl.decl_kind]
            pointer = kind is VariableKind.ARRAY or decl.slot in array_slots
            add(decl.slot, Variable(decl.slot.name, kind, fn.name, fn.module, pointer))
            if kind is VariableKind.PARAM:
                declared_params.add(decl.slot.name)
        if fn.name == entry:
            continue  # entry parameters carry raw external data
        for param in fn.params:
            slot = Slot(fn.name, param)
            if param in declared_params or slot in slot_var:
                continue
            if slot in array_slots:
                add(slot, Variable(param, VariableKind.PARAM, fn.name, fn.module, True))
    return variables, slot_var


def _check_scalar_consistency(
    functions: dict[str, FunctionScan], array_slots: set[Slot]
) -> None:
    for fn in functions.values():
        for decl in fn.declarations:
            if decl.decl_kind == "scalar" and decl.slot in array_slots:
                raise StyleError(
                    f"{fn.module}.{fn.name}: {decl.slot.name!r} is declared "
                    "ws.scalar but flows into array (pointer) context",
                    file=fn.path, line=decl.line, col=decl.col,
                )


def _build_name_map(
    functions: dict[str, FunctionScan], variables: list[Variable]
) -> dict[str, str]:
    """Bare declared name → uid; names must be unique program-wide so
    the Workspace can resolve runtime declarations unambiguously."""
    name_map: dict[str, str] = {}
    declared_slots = {
        (decl.slot.function, decl.slot.name)
        for fn in functions.values()
        for decl in fn.declarations
    }
    for var in variables:
        if (var.function, var.name) not in declared_slots:
            continue  # inferred array params have no runtime declaration
        if var.name in name_map:
            fn = functions[var.function]
            decl = next(
                (d for d in fn.declarations if d.slot.name == var.name), None
            )
            raise StyleError(
                f"declared name {var.name!r} is used in more than one function "
                f"({name_map[var.name]} and {var.uid}); MPB style requires "
                "program-wide unique declaration names",
                file=fn.path,
                line=decl.line if decl else fn.lineno,
                col=decl.col if decl else 0,
            )
        name_map[var.name] = var.uid
    return name_map
