"""``mixpbench lint``: static precision diagnostics for MPB modules.

Runs the scanner, the dependence solver, and the forward dataflow
analysis over benchmark modules and renders every fact as a *finding*
with a rule code, a severity, and a source location:

========  ========  =====================================================
code      severity  meaning
========  ========  =====================================================
MPB001    error     the module violates the constrained MPB style
MPB101    info      variable never flows into the verified output
MPB102    info      accumulator feedback loop couples operand precisions
MPB103    info      in-place update chain couples array precisions
MPB201    warning   narrowing store across precision clusters
MPB202    warning   binop mixes operands from different clusters
MPB203    warning   reduction/accumulation loop grows rounding error
MPB204    warning   cancellation-prone subtraction
MPB205    warning   comparison against a tight tolerance
MPB301    info      site dominates the certified error bound
MPB302    info      reduction trip count is not trace-bounded
MPB303    info      bound blow-up through cancellation
========  ========  =====================================================

The MPB3xx rows come from the static rounding-error certifier
(:mod:`repro.typeforge.errorbound`): each carries the per-site
amplification factor the certified bound attributes to that source
location.

Findings are suppressed inline with a trailing comment on the flagged
line::

    q = q + np.dot(x[lo:hi], z[lo:hi])  # mpb: ignore[MPB203]

``# mpb: ignore`` without a rule list suppresses every rule on that
line.  A module-level comment (on any line of the file) suppresses
rules across the whole file::

    # mpb: ignore-file[MPB302, MPB303]

``# mpb: ignore-file`` without a rule list suppresses everything in
the file.  Suppressed findings stay in the report (marked) but do not
affect the exit status; their count is reported in ``--format json``
output as ``suppressed``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

from repro.errors import BenchmarkNotFound, StyleError
from repro.typeforge.astscan import ModuleScan, Slot, scan_source
from repro.typeforge.dataflow import (
    FACT_RULES,
    HAZARD_RULES,
    analyze_dataflow,
)
from repro.typeforge.dependence import solve

__all__ = [
    "LintFinding", "LintReport", "SEVERITIES",
    "lint_scans", "lint_sources", "lint_file", "lint_benchmark",
    "resolve_targets", "format_text", "reports_to_json",
]

SEVERITIES = ("error", "warning", "info")

#: suppression comment: ``# mpb: ignore`` or ``# mpb: ignore[MPB203, ...]``
_IGNORE_RE = re.compile(
    r"#\s*mpb:\s*ignore(?!-file)(?:\[(?P<rules>[A-Z0-9,\s]*)\])?"
)

#: file-wide suppression: ``# mpb: ignore-file`` or
#: ``# mpb: ignore-file[MPB302, ...]`` anywhere in the module
_IGNORE_FILE_RE = re.compile(
    r"#\s*mpb:\s*ignore-file(?:\[(?P<rules>[A-Z0-9,\s]*)\])?"
)

_STYLE_RULE = "MPB001"


def _severity(rule: str) -> str:
    if rule == _STYLE_RULE:
        return "error"
    if rule in HAZARD_RULES:
        return "warning"
    return "info"


@dataclass(frozen=True)
class LintFinding:
    """One diagnostic, pinned to a rule code and a source location."""

    rule: str
    severity: str
    message: str
    module: str
    file: str | None = None
    line: int = 0
    col: int = 0
    function: str | None = None
    suppressed: bool = False

    def location(self) -> str:
        base = self.file or self.module
        return f"{base}:{self.line}:{self.col}"

    def render(self) -> str:
        note = " (suppressed)" if self.suppressed else ""
        return f"{self.location()}: {self.severity} {self.rule}{note}: {self.message}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "module": self.module,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "function": self.function,
            "suppressed": self.suppressed,
        }


@dataclass
class LintReport:
    """All findings for one lint target (a benchmark or a file)."""

    target: str
    findings: tuple[LintFinding, ...] = ()
    modules: tuple[str, ...] = ()

    @property
    def active(self) -> tuple[LintFinding, ...]:
        return tuple(f for f in self.findings if not f.suppressed)

    def count(self, severity: str) -> int:
        return sum(1 for f in self.active if f.severity == severity)

    @property
    def suppressed_count(self) -> int:
        return sum(1 for f in self.findings if f.suppressed)

    def worst_severity(self) -> str | None:
        for severity in SEVERITIES:
            if self.count(severity):
                return severity
        return None

    def to_json(self) -> dict:
        return {
            "target": self.target,
            "modules": list(self.modules),
            "counts": {s: self.count(s) for s in SEVERITIES},
            "suppressed": self.suppressed_count,
            "findings": [f.to_json() for f in self.findings],
        }


def _parse_rules(match: re.Match) -> frozenset[str] | None:
    """The rule list of a suppression match; ``None`` means every rule."""
    rules = match.group("rules")
    if rules is None or not rules.strip():
        return None
    return frozenset(r.strip() for r in rules.split(",") if r.strip())


def _suppressions(
    scan: ModuleScan,
) -> tuple[frozenset[str] | None, dict[int, frozenset[str] | None]]:
    """``(file_rules, line_rules)`` suppressed in one module.

    ``file_rules`` collects every ``ignore-file`` directive (``None``
    once any of them is bare, i.e. suppress-everything); ``line_rules``
    maps line numbers to their inline ``ignore`` rules, again with
    ``None`` for a bare directive.
    """
    file_rules: frozenset[str] | None = frozenset()
    line_rules: dict[int, frozenset[str] | None] = {}
    for lineno, text in enumerate(scan.source.splitlines(), start=1):
        match = _IGNORE_FILE_RE.search(text)
        if match:
            rules = _parse_rules(match)
            if rules is None or file_rules is None:
                file_rules = None
            else:
                file_rules = file_rules | rules
            continue
        match = _IGNORE_RE.search(text)
        if match:
            line_rules[lineno] = _parse_rules(match)
    return file_rules, line_rules


def lint_scans(
    scans: list[ModuleScan], entry: str | None, target: str
) -> LintReport:
    """Lint already-scanned modules as one program."""
    suppressed_by_module = {scan.module: _suppressions(scan) for scan in scans}
    module_of_file = {scan.path: scan.module for scan in scans if scan.path}

    def is_suppressed(rule: str, module: str, file: str | None, line: int) -> bool:
        key = module if module in suppressed_by_module else module_of_file.get(file)
        if key not in suppressed_by_module:
            return False
        file_rules, line_rules = suppressed_by_module[key]
        if file_rules is None or rule in file_rules:
            return True
        if line not in line_rules:
            return False
        rules = line_rules[line]
        return rules is None or rule in rules

    findings: list[LintFinding] = []

    def add(rule: str, message: str, *, module: str, file: str | None,
            line: int, col: int, function: str | None = None) -> None:
        findings.append(LintFinding(
            rule=rule,
            severity=_severity(rule),
            message=message,
            module=module,
            file=file,
            line=line,
            col=col,
            function=function,
            suppressed=is_suppressed(rule, module, file, line),
        ))

    try:
        dependence = solve(scans, entry=entry)
    except StyleError as error:
        add(
            _STYLE_RULE, error.message,
            module=scans[0].module if scans else target,
            file=error.file, line=error.line or 0, col=error.col or 0,
        )
        return LintReport(
            target=target,
            findings=tuple(findings),
            modules=tuple(s.module for s in scans),
        )

    dataflow = analyze_dataflow(scans, entry=entry, dependence=dependence)

    declarations: dict[Slot, object] = {}
    functions = {}
    for scan in scans:
        functions.update(scan.functions)
    for fn in functions.values():
        for decl in fn.declarations:
            declarations[decl.slot] = decl

    for uid in sorted(dataflow.output_irrelevant):
        slot = dependence.slot_of_variable[uid]
        decl = declarations.get(slot)
        fn = functions.get(slot.function)
        add(
            "MPB101",
            f"{uid!r} never flows into the verified output; "
            "`--prune` freezes it at the default precision",
            module=fn.module if fn else target,
            file=fn.path if fn else None,
            line=getattr(decl, "line", 0),
            col=getattr(decl, "col", 0),
            function=slot.function,
        )
    for constraint in dataflow.must_equal:
        fn = functions.get(constraint.function)
        add(
            constraint.rule,
            f"{constraint.a!r} and {constraint.b!r} precisions are coupled "
            f"({FACT_RULES[constraint.rule]})",
            module=fn.module if fn else target,
            file=constraint.file,
            line=constraint.line,
            col=constraint.col,
            function=constraint.function,
        )
    for hazard in dataflow.hazards:
        add(
            hazard.rule, hazard.message,
            module=hazard.module, file=hazard.file,
            line=hazard.line, col=hazard.col, function=hazard.function,
        )

    # MPB3xx: per-site amplification factors from the static
    # rounding-error certifier (repro.typeforge.errorbound).
    from repro.typeforge.errorbound import analyze_error_bounds

    model = analyze_error_bounds(scans, entry=entry, dataflow=dataflow)
    for site in model.sites:
        add(
            site.rule, site.message,
            module=site.module, file=site.file,
            line=site.line, col=site.col, function=site.function,
        )

    findings.sort(key=lambda f: (
        f.file or f.module, f.line, f.col, SEVERITIES.index(f.severity), f.rule,
    ))
    return LintReport(
        target=target,
        findings=tuple(findings),
        modules=tuple(s.module for s in scans),
    )


def _style_error_report(
    error: StyleError, target: str, module: str, modules: tuple[str, ...] = ()
) -> LintReport:
    """A report whose single finding is the style violation itself."""
    finding = LintFinding(
        rule=_STYLE_RULE,
        severity="error",
        message=error.message,
        module=module,
        file=error.file,
        line=error.line or 0,
        col=error.col or 0,
    )
    return LintReport(target=target, findings=(finding,), modules=modules)


def lint_sources(
    sources: dict[str, str], entry: str | None = None, target: str = ""
) -> LintReport:
    """Lint raw source texts keyed by module name (tests, ad-hoc use)."""
    target = target or next(iter(sources))
    scans = []
    for name, src in sources.items():
        try:
            scans.append(scan_source(src, name))
        except StyleError as error:
            return _style_error_report(
                error, target, name, tuple(s.module for s in scans) + (name,)
            )
    return lint_scans(scans, entry, target)


def lint_file(path: str | Path, entry: str | None = None) -> LintReport:
    """Lint one standalone Python file."""
    path = Path(path)
    source = path.read_text()
    try:
        scan = scan_source(source, path.stem, path=str(path))
    except StyleError as error:
        return _style_error_report(error, str(path), path.stem, (path.stem,))
    return lint_scans([scan], entry, str(path))


def lint_benchmark(name: str) -> LintReport:
    """Lint a registered benchmark (all of its modules, with its entry)."""
    import importlib

    from repro.benchmarks import get_benchmark
    from repro.typeforge.astscan import scan_module

    benchmark = get_benchmark(name)
    module_names = (benchmark.module_name, *getattr(benchmark, "extra_module_names", ()))
    scans = []
    for module_name in module_names:
        module = importlib.import_module(module_name)
        try:
            scans.append(scan_module(module))
        except StyleError as error:
            return _style_error_report(
                error, name, module_name,
                tuple(s.module for s in scans) + (module_name,),
            )
    return lint_scans(scans, benchmark.entry, name)


def resolve_targets(targets: list[str]) -> list[LintReport]:
    """Lint benchmark names, Python files, or directories.

    * no targets — every registered benchmark;
    * a registered benchmark name — that benchmark's modules;
    * a ``.py`` file — linted standalone;
    * a directory — every registered benchmark whose main module lives
      under it (so ``mixpbench lint src/repro/benchmarks`` covers the
      whole suite), plus any ``.py`` files in it that belong to no
      registered benchmark are skipped.
    """
    import importlib

    from repro.benchmarks import available_benchmarks, get_benchmark

    if not targets:
        return [lint_benchmark(name) for name in available_benchmarks()]

    reports: list[LintReport] = []
    for target in targets:
        path = Path(target)
        if path.is_dir():
            base = path.resolve()
            matched = False
            for name in available_benchmarks():
                benchmark = get_benchmark(name)
                module = importlib.import_module(benchmark.module_name)
                module_file = Path(getattr(module, "__file__", "")).resolve()
                if base in module_file.parents:
                    reports.append(lint_benchmark(name))
                    matched = True
            if not matched:
                raise BenchmarkNotFound(
                    f"no registered benchmark modules under {target!r}"
                )
        elif path.suffix == ".py" and path.exists():
            reports.append(lint_file(path))
        else:
            reports.append(lint_benchmark(target))
    return reports


def format_text(reports: list[LintReport], *, show_suppressed: bool = False) -> str:
    """Human-readable multi-target lint output."""
    lines: list[str] = []
    totals = dict.fromkeys(SEVERITIES, 0)
    suppressed = 0
    for report in reports:
        shown = [
            f for f in report.findings
            if show_suppressed or not f.suppressed
        ]
        header = f"== {report.target}"
        worst = report.worst_severity()
        header += f" ({worst})" if worst else " (clean)"
        lines.append(header)
        for finding in shown:
            lines.append("  " + finding.render())
        for severity in SEVERITIES:
            totals[severity] += report.count(severity)
        suppressed += report.suppressed_count
    summary = ", ".join(f"{totals[s]} {s}s" for s in SEVERITIES)
    if suppressed:
        summary += f", {suppressed} suppressed"
    lines.append(summary)
    return "\n".join(lines)


def reports_to_json(reports: list[LintReport]) -> dict:
    totals = {
        severity: sum(r.count(severity) for r in reports)
        for severity in SEVERITIES
    }
    return {
        "targets": [r.to_json() for r in reports],
        "totals": totals,
        "suppressed": sum(r.suppressed_count for r in reports),
    }
