"""Static search-space pruning from dataflow facts.

Consumes the facts computed by :mod:`repro.typeforge.dataflow` and
produces a reduced :class:`~repro.core.variables.SearchSpace`:

* **freeze** — variables whose values provably never flow into the
  verified output are pinned at the default (double) precision and
  removed from the space.  Freezing is applied per *cluster*: a cluster
  is frozen only when none of its members is output-relevant, because
  freezing part of a cluster would forbid lowering the rest without a
  cluster split.
* **merge** — must-equal constraints (accumulator feedback loops,
  in-place update chains) unify clusters, so cluster-granularity
  searches see one location where they saw several.

Both operations *restrict* the space: every configuration admissible
in the pruned space is also admissible in the original space (frozen
variables at double) and evaluates to the identical verified error, so
pruning can never manufacture a configuration the unpruned search
could not have found.  The property test in
``tests/test_prop_typeforge.py`` checks exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.variables import Granularity, SearchSpace
from repro.typeforge.clusters import TypeforgeReport
from repro.typeforge.dataflow import DataflowResult, MustEqual, analyze_dataflow

__all__ = ["PruneResult", "prune_space", "prune_report"]


@dataclass(frozen=True)
class PruneResult:
    """A pruned search space plus the provenance of every reduction."""

    space: SearchSpace
    #: variable uids pinned at default precision (whole clusters only)
    frozen: frozenset[str]
    #: must-equal constraints that actually unified distinct clusters
    merges: tuple[MustEqual, ...]
    dataflow: DataflowResult

    @property
    def frozen_count(self) -> int:
        return len(self.frozen)

    @property
    def merged_count(self) -> int:
        return len(self.merges)

    def stats(self, original: SearchSpace) -> dict:
        """Before/after numbers for reporting next to Table II."""
        return {
            "tv_before": original.total_variables,
            "tv_after": self.space.total_variables,
            "tc_before": original.total_clusters,
            "tc_after": self.space.total_clusters,
            "locations_before": len(original.locations()),
            "locations_after": len(self.space.locations()),
            "frozen": sorted(self.frozen),
            "merged": [f"{m.a}~{m.b} [{m.rule}]" for m in self.merges],
        }

    def describe(self, original: SearchSpace) -> str:
        s = self.stats(original)
        return (
            f"pruned {s['locations_before']} -> {s['locations_after']} locations "
            f"(TV {s['tv_before']} -> {s['tv_after']}, "
            f"TC {s['tc_before']} -> {s['tc_after']}; "
            f"{len(s['frozen'])} frozen, {len(s['merged'])} merged)"
        )


def prune_space(
    space: SearchSpace, dataflow: DataflowResult
) -> PruneResult:
    """Restrict ``space`` using the given dataflow facts."""
    cluster_of = {
        uid: cluster.cid for cluster in space.clusters for uid in cluster.members
    }

    # Union clusters across must-equal constraints first: freezing must
    # respect the *merged* partition, or a frozen cluster could be
    # merged with a live one.
    parent = {c.cid: c.cid for c in space.clusters}

    def find(cid: str) -> str:
        while parent[cid] != cid:
            parent[cid] = parent[parent[cid]]
            cid = parent[cid]
        return cid

    effective: list[MustEqual] = []
    for constraint in dataflow.must_equal:
        if constraint.a not in cluster_of or constraint.b not in cluster_of:
            continue  # constraint mentions a non-searchable slot
        ra, rb = find(cluster_of[constraint.a]), find(cluster_of[constraint.b])
        if ra == rb:
            continue  # already unified (by aliasing or an earlier merge)
        parent[rb] = ra
        effective.append(constraint)

    groups: dict[str, set[str]] = {}
    for cluster in space.clusters:
        groups.setdefault(find(cluster.cid), set()).update(cluster.members)

    frozen: set[str] = set()
    for members in groups.values():
        if not any(uid in dataflow.output_relevant for uid in members):
            frozen.update(members)

    pruned = space.restrict(
        freeze=frozen,
        merge=[(m.a, m.b) for m in effective],
    )
    return PruneResult(
        space=pruned,
        frozen=frozenset(frozen),
        merges=tuple(effective),
        dataflow=dataflow,
    )


def prune_report(
    report: TypeforgeReport,
    granularity: Granularity = Granularity.CLUSTER,
    dataflow: DataflowResult | None = None,
) -> PruneResult:
    """Prune the search space of an analysed program.

    Convenience wrapper: runs the dataflow analysis over the report's
    retained scans (unless one is supplied) and restricts the report's
    search space.
    """
    if dataflow is None:
        if not report.scans:
            raise ValueError(
                "this report carries no module scans; re-analyse the "
                "program with repro.typeforge.analyze to enable pruning"
            )
        dataflow = analyze_dataflow(
            report.scans, entry=report.entry, dependence=report.dependence
        )
    return prune_space(report.search_space(granularity), dataflow)
