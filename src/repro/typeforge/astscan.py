"""AST scanning of benchmark modules written in the MPB style.

The paper's Typeforge parses C++ with ROSE and extracts every
floating-point declaration plus the *type-dependence* facts between
them.  This module does the same for benchmark code written in the
constrained **MPB style**:

* every floating-point variable is declared through the workspace:
  ``x = ws.array("x", ...)``, ``s = ws.scalar("s", ...)``,
  ``p = ws.param("p", p)``, or ``x = mp_fread(ws, "x", ...)``;
* the declaration target name equals the declared string name;
* helper functions are module-level ``def``s taking ``ws`` first;
* arrays flow between functions only by argument passing, return
  values, and name aliasing.

The scanner is purely syntactic: it emits declarations and *facts*
(alias, call binding, return binding, subscript use) that the solver in
:mod:`repro.typeforge.dependence` turns into variables and clusters.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from types import ModuleType

from repro.errors import StyleError

__all__ = [
    "Slot", "Declaration", "AliasFact", "BindFact", "ReturnFact",
    "FunctionScan", "ModuleScan", "scan_module", "scan_source",
]

_DECL_METHODS = {"array": "array", "scalar": "scalar", "param": "param"}
_READ_FUNCS = {"mp_fread"}
_WS_NAMES = {"ws"}


@dataclass(frozen=True)
class Slot:
    """A local name within a function: the unit the solver reasons about."""

    function: str
    name: str

    def __str__(self) -> str:
        return f"{self.function}:{self.name}"


@dataclass(frozen=True)
class Declaration:
    """A ``ws.array`` / ``ws.scalar`` / ``ws.param`` / ``mp_fread`` site."""

    slot: Slot
    decl_kind: str      # "array" | "scalar" | "param"
    module: str


@dataclass(frozen=True)
class AliasFact:
    """``a = b`` — the target shares the source's storage.

    When both sides are themselves declared variables this is the
    paper's pointer-assignment rule and unifies their clusters;
    otherwise the target is a transparent alias.
    """

    target: Slot
    source: Slot


@dataclass(frozen=True)
class BindFact:
    """A call site binding an argument name to a callee parameter."""

    argument: Slot
    parameter: Slot


@dataclass(frozen=True)
class ReturnFact:
    """``x = g(...)`` where ``g`` returns a local — x aliases it."""

    target: Slot
    returned: Slot


@dataclass
class FunctionScan:
    """Raw facts collected from one function body."""

    name: str
    module: str
    params: list[str] = field(default_factory=list)
    declarations: list[Declaration] = field(default_factory=list)
    aliases: list[AliasFact] = field(default_factory=list)
    subscripted: set[str] = field(default_factory=set)
    returns: list[str] = field(default_factory=list)
    # (callee name, [(arg local name or None, param position), ...])
    callsites: list[tuple[str, list[tuple[str | None, int]]]] = field(default_factory=list)
    # assignment target name -> callee name (for return binding)
    call_targets: list[tuple[str, str]] = field(default_factory=list)


@dataclass
class ModuleScan:
    """All functions scanned from one module."""

    module: str
    functions: dict[str, FunctionScan] = field(default_factory=dict)


def scan_module(module: ModuleType, module_name: str | None = None) -> ModuleScan:
    """Scan a live Python module's source (via ``inspect``)."""
    source = inspect.getsource(module)
    name = module_name or module.__name__.rsplit(".", 1)[-1]
    return scan_source(source, name)


def scan_source(source: str, module_name: str) -> ModuleScan:
    """Scan benchmark source text for declarations and dependence facts."""
    tree = ast.parse(textwrap.dedent(source))
    scan = ModuleScan(module=module_name)
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            scan.functions[node.name] = _scan_function(node, module_name)
    return scan


def _scan_function(node: ast.FunctionDef, module_name: str) -> FunctionScan:
    fn = FunctionScan(name=node.name, module=module_name)
    fn.params = [
        arg.arg for arg in node.args.args + node.args.kwonlyargs
        if arg.arg not in _WS_NAMES
    ]
    declared: set[str] = set()

    for stmt in ast.walk(node):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            _scan_assignment(fn, stmt.targets[0], stmt.value, declared)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            _scan_assignment(fn, stmt.target, stmt.value, declared)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            for name in _returned_names(stmt.value):
                fn.returns.append(name)
        elif isinstance(stmt, ast.Subscript) and isinstance(stmt.value, ast.Name):
            fn.subscripted.add(stmt.value.id)

    for call in (n for n in ast.walk(node) if isinstance(n, ast.Call)):
        callee = _callee_name(call)
        if callee is None or callee in _READ_FUNCS:
            continue
        args: list[tuple[str | None, int]] = []
        position = 0
        for arg in call.args:
            if isinstance(arg, ast.Name) and arg.id in _WS_NAMES:
                continue  # the workspace is plumbing, not data
            name = arg.id if isinstance(arg, ast.Name) else None
            args.append((name, position))
            position += 1
        fn.callsites.append((callee, args))
    return fn


def _scan_assignment(fn: FunctionScan, target: ast.expr, value: ast.expr, declared: set[str]) -> None:
    if isinstance(target, ast.Tuple) and isinstance(value, ast.Tuple):
        # ``x, y = y, x`` — the C pointer-swap idiom used by ping-pong
        # buffers; each pairing is an aliasing assignment.
        if len(target.elts) == len(value.elts):
            for t_elt, v_elt in zip(target.elts, value.elts):
                if isinstance(t_elt, ast.Name) and isinstance(v_elt, ast.Name):
                    fn.aliases.append(
                        AliasFact(Slot(fn.name, t_elt.id), Slot(fn.name, v_elt.id))
                    )
        return
    if not isinstance(target, ast.Name):
        return
    tname = target.id

    decl_kind = _declaration_kind(value)
    if decl_kind is not None:
        declared_name = _declared_name(value, decl_kind)
        if declared_name != tname:
            raise StyleError(
                f"{fn.module}.{fn.name}: declaration target {tname!r} must match "
                f"the declared name {declared_name!r}"
            )
        if tname in declared:
            raise StyleError(
                f"{fn.module}.{fn.name}: variable {tname!r} declared twice"
            )
        declared.add(tname)
        fn.declarations.append(
            Declaration(Slot(fn.name, tname), decl_kind, fn.module)
        )
        return

    if isinstance(value, ast.Name):
        fn.aliases.append(AliasFact(Slot(fn.name, tname), Slot(fn.name, value.id)))
        return

    if isinstance(value, ast.Subscript) and isinstance(value.value, ast.Name):
        # ``chunk = feats[lo:hi]`` — C pointer arithmetic into an array
        # (``double *chunk = &feats[lo]``); the slice shares the base
        # type.  Scalar element loads (``q = coef[0]``) take the same
        # edge harmlessly: a slot never used as an array gets no
        # variable, so only genuine sub-array aliases unify.
        fn.aliases.append(AliasFact(Slot(fn.name, tname), Slot(fn.name, value.value.id)))
        return

    if isinstance(value, ast.Call):
        callee = _callee_name(value)
        if callee is not None and callee not in _READ_FUNCS:
            fn.call_targets.append((tname, callee))


def _declaration_kind(value: ast.expr) -> str | None:
    """``ws.array(...)`` → ``"array"`` etc.; ``mp_fread`` → ``"array"``."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in _WS_NAMES
        and func.attr in _DECL_METHODS
    ):
        return _DECL_METHODS[func.attr]
    if isinstance(func, ast.Name) and func.id in _READ_FUNCS:
        return "array"
    return None


def _declared_name(value: ast.Call, decl_kind: str) -> str:
    func = value.func
    if isinstance(func, ast.Name) and func.id in _READ_FUNCS:
        name_arg = value.args[1] if len(value.args) > 1 else None
    else:
        name_arg = value.args[0] if value.args else None
    if not (isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str)):
        raise StyleError(
            f"declaration name must be a string literal (found {ast.dump(value)[:80]})"
        )
    return name_arg.value


def _callee_name(call: ast.Call) -> str | None:
    """Name of a direct module-level call; None for methods/builtins."""
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _returned_names(value: ast.expr) -> list[str]:
    if isinstance(value, ast.Name):
        return [value.id]
    if isinstance(value, ast.Tuple):
        return [elt.id for elt in value.elts if isinstance(elt, ast.Name)]
    return []
