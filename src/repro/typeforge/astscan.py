"""AST scanning of benchmark modules written in the MPB style.

The paper's Typeforge parses C++ with ROSE and extracts every
floating-point declaration plus the *type-dependence* facts between
them.  This module does the same for benchmark code written in the
constrained **MPB style**:

* every floating-point variable is declared through the workspace:
  ``x = ws.array("x", ...)``, ``s = ws.scalar("s", ...)``,
  ``p = ws.param("p", p)``, or ``x = mp_fread(ws, "x", ...)``;
* the declaration target name equals the declared string name;
* helper functions are module-level ``def``s taking ``ws`` first;
* arrays flow between functions only by argument passing, return
  values, and name aliasing.

The scanner is purely syntactic: it emits declarations and *facts*
(alias, call binding, return binding, subscript use) that the solver in
:mod:`repro.typeforge.dependence` turns into variables and clusters.

A second, loop-aware pass collects the *value-flow* facts the forward
dataflow analysis in :mod:`repro.typeforge.dataflow` consumes: which
names each assignment reads and writes (:class:`FlowFact`), call-site
argument/return flows (:class:`CallFlowFact`), ``mp_fwrite`` output
sinks (:class:`OutputFact`), and the raw binop/comparison observations
(:class:`BinOpFact` / :class:`CompareFact`) the linter turns into
hazard diagnostics.  Every fact carries its source location.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from types import ModuleType

from repro.errors import StyleError

__all__ = [
    "Slot", "Declaration", "AliasFact", "BindFact", "ReturnFact",
    "FlowFact", "CallFlowFact", "OutputFact", "BinOpFact", "CompareFact",
    "FunctionScan", "ModuleScan", "scan_module", "scan_source",
]

_DECL_METHODS = {"array": "array", "scalar": "scalar", "param": "param"}
_READ_FUNCS = {"mp_fread"}
_WRITE_FUNCS = {"mp_fwrite"}
_WS_NAMES = {"ws"}


@dataclass(frozen=True)
class Slot:
    """A local name within a function: the unit the solver reasons about."""

    function: str
    name: str

    def __str__(self) -> str:
        return f"{self.function}:{self.name}"


@dataclass(frozen=True)
class Declaration:
    """A ``ws.array`` / ``ws.scalar`` / ``ws.param`` / ``mp_fread`` site."""

    slot: Slot
    decl_kind: str      # "array" | "scalar" | "param"
    module: str
    line: int = 0
    col: int = 0


@dataclass(frozen=True)
class AliasFact:
    """``a = b`` — the target shares the source's storage.

    When both sides are themselves declared variables this is the
    paper's pointer-assignment rule and unifies their clusters;
    otherwise the target is a transparent alias.
    """

    target: Slot
    source: Slot
    line: int = 0
    col: int = 0


@dataclass(frozen=True)
class BindFact:
    """A call site binding an argument name to a callee parameter."""

    argument: Slot
    parameter: Slot


@dataclass(frozen=True)
class ReturnFact:
    """``x = g(...)`` where ``g`` returns a local — x aliases it."""

    target: Slot
    returned: Slot


@dataclass(frozen=True)
class FlowFact:
    """Value flow from the names an assignment reads into its targets.

    ``store`` marks a subscript store (``x[i] = ...`` — the flow enters
    the array's existing storage); ``augmented`` marks ``x += ...``
    (the target is implicitly one of its own sources).
    """

    targets: tuple[str, ...]
    sources: tuple[str, ...]
    line: int = 0
    col: int = 0
    in_loop: bool = False
    augmented: bool = False
    store: bool = False


@dataclass(frozen=True)
class CallFlowFact:
    """A direct call, with the names read in each argument expression.

    ``arg_names`` keeps the bare-``Name`` argument per (ws-stripped)
    position when there is one — those share storage with the callee
    parameter, so callee writes flow back; expression arguments only
    flow forward.  ``targets`` are the assignment targets receiving the
    call's return value (empty for a bare call statement).
    """

    callee: str
    arg_reads: tuple[tuple[str, ...], ...]
    arg_names: tuple[str | None, ...]
    targets: tuple[str, ...]
    line: int = 0
    in_loop: bool = False


@dataclass(frozen=True)
class OutputFact:
    """An ``mp_fwrite(ws, data, path)`` site: a program-output sink."""

    sources: tuple[str, ...]
    line: int = 0


@dataclass(frozen=True)
class BinOpFact:
    """A binary arithmetic operation whose both sides read names."""

    op: str
    left: tuple[str, ...]
    right: tuple[str, ...]
    line: int = 0
    col: int = 0
    in_loop: bool = False


@dataclass(frozen=True)
class CompareFact:
    """A comparison reading names; ``tolerance`` is the smallest
    non-zero numeric literal among its comparators (None when the
    comparison involves no numeric literal)."""

    names: tuple[str, ...]
    tolerance: float | None
    line: int = 0
    col: int = 0
    in_loop: bool = False


@dataclass
class FunctionScan:
    """Raw facts collected from one function body."""

    name: str
    module: str
    params: list[str] = field(default_factory=list)
    declarations: list[Declaration] = field(default_factory=list)
    aliases: list[AliasFact] = field(default_factory=list)
    subscripted: set[str] = field(default_factory=set)
    returns: list[str] = field(default_factory=list)
    # (callee name, [(arg local name or None, param position), ...])
    callsites: list[tuple[str, list[tuple[str | None, int]]]] = field(default_factory=list)
    # assignment target name -> callee name (for return binding)
    call_targets: list[tuple[str, str]] = field(default_factory=list)
    # -- dataflow facts (second pass) ----------------------------------
    flows: list[FlowFact] = field(default_factory=list)
    callflows: list[CallFlowFact] = field(default_factory=list)
    outputs: list[OutputFact] = field(default_factory=list)
    binops: list[BinOpFact] = field(default_factory=list)
    compares: list[CompareFact] = field(default_factory=list)
    #: names read in any ``return`` expression of this function
    return_reads: set[str] = field(default_factory=set)
    #: per return statement: the names read in each element of the
    #: returned tuple (single-element for non-tuple returns), so a
    #: tuple-unpacking caller can bind flows positionally
    return_flows: list[tuple[tuple[str, ...], ...]] = field(default_factory=list)
    lineno: int = 0
    path: str | None = None


@dataclass
class ModuleScan:
    """All functions scanned from one module."""

    module: str
    functions: dict[str, FunctionScan] = field(default_factory=dict)
    #: source file path, when known (used in diagnostics)
    path: str | None = None
    #: raw source text (used for ``# mpb: ignore[...]`` suppressions)
    source: str = ""


def scan_module(module: ModuleType, module_name: str | None = None) -> ModuleScan:
    """Scan a live Python module's source (via ``inspect``)."""
    source = inspect.getsource(module)
    name = module_name or module.__name__.rsplit(".", 1)[-1]
    try:
        path = inspect.getsourcefile(module)
    except TypeError:
        path = None
    return scan_source(source, name, path=path)


def scan_source(source: str, module_name: str, path: str | None = None) -> ModuleScan:
    """Scan benchmark source text for declarations and dependence facts."""
    source = textwrap.dedent(source)
    tree = ast.parse(source)
    scan = ModuleScan(module=module_name, path=path, source=source)
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            scan.functions[node.name] = _scan_function(node, module_name, path)
    return scan


def _scan_function(node: ast.FunctionDef, module_name: str, path: str | None) -> FunctionScan:
    fn = FunctionScan(name=node.name, module=module_name, lineno=node.lineno, path=path)
    fn.params = [
        arg.arg for arg in node.args.args + node.args.kwonlyargs
        if arg.arg not in _WS_NAMES
    ]
    declared: set[str] = set()

    for stmt in ast.walk(node):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            _scan_assignment(fn, stmt.targets[0], stmt.value, declared)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            _scan_assignment(fn, stmt.target, stmt.value, declared)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            for name in _returned_names(stmt.value):
                fn.returns.append(name)
        elif isinstance(stmt, ast.Subscript) and isinstance(stmt.value, ast.Name):
            fn.subscripted.add(stmt.value.id)

    for call in (n for n in ast.walk(node) if isinstance(n, ast.Call)):
        callee = _callee_name(call)
        if callee is None or callee in _READ_FUNCS:
            continue
        args: list[tuple[str | None, int]] = []
        position = 0
        for arg in call.args:
            if isinstance(arg, ast.Name) and arg.id in _WS_NAMES:
                continue  # the workspace is plumbing, not data
            name = arg.id if isinstance(arg, ast.Name) else None
            args.append((name, position))
            position += 1
        fn.callsites.append((callee, args))

    _scan_statements(fn, node.body, in_loop=False)
    return fn


def _scan_assignment(fn: FunctionScan, target: ast.expr, value: ast.expr, declared: set[str]) -> None:
    if isinstance(target, ast.Tuple) and isinstance(value, ast.Tuple):
        # ``x, y = y, x`` — the C pointer-swap idiom used by ping-pong
        # buffers; each pairing is an aliasing assignment.
        if len(target.elts) == len(value.elts):
            for t_elt, v_elt in zip(target.elts, value.elts):
                if isinstance(t_elt, ast.Name) and isinstance(v_elt, ast.Name):
                    fn.aliases.append(
                        AliasFact(
                            Slot(fn.name, t_elt.id), Slot(fn.name, v_elt.id),
                            line=t_elt.lineno, col=t_elt.col_offset,
                        )
                    )
        return
    if not isinstance(target, ast.Name):
        return
    tname = target.id

    decl_kind = _declaration_kind(value)
    if decl_kind is not None:
        declared_name = _declared_name(fn, value, decl_kind)
        if declared_name != tname:
            raise StyleError(
                f"{fn.module}.{fn.name}: declaration target {tname!r} must match "
                f"the declared name {declared_name!r}",
                file=fn.path, line=value.lineno, col=value.col_offset,
            )
        if tname in declared:
            raise StyleError(
                f"{fn.module}.{fn.name}: variable {tname!r} declared twice",
                file=fn.path, line=value.lineno, col=value.col_offset,
            )
        declared.add(tname)
        fn.declarations.append(
            Declaration(
                Slot(fn.name, tname), decl_kind, fn.module,
                line=value.lineno, col=value.col_offset,
            )
        )
        return

    if isinstance(value, ast.Name):
        fn.aliases.append(AliasFact(
            Slot(fn.name, tname), Slot(fn.name, value.id),
            line=value.lineno, col=value.col_offset,
        ))
        return

    if isinstance(value, ast.Subscript) and isinstance(value.value, ast.Name):
        # ``chunk = feats[lo:hi]`` — C pointer arithmetic into an array
        # (``double *chunk = &feats[lo]``); the slice shares the base
        # type.  Scalar element loads (``q = coef[0]``) take the same
        # edge harmlessly: a slot never used as an array gets no
        # variable, so only genuine sub-array aliases unify.
        fn.aliases.append(AliasFact(
            Slot(fn.name, tname), Slot(fn.name, value.value.id),
            line=value.lineno, col=value.col_offset,
        ))
        return

    if isinstance(value, ast.Call):
        callee = _callee_name(value)
        if callee is not None and callee not in _READ_FUNCS:
            fn.call_targets.append((tname, callee))


def _declaration_kind(value: ast.expr) -> str | None:
    """``ws.array(...)`` → ``"array"`` etc.; ``mp_fread`` → ``"array"``."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in _WS_NAMES
        and func.attr in _DECL_METHODS
    ):
        return _DECL_METHODS[func.attr]
    if isinstance(func, ast.Name) and func.id in _READ_FUNCS:
        return "array"
    return None


def _declared_name(fn: FunctionScan, value: ast.Call, decl_kind: str) -> str:
    func = value.func
    if isinstance(func, ast.Name) and func.id in _READ_FUNCS:
        name_arg = value.args[1] if len(value.args) > 1 else None
    else:
        name_arg = value.args[0] if value.args else None
    if not (isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str)):
        raise StyleError(
            f"declaration name must be a string literal (found {ast.dump(value)[:80]})",
            file=fn.path, line=value.lineno, col=value.col_offset,
        )
    return name_arg.value


def _callee_name(call: ast.Call) -> str | None:
    """Name of a direct module-level call; None for methods/builtins."""
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _returned_names(value: ast.expr) -> list[str]:
    if isinstance(value, ast.Name):
        return [value.id]
    if isinstance(value, ast.Tuple):
        return [elt.id for elt in value.elts if isinstance(elt, ast.Name)]
    return []


# -- second pass: loop-aware value-flow facts -----------------------------

_OP_SYMBOLS = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/",
    ast.FloorDiv: "//", ast.Mod: "%", ast.Pow: "**", ast.MatMult: "@",
}


def _names_read(expr: ast.expr | None) -> tuple[str, ...]:
    """Ordered unique names read (Load context) within an expression.

    The workspace handle and the callee names of direct calls are
    plumbing, not data, and are excluded.
    """
    if expr is None:
        return ()
    skip: set[int] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            skip.add(id(node.func))
    out: list[str] = []
    seen: set[str] = set()
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and id(node) not in skip
            and node.id not in _WS_NAMES
            and node.id not in seen
        ):
            seen.add(node.id)
            out.append(node.id)
    return tuple(out)


def _scan_expression(fn: FunctionScan, expr: ast.expr | None, in_loop: bool) -> None:
    """Collect binop / comparison / output-sink observations."""
    if expr is None:
        return
    for node in ast.walk(expr):
        if isinstance(node, ast.BinOp):
            left = _names_read(node.left)
            right = _names_read(node.right)
            if left and right:
                fn.binops.append(BinOpFact(
                    _OP_SYMBOLS.get(type(node.op), "?"), left, right,
                    line=node.lineno, col=node.col_offset, in_loop=in_loop,
                ))
        elif isinstance(node, ast.Compare):
            names = _names_read(node)
            constants = [
                abs(float(c.value))
                for c in [node.left, *node.comparators]
                if isinstance(c, ast.Constant) and isinstance(c.value, (int, float))
                and not isinstance(c.value, bool)
            ]
            if names:
                fn.compares.append(CompareFact(
                    names, min(constants) if constants else None,
                    line=node.lineno, col=node.col_offset, in_loop=in_loop,
                ))
        elif isinstance(node, ast.Call):
            callee = _callee_name(node)
            if callee in _WRITE_FUNCS:
                sources = tuple(
                    name for arg in node.args for name in _names_read(arg)
                )
                fn.outputs.append(OutputFact(sources, line=node.lineno))


def _call_flow(
    fn: FunctionScan, call: ast.Call, targets: tuple[str, ...], in_loop: bool
) -> None:
    callee = _callee_name(call)
    if callee is None or callee in _READ_FUNCS or callee in _WRITE_FUNCS:
        return
    arg_reads: list[tuple[str, ...]] = []
    arg_names: list[str | None] = []
    for arg in call.args:
        if isinstance(arg, ast.Name) and arg.id in _WS_NAMES:
            continue
        arg_reads.append(_names_read(arg))
        arg_names.append(arg.id if isinstance(arg, ast.Name) else None)
    fn.callflows.append(CallFlowFact(
        callee, tuple(arg_reads), tuple(arg_names), targets,
        line=call.lineno, in_loop=in_loop,
    ))


def _flow_assign(
    fn: FunctionScan,
    target: ast.expr,
    value: ast.expr,
    in_loop: bool,
    augmented: bool = False,
) -> None:
    if isinstance(target, ast.Name):
        targets, store = (target.id,), False
    elif isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
        targets, store = (target.value.id,), True
    elif isinstance(target, ast.Tuple):
        names = tuple(e.id for e in target.elts if isinstance(e, ast.Name))
        if not names:
            return
        targets, store = names, False
    else:
        return
    callee = _callee_name(value) if isinstance(value, ast.Call) else None
    if callee is not None and callee not in _READ_FUNCS and callee not in _WRITE_FUNCS:
        _call_flow(fn, value, targets, in_loop)
        if augmented:
            fn.flows.append(FlowFact(
                targets, (), line=value.lineno, col=value.col_offset,
                in_loop=in_loop, augmented=True, store=store,
            ))
        return
    sources = _names_read(value)
    if sources or augmented:
        fn.flows.append(FlowFact(
            targets, sources, line=value.lineno, col=value.col_offset,
            in_loop=in_loop, augmented=augmented, store=store,
        ))


def _scan_statements(fn: FunctionScan, body: list[ast.stmt], in_loop: bool) -> None:
    for stmt in body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Tuple) and isinstance(stmt.value, ast.Tuple):
                    for t_elt, v_elt in zip(target.elts, stmt.value.elts):
                        _flow_assign(fn, t_elt, v_elt, in_loop)
                else:
                    _flow_assign(fn, target, stmt.value, in_loop)
            _scan_expression(fn, stmt.value, in_loop)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            _flow_assign(fn, stmt.target, stmt.value, in_loop)
            _scan_expression(fn, stmt.value, in_loop)
        elif isinstance(stmt, ast.AugAssign):
            _flow_assign(fn, stmt.target, stmt.value, in_loop, augmented=True)
            _scan_expression(fn, stmt.value, in_loop)
        elif isinstance(stmt, ast.Return):
            fn.return_reads.update(_names_read(stmt.value))
            if stmt.value is not None:
                if isinstance(stmt.value, ast.Tuple):
                    fn.return_flows.append(
                        tuple(_names_read(e) for e in stmt.value.elts)
                    )
                else:
                    fn.return_flows.append((_names_read(stmt.value),))
            _scan_expression(fn, stmt.value, in_loop)
        elif isinstance(stmt, ast.Expr):
            if isinstance(stmt.value, ast.Call):
                _call_flow(fn, stmt.value, (), in_loop)
            _scan_expression(fn, stmt.value, in_loop)
        elif isinstance(stmt, ast.For):
            _scan_expression(fn, stmt.iter, in_loop)
            _flow_assign(fn, stmt.target, stmt.iter, in_loop=True)
            _scan_statements(fn, stmt.body, in_loop=True)
            _scan_statements(fn, stmt.orelse, in_loop=True)
        elif isinstance(stmt, ast.While):
            _scan_expression(fn, stmt.test, in_loop=True)
            _scan_statements(fn, stmt.body, in_loop=True)
            _scan_statements(fn, stmt.orelse, in_loop=True)
        elif isinstance(stmt, ast.If):
            _scan_expression(fn, stmt.test, in_loop)
            _scan_statements(fn, stmt.body, in_loop)
            _scan_statements(fn, stmt.orelse, in_loop)
        elif isinstance(stmt, ast.With):
            _scan_statements(fn, stmt.body, in_loop)
