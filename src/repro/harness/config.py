"""YAML harness configuration (paper Listing 4).

The harness is driven by a per-benchmark YAML file::

    kmeans:
      benchmark: kmeans          # suite registry name (defaults to the key)
      build: ['generate-inputs'] # build/deploy steps (informational)
      clean: ['remove-inputs']
      metric: MCR                # quality metric for verification
      threshold: 1.0e-6          # acceptance threshold
      runs: 10                   # timed runs per configuration
      time_limit_hours: 24       # simulated analysis budget
      executor: process          # batch executor: serial/thread/process
      workers: 4                 # worker count for thread/process
      cache: true                # persistent evaluation cache on/off
      fuse: true                 # trace-fusion fast path on/off
      analysis:
        floatsmith:              # analysis id
          name: floatSmith       # plugin name in the registry
          extra_args:
            algorithm: ddebug    # search strategy

Unknown keys are rejected so typos fail loudly.  ``load_config``
returns one :class:`HarnessConfig` per top-level key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

import yaml

from repro.errors import HarnessConfigError

__all__ = ["AnalysisSpec", "HarnessConfig", "load_config", "parse_config"]

_TOP_KEYS = {
    "benchmark", "build", "build_dir", "clean", "metric", "threshold",
    "runs", "time_limit_hours", "analysis", "args", "bin", "copy", "output",
    "executor", "workers", "cache", "prune", "shadow", "fuse", "rounding",
    "screen",
}

_EXECUTOR_NAMES = ("serial", "thread", "process")


@dataclass(frozen=True)
class AnalysisSpec:
    """One analysis entry: which plugin to run and with what arguments."""

    identifier: str
    plugin: str
    extra_args: dict[str, Any] = field(default_factory=dict, hash=False)


@dataclass(frozen=True)
class HarnessConfig:
    """Everything the harness needs to deploy and analyse one program."""

    name: str
    benchmark: str
    metric: str | None = None
    threshold: float | None = None
    runs: int | None = None
    time_limit_hours: float = 24.0
    analyses: tuple[AnalysisSpec, ...] = ()
    build: tuple[str, ...] = ()
    clean: tuple[str, ...] = ()
    #: batch executor (serial/thread/process); None inherits the
    #: harness-wide choice
    executor: str | None = None
    #: worker count for thread/process executors; None inherits
    workers: int | None = None
    #: persistent evaluation cache toggle; None inherits
    cache: bool | None = None
    #: static search-space pruning toggle; None inherits
    prune: bool | None = None
    #: shadow-guided search ordering toggle; None inherits
    shadow: bool | None = None
    #: trace-fusion fast path toggle; None inherits
    fuse: bool | None = None
    #: emulated-format store-rounding mode ("nearest"/"stochastic");
    #: None inherits
    rounding: str | None = None
    #: certified error-bound screening toggle; None inherits
    screen: bool | None = None

    def analysis(self, identifier: str) -> AnalysisSpec:
        for spec in self.analyses:
            if spec.identifier == identifier:
                return spec
        raise HarnessConfigError(
            f"{self.name}: no analysis named {identifier!r}; "
            f"available: {[s.identifier for s in self.analyses]}"
        )


def load_config(path: str | Path) -> list[HarnessConfig]:
    """Load and validate a harness YAML file."""
    path = Path(path)
    if not path.exists():
        raise HarnessConfigError(f"config file not found: {path}")
    try:
        payload = yaml.safe_load(path.read_text())
    except yaml.YAMLError as exc:
        raise HarnessConfigError(f"{path}: invalid YAML: {exc}") from exc
    return parse_config(payload, source=str(path))


def parse_config(payload: Any, source: str = "<config>") -> list[HarnessConfig]:
    """Validate an already-parsed YAML document."""
    if not isinstance(payload, Mapping) or not payload:
        raise HarnessConfigError(
            f"{source}: expected a mapping of benchmark entries, got {type(payload).__name__}"
        )
    configs = []
    for name, body in payload.items():
        configs.append(_parse_entry(str(name), body, source))
    return configs


def _parse_entry(name: str, body: Any, source: str) -> HarnessConfig:
    if not isinstance(body, Mapping):
        raise HarnessConfigError(f"{source}: entry {name!r} must be a mapping")
    unknown = set(body) - _TOP_KEYS
    if unknown:
        raise HarnessConfigError(
            f"{source}: entry {name!r} has unknown keys {sorted(unknown)}"
        )

    threshold = body.get("threshold")
    if threshold is not None:
        try:
            threshold = float(threshold)
        except (TypeError, ValueError):
            raise HarnessConfigError(
                f"{source}: {name}: threshold must be a number, got {threshold!r}"
            ) from None
        if threshold <= 0:
            raise HarnessConfigError(f"{source}: {name}: threshold must be positive")

    runs = body.get("runs")
    if runs is not None:
        if not isinstance(runs, int) or runs < 1:
            raise HarnessConfigError(f"{source}: {name}: runs must be a positive integer")

    hours = body.get("time_limit_hours", 24.0)
    try:
        hours = float(hours)
    except (TypeError, ValueError):
        raise HarnessConfigError(
            f"{source}: {name}: time_limit_hours must be a number"
        ) from None

    executor = body.get("executor")
    if executor is not None:
        executor = str(executor).strip().lower()
        if executor not in _EXECUTOR_NAMES:
            raise HarnessConfigError(
                f"{source}: {name}: executor must be one of "
                f"{list(_EXECUTOR_NAMES)}, got {executor!r}"
            )

    workers = body.get("workers")
    if workers is not None:
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise HarnessConfigError(
                f"{source}: {name}: workers must be a positive integer"
            )

    cache = body.get("cache")
    if cache is not None and not isinstance(cache, bool):
        raise HarnessConfigError(
            f"{source}: {name}: cache must be a boolean"
        )

    prune = body.get("prune")
    if prune is not None and not isinstance(prune, bool):
        raise HarnessConfigError(
            f"{source}: {name}: prune must be a boolean"
        )

    shadow = body.get("shadow")
    if shadow is not None and not isinstance(shadow, bool):
        raise HarnessConfigError(
            f"{source}: {name}: shadow must be a boolean"
        )

    fuse = body.get("fuse")
    if fuse is not None and not isinstance(fuse, bool):
        raise HarnessConfigError(
            f"{source}: {name}: fuse must be a boolean"
        )

    screen = body.get("screen")
    if screen is not None and not isinstance(screen, bool):
        raise HarnessConfigError(
            f"{source}: {name}: screen must be a boolean"
        )

    rounding = body.get("rounding")
    if rounding is not None:
        rounding = str(rounding).strip().lower()
        if rounding not in ("nearest", "stochastic"):
            raise HarnessConfigError(
                f"{source}: {name}: rounding must be 'nearest' or "
                f"'stochastic', got {rounding!r}"
            )

    analyses = []
    for identifier, spec in (body.get("analysis") or {}).items():
        if not isinstance(spec, Mapping) or "name" not in spec:
            raise HarnessConfigError(
                f"{source}: {name}: analysis {identifier!r} needs a 'name' key"
            )
        extra = spec.get("extra_args") or {}
        if not isinstance(extra, Mapping):
            raise HarnessConfigError(
                f"{source}: {name}: extra_args of {identifier!r} must be a mapping"
            )
        analyses.append(AnalysisSpec(str(identifier), str(spec["name"]), dict(extra)))

    return HarnessConfig(
        name=name,
        benchmark=str(body.get("benchmark", name)),
        metric=body.get("metric"),
        threshold=threshold,
        runs=runs,
        time_limit_hours=hours,
        analyses=tuple(analyses),
        build=tuple(body.get("build") or ()),
        clean=tuple(body.get("clean") or ()),
        executor=executor,
        workers=workers,
        cache=cache,
        prune=prune,
        shadow=shadow,
        fuse=fuse,
        rounding=rounding,
        screen=screen,
    )
